#!/usr/bin/env python3
"""Operating an internet with 1988's toolkit — and the management plane
the era never shipped.

Run:  python examples/network_operations.py

Builds a four-gateway chain with a side host, then demonstrates the
operator's view, from the diagnostics the architecture affords up
through the in-band management plane:

1. traceroute discovers the forward path from TTL expiry;
2. a reachability monitor watches targets and flags an outage when a
   mid-path link is cut, then the recovery when routing reconverges —
   and the management plane, scraping every node's MIB agent in-band
   from the same station, raises (and later clears) its own alarms;
3. traceroute again shows the backup path routing found;
4. the operator console: node health, link utilization and top talkers
   derived from the scraped time series, plus the deduplicated alert
   log of the whole incident.
"""

from repro import Internet
from repro.ip.traceroute import Traceroute
from repro.mgmt.monitor import ReachabilityMonitor
from repro.netmgmt import ManagementPlane


def main() -> None:
    net = Internet(seed=3)
    ops, far = net.host("ops"), net.host("far")
    gws = [net.gateway(f"G{i}") for i in range(1, 5)]
    spare = net.gateway("SPARE")
    net.connect(ops, gws[0], bandwidth_bps=1e6, delay=0.002)
    links = []
    for a, b in zip(gws, gws[1:]):
        links.append(net.connect(a, b, bandwidth_bps=256e3, delay=0.01))
    # A backup around the G1-G2 link, one gateway longer than the primary.
    net.connect(gws[0], spare, bandwidth_bps=128e3, delay=0.03)
    net.connect(spare, gws[1], bandwidth_bps=128e3, delay=0.03)
    net.connect(gws[3], far, bandwidth_bps=1e6, delay=0.002)
    net.start_routing(period=2.0)
    net.converge(settle=12.0)
    net.observe()   # journeys + metrics registry (the agents export it)

    # --- 1. traceroute ------------------------------------------------
    print("== traceroute (TTL probes; each gateway names itself) ==")
    trace = Traceroute(ops.node, far.address)
    trace.start()
    net.sim.run(until=net.sim.now + 30)
    print(trace.render())

    # --- 2. reachability monitoring through an outage ------------------
    print("\n== monitoring through a failure and recovery ==")
    # The management plane: a MIB agent on every node, scraped in-band
    # from ops into a TSDB, with an alarm engine watching the scrapes.
    plane = ManagementPlane(net, station="ops", interval=1.0)
    plane.start()
    events = []
    monitor = ReachabilityMonitor(
        ops.node, [far.address, gws[3].node.address], interval=1.0,
        down_after=2, alert_bus=plane.bus,   # ping alarms join the same log
        on_change=lambda addr, up: events.append(
            f"  t={net.sim.now:7.1f}s  {addr} {'UP' if up else 'DOWN'}"))
    monitor.start()
    net.sim.run(until=net.sim.now + 5)
    events.append(f"  t={net.sim.now:7.1f}s  (operator cuts the G1-G2 link)")
    links[0].set_up(False)   # traffic must swing onto the backup via SPARE
    net.sim.run(until=net.sim.now + 40)
    for event in events:
        print(event)
    print(monitor.report())

    # --- 3. the path after rerouting -----------------------------------
    print("\n== traceroute again (the backup path, found automatically) ==")
    # The new path runs one hop longer, through SPARE.
    trace2 = Traceroute(ops.node, far.address)
    trace2.start()
    net.sim.run(until=net.sim.now + 30)
    print(trace2.render())

    # --- 4. the operator console ---------------------------------------
    print("\n== the operator console (scraped in-band, goal 4's answer) ==")
    print(plane.render())


if __name__ == "__main__":
    main()
