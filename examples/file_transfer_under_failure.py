#!/usr/bin/env python3
"""Survivability demo (the paper's goal 1, experiment E1 in miniature).

Run:  python examples/file_transfer_under_failure.py

A file transfer crosses an internet with a primary and a backup path.
Mid-transfer we cut the primary link AND crash a gateway on it.  Watch the
transfer stall briefly while distance-vector routing reconverges, then
finish — the TCP connection never knows anything happened, because every
bit of its state lives in the two end hosts (fate-sharing).

For contrast, the same failure is then applied to a virtual-circuit network
carrying an equivalent conversation: the circuit is destroyed and the
"application" must redial.
"""

from repro import Internet, format_rate
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.sim.engine import Simulator
from repro.vc.network import VirtualCircuitNetwork


def datagram_side() -> None:
    print("=== datagram internet (fate-sharing) ===")
    net = Internet(seed=7)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3, g4, g5 = (net.gateway(f"G{i}") for i in range(1, 6))
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    primary = net.connect(g1, g2, bandwidth_bps=256e3, delay=0.01)
    net.connect(g2, g5, bandwidth_bps=256e3, delay=0.01)
    net.connect(g1, g3, bandwidth_bps=256e3, delay=0.01)
    net.connect(g3, g4, bandwidth_bps=256e3, delay=0.01)
    net.connect(g4, g5, bandwidth_bps=256e3, delay=0.01)
    net.connect(g5, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing(period=1.0)
    net.converge(settle=10.0)

    receiver = FileReceiver(h2, port=21)
    sender = FileSender(h1, h2.address, 21, size=400_000)

    def catastrophe():
        print(f"  t={net.sim.now:.1f}s: primary link cut, gateway G2 crashed")
        primary.set_up(False)
        g2.node.crash()

    net.sim.schedule(5.0, catastrophe)
    net.sim.run(until=net.sim.now + 600)

    if receiver.results:
        r = receiver.results[0]
        print(f"  transfer COMPLETED: {r.bytes_transferred} bytes in "
              f"{r.duration:.1f}s ({format_rate(r.goodput_bps)})")
        conn = sender.sock.conn
        print(f"  TCP noticed only as retransmissions: "
              f"{conn.stats.retransmit_timeouts} timeouts, "
              f"{conn.stats.segments_retransmitted} segments resent")
        print(f"  backup path G3 forwarded {g3.node.stats.forwarded} datagrams")
    else:
        print("  transfer FAILED (unexpected)")


def circuit_side() -> None:
    print("=== virtual-circuit network (state in switches) ===")
    sim = Simulator()
    vc = VirtualCircuitNetwork(sim)
    for name in ("S1", "S2", "S3", "S4", "S5"):
        vc.add_switch(name)
    vc.add_trunk("S1", "S2")
    vc.add_trunk("S2", "S5")
    vc.add_trunk("S1", "S3")
    vc.add_trunk("S3", "S4")
    vc.add_trunk("S4", "S5")
    vc.attach_host("h1", "S1")
    vc.attach_host("h2", "S5")

    circuit = vc.place_call("h1", "h2")
    events = []
    circuit.on_disconnect = lambda: events.append(f"t={sim.now:.2f}s DISCONNECT")
    sim.run(until=2)
    print(f"  circuit open via {' -> '.join(circuit.path)}; "
          f"{vc.total_state_entries} switch-table entries hold it up")
    sim.schedule(5.0, lambda: vc.fail_trunk("S1", "S2"))
    sim.run(until=10)
    for event in events:
        print(f"  {event}: conversation destroyed, application must redial")
    replacement = vc.place_call("h1", "h2")
    sim.run(until=15)
    print(f"  redial succeeded via {' -> '.join(replacement.path)} "
          f"(a NEW conversation — everything in flight was lost)")


def main() -> None:
    datagram_side()
    print()
    circuit_side()


if __name__ == "__main__":
    main()
