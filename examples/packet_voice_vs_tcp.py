#!/usr/bin/env python3
"""Types of service demo (the paper's goal 2, experiment E2 in miniature).

Run:  python examples/packet_voice_vs_tcp.py

Digitized speech needs frames *on time*, not frames *guaranteed*: this is
the workload that forced TCP and IP apart and gave applications the raw
datagram (UDP).  We run the same 64 kb/s voice call over a lossy path twice
— once over UDP, once through TCP — and score every frame against its
playout deadline.  TCP loses nothing and yet sounds worse: each loss stalls
the whole stream behind a retransmission.
"""

from repro import Internet, Table
from repro.apps.voice import TcpVoiceCall, TcpVoiceReceiver, UdpVoiceCall, UdpVoiceReceiver, VoiceCodec
from repro.netlayer.loss import BernoulliLoss


def build_net(seed=5, loss=0.08):
    net = Internet(seed=seed)
    h1, h2 = net.host("speaker"), net.host("listener")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    net.connect(g1, g2, bandwidth_bps=1e6, delay=0.02,
                loss=BernoulliLoss(loss))
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=8.0)
    return net, h1, h2


def main() -> None:
    codec = VoiceCodec(frame_bytes=160, frames_per_second=50.0)
    deadline = 0.160  # a comfortable interactive playout budget
    duration = 20.0

    net, speaker, listener = build_net()
    udp_rx = UdpVoiceReceiver(listener, 5004, playout_deadline=deadline)
    tcp_rx = TcpVoiceReceiver(listener, 5005, playout_deadline=deadline)
    UdpVoiceCall(speaker, listener.address, 5004, codec=codec,
                 duration=duration, meter=udp_rx.meter)
    TcpVoiceCall(speaker, listener.address, 5005, codec=codec,
                 duration=duration, meter=tcp_rx.meter)
    net.sim.run(until=net.sim.now + duration + 60)

    table = Table(
        "64 kb/s packet voice across an 8%-loss path",
        ["transport", "frames", "lost", "late", "usable %", "p99 latency ms"],
        note="a late frame is as useless as a lost one at playout time",
    )
    for name, meter in [("UDP (datagram)", udp_rx.meter),
                        ("TCP (reliable)", tcp_rx.meter)]:
        summary = meter.latency_summary()
        table.add(
            name,
            meter.sent_count,
            meter.sent_count - meter.received_count,
            meter.late_count,
            f"{100 * (1 - meter.effective_loss_rate):.1f}",
            f"{summary.p99 * 1000:.0f}" if summary.count else "-",
        )
    table.print()
    print("\nThe reliable stream delivered every frame — too late to play.")
    print("This asymmetry is why the architecture exposes raw datagrams.")


if __name__ == "__main__":
    main()
