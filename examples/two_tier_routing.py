#!/usr/bin/env python3
"""Distributed management demo (goal 4, experiment E4 in miniature).

Run:  python examples/two_tier_routing.py

Three administrations, three autonomous systems: each runs its own interior
distance-vector routing on its own equipment, and the borders exchange only
aggregated reachability ("10.3.0.0/16 is that way, via AS path (2, 3)") over
the path-vector exterior protocol.  No administration sees another's
interior, and an interior flap in AS3 is invisible in AS1.
"""

from repro import Internet, Table
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.ip.address import Prefix
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.distance_vector import DistanceVectorRouting
from repro.routing.egp import ExteriorGateway
from repro.routing.static import add_default_route


def build() -> tuple:
    net = Internet(seed=31)
    hosts, interiors, borders, egps = {}, {}, {}, {}
    for n in (1, 2, 3):
        host = net.host(f"H{n}")
        interior = net.gateway(f"I{n}")
        border = net.gateway(f"B{n}")
        lan = Prefix.parse(f"10.{n}.1.0/24")
        hi = host.node.add_interface(Interface(f"h{n}0", lan.host(10), lan))
        ii = interior.node.add_interface(Interface(f"i{n}0", lan.host(1), lan))
        PointToPointLink(net.sim, hi, ii, bandwidth_bps=10e6, delay=0.001)
        host.default_route(lan.host(1))
        core = Prefix.parse(f"10.{n}.0.0/30")
        ib = interior.node.add_interface(Interface(f"i{n}1", core.host(1), core))
        bi = border.node.add_interface(Interface(f"b{n}0", core.host(2), core))
        PointToPointLink(net.sim, ib, bi, bandwidth_bps=1e6, delay=0.002)
        add_default_route(interior.node, core.host(2))
        hosts[n], interiors[n], borders[n] = host, interior, border

    net.connect(borders[1], borders[2], bandwidth_bps=256e3, delay=0.02)
    net.connect(borders[2], borders[3], bandwidth_bps=256e3, delay=0.02)

    for n in (1, 2, 3):
        DistanceVectorRouting(interiors[n].node, interiors[n].udp,
                              period=1.0).start()
        intra = borders[n].node.interface_by_name(f"b{n}0")
        DistanceVectorRouting(borders[n].node, borders[n].udp, period=1.0,
                              interfaces=[intra]).start()
        egp = ExteriorGateway(borders[n].node, borders[n].udp,
                              local_as=n, period=1.0)
        egp.originate(Prefix.parse(f"10.{n}.0.0/16"))
        egps[n] = egp

    def peer_addr(mine, theirs):
        for iface in theirs.node.interfaces:
            for local in mine.node.interfaces:
                if local.prefix == iface.prefix and local is not iface:
                    return iface.address
        raise AssertionError

    egps[1].add_peer(peer_addr(borders[1], borders[2]), 2)
    egps[2].add_peer(peer_addr(borders[2], borders[1]), 1)
    egps[2].add_peer(peer_addr(borders[2], borders[3]), 3)
    egps[3].add_peer(peer_addr(borders[3], borders[2]), 2)
    for egp in egps.values():
        egp.start()
    net.converge(settle=15.0)
    return net, hosts, borders, egps


def main() -> None:
    net, hosts, borders, egps = build()

    table = Table("What each border gateway knows about the world",
                  ["border", "destination block", "AS path"])
    for n in (1, 2, 3):
        for m in (1, 2, 3):
            if m == n:
                continue
            path = egps[n].best_path(Prefix.parse(f"10.{m}.0.0/16"))
            table.add(f"B{n} (AS{n})", f"10.{m}.0.0/16",
                      " -> ".join(str(a) for a in path) if path else "none")
    table.print()

    print("\nB1's full forwarding table (note: no AS3 interior detail):")
    for route in borders[1].node.routes.routes():
        print(f"  {route}")

    print("\nEnd-to-end transfer H1 (AS1) -> H3 (AS3), transiting AS2:")
    receiver = FileReceiver(hosts[3], port=21)
    FileSender(hosts[1], hosts[3].address, 21, size=80_000)
    net.sim.run(until=net.sim.now + 240)
    if receiver.results:
        r = receiver.results[0]
        print(f"  completed: {r.bytes_transferred} bytes in {r.duration:.1f}s; "
              f"AS2's border forwarded {borders[2].node.stats.forwarded} datagrams")


if __name__ == "__main__":
    main()
