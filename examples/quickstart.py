#!/usr/bin/env python3
"""Quickstart: build a small internet, ping across it, transfer a file.

Run:  python examples/quickstart.py

Builds the minimal interesting topology — two hosts, two gateways, a slow
wide-area link in the middle — starts distance-vector routing, waits for
convergence, and then exercises the two classic service types (ICMP echo
and a TCP file transfer).
"""

from repro import Internet, format_rate, run_transfer


def main() -> None:
    net = Internet(seed=1)

    # Nodes.
    alice, bob = net.host("alice"), net.host("bob")
    g1, g2 = net.gateway("G1"), net.gateway("G2")

    # Links: fast host attachments, a 256 kb/s trunk in the middle.
    net.connect(alice, g1, bandwidth_bps=10e6, delay=0.001)
    net.connect(g1, g2, bandwidth_bps=256_000, delay=0.020, mtu=1006)
    net.connect(g2, bob, bandwidth_bps=10e6, delay=0.001)

    # Routing: DV on the gateways, defaults on the hosts.
    net.start_routing()
    net.converge(settle=10.0)
    print(f"routing converged by t={net.sim.now:.1f}s")
    print(f"alice is {alice.address}, bob is {bob.address}")

    # Ping.
    rtts = []
    alice.node.ping(bob.address, lambda t: rtts.append(t))
    start = net.sim.now
    net.sim.run(until=net.sim.now + 5)
    if rtts:
        print(f"ping alice -> bob: rtt = {(rtts[0] - start) * 1000:.1f} ms")

    # File transfer.
    outcome = run_transfer(net, alice, bob, size=200_000)
    print(f"transferred {outcome.bytes_requested} bytes in "
          f"{outcome.duration:.2f}s = {format_rate(outcome.goodput_bps)} "
          f"({outcome.segments_retransmitted} retransmissions)")

    # Where did the work happen?  Gateways forwarded; hosts owned the state.
    for name, gw in net.gateways.items():
        print(f"  {name}: forwarded {gw.node.stats.forwarded} datagrams, "
              f"routing table has {len(gw.node.routes)} entries")


if __name__ == "__main__":
    main()
