#!/usr/bin/env python3
"""Store-and-forward mail across an unreliable internet.

Run:  python examples/mail_relay.py

Remote login, file transfer, mail: the canonical 1988 service classes.
Mail shows how reliability *composes*: TCP makes each hop's conversation
reliable; the mail transfer agents make the message itself survive outages
no single conversation could.  We cut the WAN, submit mail anyway, and
watch the MTA queue it, ride out the outage, and deliver on recovery.
"""

from repro import Internet
from repro.apps.mail import MailServer, send_mail


def main() -> None:
    net = Internet(seed=9)
    user = net.host("laptop")
    mta_campus = net.host("mail.campus")
    mta_remote = net.host("mail.remote")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.lan("campus", [user, mta_campus, g1])
    wan = net.connect(g1, g2, bandwidth_bps=56_000, delay=0.03, mtu=1006)
    net.connect(g2, mta_remote, bandwidth_bps=1e6, delay=0.002)
    net.start_routing(period=1.0)
    net.converge(settle=10.0)

    campus = MailServer(mta_campus, "campus",
                        routes={"remote": mta_remote.address},
                        retry_interval=5.0)
    remote = MailServer(mta_remote, "remote", retry_interval=5.0)

    print("t=%5.1fs  WAN goes down" % net.sim.now)
    wan.set_up(False)

    outcomes = []
    send_mail(user, mta_campus.address, "student@campus", "prof@remote",
              "Subject: thesis draft\n\nPlease find attached... (not really)",
              outcomes.append)
    net.sim.run(until=net.sim.now + 15)
    print(f"t={net.sim.now:5.1f}s  submission accepted by campus MTA: "
          f"{outcomes == [True]}; queued for relay: {len(campus.queue)}")
    print(f"          remote mailbox so far: "
          f"{len(remote.mailbox('prof'))} messages")

    net.sim.run(until=net.sim.now + 20)
    print(f"t={net.sim.now:5.1f}s  WAN restored")
    wan.set_up(True)
    net.sim.run(until=net.sim.now + 60)

    inbox = remote.mailbox("prof")
    print(f"t={net.sim.now:5.1f}s  delivered: {len(inbox)} message(s)")
    for message in inbox:
        print(f"          from {message.sender}: "
              f"{message.body.splitlines()[0]!r} "
              f"(submitted t={message.submitted_at:.1f}s, "
              f"delivered t={message.delivered_at:.1f}s)")
    print(f"          campus MTA attempts: {campus.delivery_attempts}, "
          f"queue now: {len(campus.queue)}")


if __name__ == "__main__":
    main()
