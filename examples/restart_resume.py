#!/usr/bin/env python3
"""Fate-sharing closed loop demo (the paper's goal 1, endpoint edition).

Run:  PYTHONPATH=src python examples/restart_resume.py

A client host streams a 20 kB payload to a server over a resumable
session while being power-cycled three times mid-transfer.  Each crash
silently kills the client's half of the TCP connection (fate-sharing:
state dies with the host, no FIN, no RST on the way down).  Watch the
recovery machinery — all of it at the endpoints — put the conversation
back together:

* the server's keepalive probes and the reborn host's RSTs shed the
  half-open zombie connection;
* the reborn stack stays ISN-silent through RFC 793 quiet time;
* the session layer redials with seeded backoff and replays exactly the
  unacknowledged suffix from its application-level resume offset.

The payload must arrive complete, in order, with zero duplicated bytes —
and the whole run is replayable byte-for-byte from its seed.  This is
the same scenario CI gates on (`python -m repro.chaos --campaign
restart`).
"""

from repro.chaos.restart import build_restart_scenario


def main() -> None:
    scenario = build_restart_scenario(seed=7, restarts=3)
    net = scenario.net

    for fault in scenario.campaign.faults:
        net.sim.call_at(fault.at, lambda f=fault: print(
            f"  t={net.sim.now:6.2f}s  {f.name} loses power "
            f"(and every byte of volatile state)"))
        net.sim.call_at(fault.clear_time, lambda: print(
            f"  t={net.sim.now:6.2f}s  reborn: quiet time, then redial"))

    print("=== host-restart campaign (seed 7, 3 power cycles) ===")
    report = scenario.run()

    sess = report.counters["session_client"]
    print(f"\npayload: {report.counters['payload_delivered']}"
          f"/{report.counters['payload_bytes']} bytes delivered, "
          f"intact={report.counters['payload_intact']}")
    print(f"session: {sess['reconnects']} reconnect(s), "
          f"{sess['bytes_replayed']} byte(s) replayed, "
          f"{sess['backoff_time']:.2f}s in backoff")
    tcp = report.counters["tcp_server"]
    print(f"server TCP: {tcp['keepalives_sent_open']} keepalive probe(s) "
          f"on open connections, {tcp['resets_sent']} RST(s) sent")
    print(f"invariants: {report.violation_count} violation(s) "
          f"across {len(report.monitors)} monitors")


if __name__ == "__main__":
    main()
