#!/usr/bin/env python3
"""Soft-state flows demo (the paper's §10 outlook, experiment E10).

Run:  python examples/flows_softstate.py

Builds the canonical flows topology — a voice call and an oversubscribed
bulk TCP session sharing a 300 kb/s bottleneck — twice:

1. under the 1988 FIFO gateway, where bulk traffic drowns the voice
   flow's playout deadline;
2. under the flow gateway (per-flow DRR) with the voice flow's
   reservation installed as *soft state*: the endpoint refreshes it every
   2 seconds, the gateway expires it on its own, and when we crash the
   gateway mid-call the reservation dies with it — then quietly comes
   back with the very next refresh.  Brief degradation, no permanent
   disruption, no management action: the sentence from the paper, live.
"""

import sys

sys.path.insert(0, "src")

from repro.chaos.faults import GatewayCrash
from repro.harness.flowtopo import build_flow_topology


def run(mode: str, crash: bool) -> None:
    topo = build_flow_topology(seed=11, mode=mode, reserve=(mode == "drr"),
                               duration=30.0)
    net, t0 = topo.net, topo.start_time
    label = "flow gateway (DRR + soft state)" if mode == "drr" \
        else "1988 FIFO gateway"
    print(f"=== {label} ===")

    if crash:
        fault = GatewayCrash("G1", t0 + 12.0, 4.0)

        def apply():
            fault.apply(net)
            fgw = topo.fgw
            print(f"  t={net.sim.now - t0:4.1f}s  G1 CRASHED — "
                  f"{fgw.state_losses} state loss, "
                  f"{fgw.packets_flushed_on_crash} queued packets died "
                  f"with it")

        def clear():
            fault.clear(net)
            print(f"  t={net.sim.now - t0:4.1f}s  G1 restored "
                  f"(flow table empty)")

        net.sim.schedule(fault.at - net.sim.now, apply)
        net.sim.schedule(fault.clear_time - net.sim.now, clear)

        def watch_reinstall():
            if topo.fgw.installed_flows > 0:
                print(f"  t={net.sim.now - t0:4.1f}s  reservation "
                      f"RE-INSTALLED by the next refresh — no management "
                      f"action taken")
            else:
                net.sim.schedule(0.1, watch_reinstall)

        net.sim.schedule(fault.clear_time - net.sim.now + 0.01,
                         watch_reinstall)

    net.sim.run(until=t0 + 32.0)

    meter = topo.meter
    print(f"  voice: {meter.sent_count} frames sent, "
          f"{meter.usable_pct():.1f}% usable "
          f"(p99 one-way {1000 * (meter.latency_quantile(0.99) or 0):.0f}ms"
          f" against a 160ms playout deadline)")
    print(f"  bulk:  {topo.bulk_bytes_received} bytes delivered")
    if topo.sender is not None:
        print(f"  soft state: {topo.sender.refreshes_sent} refreshes sent, "
              f"{topo.fgw.refreshes_seen} seen at G1, "
              f"{topo.fgw.state_losses} lost to crashes")


def main() -> None:
    run("fifo", crash=False)
    print()
    run("drr", crash=True)


if __name__ == "__main__":
    main()
