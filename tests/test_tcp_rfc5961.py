"""RFC 5961 property: blind off-window segments never kill a connection.

An attacker who cannot see the sequence space must guess.  Whatever
32-bit sequence number the forged RST or SYN carries, as long as it is
*outside* the receive window the established connection must survive —
the stack answers with a challenge ACK and counts the attempt.  (An
in-window SYN is the documented RFC 793 abort and is excluded; the
window is the defender's exposure, and these tests prove it is the
*whole* exposure.)
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.tcp.segment import (FLAG_ACK, FLAG_RST, FLAG_SYN, TcpSegment,
                               seq_add)
from repro.tcp.state import TcpState

from test_tcp_connection import tcp_pair


def established_pair():
    """One synchronized client/server connection pair, mid-conversation."""
    sim = Simulator()
    ca, cb, *_ = tcp_pair(sim)
    server_conns = []
    cb.listen(80, server_conns.append)
    client = ca.connect("10.0.1.2", 80)
    client.on_established = lambda: client.send(b"payload " * 16)
    sim.run(until=3.0)
    (server,) = server_conns
    assert client.state is TcpState.ESTABLISHED
    assert server.state is TcpState.ESTABLISHED
    return sim, client, server


def hostile(conn, *, seq, flags, payload=b"", ack=0):
    """A forged segment addressed to ``conn``'s local endpoint."""
    return TcpSegment(src_port=conn.remote_port, dst_port=conn.local_port,
                      seq=seq, ack=ack, flags=flags,
                      window=8192, payload=payload)


# Offsets beyond the window edge, spanning the whole off-window half of
# the 32-bit sequence space (2^31 - 1 is as far "ahead" as wraparound
# comparison allows before the number reads as "behind").
_above = st.integers(min_value=0, max_value=(1 << 31) - (1 << 17))
# Sequence numbers *behind* RCV.NXT read as old duplicates; anything
# from 2 back (1 back is the keepalive probe slot inside the general
# acceptance test, though still outside RST acceptance) to halfway
# around the ring must be rejected too.
_below = st.integers(min_value=2, max_value=(1 << 31) - 2)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(offset=_above, behind=st.booleans(), use_below=_below)
def test_off_window_rst_never_tears_down(offset, behind, use_below):
    sim, client, server = established_pair()
    before = server.stats.rst_out_of_window
    rcv_next = server.rcv.rcv_next
    wnd = max(server.rcv.window, 1)
    if behind:
        seq = seq_add(rcv_next, (-use_below) % (1 << 32))
    else:
        seq = seq_add(rcv_next, wnd + offset)
    server.segment_arrived(hostile(server, seq=seq, flags=FLAG_RST))
    assert server.state is TcpState.ESTABLISHED
    assert server.stats.rst_out_of_window == before + 1
    # The conversation must still work end to end after the attempt.
    received = bytearray()
    server.on_receive = received.extend
    client.send(b"still alive")
    sim.run(until=sim.now + 2.0)
    assert bytes(received).endswith(b"still alive")


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(offset=_above, with_ack=st.booleans())
def test_off_window_syn_never_tears_down(offset, with_ack):
    sim, client, server = established_pair()
    rcv_next = server.rcv.rcv_next
    wnd = max(server.rcv.window, 1)
    seq = seq_add(rcv_next, wnd + offset)
    flags = FLAG_SYN | (FLAG_ACK if with_ack else 0)
    server.segment_arrived(hostile(server, seq=seq, flags=flags,
                                   ack=server.snd_nxt if with_ack else 0))
    assert server.state is TcpState.ESTABLISHED
    received = bytearray()
    server.on_receive = received.extend
    client.send(b"still alive")
    sim.run(until=sim.now + 2.0)
    assert bytes(received).endswith(b"still alive")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(offset=_above, payload=st.binary(min_size=1, max_size=64))
def test_off_window_data_never_corrupts_stream(offset, payload):
    """Forged data beyond the window must neither crash nor be delivered."""
    sim, client, server = established_pair()
    delivered = bytearray()
    server.on_receive = delivered.extend
    seq = seq_add(server.rcv.rcv_next, max(server.rcv.window, 1) + offset)
    server.segment_arrived(hostile(server, seq=seq,
                                   flags=FLAG_ACK, ack=server.snd_nxt,
                                   payload=payload))
    assert server.state is TcpState.ESTABLISHED
    assert bytes(delivered) == b""          # nothing forged reached the app
    client.send(b"genuine")
    sim.run(until=sim.now + 2.0)
    assert bytes(delivered) == b"genuine"
