"""Sharded scheduler: determinism across worker counts and partitions.

The contract under test (DESIGN.md §12): ``n_shards`` is part of the
scenario, ``workers`` is not.  Same seed + same shard count must produce
byte-identical results whether the shards run in one process or one
process each; and because cross-shard conduits mirror PointToPointLink
timing exactly, even the *partition* must not change any packet outcome.
"""

import json

import pytest

from repro.harness.scaletopo import MultiAsBuilder, ScaleConfig
from repro.sim.engine import SimulationError, Simulator
from repro.sim.shard import ConduitPort, ShardedSimulation
from repro.netlayer.link import Interface
from repro.ip.address import Address, Prefix

# 3 gateways/AS: spoke 1 sends intra-AS, spoke 2 cross-AS — both flow
# kinds exist, so the seam actually carries traffic.
CFG = ScaleConfig(n_as=4, gateways_per_as=3, hosts_per_lan=2, seed=13)
HORIZON = 25.0


def run_scenario(n_shards: int, workers: int, cfg: ScaleConfig = CFG):
    builder = MultiAsBuilder(cfg)
    with ShardedSimulation(builder, n_shards,
                           lookahead=builder.lookahead(),
                           workers=workers) as ss:
        ss.run(until=HORIZON)
        summaries = ss.collect()
        meta = (ss.windows, ss.messages_crossed)
    for s in summaries:
        # Execution-dependent fields excluded from the determinism digest.
        s.pop("cpu_seconds", None)
        s.pop("pool", None)
    return sorted(summaries, key=lambda s: s["shard"]), meta


def digest(summaries, meta):
    return json.dumps({"shards": summaries, "meta": meta}, sort_keys=True)


def totals(summaries):
    keys = ("delivered", "forwarded", "originated", "drops",
            "sink_packets", "sink_bytes", "flows")
    return {k: sum(s[k] for s in summaries) for k in keys}


# ----------------------------------------------------------------------
# Worker-count independence (1 vs N processes, same shards)
# ----------------------------------------------------------------------
def test_forked_workers_byte_identical_to_inline():
    inline, meta_i = run_scenario(n_shards=2, workers=1)
    forked, meta_f = run_scenario(n_shards=2, workers=2)
    assert digest(inline, meta_i) == digest(forked, meta_f)
    assert totals(inline)["sink_packets"] > 0  # traffic actually flowed
    assert meta_i[1] > 0  # and actually crossed the seam


def test_excess_workers_clamp_to_shard_count():
    builder = MultiAsBuilder(CFG)
    with ShardedSimulation(builder, 2, lookahead=builder.lookahead(),
                           workers=8) as ss:
        assert ss.workers == 2


# ----------------------------------------------------------------------
# Partition independence (the seam does not change the packets)
# ----------------------------------------------------------------------
def test_partition_does_not_change_outcomes():
    one, _ = run_scenario(n_shards=1, workers=1)
    two, _ = run_scenario(n_shards=2, workers=1)
    four, _ = run_scenario(n_shards=4, workers=1)
    assert totals(one) == totals(two) == totals(four)
    # Per-AS delivery/forward counts survive re-partitioning too.
    def per_as(summaries):
        merged = {}
        for s in summaries:
            merged.update(s["per_as"])
        return merged
    assert per_as(one) == per_as(two) == per_as(four)


def test_same_seed_same_run_repeatable():
    a = digest(*run_scenario(n_shards=2, workers=1))
    b = digest(*run_scenario(n_shards=2, workers=1))
    assert a == b


# ----------------------------------------------------------------------
# Windows, lookahead and failure modes
# ----------------------------------------------------------------------
def test_window_count_matches_lookahead():
    builder = MultiAsBuilder(CFG)
    with ShardedSimulation(builder, 2, lookahead=builder.lookahead(),
                           workers=1) as ss:
        ss.run(until=1.0)
        # W = inter_delay = 0.01 → 100 barrier rounds to reach t=1.
        assert ss.windows == 100
        assert ss.now == pytest.approx(1.0)


def test_resumable_run():
    builder = MultiAsBuilder(CFG)
    with ShardedSimulation(builder, 2, lookahead=builder.lookahead()) as ss:
        ss.run(until=12.0)
        ss.run(until=HORIZON)
        resumed = ss.collect()
    for s in resumed:
        s.pop("cpu_seconds", None)
        s.pop("pool", None)
    straight, _ = run_scenario(n_shards=2, workers=1)
    assert sorted(resumed, key=lambda s: s["shard"]) == straight


def test_lookahead_wider_than_conduit_delay_is_detected():
    builder = MultiAsBuilder(CFG)
    with ShardedSimulation(builder, 2, lookahead=0.5, workers=1) as ss:
        with pytest.raises(SimulationError, match="lookahead"):
            ss.run(until=HORIZON)


def test_constructor_validation():
    builder = MultiAsBuilder(CFG)
    with pytest.raises(ValueError):
        ShardedSimulation(builder, 0, lookahead=0.01)
    with pytest.raises(ValueError):
        ShardedSimulation(builder, 2, lookahead=0.0)


def test_single_host_lans_still_carry_traffic():
    """hosts_per_lan=1 used to KeyError in _start_traffic (no H1 host).

    Single-host LANs now source flows from the sink host itself; the
    scenario must build, run, and actually deliver packets.
    """
    cfg = ScaleConfig(n_as=2, gateways_per_as=3, hosts_per_lan=1, seed=13)
    summaries, meta = run_scenario(n_shards=2, workers=1, cfg=cfg)
    assert totals(summaries)["sink_packets"] > 0
    assert meta[1] > 0  # cross-AS flows still cross the seam


def test_use_after_close_raises_cleanly():
    builder = MultiAsBuilder(CFG)
    ss = ShardedSimulation(builder, 2, lookahead=builder.lookahead(),
                           workers=2)
    ss.run(until=1.0)
    ss.close()
    with pytest.raises(SimulationError, match="closed"):
        ss.collect()
    with pytest.raises(SimulationError, match="closed"):
        ss.run(until=2.0)


def test_conduit_requires_positive_delay():
    sim = Simulator()
    prefix = Prefix(Address("10.254.0.0"), 30)
    iface = Interface("x.east", Address("10.254.0.1"), prefix)
    with pytest.raises(ValueError, match="positive delay"):
        ConduitPort(sim, iface, dst_shard=1, dst_port="p", outbox=[],
                    delay=0.0)


def test_conduit_serializes_by_value():
    """A datagram crossing the seam travels as wire bytes with p2p timing."""
    from repro.ip.packet import Datagram

    sim = Simulator()
    prefix = Prefix(Address("10.254.0.0"), 30)
    iface = Interface("x.east", Address("10.254.0.1"), prefix)
    outbox = []
    port = ConduitPort(sim, iface, dst_shard=1, dst_port="as1.west",
                       outbox=outbox, bandwidth_bps=56_000.0, delay=0.01)
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.1.0.1"),
                 protocol=17, payload=b"x" * 100, trace_id=9)
    port.transmit(iface, d, None)
    assert len(outbox) == 1
    arrival, dst_shard, dst_port, wire, tid = outbox[0]
    assert dst_shard == 1 and dst_port == "as1.west" and tid == 9
    tx = (d.total_length + ConduitPort.FRAME_OVERHEAD) * 8.0 / 56_000.0
    assert arrival == pytest.approx(tx + 0.01)
    parsed = Datagram.from_bytes(wire)
    assert parsed.payload == d.payload and parsed.dst == d.dst
