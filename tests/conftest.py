"""Shared fixtures: canonical small topologies used across the suite."""

from __future__ import annotations

import pytest

from repro import Internet
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.static import add_default_route
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def two_hosts_one_gateway(sim):
    """H1 -- GW -- H2 with static routes; a fast, lossless path.

    Returns (sim, h1, gw, h2) as raw Nodes for layer-level tests.
    """
    h1 = Node("H1", sim)
    gw = Node("GW", sim, is_gateway=True)
    h2 = Node("H2", sim)
    i_h1 = h1.add_interface(Interface("h1.0", Address("10.0.1.1"),
                                      Prefix.parse("10.0.1.0/24")))
    i_g1 = gw.add_interface(Interface("gw.0", Address("10.0.1.2"),
                                      Prefix.parse("10.0.1.0/24")))
    i_g2 = gw.add_interface(Interface("gw.1", Address("10.0.2.1"),
                                      Prefix.parse("10.0.2.0/24")))
    i_h2 = h2.add_interface(Interface("h2.0", Address("10.0.2.2"),
                                      Prefix.parse("10.0.2.0/24")))
    PointToPointLink(sim, i_h1, i_g1, bandwidth_bps=10_000_000, delay=0.001,
                     mtu=1500)
    PointToPointLink(sim, i_g2, i_h2, bandwidth_bps=10_000_000, delay=0.001,
                     mtu=1500)
    add_default_route(h1, "10.0.1.2")
    add_default_route(h2, "10.0.2.1")
    return sim, h1, gw, h2


@pytest.fixture
def simple_internet():
    """An Internet-kit topology: H1 - G1 - G2 - H2, routing converged."""
    net = Internet(seed=42)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    core = net.connect(g1, g2, bandwidth_bps=1_000_000, delay=0.005, mtu=1500)
    net.connect(g2, h2, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    return net, h1, h2, core
