"""Integration: transports over MTU-diverse paths (goal 3 end to end)."""

import pytest

from repro import Internet
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.netlayer.loss import BernoulliLoss
from repro.tcp.connection import TcpConfig


def shrinking_mtu_chain(seed=71, loss=0.0):
    """1500 -> 576 -> 296 -> 1500: a classic multi-MTU concatenation."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3 = net.gateway("G1"), net.gateway("G2"), net.gateway("G3")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=2e6, delay=0.005, mtu=576)
    net.connect(g2, g3, bandwidth_bps=2e6, delay=0.005, mtu=296,
                loss=BernoulliLoss(loss) if loss else None)
    net.connect(g3, h2, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    return net, h1, h2, (g1, g2, g3)


def test_tcp_with_big_mss_crosses_small_mtus():
    """An MSS chosen for the first hop forces gateway fragmentation at
    every shrink; the stream still arrives intact."""
    net, h1, h2, gws = shrinking_mtu_chain()
    big = TcpConfig(mss=1400)
    receiver = FileReceiver(h2, port=21, tcp_config=big)
    FileSender(h1, h2.address, 21, size=60_000, tcp_config=big)
    net.sim.run(until=net.sim.now + 120)
    assert receiver.results and receiver.results[0].bytes_transferred == 60_000
    # Both shrink points fragmented.
    assert gws[0].node.stats.fragments_created > 0
    assert gws[1].node.stats.fragments_created > 0


def test_small_mss_avoids_fragmentation_entirely():
    net, h1, h2, gws = shrinking_mtu_chain()
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=60_000,
               tcp_config=TcpConfig(mss=256))
    net.sim.run(until=net.sim.now + 120)
    assert receiver.results
    assert all(g.node.stats.fragments_created == 0 for g in gws)


def test_fragmented_tcp_survives_loss():
    """Loss on the smallest-MTU hop kills individual fragments; TCP's
    end-to-end retransmission rebuilds whole segments regardless."""
    net, h1, h2, gws = shrinking_mtu_chain(loss=0.03)
    big = TcpConfig(mss=1400)
    receiver = FileReceiver(h2, port=21, tcp_config=big)
    sender = FileSender(h1, h2.address, 21, size=40_000, tcp_config=big)
    net.sim.run(until=net.sim.now + 600)
    assert receiver.results and receiver.results[0].bytes_transferred == 40_000
    assert sender.sock.conn.stats.segments_retransmitted > 0
    # Reassembly losses surfaced as timeouts at the receiving host.
    assert h2.node.reassembler.stats.reassembly_timeouts >= 0


def test_fragmentation_efficiency_cost_visible():
    """The same transfer with big-MSS fragmentation moves more wire bytes
    than the frag-free small-MSS version (per-fragment headers)."""
    def wire_bytes(net):
        total = 0
        for gw in net.gateways.values():
            for iface in gw.node.interfaces:
                total += iface.stats.bytes_sent
        return total

    net_a, h1a, h2a, _ = shrinking_mtu_chain(seed=72)
    big = TcpConfig(mss=1400)
    FileReceiver(h2a, port=21, tcp_config=big)
    FileSender(h1a, h2a.address, 21, size=60_000, tcp_config=big)
    net_a.sim.run(until=net_a.sim.now + 120)
    fragmented_cost = wire_bytes(net_a)

    net_b, h1b, h2b, _ = shrinking_mtu_chain(seed=72)
    FileReceiver(h2b, port=21)
    FileSender(h1b, h2b.address, 21, size=60_000,
               tcp_config=TcpConfig(mss=256))
    net_b.sim.run(until=net_b.sim.now + 120)
    unfragmented_cost = wire_bytes(net_b)

    # Fragmentation's 20-byte-per-fragment tax on the 296-MTU hop versus
    # small-MSS's 40-byte-per-segment tax everywhere: the point is both
    # complete and their costs are within the same ballpark, with the
    # fragmented variant paying more on the smallest hop.
    assert fragmented_cost > 0 and unfragmented_cost > 0
