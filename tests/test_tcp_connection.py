"""Behavioural tests for the TCP connection state machine."""

import random

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.netlayer.loss import BernoulliLoss
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.stack import TcpStack
from repro.tcp.state import TcpState


def tcp_pair(sim, *, loss=None, seed=0, bandwidth=1e6, delay=0.005,
             mtu=1500, client_config=None, server_config=None):
    """Two directly connected hosts with TCP stacks."""
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    link = PointToPointLink(sim, ia, ib, bandwidth_bps=bandwidth, delay=delay,
                            mtu=mtu, loss=loss, rng=random.Random(seed),
                            queue_limit=256)
    return (TcpStack(a, client_config), TcpStack(b, server_config),
            a, b, link)


def accept_collect(stack, port):
    """Listen and collect (connections, received bytes)."""
    conns, data = [], bytearray()

    def on_conn(c):
        conns.append(c)
        c.on_receive = data.extend

    stack.listen(port, on_conn)
    return conns, data


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def test_three_way_handshake(sim):
    ca, cb, *_ = tcp_pair(sim)
    conns, _ = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    assert conn.state is TcpState.SYN_SENT
    sim.run(until=1)
    assert conn.state is TcpState.ESTABLISHED
    assert conns[0].state is TcpState.ESTABLISHED


def test_established_callback_fires_once(sim):
    ca, cb, *_ = tcp_pair(sim)
    accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    events = []
    conn.on_established = lambda: events.append(sim.now)
    sim.run(until=2)
    assert len(events) == 1


def test_mss_negotiated_to_minimum(sim):
    ca, cb, *_ = tcp_pair(
        sim,
        client_config=TcpConfig(mss=1460),
        server_config=TcpConfig(mss=512),
    )
    conns, _ = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    assert conn.snd_mss == 512
    assert conns[0].snd_mss == 512


def test_syn_retransmitted_under_loss(sim):
    # 100% loss initially; heal the link after 2 seconds.
    loss = BernoulliLoss(1.0)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss)
    accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.schedule(2.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=30)
    assert conn.state is TcpState.ESTABLISHED
    assert conn.stats.segments_retransmitted >= 1


def test_connect_to_refusing_port_gets_reset(sim):
    ca, cb, *_ = tcp_pair(sim)  # nobody listens on 81
    conn = ca.connect("10.0.1.2", 81)
    resets = []
    conn.on_reset = lambda: resets.append(1)
    sim.run(until=2)
    assert conn.state is TcpState.CLOSED
    assert resets == [1]


def test_syn_exhaustion_gives_up(sim):
    ca, cb, a, b, link = tcp_pair(sim, loss=BernoulliLoss(1.0),
                                  client_config=TcpConfig(syn_retries=2))
    conn = ca.connect("10.0.1.2", 80)
    closed = []
    conn.on_close = lambda: closed.append(sim.now)
    sim.run(until=120)
    assert conn.state is TcpState.CLOSED
    assert closed


def test_simultaneous_open(sim):
    ca, cb, *_ = tcp_pair(sim)
    c1 = ca.connect("10.0.1.2", 7001, local_port=7000)
    c2 = cb.connect("10.0.1.1", 7000, local_port=7001)
    sim.run(until=5)
    assert c1.state is TcpState.ESTABLISHED
    assert c2.state is TcpState.ESTABLISHED


# ----------------------------------------------------------------------
# Data transfer
# ----------------------------------------------------------------------
def test_small_transfer(sim):
    ca, cb, *_ = tcp_pair(sim)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"hello, world")
    sim.run(until=2)
    assert bytes(data) == b"hello, world"


def test_large_transfer_intact(sim):
    ca, cb, *_ = tcp_pair(sim)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    payload = bytes(range(256)) * 128  # 32 KiB fits the send buffer
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=30)
    assert bytes(data) == payload


def test_transfer_survives_loss(sim):
    ca, cb, *_ = tcp_pair(sim, loss=BernoulliLoss(0.1), seed=3)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    payload = bytes(range(256)) * 64
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=120)
    assert bytes(data) == payload
    assert conn.stats.segments_retransmitted > 0


def test_mss_respected_on_wire(sim):
    ca, cb, a, b, link = tcp_pair(sim, client_config=TcpConfig(mss=200))
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"z" * 1000)
    sim.run(until=5)
    assert bytes(data) == b"z" * 1000
    # No IP fragmentation should have occurred (segments fit the MTU).
    assert a.stats.fragments_created == 0


def test_bidirectional_data(sim):
    ca, cb, *_ = tcp_pair(sim)
    server_rx = bytearray()

    def on_conn(c):
        def rx(d):
            server_rx.extend(d)
            c.send(d.upper())
        c.on_receive = rx

    cb.listen(80, on_conn)
    client_rx = bytearray()
    conn = ca.connect("10.0.1.2", 80)
    conn.on_receive = client_rx.extend
    conn.on_established = lambda: conn.send(b"abc")
    sim.run(until=5)
    assert bytes(server_rx) == b"abc"
    assert bytes(client_rx) == b"ABC"


def test_nagle_coalesces_small_writes(sim):
    ca, cb, *_ = tcp_pair(sim, client_config=TcpConfig(nagle=True))
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)

    def burst():
        for _ in range(20):
            conn.send(b"k")

    conn.on_established = burst
    sim.run(until=5)
    assert bytes(data) == b"k" * 20
    # With Nagle, far fewer data segments than writes.
    data_segments = conn.stats.segments_sent
    assert data_segments < 20


def test_no_nagle_sends_every_write(sim):
    ca, cb, *_ = tcp_pair(sim, client_config=TcpConfig(nagle=False,
                                                       congestion_control=False))
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sent_before = [0]

    def burst():
        sent_before[0] = conn.stats.segments_sent
        for _ in range(10):
            conn.send(b"k")

    conn.on_established = burst
    sim.run(until=5)
    assert bytes(data) == b"k" * 10
    assert conn.stats.segments_sent - sent_before[0] >= 10


def test_push_flag_set_on_write_boundary(sim, ):
    ca, cb, a, b, link = tcp_pair(sim)
    seen_psh = []
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"hello", push=True)
    sim.run(until=2)
    # Verify via the tracer-free route: receiver got the data promptly.
    assert bytes(data) == b"hello"


# ----------------------------------------------------------------------
# Flow control
# ----------------------------------------------------------------------
def test_zero_window_stalls_then_probe_resumes(sim):
    ca, cb, *_ = tcp_pair(
        sim,
        client_config=TcpConfig(window_probe_interval=0.5),
        server_config=TcpConfig(recv_buffer=2048),
    )
    conns = []
    cb.listen(80, conns.append)  # server never reads: window will close
    conn = ca.connect("10.0.1.2", 80)
    payload = b"q" * 8000
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=10)
    server = conns[0]
    # The (SWS-clamped) advertised window has closed.
    assert server._advertised_window() == 0
    assert conn.snd_wnd == 0
    # Now the application starts draining; probes discover each opening.
    def drain():
        server.read()
        if server.rcv.bytes_received < 8000:
            sim.schedule(0.5, drain)

    drain()
    sim.run(until=120)
    assert server.rcv.bytes_received >= 8000
    assert conn.stats.zero_window_probes >= 1


def test_receiver_window_bounds_inflight(sim):
    ca, cb, *_ = tcp_pair(sim, server_config=TcpConfig(recv_buffer=1000))
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"r" * 50_000)
    sim.run(until=60)
    assert bytes(data) == b"r" * 50_000
    assert conn.flight_size <= 65535


# ----------------------------------------------------------------------
# Retransmission machinery
# ----------------------------------------------------------------------
def test_fast_retransmit_triggers_on_dupacks(sim):
    ca, cb, a, b, link = tcp_pair(sim, loss=BernoulliLoss(0.05), seed=11)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    payload = bytes(range(256)) * 128
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=120)
    assert bytes(data) == payload
    assert conn.stats.fast_retransmits >= 1


def test_no_fast_retransmit_when_disabled(sim):
    cfg = TcpConfig(fast_retransmit=False)
    ca, cb, *_ = tcp_pair(sim, loss=BernoulliLoss(0.05), seed=11,
                          client_config=cfg)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    payload = bytes(range(256)) * 64
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=240)
    assert bytes(data) == payload
    assert conn.stats.fast_retransmits == 0


def test_repacketization_coalesces_on_retransmit(sim):
    """Byte sequencing's payoff (§9): after many tiny writes are lost, the
    retransmission re-slices them into one MSS-sized segment."""
    loss = BernoulliLoss(1.0)
    cfg = TcpConfig(nagle=False, repacketize=True, congestion_control=False)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss, client_config=cfg)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.schedule(0.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=1)
    assert conn.state is TcpState.ESTABLISHED
    # Now lose everything, emit 10 tiny writes, then heal and watch one
    # coalesced retransmission carry them all.
    loss.rate = 1.0
    for _ in range(10):
        conn.send(b"x")
    sim.schedule(1.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=60)
    assert bytes(data) == b"x" * 10
    # The recovery retransmission(s) must have coalesced several writes.
    assert conn.stats.bytes_retransmitted >= 10
    assert conn.stats.segments_retransmitted < 10


def test_no_repacketization_resends_original_boundaries(sim):
    loss = BernoulliLoss(0.0)
    cfg = TcpConfig(nagle=False, repacketize=False, congestion_control=False)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss, client_config=cfg)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    loss.rate = 1.0
    for _ in range(5):
        conn.send(b"y")
    sim.schedule(5.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=120)
    assert bytes(data) == b"y" * 5
    # Each original tiny segment had to be resent on its own boundary:
    assert conn.stats.segments_retransmitted >= 5


def test_retransmit_exhaustion_closes_connection(sim):
    loss = BernoulliLoss(0.0)
    cfg = TcpConfig(max_retransmits=3)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss, client_config=cfg)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: None
    sim.run(until=1)
    loss.rate = 1.0
    conn.send(b"doomed")
    sim.run(until=600)
    assert conn.state is TcpState.CLOSED


def test_rtt_measured(sim):
    ca, cb, *_ = tcp_pair(sim, delay=0.05)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"m" * 100)
    sim.run(until=5)
    assert conn.rto.srtt is not None
    assert conn.rto.srtt >= 0.1  # at least 2x the one-way delay


# ----------------------------------------------------------------------
# Close / teardown
# ----------------------------------------------------------------------
def test_orderly_close_both_sides(sim):
    ca, cb, *_ = tcp_pair(sim, client_config=TcpConfig(msl=0.5),
                          server_config=TcpConfig(msl=0.5))
    conns = []

    def on_conn(c):
        conns.append(c)
        c.on_receive = lambda d: None
        c.on_close = c.close  # close when the peer closes

    cb.listen(80, on_conn)
    conn = ca.connect("10.0.1.2", 80)

    def send_and_close():
        conn.send(b"bye")
        conn.close()

    conn.on_established = send_and_close
    sim.run(until=60)
    assert conn.state is TcpState.CLOSED
    assert conns[0].state is TcpState.CLOSED


def test_fin_waits_for_buffered_data(sim):
    ca, cb, *_ = tcp_pair(sim, bandwidth=64_000)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)

    def send_then_close():
        conn.send(b"D" * 20_000)
        conn.close()

    conn.on_established = send_then_close
    sim.run(until=60)
    assert bytes(data) == b"D" * 20_000  # nothing truncated by close


def test_half_close_peer_can_still_send(sim):
    ca, cb, *_ = tcp_pair(sim)
    server_conns = []

    def on_conn(c):
        server_conns.append(c)
        c.on_receive = lambda d: None

    cb.listen(80, on_conn)
    client_rx = bytearray()
    conn = ca.connect("10.0.1.2", 80)
    conn.on_receive = client_rx.extend
    conn.on_established = conn.close  # client finishes immediately
    sim.run(until=2)
    server = server_conns[0]
    assert server.state is TcpState.CLOSE_WAIT
    server.send(b"still talking")   # data flows the other way
    sim.run(until=5)
    assert bytes(client_rx) == b"still talking"


def test_time_wait_then_closed(sim):
    cfg = TcpConfig(msl=1.0)
    ca, cb, *_ = tcp_pair(sim, client_config=cfg)
    conns = []

    def on_conn(c):
        conns.append(c)
        c.on_close = c.close

    cb.listen(80, on_conn)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = conn.close
    sim.run(until=1.5)
    assert conn.state in (TcpState.TIME_WAIT, TcpState.CLOSED)
    sim.run(until=10)
    assert conn.state is TcpState.CLOSED


def test_abort_sends_rst(sim):
    ca, cb, *_ = tcp_pair(sim)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    reset_seen = []
    conns[0].on_reset = lambda: reset_seen.append(1)
    conn.abort()
    sim.run(until=2)
    assert conn.state is TcpState.CLOSED
    assert conns[0].state is TcpState.CLOSED
    assert reset_seen == [1]


def test_send_after_close_raises(sim):
    ca, cb, *_ = tcp_pair(sim)
    accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    conn.close()
    with pytest.raises(ConnectionError):
        conn.send(b"late")


def test_congestion_window_collapses_on_timeout(sim):
    loss = BernoulliLoss(0.0)
    ca, cb, *_ = tcp_pair(sim, loss=loss)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"c" * 30_000)
    sim.run(until=3)
    grown = conn.cwnd
    assert grown > conn.snd_mss
    loss.rate = 1.0
    conn.send(b"c" * 1000)
    sim.run(until=30)
    loss.rate = 0.0
    assert conn.cwnd <= 2 * conn.snd_mss


def test_retransmitted_synack_does_not_reset_established_connection(sim):
    """Regression (found by hypothesis): when the client's handshake ACK is
    lost, the server retransmits its SYN-ACK into the client's ESTABLISHED
    state.  That wholly-old segment must be answered with a plain ACK —
    under a too-loose acceptability check its SYN bit trips the
    'SYN while synchronized' reset and aborts a healthy connection."""
    loss = BernoulliLoss(0.0)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    assert conn.state is TcpState.ESTABLISHED
    server = conns[0]
    # Forge the server's SYN-ACK retransmission arriving late.
    from repro.tcp.segment import FLAG_ACK, FLAG_SYN, TcpSegment
    stale = TcpSegment(
        src_port=80, dst_port=conn.local_port, seq=server.iss,
        ack=conn.snd_nxt, flags=FLAG_SYN | FLAG_ACK,
        window=server.config.recv_buffer, mss_option=server.config.mss)
    conn.segment_arrived(stale)
    assert conn.state is TcpState.ESTABLISHED  # shrugged off, not aborted
    # And the stream still works afterwards.
    conn.send(b"still alive")
    sim.run(until=3)
    assert bytes(data) == b"still alive"
