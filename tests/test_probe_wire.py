"""Fuzz + property tests for the path-probe wire format.

The probe responder binds a well-known UDP port on every enrolled host,
so its parser sits on the same attack surface as the transports: any
byte string can arrive there.  The contract is the narrowest possible —
:func:`~repro.obs.routing.decode_probe` either returns a valid
:class:`~repro.obs.routing.ProbeMessage` or raises
:class:`~repro.obs.routing.ProbeDecodeError`, and the responder-name
length byte is validated *before* any slice is taken, so a forged
length can never drive an allocation past the 64-byte cap.
"""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.obs.routing import (
    MAX_NAME,
    ProbeDecodeError,
    ProbeMessage,
    TYPE_PROBE,
    TYPE_REPLY,
    decode_probe,
    encode_probe,
)

_HEADER_SIZE = struct.calcsize("!BBHHId")


def _valid(kind=TYPE_REPLY, ident=7, seq=3, nonce=0xDEADBEEF,
           sent_at=12.5, responder="A0G0H0"):
    return ProbeMessage(kind=kind, ident=ident, seq=seq, nonce=nonce,
                        sent_at=sent_at, responder=responder)


@given(st.binary(max_size=512))
def test_decode_raises_only_probe_decode_error(data):
    try:
        message = decode_probe(data)
    except ProbeDecodeError:
        return
    # Anything that parses must survive a round trip unchanged.
    assert decode_probe(encode_probe(message)) == message


@given(
    kind=st.sampled_from([TYPE_PROBE, TYPE_REPLY]),
    ident=st.integers(0, 0xFFFF),
    seq=st.integers(0, 0xFFFF),
    nonce=st.integers(0, 0xFFFFFFFF),
    sent_at=st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
    responder=st.text(
        alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
        max_size=MAX_NAME),
)
def test_round_trip(kind, ident, seq, nonce, sent_at, responder):
    message = ProbeMessage(kind=kind, ident=ident, seq=seq, nonce=nonce,
                           sent_at=sent_at, responder=responder)
    assert decode_probe(encode_probe(message)) == message


def test_truncation_at_every_byte_rejected():
    wire = encode_probe(_valid())
    for cut in range(len(wire)):
        with pytest.raises(ProbeDecodeError):
            decode_probe(wire[:cut])


def test_trailing_garbage_rejected():
    wire = encode_probe(_valid())
    with pytest.raises(ProbeDecodeError):
        decode_probe(wire + b"\x00")


def test_bad_magic_rejected():
    wire = bytearray(encode_probe(_valid()))
    wire[0] ^= 0xFF
    with pytest.raises(ProbeDecodeError):
        decode_probe(bytes(wire))


def test_unknown_type_rejected():
    wire = bytearray(encode_probe(_valid()))
    wire[1] = 99
    with pytest.raises(ProbeDecodeError):
        decode_probe(bytes(wire))


def test_non_finite_timestamp_rejected():
    for bad in (math.nan, math.inf, -math.inf):
        wire = struct.pack("!BBHHId", 0xB6, TYPE_PROBE, 1, 1, 1, bad) + b"\x00"
        with pytest.raises(ProbeDecodeError):
            decode_probe(wire)


def test_forged_name_length_capped_before_allocation():
    # A length byte over the cap must be rejected by value, not by
    # noticing the payload ran short — 255 with 255 bytes actually
    # present still dies on the cap check.
    head = struct.pack("!BBHHId", 0xB6, TYPE_REPLY, 1, 1, 1, 0.0)
    wire = head + bytes([255]) + b"x" * 255
    with pytest.raises(ProbeDecodeError, match="over cap"):
        decode_probe(wire)


def test_name_exactly_at_cap_accepted():
    message = _valid(responder="n" * MAX_NAME)
    assert decode_probe(encode_probe(message)).responder == "n" * MAX_NAME


def test_name_over_cap_refused_at_encode():
    with pytest.raises(ValueError):
        encode_probe(_valid(responder="n" * (MAX_NAME + 1)))


def test_non_ascii_name_rejected():
    head = struct.pack("!BBHHId", 0xB6, TYPE_REPLY, 1, 1, 1, 0.0)
    wire = head + bytes([2]) + b"\xff\xfe"
    with pytest.raises(ProbeDecodeError):
        decode_probe(wire)


def test_header_size_is_minimum_wire_size():
    wire = encode_probe(_valid(responder=""))
    assert len(wire) == _HEADER_SIZE + 1
    assert decode_probe(wire).responder == ""
