"""Tests for the Host/Gateway/StreamSocket convenience API."""

import pytest

from repro import Internet
from repro.sockets.api import StreamSocket


def test_stream_socket_never_truncates_writes(simple_internet):
    net, h1, h2, core = simple_internet
    received = bytearray()

    def on_socket(sock):
        sock.on_data = received.extend

    h2.listen(4000, on_socket)
    sock = h1.connect(h2.address, 4000)
    big = bytes(range(256)) * 2000  # 512 000 B, far beyond the TCP buffer
    sock.write(big)
    sock.close()
    net.sim.run(until=net.sim.now + 300)
    assert bytes(received) == big


def test_stream_socket_write_before_established_is_queued(simple_internet):
    net, h1, h2, core = simple_internet
    received = bytearray()
    h2.listen(4000, lambda s: setattr(s, "on_data", received.extend))
    sock = h1.connect(h2.address, 4000)
    sock.write(b"early bird")  # connection still in SYN_SENT
    net.sim.run(until=net.sim.now + 5)
    assert bytes(received) == b"early bird"


def test_stream_socket_close_flushes_queue(simple_internet):
    net, h1, h2, core = simple_internet
    received = bytearray()
    h2.listen(4000, lambda s: setattr(s, "on_data", received.extend))
    sock = h1.connect(h2.address, 4000)
    sock.write(b"x" * 100_000)
    sock.close()  # close with bytes still queued app-side
    net.sim.run(until=net.sim.now + 120)
    assert len(received) == 100_000


def test_write_after_close_raises(simple_internet):
    net, h1, h2, core = simple_internet
    h2.listen(4000, lambda s: None)
    sock = h1.connect(h2.address, 4000)
    sock.close()
    with pytest.raises(ConnectionError):
        sock.write(b"too late")


def test_on_open_and_on_closed_fire(simple_internet):
    net, h1, h2, core = simple_internet
    events = []

    def serve(s):
        s.on_data = lambda d: None
        s.on_closed = s.close  # close our side when the peer closes

    h2.listen(4000, serve)
    sock = h1.connect(h2.address, 4000)
    sock.on_open = lambda: events.append("open")
    sock.on_closed = lambda: events.append("closed")
    net.sim.run(until=net.sim.now + 2)
    sock.close()
    net.sim.run(until=net.sim.now + 60)
    assert events[0] == "open"
    assert "closed" in events


def test_abort_discards_queue(simple_internet):
    net, h1, h2, core = simple_internet
    h2.listen(4000, lambda s: None)
    sock = h1.connect(h2.address, 4000)
    net.sim.run(until=net.sim.now + 2)
    sock.write(b"x" * 500_000)
    sock.abort()
    assert sock.pending_bytes == 0


def test_bytes_counters(simple_internet):
    net, h1, h2, core = simple_internet
    server_sockets = []

    def on_socket(sock):
        server_sockets.append(sock)
        sock.on_data = lambda d: sock.write(d)

    h2.listen(4000, on_socket)
    sock = h1.connect(h2.address, 4000)
    got = bytearray()
    sock.on_data = got.extend
    sock.write(b"ping")
    net.sim.run(until=net.sim.now + 5)
    assert sock.bytes_written == 4
    assert sock.bytes_received == 4
    assert server_sockets[0].bytes_received == 4


def test_host_attach_and_default_route():
    net = Internet(seed=0)
    h = net.host("H")
    iface = h.attach("eth0", "10.5.0.2", "10.5.0.0/24")
    assert iface.address == h.address
    # default_route requires a connected next hop
    h.default_route("10.5.0.1")
    route = h.node.routes.lookup("203.0.113.1")
    assert str(route.next_hop) == "10.5.0.1"


def test_gateway_is_forwarding_node():
    net = Internet(seed=0)
    g = net.gateway("G")
    assert g.node.is_gateway
