"""Tests for the datagram fast path (goal 5: cost effectiveness).

Three layers are covered, each against its retained reference
implementation:

* checksum — the vectorized big-integer fold must be bit-identical to the
  per-word reference loop on every input (differential/property tests);
* forwarding — the generation-stamped destination cache must never return
  a withdrawn or shadowed route, and must agree with the uncached scan;
* engine — lazy-deletion compaction must shed cancelled husks without
  changing firing order, and ``pending`` must stay exact.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ip.address import Address, Prefix
from repro.ip.checksum import (
    internet_checksum,
    internet_checksum_reference,
    ones_complement_sum,
    verify_checksum,
    verify_checksum_reference,
)
from repro.ip.forwarding import NoRouteError, Route, RouteTable
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Checksum: vectorized vs reference
# ----------------------------------------------------------------------
@given(st.binary(min_size=0, max_size=4096))
def test_checksum_differential_random(data):
    assert internet_checksum(data) == internet_checksum_reference(data)
    assert verify_checksum(data) == verify_checksum_reference(data)


def test_checksum_differential_exhaustive_small_lengths():
    rng = random.Random(1988)
    for length in range(0, 131):  # crosses the 64-bit fold threshold
        data = bytes(rng.randrange(256) for _ in range(length))
        assert internet_checksum(data) == internet_checksum_reference(data), length
        assert verify_checksum(data) == verify_checksum_reference(data), length


def test_checksum_differential_boundary_sizes():
    rng = random.Random(5)
    for size in (1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
                 127, 128, 129, 1499, 1500, 1501, 4095, 4096, 65535, 65536):
        data = bytes(rng.randrange(256) for _ in range(size))
        assert internet_checksum(data) == internet_checksum_reference(data), size


def test_checksum_odd_length_pads_with_zero():
    # Trailing zero byte must be equivalent to RFC 1071 padding.
    assert internet_checksum(b"\x12\x34\x56") == internet_checksum(b"\x12\x34\x56\x00")
    assert internet_checksum(b"\x12\x34\x56") == internet_checksum_reference(b"\x12\x34\x56")


def test_checksum_all_zero_input():
    for length in (0, 1, 2, 20, 1500):
        data = b"\x00" * length
        assert internet_checksum(data) == 0xFFFF
        assert internet_checksum(data) == internet_checksum_reference(data)
        # An all-zero buffer does NOT verify (sum 0, not 0xFFFF)...
        assert verify_checksum(data) == verify_checksum_reference(data)


def test_checksum_computed_zero_udp_case():
    # Words summing to 0xFFFF give a computed checksum of 0 — the case UDP
    # transmits as 0xFFFF.  Both implementations must agree it is 0.
    for data in (b"\xff\xff", b"\xf0\x0f\x0f\xf0", b"\xff\xfe\x00\x01"):
        assert internet_checksum(data) == 0
        assert internet_checksum_reference(data) == 0


def test_checksum_verify_round_trip():
    rng = random.Random(42)
    for _ in range(50):
        body = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
        if len(body) % 2:
            body += b"\x00"  # keep the checksum on a 16-bit boundary
        whole = body + internet_checksum(body).to_bytes(2, "big")
        assert verify_checksum(whole)
        assert verify_checksum_reference(whole)


def test_ones_complement_sum_range():
    rng = random.Random(7)
    for _ in range(100):
        data = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 300)))
        s = ones_complement_sum(data)
        assert 0 <= s <= 0xFFFF


# ----------------------------------------------------------------------
# Forwarding: destination cache
# ----------------------------------------------------------------------
class FakeInterface:
    def __init__(self, name="eth0"):
        self.name = name


def route(prefix: str, iface=None, **kw) -> Route:
    return Route(prefix=Prefix.parse(prefix), interface=iface or FakeInterface(), **kw)


@pytest.fixture
def table():
    return RouteTable()


def test_cache_hit_is_same_route(table):
    r = route("10.1.0.0/16")
    table.install(r)
    assert table.lookup("10.1.2.3") is r
    assert table.lookup("10.1.2.3") is r
    assert table.cache_hits >= 1


def test_cache_never_returns_withdrawn_route(table):
    specific = route("10.1.2.0/24")
    general = route("10.1.0.0/16")
    table.install(specific)
    table.install(general)
    assert table.lookup("10.1.2.3") is specific
    assert table.withdraw(specific.prefix)
    # The cached /24 entry must not survive the withdrawal.
    assert table.lookup("10.1.2.3") is general
    assert table.withdraw(general.prefix)
    with pytest.raises(NoRouteError):
        table.lookup("10.1.2.3")


def test_cache_sees_more_specific_install(table):
    general = route("10.0.0.0/8")
    table.install(general)
    assert table.lookup("10.1.2.3") is general  # now cached
    specific = route("10.1.2.0/24")
    table.install(specific)
    assert table.lookup("10.1.2.3") is specific


def test_withdraw_by_source_invalidates_cache(table):
    r_rip = route("10.1.0.0/16", source="rip")
    r_static = route("10.0.0.0/8", source="static")
    table.install(r_rip)
    table.install(r_static)
    assert table.lookup("10.1.9.9") is r_rip
    assert table.withdraw_by_source("rip") == 1
    assert table.lookup("10.1.9.9") is r_static


def test_failed_withdraw_does_not_bump_generation(table):
    table.install(route("10.1.0.0/16"))
    gen = table.generation
    assert not table.withdraw(Prefix.parse("192.168.0.0/24"))
    assert table.withdraw_by_source("nonexistent") == 0
    assert table.generation == gen


def test_cached_lookup_matches_uncached_on_random_tables():
    rng = random.Random(1988)
    iface = FakeInterface()
    table = RouteTable()
    prefixes = []
    for _ in range(200):
        length = rng.choice((8, 12, 16, 20, 24, 28, 32))
        addr = rng.randrange(1 << 32)
        p = Prefix.of(Address(addr), length)
        try:
            table.install(Route(prefix=p, interface=iface))
            prefixes.append(p)
        except Exception:
            pass
    probes = [Address(rng.randrange(1 << 32)) for _ in range(300)]
    # Bias half the probes to land inside installed prefixes.
    for i in range(0, len(probes), 2):
        p = rng.choice(prefixes)
        host = rng.randrange(1 << (32 - p.length)) if p.length < 32 else 0
        probes[i] = Address(int(p.network) | host)
    for dst in probes * 2:  # repeat to exercise cache hits
        try:
            cached = table.lookup(dst)
        except NoRouteError:
            cached = None
        try:
            uncached = table.lookup_uncached(dst)
        except NoRouteError:
            uncached = None
        assert cached is uncached


def test_cache_bounded(table):
    table.install(route("0.0.0.0/0"))
    for i in range(table.CACHE_MAX + 10):
        table.lookup(Address((10 << 24) | i))
    assert len(table._cache) <= table.CACHE_MAX


def test_cache_interleaved_mutation_and_lookup(table):
    """Generation stamping under an install/lookup/withdraw churn."""
    r16 = route("10.1.0.0/16")
    r24 = route("10.1.2.0/24")
    table.install(r16)
    for _ in range(3):
        assert table.lookup("10.1.2.3") is r16
        table.install(r24)
        assert table.lookup("10.1.2.3") is r24
        table.withdraw(r24.prefix)
        assert table.lookup("10.1.2.3") is r16


# ----------------------------------------------------------------------
# Engine: lazy-deletion compaction and exact pending
# ----------------------------------------------------------------------
def test_compaction_sheds_husks():
    sim = Simulator()
    handles = [sim.schedule(1.0 + i * 1e-3, lambda: None) for i in range(1000)]
    fired = []
    sim.schedule(5.0, lambda: fired.append("keep"))
    for h in handles:
        h.cancel()
    assert sim.compactions >= 1
    assert sim.queue_size < 100  # husks were rebuilt away, not retained
    assert sim.pending == 1
    sim.run()
    assert fired == ["keep"]


def test_no_compaction_below_threshold():
    sim = Simulator()
    handles = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    for h in handles:
        h.cancel()
    assert sim.compactions == 0  # queue too small to bother
    assert sim.pending == 0


def test_firing_order_preserved_across_compaction():
    sim = Simulator()
    fired = []
    keep = []
    cancel = []
    for i in range(200):
        t = 1.0 + i * 0.01
        if i % 3 == 0:
            keep.append((t, sim.schedule(t, lambda t=t: fired.append(t))))
        else:
            cancel.append(sim.schedule(t, lambda t=t: fired.append(("BAD", t))))
    for h in cancel:
        h.cancel()
    assert sim.compactions >= 1
    sim.run()
    assert fired == [t for t, _ in keep]
    assert fired == sorted(fired)


def test_pending_exact_under_churn():
    sim = Simulator()
    rng = random.Random(3)
    live = {}
    next_id = 0
    for step in range(2000):
        op = rng.random()
        if op < 0.5 or not live:
            h = sim.schedule(rng.uniform(0, 100), lambda: None)
            live[next_id] = h
            next_id += 1
        elif op < 0.85:
            key = rng.choice(list(live))
            live.pop(key).cancel()
        else:
            if sim.step():
                # drop whichever handle fired
                live = {k: h for k, h in live.items() if h.active}
        assert sim.pending == len(live), step
    assert sim.pending == len(live)


def test_run_until_ignores_cancelled_head():
    """A cancelled husk before ``until`` must not let later events fire."""
    sim = Simulator()
    fired = []
    early = sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(100.0, lambda: fired.append("late"))
    early.cancel()
    sim.run(until=10.0)
    assert fired == []
    assert sim.now == 10.0
    sim.run(until=200.0)
    assert fired == ["late"]


def test_run_until_with_only_husks_advances_clock():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    h.cancel()
    assert sim.run(until=5.0) == 5.0


def test_cancel_counted_once():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    h.cancel()  # double-cancel must not double-count
    assert sim.pending == 1


def test_cancel_after_fire_does_not_corrupt_pending():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.step()
    h.cancel()  # no-op: already fired
    assert sim.pending == 1
    assert sim.step()
    assert not sim.step()
    assert sim.pending == 0
