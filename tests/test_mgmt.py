"""Tests for autonomous systems and inter-AS policy (goal 4)."""

import pytest

from repro.ip.address import Prefix
from repro.mgmt.policy import (
    all_of,
    allow_prefixes,
    deny_prefixes,
    max_path_length,
    no_transit,
)


P = Prefix.parse


def test_no_transit_exports_only_own_routes():
    policy = no_transit(local_as=5)
    assert policy(P("10.0.0.0/8"), (5,), 9)
    assert not policy(P("10.0.0.0/8"), (5, 3), 9)
    assert not policy(P("10.0.0.0/8"), (3,), 9)


def test_allow_prefixes():
    policy = allow_prefixes([P("10.0.0.0/8")])
    assert policy(P("10.1.0.0/16"), (1,), 2)
    assert not policy(P("192.168.0.0/16"), (1,), 2)


def test_deny_prefixes():
    policy = deny_prefixes([P("10.99.0.0/16")])
    assert policy(P("10.1.0.0/16"), (1,), 2)
    assert not policy(P("10.99.1.0/24"), (1,), 2)


def test_max_path_length():
    policy = max_path_length(2)
    assert policy(P("10.0.0.0/8"), (1, 2), 3)
    assert not policy(P("10.0.0.0/8"), (1, 2, 3), 4)


def test_all_of_conjunction():
    policy = all_of(max_path_length(2), deny_prefixes([P("10.99.0.0/16")]))
    assert policy(P("10.1.0.0/16"), (1,), 2)
    assert not policy(P("10.99.0.0/16"), (1,), 2)
    assert not policy(P("10.1.0.0/16"), (1, 2, 3), 4)


def test_autonomous_system_wiring(sim):
    from repro.ip.address import Address
    from repro.ip.node import Node
    from repro.mgmt.autonomous_system import AutonomousSystem
    from repro.netlayer.link import Interface, PointToPointLink
    from repro.udp.udp import UdpStack

    as1 = AutonomousSystem(number=1, name="one", block=P("10.1.0.0/16"))
    g = Node("G", sim, is_gateway=True)
    g.add_interface(Interface("g0", Address("10.1.0.1"), P("10.1.0.0/24")))
    igp = as1.add_gateway(g)
    assert igp in as1.igps
    assert g in as1.gateways
    assert as1.igp_message_bytes >= 0
    assert "AS1" in repr(as1)
