"""Unit tests for deterministic random streams."""

from repro.sim.rand import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=1).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    streams = RandomStreams(seed=1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x").random()
    b = RandomStreams(seed=2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_consuming_one_stream_does_not_perturb_another():
    s1 = RandomStreams(seed=9)
    ref = [s1.stream("b").random() for _ in range(5)]

    s2 = RandomStreams(seed=9)
    for _ in range(100):
        s2.stream("a").random()  # heavy use of an unrelated stream
    got = [s2.stream("b").random() for _ in range(5)]
    assert got == ref


def test_fork_independent_of_parent():
    parent = RandomStreams(seed=3)
    child = parent.fork("child")
    assert parent.stream("x").random() != child.stream("x").random()


def test_fork_deterministic():
    a = RandomStreams(seed=3).fork("c").stream("x").random()
    b = RandomStreams(seed=3).fork("c").stream("x").random()
    assert a == b


def test_exponential_interarrivals_positive():
    streams = RandomStreams(seed=5)
    gen = streams.exponential_interarrivals(10.0, "arrivals")
    samples = [next(gen) for _ in range(100)]
    assert all(s > 0 for s in samples)
    # Mean should be near 1/rate.
    assert 0.05 < sum(samples) / len(samples) < 0.2


def test_convenience_draws():
    streams = RandomStreams(seed=5)
    assert 1.0 <= streams.uniform(1.0, 2.0) <= 2.0
    assert streams.expovariate(1.0) > 0
    assert streams.choice([1, 2, 3]) in (1, 2, 3)
