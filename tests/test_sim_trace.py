"""Unit tests for the tracer."""

from repro.sim.trace import NullTracer, Tracer


def test_log_and_query():
    tracer = Tracer()
    tracer.log(1.0, "tcp", "H1", "retransmit", "seq=5")
    tracer.log(2.0, "ip", "G1", "frag")
    assert tracer.count(component="tcp") == 1
    assert tracer.count(node="G1") == 1
    assert tracer.count(event="retransmit") == 1
    assert len(tracer) == 2


def test_filters_combine():
    tracer = Tracer()
    tracer.log(1.0, "tcp", "H1", "retransmit")
    tracer.log(2.0, "tcp", "H2", "retransmit")
    assert tracer.count(component="tcp", node="H1") == 1


def test_capacity_evicts_oldest():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.log(float(i), "x", "n", "e")
    assert len(tracer) == 2
    assert tracer.dropped == 3
    # A true ring keeps the *newest* records: after a failure, the tail of
    # the trace is what matters, so the oldest records are the ones evicted.
    assert [r.time for r in tracer.records()] == [3.0, 4.0]


def test_tail_returns_most_recent():
    tracer = Tracer(capacity=10)
    for i in range(6):
        tracer.log(float(i), "x", "n", "e")
    assert [r.time for r in tracer.tail(3)] == [3.0, 4.0, 5.0]
    assert tracer.tail(0) == []
    assert len(tracer.tail(100)) == 6


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.log(1.0, "x", "n", "e")
    assert len(tracer) == 0


def test_null_tracer_is_silent():
    tracer = NullTracer()
    tracer.log(1.0, "x", "n", "e")
    assert len(tracer) == 0


def test_clear_resets():
    tracer = Tracer(capacity=1)
    tracer.log(1.0, "x", "n", "e")
    tracer.log(2.0, "x", "n", "e")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_sink_sees_all_records_even_past_capacity():
    seen = []
    tracer = Tracer(capacity=1)
    tracer.add_sink(seen.append)
    tracer.log(1.0, "x", "n", "e")
    tracer.log(2.0, "x", "n", "e")
    assert len(seen) == 2


def test_records_preserve_fields():
    tracer = Tracer()
    tracer.log(1.5, "tcp", "H1", "fin-sent", "detail")
    record = tracer.records()[0]
    assert record.time == 1.5
    assert record.component == "tcp"
    assert record.node == "H1"
    assert record.event == "fin-sent"
    assert record.detail == "detail"


def test_iteration():
    tracer = Tracer()
    tracer.log(1.0, "a", "n", "e")
    tracer.log(2.0, "b", "n", "e")
    assert [r.component for r in tracer] == ["a", "b"]


# ----------------------------------------------------------------------
# Sink isolation (regression: a raising sink used to abort log() *before*
# the record reached the ring, so the post-mortem excerpt lost exactly the
# records surrounding the failure being debugged)
# ----------------------------------------------------------------------
def test_raising_sink_does_not_lose_the_record():
    tracer = Tracer()

    def bad_sink(record):
        raise RuntimeError("sink exploded")

    tracer.add_sink(bad_sink)
    tracer.log(1.0, "x", "n", "e")
    assert len(tracer) == 1          # ring got the record anyway
    assert tracer.sink_errors == 1   # and the failure was counted


def test_raising_sink_does_not_starve_other_sinks():
    seen = []
    tracer = Tracer()
    tracer.add_sink(lambda r: (_ for _ in ()).throw(RuntimeError()))
    tracer.add_sink(seen.append)
    tracer.log(1.0, "x", "n", "e")
    tracer.log(2.0, "x", "n", "e")
    assert len(seen) == 2
    assert tracer.sink_errors == 2


def test_clear_resets_sink_errors():
    tracer = Tracer()
    tracer.add_sink(lambda r: (_ for _ in ()).throw(RuntimeError()))
    tracer.log(1.0, "x", "n", "e")
    tracer.clear()
    assert tracer.sink_errors == 0
