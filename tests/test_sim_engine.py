"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]


def test_same_time_events_fire_fifo(sim):
    order = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_time_ties(sim):
    order = []
    sim.schedule(1.0, lambda: order.append("low"), priority=5)
    sim.schedule(1.0, lambda: order.append("high"), priority=0)
    sim.run()
    assert order == ["high", "low"]


def test_run_until_stops_clock_at_limit(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(1))
    sim.schedule(15.0, lambda: fired.append(2))
    end = sim.run(until=10.0)
    assert fired == [1]
    assert end == 10.0
    assert sim.now == 10.0


def test_events_at_exact_until_fire(sim):
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until=10.0)
    assert fired == [1]


def test_remaining_events_fire_on_second_run(sim):
    fired = []
    sim.schedule(15.0, lambda: fired.append(1))
    sim.run(until=10.0)
    assert fired == []
    sim.run(until=20.0)
    assert fired == [1]


def test_cancel_prevents_firing(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_after_firing_is_noop(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    handle.cancel()  # must not raise
    assert fired == [1]


def test_handle_reports_activity(sim):
    handle = sim.schedule(1.0, lambda: None)
    assert handle.active
    handle.cancel()
    assert not handle.active


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nan_time_rejected(sim):
    with pytest.raises(SimulationError):
        sim.call_at(math.nan, lambda: None)


def test_schedule_in_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(1.0, lambda: None)


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("nested"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "nested"]


def test_zero_delay_event_fires_at_same_time(sim):
    times = []

    def outer():
        sim.schedule(0.0, lambda: times.append(sim.now))

    sim.schedule(2.0, outer)
    sim.run()
    assert times == [2.0]


def test_stop_halts_run(sim):
    fired = []

    def stopper():
        fired.append(1)
        sim.stop()

    sim.schedule(1.0, stopper)
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]


def test_max_events_guard(sim):
    def forever():
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(until=1e9, max_events=1000)


def test_max_events_limit_is_exact(sim):
    # Regression: the guard used to overshoot (checked after firing), so a
    # run could process max_events + 1.  The contract is exact: exactly
    # max_events fire, then the still-due next event raises.
    fired = []

    def forever():
        fired.append(sim.now)
        sim.schedule(0.001, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(until=1e9, max_events=1000)
    assert len(fired) == 1000
    assert sim.events_processed == 1000


def test_max_events_not_triggered_by_exact_fit(sim):
    # A run that needs exactly max_events events completes cleanly.
    for i in range(50):
        sim.schedule(i * 0.1, lambda: None)
    sim.run(max_events=50)
    assert sim.events_processed == 50


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(i * 0.1, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_excludes_cancelled(sim):
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.pending == 1


def test_trace_callback_invoked():
    seen = []
    sim = Simulator(trace=lambda t, label: seen.append((t, label)))
    sim.schedule(1.0, lambda: None, label="hello")
    sim.run()
    assert seen == [(1.0, "hello")]


def test_active_false_after_firing_at_boundary_time(sim):
    """Regression: an event that fired at time == now must not be active."""
    handle = sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert sim.now == handle.time == 1.0
    assert not handle.active  # fired; clock equality must not resurrect it


def test_active_true_for_unfired_event_at_same_timestamp(sim):
    h1 = sim.schedule(1.0, lambda: None)
    h2 = sim.schedule(1.0, lambda: None)
    sim.step()  # fires h1, clock now == 1.0 == h2.time
    assert not h1.active
    assert h2.active  # still queued, must remain cancellable


def test_cancel_at_boundary_prevents_second_event(sim):
    fired = []
    sim.schedule(1.0, lambda: h2.cancel())
    h2 = sim.schedule(1.0, lambda: fired.append("h2"))
    sim.run()
    assert fired == []
