"""Unit and property tests for TCP segments and sequence arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.ip.address import Address
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_SYN,
    SegmentError,
    TcpSegment,
    seq_add,
    seq_ge,
    seq_gt,
    seq_le,
    seq_lt,
    seq_sub,
)

A = Address("10.0.1.1")
B = Address("10.0.2.2")


# ----------------------------------------------------------------------
# Sequence arithmetic (the §9 byte-numbering substrate)
# ----------------------------------------------------------------------
def test_seq_add_wraps():
    assert seq_add(0xFFFFFFFF, 1) == 0
    assert seq_add(0xFFFFFFF0, 0x20) == 0x10


def test_seq_sub_signed_distance():
    assert seq_sub(5, 3) == 2
    assert seq_sub(3, 5) == -2
    assert seq_sub(0, 0xFFFFFFFF) == 1  # wrapped: 0 is after max


def test_comparisons_across_wrap():
    near_max = 0xFFFFFF00
    assert seq_lt(near_max, 5)       # 5 is "after" the wrap
    assert seq_gt(5, near_max)
    assert seq_le(near_max, near_max)
    assert seq_ge(5, near_max)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0x7FFFFFFE))
def test_add_then_sub_round_trip(seq, delta):
    assert seq_sub(seq_add(seq, delta), seq) == delta


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=1, max_value=0x7FFFFFFE))
def test_lt_consistent_with_sub(seq, delta):
    later = seq_add(seq, delta)
    assert seq_lt(seq, later)
    assert not seq_lt(later, seq)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_round_trip_basic():
    seg = TcpSegment(src_port=1234, dst_port=80, seq=1000, ack=2000,
                     flags=FLAG_ACK | FLAG_PSH, window=4096,
                     payload=b"data here", urgent=7)
    parsed = TcpSegment.from_bytes(A, B, seg.to_bytes(A, B))
    assert parsed == seg


def test_syn_with_mss_option():
    seg = TcpSegment(src_port=1, dst_port=2, seq=99, flags=FLAG_SYN,
                     window=8192, mss_option=1460)
    parsed = TcpSegment.from_bytes(A, B, seg.to_bytes(A, B))
    assert parsed.syn
    assert parsed.mss_option == 1460


def test_no_option_parses_as_none():
    seg = TcpSegment(src_port=1, dst_port=2, seq=0, flags=FLAG_ACK)
    parsed = TcpSegment.from_bytes(A, B, seg.to_bytes(A, B))
    assert parsed.mss_option is None


def test_checksum_detects_payload_corruption():
    wire = bytearray(TcpSegment(src_port=1, dst_port=2, seq=0,
                                payload=b"hello").to_bytes(A, B))
    wire[-1] ^= 0x01
    with pytest.raises(SegmentError):
        TcpSegment.from_bytes(A, B, bytes(wire))


def test_checksum_covers_addresses():
    wire = TcpSegment(src_port=1, dst_port=2, seq=0,
                      payload=b"hello").to_bytes(A, B)
    with pytest.raises(SegmentError):
        TcpSegment.from_bytes(A, Address("10.0.2.3"), wire)


def test_short_segment_rejected():
    with pytest.raises(SegmentError):
        TcpSegment.from_bytes(A, B, b"\x00" * 10)


def test_seq_space_counts_syn_and_fin():
    assert TcpSegment(src_port=1, dst_port=2, seq=0,
                      flags=FLAG_SYN).seq_space == 1
    assert TcpSegment(src_port=1, dst_port=2, seq=0,
                      flags=FLAG_FIN, payload=b"ab").seq_space == 3
    assert TcpSegment(src_port=1, dst_port=2, seq=0,
                      payload=b"ab").seq_space == 2


def test_end_seq():
    seg = TcpSegment(src_port=1, dst_port=2, seq=0xFFFFFFFE,
                     payload=b"abcd")
    assert seg.end_seq == 2  # wrapped


def test_flag_names():
    seg = TcpSegment(src_port=1, dst_port=2, seq=0,
                     flags=FLAG_SYN | FLAG_ACK)
    assert "SYN" in seg.flag_names() and "ACK" in seg.flag_names()


@given(src_port=st.integers(min_value=0, max_value=0xFFFF),
       dst_port=st.integers(min_value=0, max_value=0xFFFF),
       seq=st.integers(min_value=0, max_value=0xFFFFFFFF),
       ack=st.integers(min_value=0, max_value=0xFFFFFFFF),
       flags=st.integers(min_value=0, max_value=0x3F),
       window=st.integers(min_value=0, max_value=0xFFFF),
       payload=st.binary(max_size=256),
       mss=st.one_of(st.none(), st.integers(min_value=1, max_value=0xFFFF)))
def test_round_trip_property(src_port, dst_port, seq, ack, flags, window,
                             payload, mss):
    seg = TcpSegment(src_port=src_port, dst_port=dst_port, seq=seq, ack=ack,
                     flags=flags, window=window, payload=payload,
                     mss_option=mss)
    parsed = TcpSegment.from_bytes(A, B, seg.to_bytes(A, B))
    assert parsed == seg
