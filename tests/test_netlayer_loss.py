"""Unit tests for loss models."""

import random

import pytest

from repro.netlayer.loss import BernoulliLoss, GilbertElliottLoss, NoLoss


def test_no_loss_never_loses():
    model = NoLoss()
    rng = random.Random(0)
    assert not any(model.lose(rng, 100) for _ in range(1000))


def test_bernoulli_zero_never_loses():
    model = BernoulliLoss(0.0)
    rng = random.Random(0)
    assert not any(model.lose(rng, 100) for _ in range(1000))


def test_bernoulli_one_always_loses():
    model = BernoulliLoss(1.0)
    rng = random.Random(0)
    assert all(model.lose(rng, 100) for _ in range(100))


def test_bernoulli_rate_approximate():
    model = BernoulliLoss(0.2)
    rng = random.Random(7)
    losses = sum(model.lose(rng, 100) for _ in range(20_000))
    assert 0.17 < losses / 20_000 < 0.23


@pytest.mark.parametrize("rate", [-0.1, 1.1])
def test_bernoulli_rejects_bad_rate(rate):
    with pytest.raises(ValueError):
        BernoulliLoss(rate)


def test_gilbert_elliott_steady_state_formula():
    model = GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.3,
                               loss_good=0.0, loss_bad=0.5)
    expected = (0.1 / 0.4) * 0.5
    assert model.steady_state_loss == pytest.approx(expected)


def test_gilbert_elliott_empirical_rate_near_steady_state():
    model = GilbertElliottLoss(p_good_to_bad=0.05, p_bad_to_good=0.25,
                               loss_good=0.0, loss_bad=0.5)
    rng = random.Random(3)
    n = 50_000
    losses = sum(model.lose(rng, 100) for _ in range(n))
    assert losses / n == pytest.approx(model.steady_state_loss, rel=0.2)


def test_gilbert_elliott_losses_are_bursty():
    """Burst loss produces longer loss runs than Bernoulli at equal rate."""
    ge = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.2,
                            loss_good=0.0, loss_bad=0.8)
    rate = ge.steady_state_loss
    rng1, rng2 = random.Random(9), random.Random(9)
    bern = BernoulliLoss(rate)

    def max_run(model, rng, n=20_000):
        longest = run = 0
        for _ in range(n):
            if model.lose(rng, 100):
                run += 1
                longest = max(longest, run)
            else:
                run = 0
        return longest

    assert max_run(ge, rng1) > max_run(bern, rng2)


def test_gilbert_elliott_rejects_bad_probability():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_good_to_bad=1.5)


def test_gilbert_elliott_repr_mentions_parameters():
    model = GilbertElliottLoss()
    assert "p_gb" in repr(model)
