"""Edge-case tests across modules: the corners the main suites skip."""

import pytest

from repro.ip.address import Address, AddressError, Prefix
from repro.metrics.stats import RunningStats
from repro.sim.engine import SimulationError, Simulator
from repro.tcp.buffers import SendBuffer
from repro.tcp.packet_tcp import PacketTpConfig
from repro.apps.voice import TcpVoiceReceiver


def test_prefix_slash32_hosts():
    p = Prefix.parse("10.0.0.5/32")
    assert list(p.hosts()) == [Address("10.0.0.5")]
    assert p.broadcast == Address("10.0.0.5")


def test_prefix_zero_length_mask():
    p = Prefix.parse("0.0.0.0/0")
    assert p.netmask == Address("0.0.0.0")
    assert p.covers(Prefix.parse("255.0.0.0/8"))


def test_address_comparison_with_garbage_string():
    # Equality against a non-address string is False, not an exception.
    assert (Address("1.2.3.4") == "not an address") is False


def test_running_stats_without_samples_summary():
    rs = RunningStats(keep_samples=False)
    for v in (1.0, 2.0, 3.0):
        rs.add(v)
    s = rs.summary()
    assert s.count == 3
    assert s.mean == pytest.approx(2.0)
    assert s.p50 == pytest.approx(2.0)  # falls back to the mean


def test_send_buffer_read_before_base_raises():
    buf = SendBuffer(base_seq=100)
    buf.write(b"abc")
    buf.ack_to(102)
    with pytest.raises(ValueError):
        buf.read(100, 2)  # already acked away


def test_simulator_run_with_empty_queue_returns_now():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0 or sim.run() == 0.0


def test_simulator_infinite_until_with_empty_queue():
    sim = Simulator()
    end = sim.run()
    assert end == 0.0


def test_call_at_exact_now_is_legal():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: sim.call_at(sim.now, lambda: fired.append(1)))
    sim.run()
    assert fired == [1]


def test_packet_tp_config_defaults_sane():
    cfg = PacketTpConfig()
    assert cfg.max_packet_payload > 0
    assert cfg.window_packets > 0


def test_tcp_voice_receiver_reassembles_across_chunk_boundaries(simple_internet):
    """Frames split arbitrarily by TCP segmentation still parse."""
    net, h1, h2, core = simple_internet
    receiver = TcpVoiceReceiver(h2, 6000, playout_deadline=10.0)
    import struct
    sock = h1.connect(h2.address, 6000)
    frame_size = 24
    frames = []
    for seq in range(5):
        frames.append(struct.pack("!Id", seq, 0.0) + b"\x00" * (frame_size - 12))
    payload = struct.pack("!I", frame_size) + b"".join(frames)

    def feed():
        # Deliberately tiny writes to split frames across segments.
        for i in range(0, len(payload), 7):
            sock.write(payload[i:i + 7])

    sock.on_open = feed
    for seq in range(5):
        receiver.meter.sent(seq, net.sim.now)
    net.sim.run(until=net.sim.now + 10)
    assert receiver.meter.received_count == 5


def test_internet_kit_rejects_loss_on_x25():
    from repro import Internet
    from repro.netlayer.loss import BernoulliLoss
    net = Internet(seed=0)
    a, b = net.gateway("A"), net.gateway("B")
    with pytest.raises(ValueError):
        net.connect(a, b, media="x25", loss=BernoulliLoss(0.1))
