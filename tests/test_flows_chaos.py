"""Chaos-side tests for the flows subsystem: the soft-state invariant
monitor, crashed-gateway silence with a scheduler attached, the flows MIB
subtree, and the three-way FIFO/VC/DRR race campaign."""

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.chaos import BlackoutDeliveryMonitor, FaultCampaign, GatewayCrash
from repro.chaos.flows import FlowStateMonitor, run_flows_campaign
from repro.flows.flowspec import FlowSpec
from repro.flows.gateway import FlowGateway, ReservationSender, accept_reservations
from repro.ip.packet import PROTO_UDP
from repro.netmgmt.mib import build_mib


def bottleneck_net(mode="drr"):
    """The shared two-senders-one-slow-egress preset (seed 13)."""
    net = Internet(seed=13)
    h1, h2, sink_host = net.host("H1"), net.host("H2"), net.host("SINK")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(h2, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=200_000, delay=0.005)
    net.start_routing()
    net.converge(settle=8.0)
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    fgw = FlowGateway(g.node, egress, 200_000, mode=mode)
    return net, h1, h2, sink_host, fgw


def _reserved_voiceish_flow(net, h1, sink_host, *, lifetime=5.0,
                            refresh_interval=1.0):
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=lifetime)
    sender = ReservationSender(h1, spec, refresh_interval=refresh_interval)
    return spec, sender


# ----------------------------------------------------------------------
# Crashed-means-silent, with the scheduler in the data path
# ----------------------------------------------------------------------
def test_crashed_gateway_silent_under_campaign():
    """Regression: the serve loop used to keep draining a crashed
    gateway's queues onto the wire.  The blackout monitor's transmit
    check must stay green with a saturated scheduler attached."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    UdpSink(sink_host, 9000)
    CbrSource(h1, sink_host.address, 9000, size=500, rate=100.0,
              duration=12.0)
    now = net.sim.now
    campaign = FaultCampaign(net, [GatewayCrash("G", now + 2.0, 2.0)],
                             monitors=[BlackoutDeliveryMonitor()],
                             name="crash-silent")
    report = campaign.run(until=now + 12.0)
    assert report.ok, [v.detail for m in campaign.monitors
                       for v in m.violations]
    assert fgw.state_losses == 1
    assert fgw.packets_flushed_on_crash > 0
    assert fgw.scheduler.queued_packets >= 0


# ----------------------------------------------------------------------
# FlowStateMonitor
# ----------------------------------------------------------------------
def test_flow_state_monitor_records_reinstall():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    _reserved_voiceish_flow(net, h1, sink_host)
    now = net.sim.now
    monitor = FlowStateMonitor(refresh_interval=1.0)
    campaign = FaultCampaign(net, [GatewayCrash("G", now + 3.0, 2.0)],
                             monitors=[monitor], name="reinstall")
    report = campaign.run(until=now + 12.0)
    assert report.ok
    assert len(monitor.reinstalls) == 1
    record = monitor.reinstalls[0]
    assert record["gateway"] == "G"
    assert 0.0 <= record["delay"] <= 1.0 + monitor.grace


def test_flow_state_monitor_violates_when_refresh_stops():
    """If the endpoint stops refreshing, the reborn gateway never relearns
    the reservation — the monitor must call that out."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    spec, sender = _reserved_voiceish_flow(net, h1, sink_host)
    now = net.sim.now
    net.sim.schedule(3.0, sender.stop)    # silence right at the crash
    monitor = FlowStateMonitor(refresh_interval=1.0)
    campaign = FaultCampaign(net, [GatewayCrash("G", now + 3.0, 2.0)],
                             monitors=[monitor], name="lost-forever")
    report = campaign.run(until=now + 12.0)
    assert not report.ok
    assert monitor.reinstalls == []
    assert any("not re-installed" in v.detail for v in monitor.violations)


# ----------------------------------------------------------------------
# Management plane surface
# ----------------------------------------------------------------------
def test_mib_exposes_flows_subtree():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    _reserved_voiceish_flow(net, h1, sink_host)
    net.sim.run(until=net.sim.now + 3)
    tree = build_mib(fgw.node)
    assert "flows.state_losses" in tree
    assert tree.get("flows.gateways") == 1
    assert tree.get("flows.installed") == 1
    assert tree.get("flows.refreshes_seen") >= 2
    assert tree.get("flows.state_losses") == 0
    # Providers read live: a crash is visible through the same tree.
    fgw.node.crash()
    assert tree.get("flows.state_losses") == 1
    assert tree.get("flows.installed") == 0
    assert tree.get("flows.queued") == 0


def test_mib_has_no_flows_subtree_without_gateway():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    tree = build_mib(h1.node)             # a plain host
    assert "flows.state_losses" not in tree


# ----------------------------------------------------------------------
# The three-way race campaign
# ----------------------------------------------------------------------
def test_flows_race_campaign_smoke_and_determinism():
    report = run_flows_campaign(7)
    assert report.ok
    assert report.all_reconverged
    race = report.race
    # The crux: hard state dies with the switch, soft state re-installs.
    assert race["vc"]["conversations_died"] >= 1
    soft = race["drr"]["soft_state"]
    assert soft["reinstalled_within_interval"]
    assert len(soft["reinstalls"]) == 1
    assert soft["reinstalls"][0]["delay"] <= soft["refresh_interval_s"] + 0.75
    # Voice isolation at saturation: DRR protects it, FIFO drowns it.
    assert race["drr"]["usable_saturation_pct"] > race["fifo"]["usable_saturation_pct"] + 20
    # The management plane saw the crash AND the lost reservation.
    netmgmt = report.drr.counters["netmgmt"]
    assert netmgmt["reservation_loss"]["detected"]
    assert netmgmt["false_alarms"] == 0
    assert any(f["kind"] == "gateway-crash" and f["detected"]
               for f in netmgmt["per_fault"])
    # Same seed, same bytes — even within one process.
    assert run_flows_campaign(7).to_json() == report.to_json()
