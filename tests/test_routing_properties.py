"""Property-based routing tests against networkx ground truth.

Hypothesis generates random connected gateway topologies; after running
distance-vector routing to convergence, every gateway must reach every
prefix that graph-theoretic connectivity says it should — and after
deleting random edges, exactly the still-connected ones.
"""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.base import INFINITY_METRIC
from repro.routing.distance_vector import DistanceVectorRouting
from repro.sim.engine import Simulator
from repro.udp.udp import UdpStack


def random_connected_graph(n_nodes: int, extra_edges: list[tuple[int, int]]):
    """A spanning path plus extra edges (deduplicated, no self-loops)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    for i in range(n_nodes - 1):
        graph.add_edge(i, i + 1)
    for a, b in extra_edges:
        a, b = a % n_nodes, b % n_nodes
        if a != b:
            graph.add_edge(a, b)
    return graph


def build_internet(graph: nx.Graph):
    """Realize a graph as gateways + /30 links + DV processes."""
    sim = Simulator()
    nodes, procs, links = {}, {}, {}
    for i in graph.nodes:
        nodes[i] = Node(f"G{i}", sim, is_gateway=True)
    base = int(Address("10.64.0.0"))
    for a, b in graph.edges:
        prefix = Prefix(Address(base), 30)
        base += 4
        ia = nodes[a].add_interface(
            Interface(f"g{a}-{b}", prefix.host(1), prefix))
        ib = nodes[b].add_interface(
            Interface(f"g{b}-{a}", prefix.host(2), prefix))
        links[(a, b)] = PointToPointLink(sim, ia, ib, bandwidth_bps=10e6,
                                         delay=0.001)
    for i, node in nodes.items():
        dv = DistanceVectorRouting(node, UdpStack(node), period=1.0)
        dv.start()
        procs[i] = dv
    return sim, nodes, procs, links


SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@SLOW
@given(
    n_nodes=st.integers(min_value=3, max_value=8),
    extra_edges=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                         max_size=6),
)
def test_dv_converges_to_full_reachability(n_nodes, extra_edges):
    graph = random_connected_graph(n_nodes, extra_edges)
    sim, nodes, procs, links = build_internet(graph)
    # Convergence bound: diameter periods plus slack.
    sim.run(until=5 + 2 * n_nodes)
    for i in graph.nodes:
        for (a, b), link in links.items():
            prefix = Prefix.of(link.ends[0].address, 30)
            assert procs[i].metric_to(prefix) < INFINITY_METRIC, \
                f"G{i} cannot reach link {a}-{b}"


@SLOW
@given(
    n_nodes=st.integers(min_value=4, max_value=7),
    extra_edges=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                         min_size=1, max_size=5),
    cut_index=st.integers(min_value=0, max_value=50),
)
def test_dv_tracks_partitions(n_nodes, extra_edges, cut_index):
    """Cut one edge: DV reachability must match graph reachability."""
    graph = random_connected_graph(n_nodes, extra_edges)
    sim, nodes, procs, links = build_internet(graph)
    sim.run(until=5 + 2 * n_nodes)
    edges = sorted(links)
    cut = edges[cut_index % len(edges)]
    links[cut].set_up(False)
    graph_after = graph.copy()
    graph_after.remove_edge(*cut)
    sim.run(until=sim.now + 25)

    for i in graph.nodes:
        for (a, b), link in links.items():
            if (a, b) == cut:
                continue  # the dead link's own prefix is a special case
            prefix = Prefix.of(link.ends[0].address, 30)
            # Reachable iff the graph still connects i to either endpoint.
            should = (nx.has_path(graph_after, i, a)
                      or nx.has_path(graph_after, i, b))
            reachable = (procs[i].metric_to(prefix) < INFINITY_METRIC
                         or i in (a, b))
            assert reachable == should, \
                f"G{i} vs link {a}-{b} after cutting {cut}"


@SLOW
@given(
    n_nodes=st.integers(min_value=3, max_value=7),
    extra_edges=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                         max_size=5),
)
def test_dv_metrics_match_shortest_paths(n_nodes, extra_edges):
    """Converged hop counts equal networkx shortest path lengths."""
    graph = random_connected_graph(n_nodes, extra_edges)
    sim, nodes, procs, links = build_internet(graph)
    sim.run(until=5 + 2 * n_nodes)
    for i in graph.nodes:
        for (a, b), link in links.items():
            prefix = Prefix.of(link.ends[0].address, 30)
            expected = min(nx.shortest_path_length(graph, i, a),
                           nx.shortest_path_length(graph, i, b))
            assert procs[i].metric_to(prefix) == expected


@SLOW
@given(
    n_nodes=st.integers(min_value=3, max_value=6),
    extra_edges=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                         max_size=4),
    src=st.integers(min_value=0, max_value=20),
    dst=st.integers(min_value=0, max_value=20),
)
def test_forwarding_actually_follows_converged_routes(n_nodes, extra_edges,
                                                      src, dst):
    """Datagrams delivered end to end on every random topology."""
    graph = random_connected_graph(n_nodes, extra_edges)
    sim, nodes, procs, links = build_internet(graph)
    sim.run(until=5 + 2 * n_nodes)
    src_i, dst_i = src % n_nodes, dst % n_nodes
    if src_i == dst_i:
        return
    target = nodes[dst_i].interfaces[0].address
    got = []
    nodes[dst_i].register_protocol(
        PROTO_UDP,
        lambda n, d, i: got.append(d) if d.payload == b"probe!" else None)
    nodes[src_i].send(target, PROTO_UDP, b"probe!")
    sim.run(until=sim.now + 5)
    assert len(got) == 1
