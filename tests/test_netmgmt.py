"""Tests for the in-band management plane (agents, collector, alarms).

The recurring theme: the management plane rides the datagram service it
manages, so everything it reports must stay honest under loss, partition
and reboot — stale instead of fabricated, unknown instead of zero, and
byte-identical under a repeated seed.
"""

import pytest

from repro import Internet
from repro.ip.address import Address
from repro.metrics.export import canonical_json
from repro.netmgmt.agent import MgmtAgent, install_agents
from repro.netmgmt.alarms import (AgentUnreachableRule, AlarmEngine,
                                  AlertBus, RateRule, ThresholdRule)
from repro.netmgmt.campaign import ManagementPlane
from repro.netmgmt.collector import Collector, TargetState
from repro.netmgmt.mib import MibTree, build_mib
from repro.netmgmt.protocol import (BULK, ERR_NO_SUCH_OID, ERR_TOO_BIG, GET,
                                    GETNEXT, Pdu, RESPONSE, decode_pdu,
                                    encode_pdu, request)
from repro.netmgmt.tsdb import Tsdb
from repro.udp.udp import MGMT_PORT, UdpError


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def star_net():
    """OPS (station) + two hosts behind one gateway, converged."""
    net = Internet(seed=99)
    ops = net.host("OPS")
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(ops, g, bandwidth_bps=1e6, delay=0.002)
    net.connect(g, h1, bandwidth_bps=1e6, delay=0.002)
    net.connect(g, h2, bandwidth_bps=1e6, delay=0.002)
    net.start_routing()
    net.converge(settle=8.0)
    return net, ops, h1, h2, g


def _ask(net, client, dst_addr, pdu, *, wait=1.0):
    """Send one request PDU from ``client`` and return decoded replies."""
    replies = []
    sock = client.udp.bind(0, lambda payload, src, sport:
                           replies.append(decode_pdu(payload)))
    sock.sendto(encode_pdu(pdu), dst_addr, MGMT_PORT)
    net.sim.run(until=net.sim.now + wait)
    sock.close()
    return replies


# ----------------------------------------------------------------------
# MIB tree
# ----------------------------------------------------------------------
def test_mibtree_get_next_walk_order():
    tree = MibTree()
    tree.add_scalar("sys.name", "N")
    tree.add_scalar("sys.uptime", 5)
    tree.add_scalar("if.e0.bytes", 10)
    assert tree.get("sys.name") == "N"
    with pytest.raises(KeyError):
        tree.get("nope")
    # "" walks from the beginning, in lexicographic order.
    assert tree.next_oid("") == "if.e0.bytes"
    assert tree.next_oid("if.e0.bytes") == "sys.name"
    assert tree.next_oid("sys.uptime") is None
    assert [oid for oid, _v in tree.walk_from("", 10)] == tree.oids()


def test_mibtree_scalarizes_bools_and_objects():
    tree = MibTree()
    tree.add("flag", lambda: True)
    tree.add("obj", lambda: object())
    assert tree.get("flag") == 1
    assert isinstance(tree.get("obj"), str)


def test_build_mib_standard_groups(star_net):
    net, ops, h1, h2, g = star_net
    tree = build_mib(g.node, udp=g.udp)
    oids = tree.oids()
    assert "sys.name" in oids and tree.get("sys.name") == "G"
    assert tree.get("sys.role") == "gateway"
    assert any(o.startswith("if.") for o in oids)
    assert any(o.startswith("ip.") for o in oids)
    assert tree.get("route.routes") >= 1
    assert tree.get("udp.mgmt_bad_community") == 0


def test_sys_uptime_resets_on_reboot(star_net):
    net, ops, h1, h2, g = star_net
    tree = build_mib(g.node)
    net.sim.run(until=net.sim.now + 5)
    before = tree.get("sys.uptime")
    assert before >= 5.0
    g.node.crash()
    g.node.restore()
    assert tree.get("sys.uptime") == 0.0


# ----------------------------------------------------------------------
# Agent
# ----------------------------------------------------------------------
def test_agent_get_and_missing_oid(star_net):
    net, ops, h1, h2, g = star_net
    MgmtAgent(h1.node, h1.udp)
    replies = _ask(net, ops, h1.address,
                   request(GET, 1, ["sys.name", "no.such.oid"]))
    assert len(replies) == 1
    reply = replies[0]
    assert reply.pdu_type == RESPONSE and reply.request_id == 1
    assert reply.error == ERR_NO_SUCH_OID
    bindings = dict(reply.bindings)
    assert bindings["sys.name"] == "H1"
    assert bindings["no.such.oid"] is None


def test_agent_getnext_walk_matches_tree(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp)
    first = agent.mib.oids()[0]
    replies = _ask(net, ops, h1.address, request(GETNEXT, 2, [""]))
    assert replies[0].bindings[0][0] == first


def test_agent_bulk_walks_entire_mib(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp, max_response_bytes=2048)
    seen, cursor, rid = [], "", 10
    for _ in range(64):
        replies = _ask(net, ops, h1.address,
                       request(BULK, rid, [cursor], max_repetitions=16))
        rid += 1
        assert replies, "agent stopped answering mid-walk"
        if not replies[0].bindings:
            break
        seen.extend(oid for oid, _v in replies[0].bindings)
        cursor = seen[-1]
    assert seen == agent.mib.oids()


def test_agent_bad_community_is_silent_and_counted(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp, community="secret")
    replies = _ask(net, ops, h1.address,
                   request(GET, 3, ["sys.name"], community="public"))
    assert replies == []
    assert agent.stats.bad_community == 1
    assert h1.udp.mgmt_bad_community == 1


def test_agent_malformed_is_silent_and_counted(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp)
    sock = ops.udp.bind(0, lambda *a: pytest.fail("got a reply to garbage"))
    sock.sendto(b"\xff\xfe\xfd", h1.address, MGMT_PORT)
    net.sim.run(until=net.sim.now + 1)
    sock.close()
    assert agent.stats.malformed == 1
    assert h1.udp.mgmt_malformed == 1


def test_agent_response_size_bound(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp, max_response_bytes=128)
    replies = _ask(net, ops, h1.address,
                   request(BULK, 4, [""], max_repetitions=200))
    assert len(encode_pdu(replies[0])) <= 128
    assert agent.stats.truncated_responses == 1


def test_agent_too_big_when_nothing_fits(star_net):
    net, ops, h1, h2, g = star_net
    agent = MgmtAgent(h1.node, h1.udp, max_response_bytes=20)
    replies = _ask(net, ops, h1.address,
                   request(BULK, 5, [""], max_repetitions=10))
    assert replies[0].error == ERR_TOO_BIG
    assert replies[0].bindings == ()
    assert agent.stats.too_big == 1


def test_agent_reply_fragments_at_small_mtu():
    """A big BULK answer crossing a 296-byte-MTU hop fragments like any
    datagram — and still reassembles into a valid PDU at the station."""
    net = Internet(seed=17)
    ops, h1 = net.host("OPS"), net.host("H1")
    g = net.gateway("G")
    net.connect(ops, g, bandwidth_bps=1e6, delay=0.002, mtu=1500)
    net.connect(g, h1, bandwidth_bps=1e6, delay=0.002, mtu=296)
    net.start_routing()
    net.converge(settle=8.0)
    MgmtAgent(h1.node, h1.udp, max_response_bytes=1024)
    replies = _ask(net, ops, h1.address,
                   request(BULK, 6, [""], max_repetitions=40))
    assert replies and len(replies[0].bindings) > 5
    assert h1.node.stats.fragments_created > 0


def test_mgmt_port_reserved_for_deliberate_binds(star_net):
    net, ops, h1, h2, g = star_net
    with pytest.raises(UdpError):
        ops.udp.bind(MGMT_PORT, lambda *a: None)
    sock = ops.udp.bind(MGMT_PORT, lambda *a: None, well_known=True)
    sock.close()


# ----------------------------------------------------------------------
# TSDB
# ----------------------------------------------------------------------
def test_tsdb_rate_basic_and_insufficient_points():
    db = Tsdb()
    assert db.rate("c", now=10.0) is None
    db.add("c", 0.0, 100.0)
    assert db.rate("c", now=10.0) is None       # one point: unknown
    db.add("c", 10.0, 200.0)
    assert db.rate("c", now=10.0) == pytest.approx(10.0)


def test_tsdb_rate_skips_counter_resets():
    db = Tsdb()
    for t, v in [(0, 100), (1, 200), (2, 5), (3, 105)]:   # reboot at t=2
        db.add("c", float(t), float(v))
    # Deltas: +100, (reset skipped), +100 over 3 s elapsed.
    assert db.rate("c", now=3.0) == pytest.approx(200.0 / 3.0)
    assert db.rate("c", now=3.0) >= 0.0


def test_tsdb_rate_averages_across_gap_without_double_count():
    db = Tsdb()
    db.add("c", 0.0, 0.0)
    db.add("c", 1.0, 100.0)
    # ... partition: nothing for 8 s ...
    db.add("c", 9.0, 900.0)
    db.add("c", 10.0, 1000.0)
    # 1000 units over 10 real seconds — the outage dilutes, it never
    # compresses into the moments scraping resumed.
    assert db.rate("c", now=10.0) == pytest.approx(100.0)


def test_tsdb_downsample_bucket_means():
    db = Tsdb()
    for t in range(10):
        db.add("g", float(t), float(t))
    out = db.downsample("g", 5.0)
    assert out == [(0.0, 2.0), (5.0, 7.0)]
    with pytest.raises(ValueError):
        db.downsample("g", 0.0)


def test_tsdb_percentiles_via_shared_histogram():
    db = Tsdb()
    for i in range(1, 101):
        db.add("lat", float(i), float(i))
    pcts = db.percentiles("lat")
    assert set(pcts) == {"p50", "p95", "p99"}
    # Log-bucket estimates: upper bound of the bucket holding the true
    # quantile, so estimates are conservative and ordered.
    assert pcts["p50"] >= 50 and pcts["p50"] <= 200
    assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]


def test_tsdb_staleness_and_bounds():
    db = Tsdb(capacity_per_series=4, max_series=2, stale_after=5.0)
    db.add("a", 0.0, 1.0)
    assert not db.stale("a", now=4.0)
    assert db.stale("a", now=6.0)
    assert db.stale("never-seen", now=0.0)
    for t in range(10):
        db.add("a", float(t), 1.0)
    assert len(db.series("a")) == 4
    assert db.series("a").dropped == 7   # 11 adds into a 4-slot ring
    db.add("b", 0.0, 1.0)
    db.add("c", 0.0, 1.0)                  # over max_series: rejected
    assert db.series("c") is None
    assert db.counters()["series_rejected"] == 1
    db.add("a", 11.0, "a-string")          # non-numeric: ignored
    assert db.latest("a") == 1.0


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
def test_collector_scrapes_and_sequence_stamps(star_net):
    net, ops, h1, h2, g = star_net
    install_agents(net)
    coll = Collector(ops, {"H1": h1.address, "G": g.node.address},
                     interval=1.0, timeout=0.5,
                     rng=net.streams.stream("test.collector"))
    coll.start()
    net.sim.run(until=net.sim.now + 6)
    assert coll.stats.scrapes_completed >= 4
    assert coll.stats.scrapes_failed == 0
    # Strings have no time series (by design); numeric OIDs all land.
    assert coll.tsdb.latest("H1.sys.name") is None
    assert coll.tsdb.latest("H1.sys.up") == 1
    assert coll.tsdb.latest("G.sys.interfaces") >= 2
    assert coll.tsdb.latest("G.route.routes") >= 1
    seq = coll.tsdb.series("H1.scrape.seq")
    values = [v for _t, v in seq.points]
    assert values == sorted(values) and len(set(values)) == len(values)
    health = coll.target_health()
    assert health["H1"]["up"] and health["G"]["up"]


def test_collector_classifies_duplicate_and_unmatched_replies(star_net):
    net, ops, h1, h2, g = star_net
    install_agents(net)
    coll = Collector(ops, {"H1": h1.address}, interval=1.0, timeout=0.5,
                     rng=net.streams.stream("test.collector2"))
    coll.start()
    net.sim.run(until=net.sim.now + 3)
    assert coll.stats.responses_received > 0
    answered = coll._answered[-1]
    dup = encode_pdu(Pdu(pdu_type=RESPONSE, request_id=answered))
    coll._reply_arrived(dup, h1.address, MGMT_PORT)
    unknown = encode_pdu(Pdu(pdu_type=RESPONSE, request_id=0xDEAD0001))
    coll._reply_arrived(unknown, h1.address, MGMT_PORT)
    coll._reply_arrived(b"junk", h1.address, MGMT_PORT)
    assert coll.stats.duplicate_replies == 1
    assert coll.stats.unmatched_replies == 1
    assert coll.stats.malformed_replies == 1


def test_collector_partition_staleness_then_recovery(star_net):
    net, ops, h1, h2, g = star_net
    install_agents(net)
    coll = Collector(ops, {"H1": h1.address, "H2": h2.address},
                     interval=1.0, timeout=0.5,
                     rng=net.streams.stream("test.collector3"))
    coll.start()
    net.sim.run(until=net.sim.now + 5)
    assert not coll.tsdb.stale("H2.sys.uptime", net.sim.now)

    cut = net.cut_links({"H2"})
    for link in cut:
        net.fail_link(link)
    outage_start = net.sim.now
    net.sim.run(until=net.sim.now + 8)
    outage_end = net.sim.now
    # The partitioned target's series went stale — and gained no points.
    assert coll.tsdb.stale("H2.sys.uptime", net.sim.now)
    uptime = coll.tsdb.series("H2.sys.uptime")
    in_window = [p for p in uptime.points
                 if outage_start + 1.0 < p[0] < outage_end]
    assert in_window == []
    assert coll.targets["H2"].consecutive_failures >= 3
    # The healthy target was unaffected.
    assert not coll.tsdb.stale("H1.sys.uptime", net.sim.now)

    for link in cut:
        net.restore_link(link)
    net.sim.run(until=net.sim.now + 6)
    assert not coll.tsdb.stale("H2.sys.uptime", net.sim.now)
    assert coll.targets["H2"].consecutive_failures == 0
    # Uptime advances 1 s/s; the gap must average, never double-count.
    rate = coll.tsdb.rate("H2.sys.uptime", net.sim.now)
    assert rate is not None and 0.0 <= rate <= 1.05


# ----------------------------------------------------------------------
# Alarms
# ----------------------------------------------------------------------
class _StubCollector:
    """tsdb + targets, no network — for rule unit tests."""

    def __init__(self, tsdb, targets=()):
        self.tsdb = tsdb
        self.targets = {name: TargetState(name=name,
                                          address=Address("10.9.9.9"))
                        for name in targets}


def test_alert_bus_dedup_and_transitions():
    bus = AlertBus()
    seen = []
    bus.subscribe(lambda alert: seen.append((alert.state, alert.key)))
    assert bus.raise_alert(1.0, "k", rule="r", target="t")
    assert not bus.raise_alert(2.0, "k", rule="r", target="t")
    assert bus.is_active("k")
    assert bus.clear_alert(3.0, "k")
    assert not bus.clear_alert(3.0, "k")
    assert bus.counters() == {"raised": 1, "cleared": 1, "active": 0,
                              "suppressed_duplicates": 1, "log_dropped": 0}
    assert seen == [("raise", "k"), ("clear", "k")]
    assert [e["state"] for e in bus.export()] == ["raise", "clear"]


def test_threshold_rule_hold_down_suppresses_flaps():
    db = Tsdb(stale_after=100.0)
    stub = _StubCollector(db, ["N"])
    engine = AlarmEngine(stub, rules=[
        ThresholdRule("q-deep", "queue", ">", 10.0, hold_down=5.0)])
    db.add("N.queue", 0.0, 50.0)
    engine.evaluate("N", 0.0)
    assert engine.bus.is_active("q-deep:N")
    # One healthy sample inside the hold-down: still raised.
    db.add("N.queue", 2.0, 1.0)
    engine.evaluate("N", 2.0)
    assert engine.bus.is_active("q-deep:N")
    assert engine.counters()["flaps_suppressed"] == 1
    # Healthy long enough: clears.
    db.add("N.queue", 6.0, 1.0)
    engine.evaluate("N", 6.0)
    assert not engine.bus.is_active("q-deep:N")
    transitions = [(a.state, a.time) for a in engine.bus.log]
    assert transitions == [("raise", 0.0), ("clear", 6.0)]


def test_rules_treat_stale_series_as_unknown():
    db = Tsdb(stale_after=5.0)
    stub = _StubCollector(db, ["N"])
    engine = AlarmEngine(stub, rules=[
        ThresholdRule("hot", "temp", ">", 10.0, hold_down=0.0)])
    db.add("N.temp", 0.0, 50.0)
    engine.evaluate("N", 0.0)
    assert engine.bus.is_active("hot:N")
    # Series goes stale: the alarm neither clears nor re-raises.
    engine.evaluate("N", 100.0)
    assert engine.bus.is_active("hot:N")
    assert engine.bus.counters()["raised"] == 1


def test_rate_rule_fires_on_counter_slope():
    db = Tsdb(stale_after=100.0)
    stub = _StubCollector(db, ["N"])
    engine = AlarmEngine(stub, rules=[
        RateRule("drops", "drops", ">", 5.0, window=10.0, hold_down=0.0)])
    db.add("N.drops", 0.0, 0.0)
    db.add("N.drops", 1.0, 2.0)
    engine.evaluate("N", 1.0)
    assert not engine.bus.is_active("drops:N")      # 2/s < 5/s
    db.add("N.drops", 2.0, 50.0)
    engine.evaluate("N", 2.0)
    assert engine.bus.is_active("drops:N")


def test_agent_unreachable_rule_needs_history():
    db = Tsdb()
    stub = _StubCollector(db, ["N"])
    engine = AlarmEngine(stub, rules=[AgentUnreachableRule(threshold=2)])
    engine.evaluate("N", 0.0)               # never scraped: unknown
    assert not engine.bus.is_active("agent-unreachable:N")
    stub.targets["N"].scrapes_bad = 2
    stub.targets["N"].consecutive_failures = 2
    engine.evaluate("N", 1.0)
    assert engine.bus.is_active("agent-unreachable:N")


# ----------------------------------------------------------------------
# ManagementPlane + chaos: MTTD, determinism, journeys
# ----------------------------------------------------------------------
def _run_managed_campaign(seed):
    from repro.chaos.campaign import FaultCampaign
    from repro.chaos.faults import GatewayCrash, HostRestart, Partition
    from repro.harness.presets import build_as_chain

    topo = build_as_chain(2, seed=seed, settle=12.0)
    net = topo.net
    plane = ManagementPlane(net, station="H1", interval=1.0, timeout=0.5,
                            unreachable_after=2)
    plane.start()
    faults = [
        GatewayCrash("I2", net.sim.now + 5.0, 6.0),
        HostRestart("H2", net.sim.now + 20.0, 6.0),
        Partition({"B2", "I2"}, net.sim.now + 35.0, 6.0),
    ]
    campaign = FaultCampaign(net, faults, name="mttd-test")
    report = campaign.run(until=net.sim.now + 55.0)
    report.counters["netmgmt"] = plane.counters(faults)
    return report


def test_mttd_detects_crash_restart_partition():
    report = _run_managed_campaign(5)
    mgmt = report.counters["netmgmt"]
    records = {r["kind"]: r for r in mgmt["per_fault"]}
    assert set(records) == {"gateway-crash", "host-restart", "partition"}
    for kind, record in records.items():
        assert record["detected"], f"{kind} was never detected"
        assert record["mttd"] is not None and record["mttd"] > 0.0
        # Detection cannot beat two scrape intervals (the threshold).
        assert record["mttd"] >= 1.0
    assert mgmt["detected_faults"] == 3


def test_mttd_timeline_is_byte_identical_same_seed():
    a = _run_managed_campaign(21)
    b = _run_managed_campaign(21)
    assert canonical_json(a.to_dict()) == canonical_json(b.to_dict())
    # And a different seed genuinely changes the timeline bytes.
    c = _run_managed_campaign(22)
    assert canonical_json(a.to_dict()) != canonical_json(c.to_dict())


def test_partition_expected_targets_include_hosts_behind_cut():
    from repro.chaos.faults import Partition
    from repro.harness.presets import build_as_chain

    topo = build_as_chain(2, seed=3, settle=10.0)
    net = topo.net
    plane = ManagementPlane(net, station="H1")
    fault = Partition({"I2", "B2"}, net.sim.now + 1.0, 2.0)
    fault._cut = net.cut_links({"I2", "B2"})
    expected = plane.expected_targets(fault)
    # H2 hangs off I2: it is severed too, so an H2 alarm is correct.
    assert "H2" in expected and "I2" in expected and "B2" in expected
    assert "H1" not in expected


def test_scrape_datagrams_appear_as_journeys(star_net):
    net, ops, h1, h2, g = star_net
    obs = net.observe()
    install_agents(net)
    coll = Collector(ops, {"H1": h1.address}, interval=1.0, timeout=0.5,
                     rng=net.streams.stream("test.collector4"))
    ids_before = obs.trace_ids_allocated
    coll.start()
    net.sim.run(until=net.sim.now + 3)
    assert coll.stats.scrapes_completed > 0
    assert obs.trace_ids_allocated > ids_before
    # At least one of the new traces is a scrape that visited the
    # station and the agent's node.
    nodes_seen = set()
    for trace_id in range(ids_before + 1, obs.trace_ids_allocated + 1):
        nodes_seen.update(h.node for h in obs.journey(trace_id))
    assert "OPS" in nodes_seen and "H1" in nodes_seen


def test_agents_enroll_in_metrics_registry(star_net):
    net, ops, h1, h2, g = star_net
    obs = net.observe()
    agents = install_agents(net)
    assert "mgmt_agent.H1" in obs.registry._registered
    _ask(net, ops, h1.address, request(GET, 9, ["sys.name"]))
    assert agents["H1"].stats.requests == 1
