"""Tests for the topology kit, tables and realizations."""

import pytest

from repro import Internet, run_transfer
from repro.harness.realizations import REALIZATIONS, build_realization
from repro.harness.tables import Table, format_bytes, format_rate


def test_internet_auto_addressing_unique():
    net = Internet(seed=0)
    g1, g2, g3 = net.gateway("G1"), net.gateway("G2"), net.gateway("G3")
    net.connect(g1, g2)
    net.connect(g2, g3)
    addresses = []
    for g in (g1, g2, g3):
        addresses.extend(str(i.address) for i in g.node.interfaces)
    assert len(addresses) == len(set(addresses))


def test_duplicate_node_name_rejected():
    net = Internet(seed=0)
    net.host("X")
    with pytest.raises(ValueError):
        net.gateway("X")


def test_unknown_media_rejected():
    net = Internet(seed=0)
    a, b = net.gateway("A"), net.gateway("B")
    with pytest.raises(ValueError):
        net.connect(a, b, media="carrier-pigeon")


def test_lan_wiring_and_default_routes():
    net = Internet(seed=0)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.lan("office", [h1, h2, g])
    net.start_routing()
    net.converge(settle=6.0)
    # Hosts picked up the gateway as default.
    route = h1.node.routes.lookup("203.0.113.1")
    assert route.next_hop is not None


def test_transfer_through_kit_topology(simple_internet):
    net, h1, h2, core = simple_internet
    outcome = run_transfer(net, h1, h2, size=40_000)
    assert outcome.completed
    assert outcome.goodput_bps > 0


def test_run_transfer_deadline_reports_incomplete():
    net = Internet(seed=0)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(h1, g)
    core = net.connect(g, h2)
    net.start_routing()
    net.converge(settle=6.0)
    core.set_up(False)  # unreachable: the transfer cannot finish
    outcome = run_transfer(net, h1, h2, size=10_000, deadline=20.0)
    assert not outcome.completed


def test_fail_and_restore_link(simple_internet):
    net, h1, h2, core = simple_internet
    net.fail_link(core)
    assert not core.is_up()
    net.restore_link(core)
    assert core.is_up()


def test_all_realizations_build_and_converge():
    for realization in REALIZATIONS:
        net, a, b = build_realization(realization.name, seed=3)
        # A ping must make it across every realization.
        replies = []
        a.node.ping(b.address, replies.append)
        net.sim.run(until=net.sim.now + 30)
        assert replies, f"{realization.name}: no connectivity"


def test_unknown_realization_raises():
    with pytest.raises(KeyError):
        build_realization("atlantis")


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def test_table_renders_rows():
    table = Table("Demo", ["name", "value"])
    table.add("alpha", 1)
    table.add("beta", 2.5)
    text = table.render()
    assert "Demo" in text
    assert "alpha" in text
    assert "2.50" in text


def test_table_rejects_wrong_arity():
    table = Table("Demo", ["a", "b"])
    with pytest.raises(ValueError):
        table.add(1)


def test_table_note():
    table = Table("Demo", ["a"], note="shape check only")
    table.add(1)
    assert "note: shape check only" in table.render()


def test_format_rate():
    assert format_rate(5e9) == "5.00 Gb/s"
    assert format_rate(2_500_000) == "2.50 Mb/s"
    assert format_rate(56_000) == "56.00 kb/s"
    assert format_rate(300) == "300 b/s"


def test_format_bytes():
    assert format_bytes(3 * 2**30) == "3.00 GiB"
    assert format_bytes(1536) == "1.50 KiB"
    assert format_bytes(100) == "100 B"
