"""Tests for store-and-forward mail (app-layer resilience over TCP)."""

import pytest

from repro import Internet
from repro.apps.mail import MailClient, MailServer, send_mail


@pytest.fixture
def mail_net():
    """Client host, local MTA 'alpha', remote MTA 'beta' across a WAN."""
    net = Internet(seed=61)
    user = net.host("USER")
    mta_a = net.host("MTA-A")
    mta_b = net.host("MTA-B")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.lan("office", [user, mta_a, g1])
    wan = net.connect(g1, g2, bandwidth_bps=256e3, delay=0.02)
    net.connect(g2, mta_b, bandwidth_bps=1e6, delay=0.002)
    net.start_routing(period=1.0)
    net.converge(settle=10.0)
    alpha = MailServer(mta_a, "alpha", routes={"beta": mta_b.address},
                       retry_interval=5.0)
    beta = MailServer(mta_b, "beta", retry_interval=5.0)
    return net, user, alpha, beta, wan


def test_local_delivery(mail_net):
    net, user, alpha, beta, wan = mail_net
    results = []
    send_mail(user, alpha.host.address, "u@alpha", "boss@alpha",
              "status: all nominal", results.append)
    net.sim.run(until=net.sim.now + 10)
    assert results == [True]
    assert len(alpha.mailbox("boss")) == 1
    assert alpha.mailbox("boss")[0].body == "status: all nominal"


def test_relay_to_remote_domain(mail_net):
    net, user, alpha, beta, wan = mail_net
    results = []
    send_mail(user, alpha.host.address, "u@alpha", "friend@beta",
              "hello across the internet", results.append)
    net.sim.run(until=net.sim.now + 30)
    assert results == [True]          # accepted by the first MTA
    assert len(beta.mailbox("friend")) == 1
    assert alpha.relayed == 1
    # Hop counts are per-MTA bookkeeping: beta saw one take().
    assert beta.mailbox("friend")[0].hops == 1


def test_unknown_domain_rejected(mail_net):
    net, user, alpha, beta, wan = mail_net
    results = []
    send_mail(user, alpha.host.address, "u@alpha", "x@nowhere",
              "dead letter", results.append)
    net.sim.run(until=net.sim.now + 10)
    assert results == [False]
    assert not alpha.queue


def test_mail_survives_wan_outage(mail_net):
    """The message outlives connections: queued at the MTA, retried
    across the outage, delivered after recovery."""
    net, user, alpha, beta, wan = mail_net
    wan.set_up(False)                 # WAN is down when the user sends
    results = []
    send_mail(user, alpha.host.address, "u@alpha", "friend@beta",
              "patience", results.append)
    net.sim.run(until=net.sim.now + 20)
    assert results == [True]          # accepted locally regardless
    assert beta.mailbox("friend") == []
    assert alpha.queue                # parked, retrying
    wan.set_up(True)
    net.sim.run(until=net.sim.now + 60)
    assert len(beta.mailbox("friend")) == 1
    assert not alpha.queue
    # The layers composed: one app-level attempt may have ridden out the
    # whole outage on TCP's own retries; either way, exactly one copy.
    assert alpha.delivery_attempts >= 1


def test_multiple_messages_one_mailbox(mail_net):
    net, user, alpha, beta, wan = mail_net
    client = MailClient(user, alpha.host.address)
    for i in range(3):
        client.send("u@alpha", "boss@alpha", f"note {i}")
    net.sim.run(until=net.sim.now + 20)
    assert client.sent == 3
    assert [m.body for m in alpha.mailbox("boss")] == \
        ["note 0", "note 1", "note 2"]


def test_smarthost_fallback():
    net = Internet(seed=62)
    user = net.host("USER")
    edge = net.host("EDGE")
    core = net.host("CORE")
    g = net.gateway("G")
    net.lan("site", [user, edge, g])
    net.connect(g, core, bandwidth_bps=1e6, delay=0.005)
    net.start_routing(period=1.0)
    net.converge(settle=8.0)
    edge_mta = MailServer(edge, "edge", smarthost=core.address,
                          retry_interval=5.0)
    core_mta = MailServer(core, "core", retry_interval=5.0)
    results = []
    send_mail(user, edge.address, "u@edge", "root@core",
              "via the smarthost", results.append)
    net.sim.run(until=net.sim.now + 30)
    assert results == [True]
    assert len(core_mta.mailbox("root")) == 1


def test_delivery_timestamps(mail_net):
    net, user, alpha, beta, wan = mail_net
    send_mail(user, alpha.host.address, "u@alpha", "boss@alpha", "t")
    net.sim.run(until=net.sim.now + 10)
    message = alpha.mailbox("boss")[0]
    assert message.delivered_at is not None
    assert message.delivered_at >= message.submitted_at
