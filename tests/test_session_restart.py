"""The session layer and the restart campaign — resume frames, replay
arithmetic, supersession, and the seeded fate-sharing closed loop."""

import pytest

from repro.chaos import HostRestart, RandomChaos
from repro.chaos.restart import (
    build_restart_scenario,
    restart_payload,
    run_restart_campaign,
)
from repro.session import (
    HELLO_LEN,
    HelloParser,
    ServerSession,
    SessionEndpoint,
    SessionProtocolError,
    encode_hello,
)


# ----------------------------------------------------------------------
# Hello frames
# ----------------------------------------------------------------------
def test_hello_roundtrip():
    wire = encode_hello(0xDEADBEEF, 12345)
    assert len(wire) == HELLO_LEN
    parser = HelloParser()
    assert parser.feed(wire) == b""
    assert parser.done
    assert parser.hello.session_id == 0xDEADBEEF
    assert parser.hello.recv_offset == 12345


def test_hello_survives_arbitrary_fragmentation():
    wire = encode_hello(7, 99)
    parser = HelloParser()
    for i in range(len(wire)):
        assert not parser.done
        assert parser.feed(wire[i:i + 1]) == b""
    assert parser.done
    assert parser.hello.recv_offset == 99


def test_hello_returns_surplus_stream_bytes():
    parser = HelloParser()
    surplus = parser.feed(encode_hello(1, 0) + b"application data")
    assert parser.done
    assert surplus == b"application data"


def test_bad_magic_is_a_protocol_error():
    parser = HelloParser()
    with pytest.raises(SessionProtocolError):
        parser.feed(b"HTTP/1.1 200 OK\r\n\r\n")


def test_hello_encode_range_checks():
    with pytest.raises(ValueError):
        encode_hello(-1, 0)
    with pytest.raises(ValueError):
        encode_hello(1, 1 << 64)


# ----------------------------------------------------------------------
# SessionEndpoint replay arithmetic (fake transport)
# ----------------------------------------------------------------------
class FakeSocket:
    def __init__(self):
        self.writes = []
        self.aborted = False
        self.on_open = self.on_data = self.on_closed = None

    def write(self, data):
        self.writes.append(bytes(data))

    def abort(self):
        self.aborted = True

    @property
    def sent(self):
        return b"".join(self.writes)


def test_endpoint_replays_unacknowledged_suffix():
    ep = SessionEndpoint(1)
    ep.send(b"hello ")
    ep.send(b"world")          # queued: no transport yet
    sock = FakeSocket()
    ep.attach(sock)
    ep.peer_hello(0)           # first sync: everything replays
    assert sock.sent == b"hello world"
    assert ep.stats.resumes == 0  # first-ever sync is not a resume
    ep.send(b"!")
    assert sock.sent == b"hello world!"  # write-through while synced

    # The transport dies; the peer has delivered 6 bytes upward.
    ep.detach()
    ep.send(b"?")              # queued against the next incarnation
    sock2 = FakeSocket()
    ep.attach(sock2)
    ep.peer_hello(6)
    assert sock2.sent == b"world!?"       # trimmed to the declared offset
    assert ep.stats.resumes == 1
    assert ep.stats.bytes_replayed == 6   # "world!" went out twice
    assert ep.stats.resume_gaps == 0


def test_endpoint_counts_unrecoverable_gap():
    ep = SessionEndpoint(1)
    sock = FakeSocket()
    ep.attach(sock)
    ep.send(b"abcdef")
    ep.peer_hello(0)
    ep.detach()
    ep.attach(FakeSocket())
    ep.peer_hello(6)           # peer acked everything: log trims to base 6
    ep.detach()
    ep.attach(FakeSocket())
    ep.peer_hello(2)           # peer regressed below our trimmed base
    assert ep.stats.resume_gaps == 1


def test_endpoint_inbound_offset_tracks_delivery():
    seen = []
    ep = SessionEndpoint(1, on_data=seen.append)
    ep.receive(b"abc")
    ep.receive(b"de")
    assert ep.recv_offset == 5
    assert b"".join(seen) == b"abcde"
    assert ep.stats.bytes_delivered == 5


# ----------------------------------------------------------------------
# ServerSession supersession (fake transports)
# ----------------------------------------------------------------------
class FakeListener:
    on_data = None


def test_adopt_supersedes_zombie_transport():
    session = ServerSession(FakeListener(), 42)
    zombie, fresh = FakeSocket(), FakeSocket()
    session.adopt(zombie, 0)
    session.send(b"0123456789")
    assert zombie.sent.endswith(b"0123456789")

    # The client reconnects having delivered 4 bytes; the old transport is
    # a zombie keepalive has not shed yet.
    session.adopt(fresh, 4)
    assert session.superseded == 1
    assert zombie.aborted
    assert zombie.on_data is None          # no callbacks out of the grave
    # Hello first, then exactly the unacknowledged suffix.
    assert fresh.writes[0] == encode_hello(42, 0)
    assert b"".join(fresh.writes[1:]) == b"456789"
    assert session.stats.reconnects == 1


def test_adopt_same_socket_is_not_supersession():
    session = ServerSession(FakeListener(), 7)
    sock = FakeSocket()
    session.adopt(sock, 0)
    assert session.superseded == 0
    assert not sock.aborted


# ----------------------------------------------------------------------
# Payload generator
# ----------------------------------------------------------------------
def test_restart_payload_deterministic_and_full_range():
    assert restart_payload(512) == restart_payload(512)
    p = restart_payload(512)
    # Stride 31 is coprime to 256: every byte value appears, so a replay
    # landing one chunk off cannot silently match.
    assert len(set(p)) == 256
    assert p[:64] != p[31:95]


# ----------------------------------------------------------------------
# The closed loop: seeded restart campaign
# ----------------------------------------------------------------------
def test_restart_campaign_survives_three_restarts():
    scenario = build_restart_scenario(17)
    report = scenario.run()
    assert report.ok, [v.detail for v in report.violations]
    assert report.all_reconverged
    assert report.counters["payload_intact"]
    assert report.counters["payload_lost_bytes"] == 0
    assert report.counters["payload_duplicated_bytes"] == 0
    sess = report.counters["session_client"]
    assert sess["reconnects"] >= 3          # one per restart
    assert sess["bytes_replayed"] > 0       # resumption did real work
    assert sess["resume_gaps"] == 0
    assert report.counters["tcp_client"]["isn_quiet_violations"] == 0
    # The server-side zombies were tracked and every one was shed.
    zombie = next(m for m in scenario.campaign.monitors
                  if m.name == "half-open-zombie-shed")
    assert zombie.zombies_tracked >= 1
    assert zombie.zombies_shed == zombie.zombies_tracked


def test_restart_campaign_is_byte_deterministic():
    a = run_restart_campaign(11).to_json()
    b = run_restart_campaign(11).to_json()
    assert a == b
    assert run_restart_campaign(12).to_json() != a


def test_quiet_time_monitor_catches_early_isn():
    """Disable enforcement: the reborn client dials immediately, issues an
    ISN inside the quiet window, and the monitor must call it out."""
    scenario = build_restart_scenario(5, restarts=1)
    scenario.net.hosts["H1"].tcp.enforce_quiet_time = False
    report = scenario.run()
    assert not report.ok
    monitors = {v.monitor for v in report.violations}
    assert "quiet-time-honored" in monitors
    assert report.counters["tcp_client"]["isn_quiet_violations"] >= 1


def test_zombie_monitor_catches_unshed_zombie():
    """Sabotage every shedding path — no redial onto the old 4-tuple, no
    keepalive probes — and the half-open zombie must become a violation."""
    scenario = build_restart_scenario(6, restarts=1)
    fault = scenario.campaign.faults[0]
    net = scenario.net

    def sabotage():
        # The reborn client never redials (so no SYN hits the zombie's
        # 4-tuple), and the server's keepalive is silenced.
        scenario.client._dial = lambda: None
        for conn in net.hosts["H2"].tcp.connections:
            conn.keepalive_timer.stop()

    net.sim.call_at(fault.at + 0.01, sabotage)
    report = scenario.run()
    assert any(v.monitor == "half-open-zombie-shed"
               for v in report.violations)


def test_random_chaos_can_draw_host_restarts():
    scenario = build_restart_scenario(3)
    chaos = RandomChaos(scenario.net, budget=4, rate=0.5,
                        start=scenario.net.sim.now + 1.0,
                        kinds=("host-restart",))
    faults = chaos.generate()
    assert len(faults) == 4
    assert all(isinstance(f, HostRestart) for f in faults)
    assert {f.name for f in faults} <= {"H1", "H2"}
    # Seeded: the same internet seed redraws the same schedule.
    again = RandomChaos(build_restart_scenario(3).net, budget=4, rate=0.5,
                        start=scenario.net.sim.now + 1.0,
                        kinds=("host-restart",))
    assert [(f.name, f.at, f.duration) for f in again.generate()] == \
           [(f.name, f.at, f.duration) for f in faults]
