"""Tests for Source Quench generation and traceroute."""

import pytest

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.ip import icmp
from repro.ip.quench import SourceQuencher
from repro.ip.traceroute import Traceroute
from repro.tcp.connection import TcpConfig


# ----------------------------------------------------------------------
# Source Quench
# ----------------------------------------------------------------------
def congested_net(seed=81):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(g, h2, bandwidth_bps=64_000, delay=0.005, queue_limit=4)
    net.start_routing()
    net.converge(settle=6.0)
    return net, h1, h2, g


def test_quench_sent_on_queue_drop():
    net, h1, h2, g = congested_net()
    quencher = SourceQuencher(g.node)
    UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=512, rate=100.0, duration=3.0)
    net.sim.run(until=net.sim.now + 10)
    assert quencher.drops_seen > 0
    assert quencher.quenches_sent > 0


def test_quench_rate_limited_per_source():
    net, h1, h2, g = congested_net()
    quencher = SourceQuencher(g.node, min_interval=10.0)
    UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=512, rate=200.0, duration=2.0)
    net.sim.run(until=net.sim.now + 10)
    assert quencher.drops_seen > 10
    assert quencher.quenches_sent == 1  # one per source per 10 s


def test_quench_reaches_source_as_icmp_error():
    net, h1, h2, g = congested_net()
    SourceQuencher(g.node)
    errors = []
    h1.node.add_icmp_error_listener(
        lambda n, m, d: errors.append(m.type))
    UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=512, rate=100.0, duration=3.0)
    net.sim.run(until=net.sim.now + 10)
    assert icmp.SOURCE_QUENCH in errors


def test_quench_shrinks_tcp_congestion_window():
    net, h1, h2, g = congested_net()
    SourceQuencher(g.node, min_interval=0.1)
    received = bytearray()

    def serve(sock):
        sock.on_data = received.extend
        sock.on_closed = sock.close

    h2.listen(4000, serve)
    sock = h1.connect(h2.address, 4000)
    sock.write(b"z" * 60_000)
    # Let the window grow, then observe a quench collapse it.
    cwnd_after_quench = []
    original = h1.tcp._icmp_error

    def spy(node, message, carrier):
        original(node, message, carrier)
        if message.type == icmp.SOURCE_QUENCH:
            cwnd_after_quench.append(sock.conn.cwnd)

    h1.node._icmp_error_listeners[0] = spy
    net.sim.run(until=net.sim.now + 60)
    assert cwnd_after_quench  # at least one quench processed
    assert min(cwnd_after_quench) <= sock.conn.snd_mss


def test_icmp_is_never_quenched():
    net, h1, h2, g = congested_net()
    quencher = SourceQuencher(g.node)
    # Flood with pings to force ICMP drops at the tiny queue.
    for i in range(100):
        net.sim.schedule(i * 0.001,
                         lambda i=i: h1.node.ping(h2.address,
                                                  lambda t: None,
                                                  ident=1, sequence=i))
    net.sim.run(until=net.sim.now + 5)
    assert quencher.quenches_sent == 0


# ----------------------------------------------------------------------
# The dedicated quench budget in Node._send_icmp (regression: quench
# used to share the one-error-per-(type, source)-per-interval limiter,
# so a congestion storm got exactly one quench per second through —
# and any other error to the same source could starve even that).
# ----------------------------------------------------------------------
def test_quench_budget_allows_a_burst_then_caps():
    net, h1, h2, g = congested_net()
    node = g.node
    offending = icmp.echo_request(h1.address, h2.address, 1, 1, b"x")
    offending.protocol = 17  # pretend-UDP so nothing filters it
    before = node.stats.icmp_sent
    for _ in range(20):
        node._send_icmp(icmp.source_quench(node.address, offending))
    sent = node.stats.icmp_sent - before
    assert sent == node.quench_budget           # burst capped, not 1
    assert node.quench_suppressed == 20 - node.quench_budget


def test_quench_budget_refills_each_interval():
    net, h1, h2, g = congested_net()
    node = g.node
    offending = icmp.echo_request(h1.address, h2.address, 1, 1, b"x")
    offending.protocol = 17
    before = node.stats.icmp_sent
    for _ in range(node.quench_budget + 5):
        node._send_icmp(icmp.source_quench(node.address, offending))
    net.sim.run(until=net.sim.now + node.icmp_error_interval + 0.01)
    for _ in range(node.quench_budget + 5):
        node._send_icmp(icmp.source_quench(node.address, offending))
    assert node.stats.icmp_sent - before == 2 * node.quench_budget


def test_quench_budget_independent_of_other_icmp_errors():
    net, h1, h2, g = congested_net()
    node = g.node
    offending = icmp.echo_request(h1.address, h2.address, 1, 1, b"x")
    offending.protocol = 17
    # Exhaust the generic limiter for this source with a TTL error...
    node._send_icmp(icmp.time_exceeded(node.address, offending))
    node._send_icmp(icmp.time_exceeded(node.address, offending))
    assert node.icmp_suppressed == 1
    before = node.stats.icmp_sent
    # ...and quenches still flow on their own budget.
    for _ in range(node.quench_budget):
        node._send_icmp(icmp.source_quench(node.address, offending))
    assert node.stats.icmp_sent - before == node.quench_budget
    assert node.quench_suppressed == 0


def test_quench_budget_is_per_source():
    net, h1, h2, g = congested_net()
    node = g.node
    budget = node.quench_budget
    before = node.stats.icmp_sent
    for victim in (h1, h2):
        offending = icmp.echo_request(victim.address, node.address, 1, 1,
                                      b"x")
        offending.protocol = 17
        for _ in range(budget + 3):
            node._send_icmp(icmp.source_quench(node.address, offending))
    # Each source got its own full budget; neither stole the other's.
    assert node.stats.icmp_sent - before == 2 * budget


# ----------------------------------------------------------------------
# Traceroute
# ----------------------------------------------------------------------
def chain_net(hops=3, seed=82):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    gws = [net.gateway(f"G{i}") for i in range(1, hops + 1)]
    prev = h1
    for gw in gws:
        net.connect(prev, gw, bandwidth_bps=1e6, delay=0.005)
        prev = gw
    net.connect(prev, h2, bandwidth_bps=1e6, delay=0.005)
    net.start_routing()
    net.converge(settle=10.0)
    return net, h1, h2, gws


def test_traceroute_discovers_path():
    net, h1, h2, gws = chain_net(hops=3)
    done = []
    trace = Traceroute(h1.node, h2.address, on_complete=done.append)
    trace.start()
    net.sim.run(until=net.sim.now + 60)
    assert done
    hops = done[0]
    assert len(hops) == 4                      # 3 gateways + destination
    assert hops[-1].reached_destination
    assert hops[-1].reporter == h2.address
    # Each transit hop was reported by a distinct gateway.
    reporters = [str(h.reporter) for h in hops[:-1]]
    assert len(set(reporters)) == 3


def test_traceroute_rtt_increases_along_path():
    net, h1, h2, gws = chain_net(hops=4)
    trace = Traceroute(h1.node, h2.address)
    trace.start()
    net.sim.run(until=net.sim.now + 60)
    rtts = [h.rtt for h in trace.hops if h.rtt is not None]
    assert rtts == sorted(rtts)


def test_traceroute_reports_black_hole():
    net, h1, h2, gws = chain_net(hops=3)
    # Cut the chain after the first gateway mid-run: probes beyond vanish.
    trace = Traceroute(h1.node, h2.address, max_ttl=5, probe_timeout=1.0)
    # Break connectivity past G1 BEFORE starting, but keep routing state
    # fresh enough that G1 still forwards toward a void: crash G2.
    gws[1].node.up = False
    trace.start()
    net.sim.run(until=net.sim.now + 120)
    assert trace.finished
    assert any(h.reporter is None for h in trace.hops)
    assert not any(h.reached_destination for h in trace.hops)


def test_traceroute_render():
    net, h1, h2, gws = chain_net(hops=2)
    trace = Traceroute(h1.node, h2.address)
    trace.start()
    net.sim.run(until=net.sim.now + 60)
    text = trace.render()
    assert "traceroute to" in text
    assert "destination" in text
