"""Chaos layer: fault campaigns, invariant monitors, seeded determinism.

The acceptance campaign here is the ISSUE's scripted scenario — a gateway
crash, two link flaps and a partition against the two-tier AS-chain preset —
which must complete with zero invariant violations and a finite
reconvergence time for every fault.
"""

import pytest

from repro.chaos import (
    BlackoutDeliveryMonitor,
    FaultCampaign,
    ForwardingLoopMonitor,
    GatewayCrash,
    LinkFlap,
    Partition,
    RandomChaos,
    ReconvergenceMonitor,
    control_plane_path,
    default_monitors,
    total_drops,
)
from repro.harness.presets import build_as_chain
from repro.harness.topology import Internet
from repro.ip.address import Address, Prefix
from repro.routing.static import add_static_route
from repro.sim.trace import Tracer
from repro.tcp.connection import TcpConfig


# ----------------------------------------------------------------------
# The acceptance campaign: scripted faults on the two-tier preset
# ----------------------------------------------------------------------

def test_scripted_campaign_two_tier_zero_violations():
    topo = build_as_chain(3, seed=5)
    net = topo.net
    net.tracer = Tracer(capacity=20_000)
    now = net.sim.now
    # Link index map (build order): 0=H1-I1, 1=I1-B1, 2=H2-I2, 3=I2-B2,
    # 4=H3-I3, 5=I3-B3, 6=B1-B2, 7=B2-B3.
    faults = [
        GatewayCrash("I2", now + 2.0, 1.5),
        LinkFlap(6, now + 9.0, 1.0),          # inter-AS trunk B1<->B2
        LinkFlap(0, now + 16.0, 1.0),         # H1 access link
        Partition(["B3"], now + 23.0, 2.0),   # AS3 beyond its border
    ]
    campaign = FaultCampaign(net, faults, name="acceptance")
    report = campaign.run()

    assert report.ok, f"unexpected violations: {report.violations}"
    assert report.all_reconverged
    assert len(report.faults) == 4
    for fault in faults:
        assert fault.applied_at is not None
        assert fault.cleared_at is not None
        assert fault.reconvergence_time is not None
        assert 0.0 <= fault.reconvergence_time < 30.0
    # The partition actually cut both of B3's links.
    assert "2 links cut" in faults[-1].describe()
    # The report serializes and renders without error.
    payload = report.to_dict()
    assert payload["campaign"] == "acceptance"
    assert len(payload["faults"]) == 4
    assert report.render()


def test_campaign_runs_only_once():
    topo = build_as_chain(2, seed=3, settle=5.0)
    campaign = FaultCampaign(topo.net, [], monitors=[])
    campaign.run(until=topo.net.sim.now + 1.0)
    with pytest.raises(RuntimeError):
        campaign.run()


def test_blackout_loss_attributed_to_fault():
    topo = build_as_chain(2, seed=9, settle=10.0)
    net = topo.net
    now = net.sim.now
    fault = GatewayCrash("I1", now + 1.0, 2.0)
    campaign = FaultCampaign(net, [fault], monitors=[])
    # Steady traffic from H1 so the crash window has something to kill.
    h1 = topo.hosts[1].node

    def ping(i=0):
        h1.send(Address("10.2.1.10"), 253, b"x" * 64)
        if i < 40:
            net.sim.schedule(0.1, lambda: ping(i + 1))

    net.sim.schedule(0.5, ping)
    report = campaign.run(until=now + 10.0)
    assert fault.packets_lost_blackout > 0
    assert report.packets_lost_blackout == fault.packets_lost_blackout
    assert total_drops(net) >= fault.packets_lost_blackout


# ----------------------------------------------------------------------
# Seeded determinism: same seed => byte-identical campaign report
# ----------------------------------------------------------------------

def _run_seeded_campaign(seed: int) -> str:
    topo = build_as_chain(3, seed=seed, settle=12.0)
    net = topo.net
    chaos = RandomChaos(net, budget=3, rate=0.5, start=net.sim.now + 2.0)
    report = chaos.campaign(name="determinism").run()
    return report.to_json()

def test_random_chaos_is_reproducible():
    first = _run_seeded_campaign(11)
    second = _run_seeded_campaign(11)
    assert first == second  # byte-identical canonical JSON


def test_random_chaos_schedule_is_seed_dependent():
    topo_a = build_as_chain(2, seed=11, settle=1.0)
    topo_b = build_as_chain(2, seed=12, settle=1.0)
    sched_a = RandomChaos(topo_a.net, budget=5).generate()
    sched_b = RandomChaos(topo_b.net, budget=5).generate()
    assert [(f.kind, f.at) for f in sched_a] != \
           [(f.kind, f.at) for f in sched_b]


def test_random_chaos_respects_budget_and_dwell():
    topo = build_as_chain(2, seed=4, settle=1.0)
    chaos = RandomChaos(topo.net, budget=10, dwell=(0.25, 0.75), start=3.0)
    faults = chaos.generate()
    assert len(faults) == 10
    for fault in faults:
        assert fault.at >= 3.0
        assert 0.25 <= fault.duration <= 0.75
        assert fault.kind in ("link-flap", "gateway-crash", "partition")


# ----------------------------------------------------------------------
# Faults as objects
# ----------------------------------------------------------------------

def test_partition_cuts_exactly_the_crossing_links():
    topo = build_as_chain(3, seed=7, settle=1.0)
    net = topo.net
    # {B3, I3, H3} versus the rest: only the B2<->B3 trunk crosses.
    cut = net.cut_links({"B3", "I3", "H3"})
    assert len(cut) == 1
    assert set(net.link_endpoints(cut[0])) == {"B2", "B3"}
    fault = Partition(["B3", "I3", "H3"], 1.0, 2.0)
    fault.apply(net)
    assert not cut[0].is_up()
    fault.clear(net)
    assert cut[0].is_up()


def test_partition_of_unknown_node_raises():
    topo = build_as_chain(2, seed=7, settle=1.0)
    with pytest.raises(KeyError):
        topo.net.cut_links({"nonesuch"})


def test_link_flap_resolves_indices():
    topo = build_as_chain(2, seed=7, settle=1.0)
    net = topo.net
    fault = LinkFlap(0, 1.0, 1.0)
    fault.apply(net)
    assert not net.links[0].is_up()
    fault.clear(net)
    assert net.links[0].is_up()
    with pytest.raises(IndexError):
        LinkFlap(99, 1.0, 1.0).apply(net)


def test_fault_validation():
    with pytest.raises(ValueError):
        GatewayCrash("G", -1.0, 1.0)
    with pytest.raises(ValueError):
        GatewayCrash("G", 1.0, 0.0)
    with pytest.raises(ValueError):
        RandomChaos(object(), budget=-1)
    with pytest.raises(ValueError):
        RandomChaos(object(), dwell=(0.0, 1.0))


# ----------------------------------------------------------------------
# Monitors
# ----------------------------------------------------------------------

def test_forwarding_loop_monitor_catches_a_real_loop():
    net = Internet(seed=2)
    a, b = net.gateway("A"), net.gateway("B")
    net.connect(a, b)
    # A deliberately broken static configuration: each gateway routes the
    # phantom prefix through the other.
    phantom = Prefix.parse("10.99.0.0/24")
    addr_a = a.node.interfaces[0].address
    addr_b = b.node.interfaces[0].address
    add_static_route(a.node, phantom, addr_b)
    add_static_route(b.node, phantom, addr_a)

    monitor = ForwardingLoopMonitor()
    monitor.attach(net, None)
    a.node.send(phantom.host(5), 253, b"doomed", ttl=16)
    net.sim.run(until=2.0)
    monitor.detach()
    assert monitor.violations, "loop went undetected"
    assert "forwarding loop" in monitor.violations[0].detail
    # Detach really removed the inspectors.
    assert not a.node.forward_inspectors and not b.node.forward_inspectors


def test_loop_monitor_quiet_on_healthy_network():
    topo = build_as_chain(2, seed=6)
    net = topo.net
    monitor = ForwardingLoopMonitor()
    campaign = FaultCampaign(net, [], monitors=[monitor])
    h1 = topo.hosts[1].node
    for i in range(5):
        net.sim.schedule(0.2 * i,
                         lambda: h1.send(Address("10.2.1.10"), 253, b"ok"))
    campaign.run(until=net.sim.now + 5.0)
    assert monitor.violations == []
    assert monitor.packets_tracked > 0


def test_blackout_delivery_monitor_flags_resurrection():
    topo = build_as_chain(2, seed=8, settle=5.0)
    net = topo.net
    monitor = BlackoutDeliveryMonitor()
    fault = GatewayCrash("I1", net.sim.now + 1.0, 2.0)
    campaign = FaultCampaign(net, [fault], monitors=[monitor])
    node = topo.interiors[1].node

    # Simulate a resurrection bug by force-bumping the delivered counter
    # mid-blackout (the real stack, post-fix, never does this).
    def corrupt():
        node.stats.delivered += 1

    net.sim.schedule(2.0, corrupt)
    campaign.run(until=net.sim.now + 8.0)
    assert any("while crashed" in v.detail for v in monitor.violations)


def test_reconvergence_monitor_flags_never_reconverged():
    topo = build_as_chain(2, seed=10, settle=8.0)
    net = topo.net
    monitor = ReconvergenceMonitor(bound=5.0)
    # Permanently sever the inter-AS trunk: flap down, restore the *other*
    # access link instead — i.e. use a raw Fault pair we control.
    trunk = net.links[-1]
    fault = LinkFlap(len(net.links) - 1, net.sim.now + 1.0, 1.0)

    # Sabotage: once restored, immediately fail it again outside any fault,
    # so reachability never comes back before the campaign ends.
    orig_clear = fault.clear
    def clear_and_sabotage(n):
        orig_clear(n)
        n.fail_link(trunk)
    fault.clear = clear_and_sabotage

    campaign = FaultCampaign(net, [fault], monitors=[monitor])
    campaign.run(until=net.sim.now + 10.0)
    assert any("never reconverged" in v.detail for v in monitor.violations)


def test_default_monitor_suite_composition():
    names = {m.name for m in default_monitors()}
    assert names == {
        "no-forwarding-loop",
        "ttl-exhaustion-bounded",
        "crashed-node-silent",
        "reconvergence-bounded",
        "tcp-survives-partition",
        "half-open-zombie-shed",
        "quiet-time-honored",
    }


# ----------------------------------------------------------------------
# Control-plane probing
# ----------------------------------------------------------------------

def test_control_plane_path_counts_hops_and_sees_cuts():
    topo = build_as_chain(2, seed=13)
    net = topo.net
    owners = net.address_owners()
    h1, h2 = topo.hosts[1].node, topo.hosts[2].node
    hops = control_plane_path(owners, h1, h2.address)
    # H1 -> I1 -> B1 -> B2 -> I2 -> H2
    assert hops == 5
    # Cut the trunk: the control plane sees it immediately (down iface).
    trunk = net.links[-1]
    net.fail_link(trunk)
    assert control_plane_path(net.address_owners(), h1, h2.address) is None
    net.restore_link(trunk)
    assert control_plane_path(net.address_owners(), h1, h2.address) == 5


def test_tcp_death_threshold_bounds():
    fixed = TcpConfig(rto="fixed", rto_kwargs={"value": 2.0},
                      max_retransmits=3)
    assert fixed.death_threshold() == pytest.approx(8.0)
    backoff = TcpConfig(rto="jacobson",
                        rto_kwargs={"min_rto": 1.0, "max_rto": 4.0},
                        max_retransmits=4)
    # 1 + 2 + 4 + 4 + 4 = 15: exponential backoff capped by max_rto.
    assert backoff.death_threshold() == pytest.approx(15.0)


def test_tcp_survives_short_trunk_flap():
    # The goal-1 headline, end to end: an established connection rides out
    # a trunk outage far shorter than its RTO-backoff death threshold.
    topo = build_as_chain(2, seed=14)
    net = topo.net
    received = []
    topo.hosts[2].listen(9000, lambda s: setattr(s, "on_data", received.append))
    sock = topo.hosts[1].connect(Address("10.2.1.10"), 9000)
    net.sim.run(until=net.sim.now + 2.0)
    assert sock.established

    from repro.chaos import TcpSurvivalMonitor
    monitor = TcpSurvivalMonitor()
    trunk_flap = LinkFlap(len(net.links) - 1, net.sim.now + 1.0, 1.5)
    campaign = FaultCampaign(net, [trunk_flap], monitors=[monitor])
    campaign.watch_connection(sock, "h1->h2")
    sock.write(b"k" * 2000)  # keep segments in flight across the flap
    report = campaign.run(until=net.sim.now + 20.0)
    assert sock.established, "connection died during a survivable outage"
    assert monitor.violations == []
    assert report.ok and report.all_reconverged
    assert received and sum(len(b) for b in received) == 2000
