"""Property-based end-to-end TCP tests: the invariant that matters.

Whatever the loss pattern, the write pattern, the reordering or the
configuration, a TCP stream that completes must deliver exactly the bytes
written, in order, once.  Hypothesis drives the workload and environment;
the simulator's determinism makes every failure replayable.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.netlayer.loss import BernoulliLoss
from repro.netlayer.radio import PacketRadioLink
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.tcp.stack import TcpStack


def pair(sim, link_cls=PointToPointLink, **kwargs):
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    link_cls(sim, ia, ib, **kwargs)
    return a, b


SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@SLOW
@given(
    chunks=st.lists(st.binary(min_size=1, max_size=2000), min_size=1,
                    max_size=12),
    loss=st.sampled_from([0.0, 0.03, 0.08, 0.15]),
    seed=st.integers(min_value=0, max_value=10_000),
    nagle=st.booleans(),
    repacketize=st.booleans(),
)
def test_stream_integrity_under_loss(chunks, loss, seed, nagle, repacketize):
    sim = Simulator()
    a, b = pair(sim, bandwidth_bps=2e6, delay=0.005,
                loss=BernoulliLoss(loss), rng=random.Random(seed),
                queue_limit=256)
    sa, sb = TcpStack(a), TcpStack(b)
    received = bytearray()

    def accept(conn):
        conn.on_receive = received.extend

    sb.listen(80, accept)
    config = TcpConfig(nagle=nagle, repacketize=repacketize)
    conn = sa.connect("10.0.1.2", 80, config=config)
    expected = b"".join(chunks)
    state = {"i": 0}

    def send_next():
        if state["i"] < len(chunks):
            # send() may accept partially; loop with the ready callback.
            chunk = chunks[state["i"]]
            accepted = conn.send(chunk)
            if accepted < len(chunk):
                chunks[state["i"]] = chunk[accepted:]
            else:
                state["i"] += 1
            sim.schedule(0.01, send_next)

    conn.on_established = send_next
    sim.run(until=600)
    assert bytes(received) == expected


@SLOW
@given(
    payload_size=st.integers(min_value=1, max_value=30_000),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_stream_integrity_over_reordering_radio(payload_size, seed):
    """Radio reorders and burst-loses; the stream must still be exact."""
    sim = Simulator()
    a, b = pair(sim, link_cls=PacketRadioLink, rng=random.Random(seed),
                bandwidth_bps=500_000, queue_limit=128)
    sa, sb = TcpStack(a), TcpStack(b)
    received = bytearray()
    sb.listen(80, lambda c: setattr(c, "on_receive", received.extend))
    conn = sa.connect("10.0.1.2", 80)
    payload = bytes((i * 31 + seed) % 256 for i in range(payload_size))
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=900)
    # Integrity is unconditional: whatever arrived is an exact prefix.
    assert bytes(received) == payload[: len(received)]
    # Completeness holds unless the connection legitimately gave up (a
    # Gilbert-Elliott bad burst can outlast the retransmission budget —
    # at which point TCP reports failure rather than delivering garbage).
    from repro.tcp.state import TcpState
    if conn.state is not TcpState.CLOSED or conn.stats.retransmit_timeouts <= conn.config.max_retransmits:
        expected = min(payload_size, conn.config.send_buffer)
        if len(received) != expected:
            assert conn.state is TcpState.CLOSED  # gave up mid-stream


@SLOW
@given(
    write_sizes=st.lists(st.integers(min_value=1, max_value=5),
                         min_size=5, max_size=40),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_tiny_writes_never_duplicate_or_reorder(write_sizes, seed):
    """The Nagle/PSH/repacketization machinery must never corrupt the
    stream even for pathological tiny-write patterns under loss."""
    sim = Simulator()
    a, b = pair(sim, bandwidth_bps=1e6, delay=0.01,
                loss=BernoulliLoss(0.1), rng=random.Random(seed),
                queue_limit=128)
    sa, sb = TcpStack(a), TcpStack(b)
    received = bytearray()
    sb.listen(80, lambda c: setattr(c, "on_receive", received.extend))
    conn = sa.connect("10.0.1.2", 80)
    # Tag every byte with its position so duplication/reordering is detectable.
    stream = bytearray()
    for size in write_sizes:
        for _ in range(size):
            stream.append(len(stream) % 251)
    expected = bytes(stream)
    pos = {"i": 0}

    def typing():
        if pos["i"] < len(write_sizes):
            size = write_sizes[pos["i"]]
            start = sum(write_sizes[: pos["i"]])
            conn.send(expected[start : start + size])
            pos["i"] += 1
            sim.schedule(0.02, typing)

    conn.on_established = typing
    sim.run(until=600)
    assert bytes(received) == expected


@SLOW
@given(
    cuts=st.lists(st.integers(min_value=1, max_value=2000),
                  min_size=1, max_size=15),
    big_window=st.booleans(),
)
def test_congestion_avoidance_growth_is_partition_invariant(cuts, big_window):
    """RFC 3465 appropriate byte counting: in congestion avoidance the
    window grows one MSS per cwnd's worth of *bytes* acked, so the final
    cwnd depends only on how many bytes the peer acknowledged — never on
    how the acknowledgements were partitioned.  (The packet-counting
    rule this replaced, ``cwnd += mss*mss // cwnd`` per ACK, grew with
    the ACK *count*: delayed ACKs halved it, stretch ACKs starved it,
    and at large cwnd integer division stalled it entirely.)

    Every partition whose ACKs fit inside the flight must land on the
    same final window as the finest possible partition (one byte per
    ACK), here computed as the reference trajectory.
    """
    from repro.tcp.segment import FLAG_ACK, TcpSegment, seq_add
    from repro.tcp.state import TcpState

    def run_partition(chunks):
        sim = Simulator()
        a, b = pair(sim, bandwidth_bps=1e7, delay=0.001, mtu=1500)
        sa, sb = TcpStack(a), TcpStack(b)
        sb.listen(80, lambda c: None,
                  config=TcpConfig(recv_buffer=65535))
        conn = sa.connect("10.0.1.2", 80,
                          config=TcpConfig(send_buffer=65535,
                                           recv_buffer=65535))
        sim.run(until=1.0)
        assert conn.state is TcpState.ESTABLISHED
        mss = conn.snd_mss
        # Force congestion avoidance with a known window, keep the pipe
        # full, and feed the ACK stream by hand (the peer stays silent:
        # we never run the simulator again).  Chunks are smaller than
        # cwnd, so every cumulative ACK stays inside the refilled flight.
        conn.ssthresh = 2 * mss
        start = (8 * mss) if not big_window else (32 * mss)
        conn.cwnd = start
        conn.send(b"z" * 65535)
        acked = 0
        for chunk in chunks:
            acked += chunk
            assert chunk <= conn.snd_max - conn.snd_una
            conn._process_ack(TcpSegment(
                src_port=80, dst_port=conn.local_port,
                seq=conn.rcv.rcv_next, ack=seq_add(conn.iss + 1, acked),
                flags=FLAG_ACK, window=65535))
        return conn.cwnd, mss, start

    total = sum(cuts)
    cwnd_fwd, mss, start = run_partition(cuts)
    cwnd_rev, _, _ = run_partition(list(reversed(cuts)))

    # Reference: the finest partition, one byte per ACK.
    cwnd, credit = start, 0
    for _ in range(total):
        credit += 1
        if credit >= cwnd:
            credit -= cwnd
            cwnd += mss

    assert cwnd_fwd == cwnd_rev == cwnd
    # Growth is ~1 MSS per cwnd bytes acked: bounded, and never stalled
    # by integer division at the large window.
    assert 0 <= cwnd_fwd - start <= (total // start + 1) * mss
