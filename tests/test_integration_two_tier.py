"""Integration: goal 4 — two-tier routing across autonomous systems.

Three ASes in a chain (AS2 is transit).  Each AS runs its own
distance-vector IGP, **scoped to its interior interfaces** so nothing leaks
across the boundary; borders exchange only aggregated blocks over the
path-vector EGP.  Interior gateways reach the world through a static
default toward their border — the classic stub design.
"""

import pytest

from repro import Internet
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.ip.address import Address, Prefix
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.distance_vector import DistanceVectorRouting
from repro.routing.egp import ExteriorGateway
from repro.routing.static import add_default_route


def three_as_internet(seed=31):
    net = Internet(seed=seed)
    hosts, interiors, borders, egps, igps = {}, {}, {}, {}, {}
    for n in (1, 2, 3):
        h = net.host(f"H{n}")
        interior = net.gateway(f"I{n}")
        border = net.gateway(f"B{n}")
        # Host LAN inside the AS block 10.<n>.0.0/16.
        lan = Prefix.parse(f"10.{n}.1.0/24")
        hi = h.node.add_interface(Interface(f"h{n}0", lan.host(10), lan))
        ii = interior.node.add_interface(Interface(f"i{n}0", lan.host(1), lan))
        PointToPointLink(net.sim, hi, ii, bandwidth_bps=10e6, delay=0.001)
        h.default_route(lan.host(1))
        # Interior <-> border link, numbered inside the AS block.
        core = Prefix.parse(f"10.{n}.0.0/30")
        ib = interior.node.add_interface(Interface(f"i{n}1", core.host(1), core))
        bi = border.node.add_interface(Interface(f"b{n}0", core.host(2), core))
        PointToPointLink(net.sim, ib, bi, bandwidth_bps=1e6, delay=0.002)
        # Interior gateways exit via the border.
        add_default_route(interior.node, core.host(2))
        hosts[n], interiors[n], borders[n] = h, interior, border
    # Inter-AS links: B1-B2, B2-B3 (auto-addressed /30s outside the blocks).
    net.connect(borders[1], borders[2], bandwidth_bps=256e3, delay=0.02)
    net.connect(borders[2], borders[3], bandwidth_bps=256e3, delay=0.02)

    # Scoped IGPs: interiors speak on all their interfaces; borders speak
    # ONLY on the interface facing their interior.
    for n in (1, 2, 3):
        igp_i = DistanceVectorRouting(interiors[n].node, interiors[n].udp,
                                      period=1.0)
        igp_i.start()
        intra_iface = borders[n].node.interface_by_name(f"b{n}0")
        igp_b = DistanceVectorRouting(borders[n].node, borders[n].udp,
                                      period=1.0, interfaces=[intra_iface])
        igp_b.start()
        igps[n] = (igp_i, igp_b)

    # EGP sessions between borders.
    def shared_peer_address(mine, theirs):
        for iface in theirs.node.interfaces:
            for local in mine.node.interfaces:
                if local.prefix == iface.prefix and local is not iface:
                    return iface.address
        raise AssertionError("no shared subnet")

    for n in (1, 2, 3):
        egp = ExteriorGateway(borders[n].node, borders[n].udp,
                              local_as=n, period=1.0)
        egp.originate(Prefix.parse(f"10.{n}.0.0/16"))
        egps[n] = egp
    egps[1].add_peer(shared_peer_address(borders[1], borders[2]), 2)
    egps[2].add_peer(shared_peer_address(borders[2], borders[1]), 1)
    egps[2].add_peer(shared_peer_address(borders[2], borders[3]), 3)
    egps[3].add_peer(shared_peer_address(borders[3], borders[2]), 2)
    for egp in egps.values():
        egp.start()
    net.converge(settle=15.0)
    return net, hosts, interiors, borders, egps


@pytest.fixture(scope="module")
def two_tier():
    return three_as_internet()


def test_egp_learns_remote_blocks(two_tier):
    net, hosts, interiors, borders, egps = two_tier
    assert egps[1].best_path(Prefix.parse("10.2.0.0/16")) == (2,)
    assert egps[1].best_path(Prefix.parse("10.3.0.0/16")) == (2, 3)
    assert egps[3].best_path(Prefix.parse("10.1.0.0/16")) == (2, 1)


def test_border_tables_aggregate_not_enumerate(two_tier):
    """The inter-AS layer carries one /16 per AS, not interior detail."""
    net, hosts, interiors, borders, egps = two_tier
    egp_routes = [r for r in borders[1].node.routes.routes()
                  if r.source == "egp"]
    assert len(egp_routes) == 2
    assert all(r.prefix.length == 16 for r in egp_routes)


def test_no_igp_leak_across_boundary(two_tier):
    """B1 must know AS3's /24 only through the aggregated EGP /16 —
    never as a DV route learned across the boundary."""
    net, hosts, interiors, borders, egps = two_tier
    for r in borders[1].node.routes.routes():
        if r.source == "dv":
            assert Prefix.parse("10.1.0.0/16").covers(r.prefix), str(r)
    route = borders[1].node.routes.lookup("10.3.1.10")
    assert route.source == "egp"


def test_end_to_end_transfer_across_three_ases(two_tier):
    net, hosts, interiors, borders, egps = two_tier
    receiver = FileReceiver(hosts[3], port=21)
    FileSender(hosts[1], hosts[3].address, 21, size=60_000)
    net.sim.run(until=net.sim.now + 240)
    assert len(receiver.results) == 1
    assert receiver.results[0].bytes_transferred == 60_000
    # Transit flowed through AS2's border.
    assert borders[2].node.stats.forwarded > 0


def test_igp_flap_does_not_disturb_remote_as(two_tier):
    net, hosts, interiors, borders, egps = two_tier
    table_before = egps[1].table_size
    interiors[3].node.crash()
    net.sim.run(until=net.sim.now + 10)
    interiors[3].node.restore()
    net.sim.run(until=net.sim.now + 10)
    assert egps[1].table_size == table_before
    assert egps[1].best_path(Prefix.parse("10.3.0.0/16")) == (2, 3)
