"""Unit and property tests for fragmentation and reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ip.address import Address
from repro.ip.fragmentation import (
    FragmentationError,
    Reassembler,
    fragment,
)
from repro.ip.packet import Datagram, IP_HEADER_LEN, PROTO_UDP
from repro.sim.engine import Simulator


def make(payload, **kwargs):
    defaults = dict(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                    protocol=PROTO_UDP, payload=payload, ident=7)
    defaults.update(kwargs)
    return Datagram(**defaults)


# ----------------------------------------------------------------------
# fragment()
# ----------------------------------------------------------------------
def test_fitting_datagram_passes_through():
    d = make(b"x" * 100)
    assert fragment(d, 1500) == [d]


def test_split_into_fragments():
    d = make(b"x" * 1000)
    pieces = fragment(d, 300)
    assert len(pieces) > 1
    assert all(p.total_length <= 300 for p in pieces)


def test_all_but_last_are_multiples_of_eight():
    pieces = fragment(make(b"x" * 1000), 300)
    for p in pieces[:-1]:
        assert len(p.payload) % 8 == 0


def test_mf_flags():
    pieces = fragment(make(b"x" * 1000), 300)
    assert all(p.more_fragments for p in pieces[:-1])
    assert not pieces[-1].more_fragments


def test_offsets_are_contiguous():
    pieces = fragment(make(b"x" * 1000), 300)
    position = 0
    for p in pieces:
        assert p.fragment_offset * 8 == position
        position += len(p.payload)
    assert position == 1000


def test_ident_preserved():
    pieces = fragment(make(b"x" * 1000, ident=42), 300)
    assert all(p.ident == 42 for p in pieces)


def test_df_blocks_fragmentation():
    with pytest.raises(FragmentationError):
        fragment(make(b"x" * 1000, dont_fragment=True), 300)


def test_absurd_mtu_rejected():
    with pytest.raises(FragmentationError):
        fragment(make(b"x" * 1000), IP_HEADER_LEN + 4)


def test_refragmenting_a_fragment_preserves_absolute_offsets():
    first_pass = fragment(make(b"x" * 2000), 1000)
    second_pass = fragment(first_pass[1], 300)
    base = first_pass[1].fragment_offset
    assert second_pass[0].fragment_offset == base
    # Middle fragment of a fragmented datagram keeps MF set on its last piece.
    assert all(p.more_fragments for p in second_pass) or not first_pass[1].more_fragments


# ----------------------------------------------------------------------
# Reassembler
# ----------------------------------------------------------------------
def reassemble_all(pieces, sim=None):
    sim = sim or Simulator()
    r = Reassembler(sim)
    out = None
    for p in pieces:
        result = r.accept(p)
        if result is not None:
            out = result
    return out, r


def test_in_order_reassembly():
    payload = bytes(range(256)) * 4
    out, _ = reassemble_all(fragment(make(payload), 300))
    assert out is not None
    assert out.payload == payload


def test_reverse_order_reassembly():
    payload = bytes(range(256)) * 4
    out, _ = reassemble_all(list(reversed(fragment(make(payload), 300))))
    assert out is not None and out.payload == payload


def test_duplicate_fragments_ignored():
    payload = b"y" * 500
    pieces = fragment(make(payload), 200)
    out, r = reassemble_all(pieces + [pieces[0]])
    assert out is not None and out.payload == payload
    # Feeding dup after completion starts a new buffer; count at least 1 dup
    # during or after. Check the simpler in-flight dup case explicitly:
    sim = Simulator()
    r2 = Reassembler(sim)
    r2.accept(pieces[0])
    r2.accept(pieces[0])
    assert r2.stats.duplicate_fragments == 1


def test_missing_fragment_blocks_completion():
    pieces = fragment(make(b"z" * 600), 200)
    sim = Simulator()
    r = Reassembler(sim)
    for p in pieces[:-1]:
        assert r.accept(p) is None
    assert r.in_progress == 1


def test_unfragmented_passes_straight_through():
    sim = Simulator()
    r = Reassembler(sim)
    d = make(b"small")
    assert r.accept(d) is d


def test_interleaved_datagrams_reassemble_independently():
    a = fragment(make(b"a" * 500, ident=1), 200)
    b = fragment(make(b"b" * 500, ident=2), 200)
    sim = Simulator()
    r = Reassembler(sim)
    results = []
    for pa, pb in zip(a, b):
        for piece in (pa, pb):
            got = r.accept(piece)
            if got is not None:
                results.append(got)
    assert sorted(x.payload[0:1] for x in results) == [b"a", b"b"]


def test_timeout_discards_partial():
    sim = Simulator()
    timed_out = []
    r = Reassembler(sim, timeout=5.0, on_timeout=timed_out.append)
    pieces = fragment(make(b"q" * 600), 200)
    r.accept(pieces[0])
    sim.run(until=10.0)
    assert r.in_progress == 0
    assert r.stats.reassembly_timeouts == 1
    assert len(timed_out) == 1


def test_completion_cancels_nothing_but_buffer_removed():
    sim = Simulator()
    r = Reassembler(sim, timeout=5.0)
    pieces = fragment(make(b"q" * 600), 200)
    for p in pieces:
        r.accept(p)
    sim.run(until=10.0)
    assert r.stats.reassembly_timeouts == 0
    assert r.stats.datagrams_reassembled == 1


def test_reassembled_datagram_is_not_a_fragment():
    out, _ = reassemble_all(fragment(make(b"w" * 500), 200))
    assert not out.is_fragment


@settings(max_examples=50)
@given(payload=st.binary(min_size=1, max_size=3000),
       mtu=st.integers(min_value=IP_HEADER_LEN + 8, max_value=1500))
def test_fragment_reassemble_round_trip(payload, mtu):
    out, _ = reassemble_all(fragment(make(payload), mtu))
    assert out is not None
    assert out.payload == payload


@settings(max_examples=30)
@given(payload=st.binary(min_size=64, max_size=2000),
       mtu=st.integers(min_value=IP_HEADER_LEN + 8, max_value=400),
       seed=st.integers(min_value=0, max_value=1000))
def test_reassembly_order_independent(payload, mtu, seed):
    import random
    pieces = fragment(make(payload), mtu)
    random.Random(seed).shuffle(pieces)
    out, _ = reassemble_all(pieces)
    assert out is not None and out.payload == payload


def test_key_reuse_after_completion_not_expired_by_stale_timer():
    """Regression: completing a reassembly must cancel its timeout.

    Before the fix, the timer of a *completed* buffer kept running; when
    the same (src,dst,proto,ident) key was reused, the stale timer fired
    and prematurely expired the brand-new buffer.
    """
    sim = Simulator()
    timed_out = []
    r = Reassembler(sim, timeout=15.0, on_timeout=timed_out.append)
    # First datagram with ident=9 completes immediately at t=0.
    out = [r.accept(p) for p in fragment(make(b"x" * 1000, ident=9), 300)]
    assert out[-1] is not None and out[-1].payload == b"x" * 1000
    # Just before the stale timer would fire (t=15), reuse the key.
    sim.run(until=14.0)
    pieces2 = fragment(make(b"y" * 1000, ident=9), 300)
    for p in pieces2[:-1]:
        assert r.accept(p) is None
    # Cross t=15: the stale timer must NOT expire the new buffer.
    sim.run(until=16.0)
    assert r.stats.reassembly_timeouts == 0
    assert timed_out == []
    assert r.in_progress == 1
    done = r.accept(pieces2[-1])
    assert done is not None and done.payload == b"y" * 1000
    # The new buffer's own timer was cancelled on completion too.
    sim.run(until=60.0)
    assert r.stats.reassembly_timeouts == 0


def test_completion_leaves_no_live_timer_event():
    sim = Simulator()
    r = Reassembler(sim, timeout=5.0)
    for p in fragment(make(b"z" * 500, ident=3), 200):
        r.accept(p)
    assert r.stats.datagrams_reassembled == 1
    # The reassembly timer was cancelled, so nothing remains pending.
    assert sim.pending == 0
