"""Unit tests for the longest-prefix-match route table."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.forwarding import NoRouteError, Route, RouteTable
from repro.netlayer.link import Interface


def iface(name="if0", addr="10.0.0.1", pfx="10.0.0.0/24"):
    return Interface(name, Address(addr), Prefix.parse(pfx))


def route(prefix, ifc=None, next_hop=None, metric=0, source="static"):
    return Route(Prefix.parse(prefix), ifc or iface(),
                 Address(next_hop) if next_hop else None, metric, source)


def test_exact_lookup():
    table = RouteTable()
    table.install(route("10.1.0.0/16"))
    found = table.lookup("10.1.2.3")
    assert found.prefix == Prefix.parse("10.1.0.0/16")


def test_longest_prefix_wins():
    table = RouteTable()
    table.install(route("10.0.0.0/8", next_hop="10.0.0.254"))
    table.install(route("10.1.0.0/16", next_hop="10.0.0.253"))
    table.install(route("10.1.2.0/24", next_hop="10.0.0.252"))
    assert table.lookup("10.1.2.3").next_hop == Address("10.0.0.252")
    assert table.lookup("10.1.9.9").next_hop == Address("10.0.0.253")
    assert table.lookup("10.9.9.9").next_hop == Address("10.0.0.254")


def test_default_route_catches_everything():
    table = RouteTable()
    table.install(route("0.0.0.0/0", next_hop="10.0.0.254"))
    assert table.lookup("203.0.113.7").next_hop == Address("10.0.0.254")


def test_no_route_raises():
    table = RouteTable()
    table.install(route("10.0.0.0/8"))
    with pytest.raises(NoRouteError):
        table.lookup("192.168.1.1")


def test_no_route_error_carries_destination():
    table = RouteTable()
    try:
        table.lookup("192.168.1.1")
    except NoRouteError as e:
        assert e.destination == Address("192.168.1.1")


def test_install_replaces_same_prefix():
    table = RouteTable()
    table.install(route("10.0.0.0/8", metric=5))
    table.install(route("10.0.0.0/8", metric=2))
    assert len(table) == 1
    assert table.lookup("10.1.1.1").metric == 2


def test_withdraw():
    table = RouteTable()
    table.install(route("10.0.0.0/8"))
    assert table.withdraw(Prefix.parse("10.0.0.0/8"))
    assert not table.withdraw(Prefix.parse("10.0.0.0/8"))
    assert len(table) == 0


def test_withdraw_by_source():
    table = RouteTable()
    table.install(route("10.0.0.0/8", source="dv"))
    table.install(route("10.1.0.0/16", source="dv"))
    table.install(route("10.2.0.0/16", source="static"))
    assert table.withdraw_by_source("dv") == 2
    assert len(table) == 1
    assert table.lookup("10.2.3.4").source == "static"


def test_contains_and_get():
    table = RouteTable()
    r = route("10.0.0.0/8")
    table.install(r)
    assert Prefix.parse("10.0.0.0/8") in table
    assert table.get(Prefix.parse("10.0.0.0/8")) is r
    assert table.get(Prefix.parse("10.0.0.0/9")) is None


def test_routes_iteration_most_specific_first():
    table = RouteTable()
    table.install(route("10.0.0.0/8"))
    table.install(route("10.1.2.0/24"))
    table.install(route("10.1.0.0/16"))
    lengths = [r.prefix.length for r in table.routes()]
    assert lengths == [24, 16, 8]


def test_host_route_beats_everything():
    table = RouteTable()
    table.install(route("0.0.0.0/0", next_hop="10.0.0.1"))
    table.install(route("10.1.2.3/32", next_hop="10.0.0.2"))
    assert table.lookup("10.1.2.3").next_hop == Address("10.0.0.2")


def test_route_str_direct_vs_via():
    direct = route("10.0.0.0/24")
    via = route("10.1.0.0/16", next_hop="10.0.0.254")
    assert "direct" in str(direct)
    assert "via 10.0.0.254" in str(via)
