"""Adversary units: byzantine gateway behaviors and fuzz-leg contracts.

Each ByzantineGateway behavior is exercised on a small transit chain
(H1 — G1 — GB — G2 — H2, decoy D off G2) with a bulk TCP stream crossing
the lying gateway.  The invariant under every lie is the same end-to-end
argument the campaign scores: the application stream is never corrupted,
and the lie leaves a signature in exactly the counters the management
plane watches.  The full campaign (alarms, MTTD, rollouts) runs in CI's
adversary-smoke job; these tests pin the mechanisms it relies on.
"""

import pytest

from repro.adversary.campaign import (_run_mgmt_leg, _run_session_leg,
                                      _run_tcp_leg)
from repro.chaos.faults import ByzantineGateway
from repro.harness.topology import Internet


def byz_chain(seed=7):
    net = Internet(seed=seed)
    h1 = net.host("H1")
    h2 = net.host("H2")
    decoy = net.host("D")
    g1, gb, g2 = net.gateway("G1"), net.gateway("GB"), net.gateway("G2")
    net.connect(h1, g1, delay=0.02)
    net.connect(g1, gb, delay=0.02)
    net.connect(gb, g2, delay=0.02)
    net.connect(g2, h2, delay=0.02)
    net.connect(g2, decoy, delay=0.005)
    net.start_routing(period=1.0)
    net.converge(settle=5.0)
    return net, h1, h2, decoy


def run_behavior(behavior, **fault_kwargs):
    """Bulk stream across GB while it lies for a 6 s window mid-run."""
    net, h1, h2, decoy = byz_chain()
    sim = net.sim
    t0 = sim.now

    delivered = bytearray()
    h2.listen(5000, lambda sock: setattr(sock, "on_data",
                                         delivered.extend))
    client = h1.connect(h2.address, 5000)
    chunks = []

    def pump():
        if client.established:
            chunk = bytes([len(chunks) & 0xFF]) * 96
            chunks.append(chunk)
            client.write(chunk)
        if sim.now < t0 + 12.0:
            sim.schedule(0.05, pump, label="byz.pump")
    sim.call_at(t0 + 1.0, pump, label="byz.pump")

    fault = ByzantineGateway("GB", 0.0, 6.0, behavior=behavior,
                             **fault_kwargs)
    sim.call_at(t0 + 3.0, lambda: fault.apply(net), label="byz.apply")
    sim.call_at(t0 + 9.0, lambda: fault.clear(net), label="byz.clear")
    # Past the last delayed re-injection + retransmission recovery.
    sim.run(until=t0 + 20.0)

    expected = b"".join(chunks)
    return net, fault, client, h2, decoy, bytes(delivered), expected


def test_corrupt_never_delivers_a_corrupted_byte():
    net, fault, client, h2, decoy, got, expected = run_behavior(
        "corrupt", rate=0.3)
    assert fault.perturbed > 0
    # Every flipped byte died at the receiver's checksum...
    assert h2.tcp.bad_segments > 0
    # ...so what the application saw is exactly what was sent.
    assert got == expected


def test_replay_duplicates_never_reach_the_application_twice():
    net, fault, client, h2, decoy, got, expected = run_behavior(
        "replay", rate=0.4, replay_copies=5)
    assert fault.perturbed > 0
    # Duplicates arrive as packets, but the sequence space deduplicates:
    # the byte stream is delivered exactly once, in order.
    assert got == expected


def test_misroute_lands_on_the_decoy_as_checksum_failures():
    net, fault, client, h2, decoy, got, expected = run_behavior(
        "misroute", rate=0.3, decoy="D")
    assert fault.perturbed > 0
    # The transport checksum binds the payload to the original
    # pseudo-header, so the stolen traffic is *evidence* at the decoy —
    # never a valid segment it could act on.
    assert decoy.tcp.bad_segments > 0
    assert got == expected  # retransmission repaired every theft


def test_delay_past_rto_leaves_a_timeout_signature():
    net, fault, client, h2, decoy, got, expected = run_behavior(
        "delay", rate=0.5, delay_by=3.5)
    assert fault.perturbed > 0
    assert client.conn.stats.retransmit_timeouts > 0
    assert got == expected


def test_clear_restores_the_honest_forwarder():
    net, fault, client, h2, decoy, got, expected = run_behavior(
        "corrupt", rate=0.9)
    gb = net.node_by_name("GB")
    # The monkeypatched _output is gone; the class method is back.
    assert "_output" not in gb.__dict__
    assert fault._active is False


def test_byzantine_parameter_validation():
    with pytest.raises(ValueError):
        ByzantineGateway("GB", 0.0, 5.0, behavior="lie-creatively")
    with pytest.raises(ValueError):
        ByzantineGateway("GB", 0.0, 5.0, behavior="corrupt", rate=0.0)
    with pytest.raises(ValueError):
        ByzantineGateway("GB", 0.0, 5.0, behavior="corrupt", rate=1.5)
    with pytest.raises(ValueError):
        ByzantineGateway("GB", 0.0, 5.0, behavior="misroute")


# ----------------------------------------------------------------------
# Fuzz legs: every leg is self-scoring; ok=False lists the violations.
# ----------------------------------------------------------------------
def test_tcp_fuzz_leg_contract():
    leg = _run_tcp_leg(5)
    assert leg["ok"], leg["violations"]
    assert leg["injected"] > 100
    assert leg["counters"]["syn_drops"] > 0
    assert leg["counters"]["rst_out_of_window"] > 0


def test_session_fuzz_leg_contract():
    leg = _run_session_leg(5)
    assert leg["ok"], leg["violations"]
    assert leg["injected"] > 0


def test_mgmt_fuzz_leg_contract():
    leg = _run_mgmt_leg(5)
    assert leg["ok"], leg["violations"]
    assert leg["injected"] > 0


def test_fuzz_leg_is_deterministic():
    assert _run_session_leg(11) == _run_session_leg(11)
