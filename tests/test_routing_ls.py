"""Behavioural tests for link-state routing."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.link_state import LinkStateRouting, _Lsa
from repro.sim.engine import Simulator
from repro.udp.udp import UdpStack


def build_square(sim, hello=0.5):
    """Four gateways in a ring: G1-G2-G3-G4-G1."""
    gateways, procs, links = [], [], []
    for i in range(4):
        gateways.append(Node(f"G{i+1}", sim, is_gateway=True))
    base = int(Address("10.70.0.0"))
    pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]
    for a, b in pairs:
        prefix = Prefix(Address(base), 30)
        base += 4
        ia = gateways[a].add_interface(
            Interface(f"g{a}-{b}", prefix.host(1), prefix))
        ib = gateways[b].add_interface(
            Interface(f"g{b}-{a}", prefix.host(2), prefix))
        links.append(PointToPointLink(sim, ia, ib, bandwidth_bps=1e6,
                                      delay=0.002))
    for g in gateways:
        ls = LinkStateRouting(g, UdpStack(g), hello_interval=hello)
        ls.start()
        procs.append(ls)
    return gateways, procs, links


def test_neighbors_discovered(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=5)
    assert all(len(p.neighbors) == 2 for p in procs)


def test_lsdb_converges_to_full_map(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    for p in procs:
        assert len(p.lsdb) == 4


def test_routes_installed_for_remote_prefixes(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    # G1 must reach the G2-G3 prefix.
    remote = gateways[2].interfaces[0].prefix
    route = gateways[0].routes.lookup(remote.host(1))
    assert route.source in ("ls", "connected")


def test_shortest_path_chosen(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    # From G1, the G2-G3 link should be reached via G2 (1 hop), not G4 (2).
    remote = gateways[1].interfaces[1].prefix  # G2's side of G2-G3
    route = gateways[0].routes.lookup(remote.host(1))
    assert route.metric <= 1


def test_failure_reroutes_around_ring(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    remote = gateways[1].interfaces[1].prefix
    before = gateways[0].routes.lookup(remote.host(1))
    links[0].set_up(False)  # cut G1-G2
    sim.run(until=20)
    after = gateways[0].routes.lookup(remote.host(1))
    assert after.interface is not before.interface  # went the long way


def test_dead_neighbor_detected(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    links[0].set_up(False)
    sim.run(until=20)
    assert len(procs[0].neighbors) == 1


def test_crash_flushes_lsdb_and_relearns(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    gateways[1].crash()
    assert len(procs[1].lsdb) == 0
    gateways[1].restore()
    sim.run(until=30)
    assert len(procs[1].lsdb) == 4


def test_sequence_numbers_supersede(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    lsa_v1 = procs[1].lsdb[procs[0].router_id]
    sim.run(until=40)  # refreshes happen
    lsa_v2 = procs[1].lsdb[procs[0].router_id]
    assert lsa_v2.seq >= lsa_v1.seq


def test_lsa_pack_round_trip():
    lsa = _Lsa(router_id=42, seq=7,
               neighbors=[(43, 1), (44, 5)],
               prefixes=[Prefix.parse("10.0.0.0/8"),
                         Prefix.parse("192.168.1.0/24")])
    parsed = _Lsa.unpack(lsa.pack())
    assert parsed.router_id == 42
    assert parsed.seq == 7
    assert parsed.neighbors == [(43, 1), (44, 5)]
    assert parsed.prefixes == lsa.prefixes


def test_lsa_unpack_garbage_returns_none():
    assert _Lsa.unpack(b"\x00\x01") is None
    assert _Lsa.unpack(b"\x00" * 11) is None


def test_lsdb_size_metric(sim):
    gateways, procs, links = build_square(sim)
    sim.run(until=8)
    assert procs[0].lsdb_size_bytes > 0
    # The link-state map costs far more state than DV's vector would:
    assert procs[0].lsdb_size_bytes >= 4 * 12
