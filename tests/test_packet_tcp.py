"""Behavioural tests for the packet-sequenced transport (E9 baseline)."""

import random

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.netlayer.loss import BernoulliLoss
from repro.sim.engine import Simulator
from repro.tcp.packet_tcp import PacketTpConfig, PacketTransport


def ptp_pair(sim, *, loss=None, seed=0, **link_kwargs):
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    link_kwargs.setdefault("bandwidth_bps", 1e6)
    link_kwargs.setdefault("delay", 0.01)
    PointToPointLink(sim, ia, ib, loss=loss, rng=random.Random(seed),
                     **link_kwargs)
    return PacketTransport(a), PacketTransport(b)


def serve_collect(transport, port):
    data = bytearray()
    conns = []

    def on_conn(c):
        conns.append(c)
        c.on_receive = data.extend

    transport.listen(port, on_conn)
    return conns, data


def test_handshake_and_transfer(sim):
    ta, tb = ptp_pair(sim)
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)
    conn.on_established = lambda: conn.send(b"packet world")
    sim.run(until=5)
    assert bytes(data) == b"packet world"
    assert conn.state == "OPEN"


def test_large_write_split_into_packets(sim):
    ta, tb = ptp_pair(sim)
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)
    payload = b"Q" * 5000
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=10)
    assert bytes(data) == payload
    assert conn.packets_sent == -(-5000 // conn.config.max_packet_payload)


def test_transfer_survives_loss(sim):
    ta, tb = ptp_pair(sim, loss=BernoulliLoss(0.15), seed=5)
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)
    payload = bytes(range(256)) * 40
    conn.on_established = lambda: conn.send(payload)
    sim.run(until=120)
    assert bytes(data) == payload
    assert conn.packets_retransmitted > 0


def test_ordering_preserved_per_packet(sim):
    ta, tb = ptp_pair(sim, loss=BernoulliLoss(0.2), seed=9)
    received = []
    conns = []

    def on_conn(c):
        conns.append(c)
        c.on_receive = received.append

    tb.listen(5000, on_conn)
    conn = ta.connect("10.0.1.2", 5000)
    msgs = [f"msg{i:03d}".encode() for i in range(50)]

    def go():
        for m in msgs:
            conn.send(m)

    conn.on_established = go
    sim.run(until=120)
    assert received == msgs  # packet boundaries AND order preserved


def test_no_coalescing_on_retransmit(sim):
    """The defining limitation: retransmissions resend original packets."""
    loss = BernoulliLoss(0.0)
    ta, tb = ptp_pair(sim, loss=loss)
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)
    sim.run(until=2)
    assert conn.state == "OPEN"
    loss.rate = 1.0
    for _ in range(6):
        conn.send(b"t")          # six tiny immutable packets
    sim.schedule(10.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=240)
    assert bytes(data) == b"t" * 6
    # Each packet needed its own retransmission; no coalescing possible.
    assert conn.packets_retransmitted >= 6


def test_window_limits_outstanding_packets(sim):
    ta, tb = ptp_pair(sim, bandwidth_bps=16_000)
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)
    conn.on_established = lambda: conn.send(b"w" * 40_000)
    sim.run(until=0.5)
    assert len(conn._unacked) <= conn.config.window_packets
    sim.run(until=120)
    assert bytes(data) == b"w" * 40_000


def test_close_handshake(sim):
    ta, tb = ptp_pair(sim)
    closed = []
    conns, data = serve_collect(tb, 5000)
    conn = ta.connect("10.0.1.2", 5000)

    def go():
        conn.send(b"end")
        conn.close()

    conn.on_established = go
    conn.on_close = lambda: closed.append(sim.now)
    sim.run(until=30)
    assert bytes(data) == b"end"
    assert conn.state == "DONE"
    assert closed


def test_give_up_after_max_retransmits(sim):
    loss = BernoulliLoss(1.0)
    ta, tb = ptp_pair(sim, loss=loss)
    conn = ta.connect("10.0.1.2", 5000)
    sim.run(until=600)
    assert conn.state == "DONE"
