"""Tests for TCP urgent data and receiver-side SWS avoidance."""

import pytest

from repro.netlayer.loss import BernoulliLoss
from repro.tcp.connection import TcpConfig
from repro.tcp.state import TcpState

from test_tcp_connection import accept_collect, tcp_pair


# ----------------------------------------------------------------------
# Urgent data
# ----------------------------------------------------------------------
def test_urgent_mark_signalled_to_receiver(sim):
    ca, cb, *_ = tcp_pair(sim)
    urgent_events = []
    conns, data = accept_collect(cb, 80)

    def on_conn_extra():
        conns[0].on_urgent = urgent_events.append

    conn = ca.connect("10.0.1.2", 80)

    def go():
        on_conn_extra()
        conn.send(b"normal traffic ")
        conn.send(b"\x03", urgent=True)      # the interrupt byte

    conn.on_established = go
    sim.run(until=2)
    assert bytes(data) == b"normal traffic \x03"
    assert urgent_events                      # the mark was signalled
    assert conns[0].rcv_up is not None


def test_urgent_pointer_cleared_after_ack(sim):
    ca, cb, *_ = tcp_pair(sim)
    accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"!", urgent=True)
    sim.run(until=2)
    assert conn.snd_up is None                # consumed once acked


def test_urgent_survives_retransmission(sim):
    loss = BernoulliLoss(0.0)
    ca, cb, a, b, link = tcp_pair(sim, loss=loss)
    urgent_events = []
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    conns[0].on_urgent = urgent_events.append
    loss.rate = 1.0
    conn.send(b"URGENT", urgent=True)
    sim.schedule(2.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=60)
    assert bytes(data) == b"URGENT"
    assert urgent_events


def test_normal_sends_carry_no_urg(sim):
    ca, cb, *_ = tcp_pair(sim)
    urgent_events = []
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    conns[0].on_urgent = urgent_events.append
    conn.send(b"plain")
    sim.run(until=3)
    assert bytes(data) == b"plain"
    assert not urgent_events


# ----------------------------------------------------------------------
# Receiver SWS avoidance
# ----------------------------------------------------------------------
def test_tiny_window_advertised_as_zero(sim):
    cfg = TcpConfig(recv_buffer=2000, sws_avoidance=True)
    ca, cb, *_ = tcp_pair(sim, server_config=cfg)
    conns = []
    cb.listen(80, conns.append)   # server never reads
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"s" * 1900)
    sim.run(until=5)
    server = conns[0]
    # Nearly full: raw window is ~100 bytes, below min(MSS, buf/2) = 536.
    assert 0 < server.rcv.window < 536
    assert server._advertised_window() == 0
    # The sender therefore sees a closed window, not a silly one.
    assert conn.snd_wnd == 0


def test_sws_disabled_advertises_raw(sim):
    cfg = TcpConfig(recv_buffer=2000, sws_avoidance=False)
    ca, cb, *_ = tcp_pair(sim, server_config=cfg)
    conns = []
    cb.listen(80, conns.append)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"s" * 1900)
    sim.run(until=5)
    server = conns[0]
    assert server._advertised_window() == server.rcv.window > 0


def test_sws_window_reopens_after_big_read(sim):
    cfg = TcpConfig(recv_buffer=2000, sws_avoidance=True,
                    window_probe_interval=0.5)
    ca, cb, *_ = tcp_pair(
        sim, server_config=cfg,
        client_config=TcpConfig(window_probe_interval=0.5))
    conns = []
    cb.listen(80, conns.append)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"s" * 5000)
    sim.run(until=5)
    server = conns[0]
    server.read()                 # application drains everything
    sim.run(until=30)
    assert server.rcv.bytes_received >= 3000  # transfer resumed


def test_sws_prevents_tiny_segments_on_slow_reader(sim):
    """A reader that sips 10 bytes at a time must not cause a stream of
    10-byte segments: with SWS avoidance the sender transmits in worthwhile
    chunks only."""
    cfg = TcpConfig(recv_buffer=2000, sws_avoidance=True,
                    window_probe_interval=0.2)
    ca, cb, *_ = tcp_pair(sim, server_config=cfg,
                          client_config=TcpConfig(window_probe_interval=0.2))
    conns = []
    cb.listen(80, conns.append)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"x" * 6000)
    sim.run(until=3)
    server = conns[0]

    def sip():
        server.read(200)
        if server.rcv.bytes_received < 6000:
            sim.schedule(0.1, sip)

    sip()
    segments_before = conn.stats.segments_sent
    sim.run(until=90)
    data_segments = conn.stats.segments_sent - segments_before
    delivered = server.rcv.bytes_received
    assert delivered == 6000
    # Worthwhile segments: mean payload well above the sip size.
    assert delivered / max(data_segments, 1) > 200
