"""Assorted behaviour tests: delayed ACK, multihoming, EGP withdrawals."""

import pytest

from repro import Internet
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.egp import ExteriorGateway
from repro.routing.static import add_static_route
from repro.sim.engine import Simulator
from repro.tcp.connection import TcpConfig
from repro.udp.udp import UdpStack

from test_tcp_connection import accept_collect, tcp_pair


# ----------------------------------------------------------------------
# Delayed acknowledgments
# ----------------------------------------------------------------------
def test_delayed_ack_halves_pure_acks(sim):
    """With delayed acks the receiver acks every second segment (or on
    timeout), cutting pure-ack traffic for a one-way bulk stream."""
    eager = TcpConfig(delayed_ack=False)
    lazy = TcpConfig(delayed_ack=True)

    def run(server_cfg):
        s = Simulator()
        from test_tcp_connection import tcp_pair as make_pair
        ca, cb, a, b, link = make_pair(s, server_config=server_cfg)
        conns, data = accept_collect(cb, 80)
        conn = ca.connect("10.0.1.2", 80)
        conn.on_established = lambda: conn.send(b"d" * 30_000)
        s.run(until=60)
        assert bytes(data) == b"d" * 30_000
        return conns[0].stats.segments_sent  # server sends only acks

    assert run(lazy) < run(eager)


def test_delayed_ack_timeout_bounds_latency(sim):
    """A lone segment still gets acked within the delack timeout."""
    cfg = TcpConfig(delayed_ack=True, delayed_ack_timeout=0.2)
    ca, cb, *_ = tcp_pair(sim, server_config=cfg)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = lambda: conn.send(b"only one")
    sim.run(until=5)
    assert bytes(data) == b"only one"
    assert conn.snd_una == conn.snd_nxt  # the delayed ack did arrive


# ----------------------------------------------------------------------
# Multihomed hosts
# ----------------------------------------------------------------------
def test_multihomed_host_uses_matching_interface(sim):
    """A host on two networks sources traffic from the right interface
    per destination — 'addresses reflect connectivity'."""
    h = Node("H", sim)
    left = Prefix.parse("10.1.0.0/24")
    right = Prefix.parse("10.2.0.0/24")
    ihl = h.add_interface(Interface("h.left", left.host(1), left))
    ihr = h.add_interface(Interface("h.right", right.host(1), right))
    peer_l = Node("L", sim)
    peer_r = Node("R", sim)
    ipl = peer_l.add_interface(Interface("l0", left.host(2), left))
    ipr = peer_r.add_interface(Interface("r0", right.host(2), right))
    PointToPointLink(sim, ihl, ipl, bandwidth_bps=1e6, delay=0.001)
    PointToPointLink(sim, ihr, ipr, bandwidth_bps=1e6, delay=0.001)
    got_l, got_r = [], []
    peer_l.register_protocol(PROTO_UDP, lambda n, d, i: got_l.append(d))
    peer_r.register_protocol(PROTO_UDP, lambda n, d, i: got_r.append(d))
    h.send(left.host(2), PROTO_UDP, b"to the left")
    h.send(right.host(2), PROTO_UDP, b"to the right")
    sim.run(until=1)
    assert got_l[0].src == left.host(1)
    assert got_r[0].src == right.host(1)


def test_multihomed_host_survives_one_attachment_loss(sim):
    h = Node("H", sim)
    left = Prefix.parse("10.1.0.0/24")
    right = Prefix.parse("10.2.0.0/24")
    ihl = h.add_interface(Interface("h.left", left.host(1), left))
    ihr = h.add_interface(Interface("h.right", right.host(1), right))
    peer = Node("P", sim, is_gateway=True)
    ipl = peer.add_interface(Interface("p.left", left.host(2), left))
    ipr = peer.add_interface(Interface("p.right", right.host(2), right))
    link_l = PointToPointLink(sim, ihl, ipl, bandwidth_bps=1e6, delay=0.001)
    PointToPointLink(sim, ihr, ipr, bandwidth_bps=1e6, delay=0.001)
    got = []
    peer.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    link_l.set_up(False)
    # The left path is dead but the right attachment still works.
    assert h.send(right.host(2), PROTO_UDP, b"still here")
    sim.run(until=1)
    assert len(got) == 1


# ----------------------------------------------------------------------
# EGP withdrawal through a transit AS
# ----------------------------------------------------------------------
def test_withdrawal_propagates_through_transit(sim):
    """AS1 originates a block; when AS1 dies, AS3 (two hops away) must
    lose the route — learned and unlearned entirely via AS2."""
    a = Node("A", sim, is_gateway=True)
    b = Node("B", sim, is_gateway=True)
    c = Node("C", sim, is_gateway=True)
    p1, p2 = Prefix.parse("192.0.2.0/30"), Prefix.parse("192.0.2.4/30")
    ia = a.add_interface(Interface("a0", p1.host(1), p1))
    ib1 = b.add_interface(Interface("b0", p1.host(2), p1))
    ib2 = b.add_interface(Interface("b1", p2.host(1), p2))
    ic = c.add_interface(Interface("c0", p2.host(2), p2))
    PointToPointLink(sim, ia, ib1, bandwidth_bps=1e6, delay=0.005)
    PointToPointLink(sim, ib2, ic, bandwidth_bps=1e6, delay=0.005)
    ea = ExteriorGateway(a, UdpStack(a), local_as=1, period=1.0)
    eb = ExteriorGateway(b, UdpStack(b), local_as=2, period=1.0)
    ec = ExteriorGateway(c, UdpStack(c), local_as=3, period=1.0)
    ea.add_peer(p1.host(2), 2)
    eb.add_peer(p1.host(1), 1)
    eb.add_peer(p2.host(2), 3)
    ec.add_peer(p2.host(1), 2)
    block = Prefix.parse("10.1.0.0/16")
    ea.originate(block)
    for egp in (ea, eb, ec):
        egp.start()
    sim.run(until=8)
    assert ec.best_path(block) == (2, 1)
    a.crash()
    sim.run(until=25)
    assert eb.best_path(block) is None
    assert ec.best_path(block) is None
    with pytest.raises(Exception):
        c.routes.lookup("10.1.5.5")
