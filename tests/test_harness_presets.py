"""Tests for the multi-AS chain preset."""

import pytest

from repro.apps.filetransfer import FileReceiver, FileSender
from repro.harness.presets import build_as_chain
from repro.ip.address import Prefix


@pytest.fixture(scope="module")
def chain4():
    return build_as_chain(4, seed=77)


def test_minimum_size_enforced():
    with pytest.raises(ValueError):
        build_as_chain(1)


def test_all_blocks_learned_everywhere(chain4):
    topo = chain4
    for n in topo.egps:
        for m in topo.egps:
            if n == m:
                continue
            assert topo.egps[n].best_path(topo.block_of(m)) is not None, \
                f"AS{n} missing AS{m}'s block"


def test_path_lengths_match_chain_distance(chain4):
    topo = chain4
    # AS1 reaches AS4 through 2 and 3.
    assert topo.egps[1].best_path(topo.block_of(4)) == (2, 3, 4)
    assert topo.egps[4].best_path(topo.block_of(1)) == (3, 2, 1)


def test_end_to_end_transfer_end_ases(chain4):
    topo = chain4
    receiver = FileReceiver(topo.hosts[4], port=21)
    FileSender(topo.hosts[1], topo.hosts[4].address, 21, size=30_000)
    topo.net.sim.run(until=topo.net.sim.now + 300)
    assert receiver.results
    assert receiver.results[0].bytes_transferred == 30_000
    # Transit crossed both middle borders.
    assert topo.borders[2].node.stats.forwarded > 0
    assert topo.borders[3].node.stats.forwarded > 0


def test_igp_scoping_keeps_interiors_private(chain4):
    topo = chain4
    for r in topo.borders[1].node.routes.routes():
        if r.source == "dv":
            assert Prefix.parse("10.1.0.0/16").covers(r.prefix)


def test_middle_as_death_partitions_the_chain():
    topo = build_as_chain(3, seed=78)
    assert topo.egps[1].best_path(topo.block_of(3)) is not None
    topo.borders[2].node.crash()
    topo.net.sim.run(until=topo.net.sim.now + 20)
    assert topo.egps[1].best_path(topo.block_of(3)) is None
    assert topo.egps[3].best_path(topo.block_of(1)) is None
