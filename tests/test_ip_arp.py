"""Unit tests for the explicit ARP agent on a LAN."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.arp import ArpAgent
from repro.ip.node import Node
from repro.netlayer.lan import LanBus
from repro.netlayer.link import Interface
from repro.sim.engine import Simulator


@pytest.fixture
def lan_setup():
    sim = Simulator()
    prefix = Prefix.parse("10.0.5.0/24")
    bus = LanBus(sim, prefix)
    nodes, agents = [], []
    for i in range(1, 4):
        node = Node(f"N{i}", sim)
        iface = Interface(f"n{i}.0", prefix.host(i), prefix)
        node.add_interface(iface, install_direct_route=True)
        bus.attach(iface)
        agents.append(ArpAgent(node, iface))
        nodes.append(node)
    return sim, bus, nodes, agents


def test_resolve_live_neighbor(lan_setup):
    sim, bus, nodes, agents = lan_setup
    results = []
    agents[0].resolve(Address("10.0.5.2"), results.append)
    sim.run(until=2)
    assert results == [True]


def test_resolution_populates_cache(lan_setup):
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.2"), lambda ok: None)
    sim.run(until=2)
    entry = agents[0].cache.get(int(Address("10.0.5.2")))
    assert entry is not None and entry.reachable


def test_cached_answer_is_immediate(lan_setup):
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.2"), lambda ok: None)
    sim.run(until=2)
    requests_before = agents[0].requests_sent
    hit = []
    agents[0].resolve(Address("10.0.5.2"), hit.append)
    assert hit == [True]
    assert agents[0].requests_sent == requests_before


def test_responder_learns_requester(lan_setup):
    # Gratuitous learning: the request itself teaches N2 about N1.
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.2"), lambda ok: None)
    sim.run(until=2)
    assert int(Address("10.0.5.1")) in agents[1].cache


def test_unanswered_resolution_fails_after_retries(lan_setup):
    sim, bus, nodes, agents = lan_setup
    results = []
    agents[0].resolve(Address("10.0.5.99"), results.append)
    sim.run(until=10)
    assert results == [False]
    assert agents[0].requests_sent == agents[0].max_retries


def test_negative_result_cached(lan_setup):
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.99"), lambda ok: None)
    sim.run(until=10)
    fast = []
    agents[0].resolve(Address("10.0.5.99"), fast.append)
    assert fast == [False]


def test_concurrent_waiters_share_one_request(lan_setup):
    sim, bus, nodes, agents = lan_setup
    results = []
    agents[0].resolve(Address("10.0.5.3"), results.append)
    agents[0].resolve(Address("10.0.5.3"), results.append)
    sim.run(until=2)
    assert results == [True, True]
    assert agents[0].requests_sent == 1


def test_flush_empties_cache(lan_setup):
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.2"), lambda ok: None)
    sim.run(until=2)
    agents[0].flush()
    assert not agents[0].cache


def test_crash_flushes_arp_cache(lan_setup):
    # Fate-sharing regression: a neighbor cache is volatile conversation
    # state.  A crashed-and-restored node must re-learn its neighbors, not
    # resume with the dead incarnation's mappings.
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.2"), lambda ok: None)
    sim.run(until=2)
    assert agents[0].cache
    nodes[0].crash()
    assert not agents[0].cache
    assert not agents[0]._pending
    nodes[0].restore()
    requests_before = agents[0].requests_sent
    again = []
    agents[0].resolve(Address("10.0.5.2"), again.append)
    sim.run(until=sim.now + 2)
    assert again == [True]
    assert agents[0].requests_sent == requests_before + 1


def test_crash_mid_resolution_drops_pending_retries(lan_setup):
    # A retry timer scheduled before the crash must fall through harmlessly
    # (its _pending entry is gone) rather than repopulate post-crash state.
    sim, bus, nodes, agents = lan_setup
    agents[0].resolve(Address("10.0.5.99"), lambda ok: None)  # never answers
    sim.run(until=0.1)
    assert agents[0]._pending
    nodes[0].crash()
    sent_at_crash = agents[0].requests_sent
    sim.run(until=sim.now + 10)
    assert agents[0].requests_sent == sent_at_crash
    assert not agents[0].cache and not agents[0]._pending
