"""Unit and property tests for the IP datagram wire format."""

import pytest
from hypothesis import given, strategies as st

from repro.ip.address import Address
from repro.ip.packet import (
    Datagram,
    HeaderError,
    IP_HEADER_LEN,
    PROTO_TCP,
    PROTO_UDP,
)


def make(payload=b"hello", **kwargs):
    defaults = dict(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                    protocol=PROTO_UDP, payload=payload)
    defaults.update(kwargs)
    return Datagram(**defaults)


def test_total_length():
    d = make(payload=b"12345")
    assert d.total_length == IP_HEADER_LEN + 5


def test_wire_round_trip():
    d = make(payload=b"payload bytes", ttl=17, ident=99, tos=4)
    parsed = Datagram.from_bytes(d.to_bytes())
    assert parsed.src == d.src
    assert parsed.dst == d.dst
    assert parsed.protocol == d.protocol
    assert parsed.payload == d.payload
    assert parsed.ttl == 17
    assert parsed.ident == 99
    assert parsed.tos == 4


def test_fragment_flags_round_trip():
    d = make(more_fragments=True, fragment_offset=185)
    parsed = Datagram.from_bytes(d.to_bytes())
    assert parsed.more_fragments
    assert parsed.fragment_offset == 185
    assert parsed.is_fragment


def test_df_flag_round_trip():
    parsed = Datagram.from_bytes(make(dont_fragment=True).to_bytes())
    assert parsed.dont_fragment


def test_not_fragment_by_default():
    assert not make().is_fragment


def test_header_checksum_corruption_detected():
    wire = bytearray(make().to_bytes())
    wire[8] ^= 0x42  # mangle the TTL field
    with pytest.raises(HeaderError):
        Datagram.from_bytes(bytes(wire))


def test_payload_corruption_not_covered_by_header_checksum():
    # The IP checksum covers only the header — transports protect payloads.
    wire = bytearray(make(payload=b"abcdef").to_bytes())
    wire[-1] ^= 0xFF
    parsed = Datagram.from_bytes(bytes(wire))
    assert parsed.payload != b"abcdef"


def test_short_data_rejected():
    with pytest.raises(HeaderError):
        Datagram.from_bytes(b"\x45\x00\x00")


def test_truncated_datagram_rejected():
    wire = make(payload=b"x" * 50).to_bytes()
    with pytest.raises(HeaderError):
        Datagram.from_bytes(wire[:30])


def test_bad_version_rejected():
    wire = bytearray(make().to_bytes())
    wire[0] = (6 << 4) | 5
    with pytest.raises(HeaderError):
        Datagram.from_bytes(bytes(wire))


def test_trailing_padding_ignored():
    d = make(payload=b"data")
    parsed = Datagram.from_bytes(d.to_bytes() + b"\x00" * 8)
    assert parsed.payload == b"data"


def test_ttl_out_of_range_rejected_on_serialize():
    with pytest.raises(HeaderError):
        make(ttl=300).to_bytes()


def test_fragment_offset_out_of_range_rejected_on_serialize():
    with pytest.raises(HeaderError):
        make(fragment_offset=8192).to_bytes()


def test_negative_fragment_offset_rejected_on_serialize():
    # Regression: only the high bound was checked, so a negative offset
    # two's-complemented into the flags field and serialized as corrupt
    # (but checksum-valid) wire bytes instead of raising.
    with pytest.raises(HeaderError):
        make(fragment_offset=-1).to_bytes()


def test_copy_changes_only_given_fields():
    d = make(ttl=10)
    d2 = d.copy(ttl=9)
    assert d2.ttl == 9
    assert d2.payload == d.payload
    assert d.ttl == 10


@given(payload=st.binary(max_size=512),
       ttl=st.integers(min_value=0, max_value=255),
       ident=st.integers(min_value=0, max_value=0xFFFF),
       tos=st.integers(min_value=0, max_value=255),
       offset=st.integers(min_value=0, max_value=8191),
       mf=st.booleans(), df=st.booleans(),
       src=st.integers(min_value=0, max_value=0xFFFFFFFF),
       dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
       proto=st.integers(min_value=0, max_value=255))
def test_round_trip_property(payload, ttl, ident, tos, offset, mf, df,
                             src, dst, proto):
    d = Datagram(src=Address(src), dst=Address(dst), protocol=proto,
                 payload=payload, ttl=ttl, ident=ident, tos=tos,
                 fragment_offset=offset, more_fragments=mf, dont_fragment=df)
    parsed = Datagram.from_bytes(d.to_bytes())
    assert parsed == d
