"""Unit and property tests for the TCP send/receive buffers."""

from hypothesis import given, settings, strategies as st

from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.segment import seq_add


# ----------------------------------------------------------------------
# SendBuffer
# ----------------------------------------------------------------------
def test_write_and_read():
    buf = SendBuffer(base_seq=100)
    assert buf.write(b"hello world") == 11
    assert buf.read(100, 5) == b"hello"
    assert buf.read(106, 5) == b"world"


def test_capacity_truncates_writes():
    buf = SendBuffer(base_seq=0, capacity=10)
    assert buf.write(b"0123456789abcdef") == 10
    assert buf.free_space == 0


def test_ack_frees_space():
    buf = SendBuffer(base_seq=0, capacity=10)
    buf.write(b"0123456789")
    assert buf.ack_to(4) == 4
    assert buf.free_space == 4
    assert buf.base_seq == 4
    assert buf.read(4, 3) == b"456"


def test_duplicate_ack_frees_nothing():
    buf = SendBuffer(base_seq=0)
    buf.write(b"abcdef")
    buf.ack_to(3)
    assert buf.ack_to(3) == 0
    assert buf.ack_to(2) == 0


def test_available_from():
    buf = SendBuffer(base_seq=0)
    buf.write(b"0123456789")
    assert buf.available_from(0) == 10
    assert buf.available_from(7) == 3
    assert buf.available_from(10) == 0


def test_end_seq_wraps():
    buf = SendBuffer(base_seq=0xFFFFFFFA)
    buf.write(b"0123456789")
    assert buf.end_seq == seq_add(0xFFFFFFFA, 10)


def test_repacketization_read_crosses_write_boundaries():
    """The §9 property: reads may slice across original write boundaries."""
    buf = SendBuffer(base_seq=0)
    buf.write(b"aa")
    buf.write(b"bb")
    buf.write(b"cc")
    assert buf.read(0, 6) == b"aabbcc"  # coalesced
    assert buf.read(1, 3) == b"abb"     # split anywhere


def test_push_points_mark_write_ends():
    buf = SendBuffer(base_seq=0)
    buf.write(b"abc", push=True)
    buf.write(b"defg", push=True)
    assert buf.push_at(0, 3)            # covers the first write exactly
    assert not buf.push_at(0, 2)        # stops short of the boundary
    assert buf.push_at(0, 5)            # covers first boundary inside range
    assert buf.push_at(3, 4)


def test_push_points_survive_partial_ack():
    buf = SendBuffer(base_seq=0)
    buf.write(b"abc", push=True)
    buf.write(b"def", push=True)
    buf.ack_to(2)
    assert buf.push_at(2, 1)            # first boundary now at offset 1
    assert buf.push_at(3, 3)


def test_no_push_flag_writes():
    buf = SendBuffer(base_seq=0)
    buf.write(b"abc", push=False)
    assert not buf.push_at(0, 3)


@given(st.lists(st.binary(min_size=1, max_size=50), min_size=1, max_size=20))
def test_sendbuffer_stream_integrity(chunks):
    """Any write pattern reads back as the concatenated stream."""
    buf = SendBuffer(base_seq=1000, capacity=100_000)
    whole = b"".join(chunks)
    for chunk in chunks:
        buf.write(chunk)
    assert buf.read(1000, len(whole)) == whole


@given(st.binary(min_size=1, max_size=200),
       st.integers(min_value=1, max_value=50))
def test_sendbuffer_ack_never_loses_unacked(data, ack_step):
    buf = SendBuffer(base_seq=0, capacity=100_000)
    buf.write(data)
    acked = 0
    while acked < len(data):
        step = min(ack_step, len(data) - acked)
        acked += step
        buf.ack_to(acked)
        remaining = data[acked:]
        assert buf.read(acked, len(remaining)) == remaining


# ----------------------------------------------------------------------
# ReceiveBuffer
# ----------------------------------------------------------------------
def test_in_order_delivery():
    buf = ReceiveBuffer(rcv_next=100)
    assert buf.accept(100, b"hello") == b"hello"
    assert buf.rcv_next == 105


def test_out_of_order_held_then_released():
    buf = ReceiveBuffer(rcv_next=0)
    assert buf.accept(5, b"world") == b""
    assert buf.out_of_order_segments == 1
    assert buf.accept(0, b"hello") == b"helloworld"
    assert buf.out_of_order_segments == 0


def test_duplicate_segment_ignored():
    buf = ReceiveBuffer(rcv_next=0)
    buf.accept(0, b"abc")
    assert buf.accept(0, b"abc") == b""
    assert buf.duplicate_bytes >= 3


def test_partial_overlap_trimmed():
    buf = ReceiveBuffer(rcv_next=0)
    buf.accept(0, b"abc")
    # Segment overlapping the already-delivered prefix.
    assert buf.accept(1, b"bcde") == b"de"
    assert buf.rcv_next == 5


def test_window_shrinks_with_held_data():
    buf = ReceiveBuffer(rcv_next=0, capacity=100)
    buf.accept(0, b"x" * 30)
    assert buf.window == 70
    buf.read()
    assert buf.window == 100


def test_data_beyond_window_dropped():
    buf = ReceiveBuffer(rcv_next=0, capacity=10)
    delivered = buf.accept(0, b"x" * 50)
    assert len(delivered) == 10
    assert buf.rcv_next == 10


def test_read_consumes():
    buf = ReceiveBuffer(rcv_next=0)
    buf.accept(0, b"abcdef")
    assert buf.read(3) == b"abc"
    assert buf.readable == 3
    assert buf.read() == b"def"


def test_wrap_around_sequence():
    start = 0xFFFFFFFC
    buf = ReceiveBuffer(rcv_next=start)
    out = buf.accept(start, b"12345678")  # crosses the wrap
    assert out == b"12345678"
    assert buf.rcv_next == seq_add(start, 8)


@settings(max_examples=50)
@given(data=st.binary(min_size=10, max_size=400),
       chunk=st.integers(min_value=1, max_value=64),
       seed=st.integers(min_value=0, max_value=999))
def test_receive_any_arrival_order_reconstructs_stream(data, chunk, seed):
    import random
    pieces = [(i, data[i:i + chunk]) for i in range(0, len(data), chunk)]
    random.Random(seed).shuffle(pieces)
    buf = ReceiveBuffer(rcv_next=0, capacity=1_000_000)
    out = bytearray()
    for seq, piece in pieces:
        out.extend(buf.accept(seq, piece))
    assert bytes(out) == data
