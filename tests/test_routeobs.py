"""Probe-mesh behavior + campaign non-perturbation tests.

Three claims the routeobs campaign leans on:

* a severed only-path surfaces as a ``path-blackhole`` raise and clears
  when the path returns to baseline (ring-leg signature);
* a fault with a live alternate surfaces as a ``path-change`` whose
  measured hops still agree with the graph (diamond-leg signature);
* attaching the mesh to an existing :class:`FaultCampaign` must not
  move the campaign's own measurements — mesh jitter draws from its own
  ``obs.probemesh`` stream and the campaign's reconvergence prober
  draws no randomness, so fault timelines are byte-identical with and
  without the mesh.
"""

from dataclasses import replace

from repro.chaos.campaign import FaultCampaign
from repro.chaos.faults import LinkFlap
from repro.chaos.routeobs import build_diamond
from repro.harness.scaletopo import RingNet, ScaleConfig
from repro.harness.topology import Internet
from repro.netmgmt.alarms import AlertBus
from repro.obs.routing import (
    PathProbeResponder,
    ProbeMesh,
    forwarding_path,
)


def _chain():
    """H1 - G1 - G2 - H2: one path, no alternates."""
    net = Internet(seed=5)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1)
    core = net.connect(g1, g2)
    net.connect(g2, h2)
    net.start_routing(period=1.0)
    return net, core


def test_blackhole_raises_and_clears_on_recovery():
    net, core = _chain()
    h1, h2 = net.hosts["H1"], net.hosts["H2"]
    PathProbeResponder(h2)
    bus = AlertBus()
    mesh = ProbeMesh(net, [(h1, h2.node.address, "H1->H2")],
                     rng=net.streams.stream("obs.probemesh"),
                     bus=bus, interval=2.0, start_at=6.0)
    net.sim.run(until=6.0)
    mesh.start()
    # Sever the only path long enough for several walks to go dark,
    # then restore — with no alternate, recovery IS the baseline.
    net.sim.call_at(14.0, lambda: net.fail_link(core))
    net.sim.call_at(22.0, lambda: net.restore_link(core))
    net.sim.run(until=34.0)

    pair = mesh.pairs[0]
    assert pair.baseline is not None
    assert pair.blackholes >= 1
    raises = [a for a in bus.log if a.state == "raise"]
    clears = [a for a in bus.log if a.state == "clear"]
    assert any(a.rule == "path-blackhole" for a in raises)
    assert any(a.key.startswith("path-blackhole") for a in clears)
    assert not pair.active_rules, "alarm still latched after recovery"
    assert pair.current_path == pair.baseline


def test_diamond_reroute_raises_path_change_still_graph_true():
    net = build_diamond(seed=7)
    h1, h2 = net.hosts["H1"], net.hosts["H2"]
    PathProbeResponder(h2)
    bus = AlertBus()
    mesh = ProbeMesh(net, [(h1, h2.node.address, "H1->H2")],
                     rng=net.streams.stream("obs.probemesh"),
                     bus=bus, interval=2.0, start_at=7.0)
    net.sim.run(until=7.0)
    mesh.start()
    baseline = forwarding_path(net.address_owners(), h1.node,
                               h2.node.address)
    arm = net.links[1] if "G2" in baseline else net.links[2]
    net.sim.call_at(14.0, lambda: net.fail_link(arm))
    net.sim.call_at(24.0, lambda: net.restore_link(arm))
    net.sim.run(until=36.0)

    pair = mesh.pairs[0]
    assert list(pair.baseline) == baseline
    assert pair.path_changes >= 1, "reroute never observed"
    assert any(a.rule == "path-change" and a.state == "raise"
               for a in bus.log)
    # The rerouted walk rides the other arm, and the differential still
    # agrees: the mesh flags *change*, not *wrongness*.
    other = "G3" if "G2" in baseline else "G2"
    assert other in (pair.current_path or ())
    assert pair.disagreements == 0


def _ring_campaign(seed: int, *, with_mesh: bool) -> dict:
    cfg = replace(ScaleConfig(seed=seed), n_as=4, gateways_per_as=4,
                  hosts_per_lan=2)
    net = RingNet(cfg)
    n = cfg.n_as
    if with_mesh:
        for j in range(n):
            PathProbeResponder(net.hosts[f"A{j}G0H0"])
        pairs = [(net.hosts[f"A{i}G1H1"],
                  cfg.lan_host_address((i + 3) % n, 0, 0),
                  f"pair{i}") for i in range(n)]
        mesh = ProbeMesh(net, pairs,
                         rng=net.streams.stream("obs.probemesh"),
                         interval=2.5, start_at=8.0)
        mesh.start()
    campaign = FaultCampaign(
        net, [LinkFlap(net.inter_links[0], 12.0, 6.0)], monitors=[],
        targets=[cfg.lan_host_address(j, 0, 0) for j in range(n)],
        name="nonperturbation")
    report = campaign.run(until=30.0)
    # packets_lost_blackout counts every packet the blackout ate — the
    # meshed run loses its own probes in there too, which is physics,
    # not perturbation.  Everything else must be byte-equal.
    faults = []
    for fault in report.faults:
        record = fault.to_dict()
        record.pop("packets_lost_blackout", None)
        faults.append(record)
    return {
        "faults": faults,
        "all_reconverged": report.all_reconverged,
        "violations": [v.to_dict() for v in report.violations],
    }


def test_mesh_does_not_perturb_campaign_measurements():
    bare = _ring_campaign(seed=7, with_mesh=False)
    meshed = _ring_campaign(seed=7, with_mesh=True)
    assert bare == meshed
