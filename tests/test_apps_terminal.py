"""Tests for the interactive terminal application."""

from repro.apps.terminal import EchoTerminalServer, TerminalClient
from repro.sim.rand import RandomStreams


def test_keystrokes_echoed(simple_internet):
    net, h1, h2, core = simple_internet
    server = EchoTerminalServer(h2, port=23)
    client = TerminalClient(h1, h2.address, 23, count=30, rate=20.0,
                            streams=RandomStreams(1))
    net.sim.run(until=net.sim.now + 60)
    assert client.finished
    assert client.echoed == 30
    assert server.bytes_echoed == 30


def test_rtt_measured_and_reasonable(simple_internet):
    net, h1, h2, core = simple_internet
    EchoTerminalServer(h2, port=23)
    client = TerminalClient(h1, h2.address, 23, count=20, rate=10.0,
                            streams=RandomStreams(2))
    net.sim.run(until=net.sim.now + 60)
    summary = client.rtt_summary()
    assert summary.count == 20
    # RTT at least twice the 7 ms one-way path, at most a second.
    assert 0.014 <= summary.mean < 1.0


def test_deterministic_given_seed(simple_internet):
    net, h1, h2, core = simple_internet
    EchoTerminalServer(h2, port=23)
    c1 = TerminalClient(h1, h2.address, 23, count=10, rate=10.0,
                        streams=RandomStreams(3))
    net.sim.run(until=net.sim.now + 60)
    mean_first = c1.rtt_summary().mean
    assert mean_first > 0


def test_server_counts_connections(simple_internet):
    net, h1, h2, core = simple_internet
    server = EchoTerminalServer(h2, port=23)
    TerminalClient(h1, h2.address, 23, count=5, rate=50.0,
                   streams=RandomStreams(4))
    net.sim.run(until=net.sim.now + 30)
    assert server.connections == 1
