"""Unit tests for the per-host TCP stack (demux, listeners, refusal)."""

import pytest

from repro.ip.address import Address
from repro.tcp.connection import TcpConfig
from repro.tcp.state import TcpState

from test_tcp_connection import accept_collect, tcp_pair


def test_demux_by_four_tuple(sim):
    ca, cb, *_ = tcp_pair(sim)
    by_conn = {}

    def on_conn(c):
        received = bytearray()
        c.on_receive = received.extend
        by_conn[c.remote_port] = received

    cb.listen(80, on_conn)
    c1 = ca.connect("10.0.1.2", 80, local_port=5001)
    c2 = ca.connect("10.0.1.2", 80, local_port=5002)
    c1.on_established = lambda: c1.send(b"one")
    c2.on_established = lambda: c2.send(b"two")
    sim.run(until=5)
    assert bytes(by_conn[5001]) == b"one"
    assert bytes(by_conn[5002]) == b"two"


def test_listener_accept_count(sim):
    ca, cb, *_ = tcp_pair(sim)
    listener = cb.listen(80, lambda c: None)
    for port in (6001, 6002, 6003):
        ca.connect("10.0.1.2", 80, local_port=port)
    sim.run(until=5)
    assert listener.accepted == 3


def test_closed_listener_refuses(sim):
    ca, cb, *_ = tcp_pair(sim)
    listener = cb.listen(80, lambda c: None)
    listener.close()
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=5)
    assert conn.state is TcpState.CLOSED


def test_duplicate_listen_rejected(sim):
    ca, cb, *_ = tcp_pair(sim)
    cb.listen(80, lambda c: None)
    with pytest.raises(ValueError):
        cb.listen(80, lambda c: None)


def test_ephemeral_ports_distinct(sim):
    ca, cb, *_ = tcp_pair(sim)
    accept_collect(cb, 80)
    c1 = ca.connect("10.0.1.2", 80)
    c2 = ca.connect("10.0.1.2", 80)
    assert c1.local_port != c2.local_port


def test_duplicate_connection_key_rejected(sim):
    ca, cb, *_ = tcp_pair(sim)
    accept_collect(cb, 80)
    ca.connect("10.0.1.2", 80, local_port=7000)
    with pytest.raises(ValueError):
        ca.connect("10.0.1.2", 80, local_port=7000)


def test_isn_advances_with_clock(sim):
    ca, cb, *_ = tcp_pair(sim)
    isn1 = ca.generate_isn()
    sim.schedule(1.0, lambda: None)
    sim.run()
    isn2 = ca.generate_isn()
    assert isn1 != isn2


def test_connection_removed_after_close(sim):
    ca, cb, *_ = tcp_pair(sim, client_config=TcpConfig(msl=0.2))
    conns = []

    def on_conn(c):
        conns.append(c)
        c.on_close = c.close

    cb.listen(80, on_conn)
    conn = ca.connect("10.0.1.2", 80)
    conn.on_established = conn.close
    sim.run(until=30)
    assert conn not in ca.connections
    assert conns[0] not in cb.connections


def test_listener_config_overrides_stack_default(sim):
    ca, cb, *_ = tcp_pair(sim)
    conns = []
    cb.listen(80, conns.append, config=TcpConfig(mss=300))
    ca.connect("10.0.1.2", 80)
    sim.run(until=2)
    assert conns[0].config.mss == 300


def test_stack_counts_bad_segments(sim):
    ca, cb, a, b, link = tcp_pair(sim)
    from repro.ip.packet import Datagram, PROTO_TCP
    bad = Datagram(src=Address("10.0.1.1"), dst=Address("10.0.1.2"),
                   protocol=PROTO_TCP, payload=b"\x01\x02\x03")
    b._deliver_local(bad, None)
    assert cb.bad_segments == 1


def test_stray_ack_draws_rst(sim):
    """A segment for a nonexistent connection must be refused with RST."""
    ca, cb, a, b, link = tcp_pair(sim)
    from repro.tcp.segment import FLAG_ACK, TcpSegment
    stray = TcpSegment(src_port=1234, dst_port=4321, seq=10, ack=20,
                       flags=FLAG_ACK)
    wire = stray.to_bytes(Address("10.0.1.1"), Address("10.0.1.2"))
    from repro.ip.packet import PROTO_TCP
    a.send("10.0.1.2", PROTO_TCP, wire)
    sim.run(until=1)
    assert cb.resets_sent == 1


def test_max_half_open_caps_backlog_and_drops_oldest(sim):
    """A spoofed SYN flood fills the backlog to the cap; the oldest
    embryo is evicted (counted), and a later honest client still
    connects."""
    from repro.ip.packet import PROTO_TCP
    from repro.tcp.segment import FLAG_SYN, TcpSegment

    cfg = TcpConfig(max_half_open=8)
    ca, cb, a, b, link = tcp_pair(sim, server_config=cfg)
    listener = cb.listen(80, lambda c: None)

    def spoofed_syn(port):
        seg = TcpSegment(src_port=port, dst_port=80, seq=1000 + port,
                         flags=FLAG_SYN)
        # Sources nobody owns: the SYN-ACKs go nowhere, embryos linger.
        src = Address(f"10.0.1.{100 + port % 100}")
        wire = seg.to_bytes(src, Address("10.0.1.2"))
        a.send("10.0.1.2", PROTO_TCP, wire, src=src)

    for i in range(40):
        sim.call_at(0.001 * (i + 1), lambda i=i: spoofed_syn(2000 + i))
    sim.run(until=1.0)
    live = [c for c in listener.half_open
            if c.state is TcpState.SYN_RECEIVED]
    assert len(live) <= 8
    assert listener.syn_drops == 40 - 8
    assert cb.syn_drops == listener.syn_drops
    # The backlog holds the *newest* embryos (drop-oldest discipline).
    assert {c.remote_port for c in live} == {2000 + i for i in range(32, 40)}

    # An honest client dialing into the flooded listener still succeeds.
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=3.0)
    assert conn.state is TcpState.ESTABLISHED


def test_max_half_open_zero_means_unlimited(sim):
    from repro.ip.packet import PROTO_TCP
    from repro.tcp.segment import FLAG_SYN, TcpSegment

    ca, cb, a, b, link = tcp_pair(sim)      # default config: no cap
    listener = cb.listen(80, lambda c: None)
    for i in range(30):
        seg = TcpSegment(src_port=3000 + i, dst_port=80, seq=i,
                         flags=FLAG_SYN)
        src = Address(f"10.0.1.{200 + i % 50}")
        wire = seg.to_bytes(src, Address("10.0.1.2"))
        sim.call_at(0.001 * (i + 1),
                    lambda w=wire, s=src: a.send("10.0.1.2", PROTO_TCP,
                                                 w, src=s))
    sim.run(until=1.0)
    assert listener.syn_drops == 0
    assert cb.syn_drops == 0
