"""Unit and property tests for addresses and prefixes."""

import pytest
from hypothesis import given, strategies as st

from repro.ip.address import Address, AddressError, Prefix, BROADCAST, UNSPECIFIED


# ----------------------------------------------------------------------
# Address
# ----------------------------------------------------------------------
def test_parse_dotted_quad():
    assert int(Address("10.0.1.2")) == (10 << 24) | (1 << 8) | 2


def test_str_round_trip():
    assert str(Address("192.168.255.1")) == "192.168.255.1"


def test_from_int():
    assert str(Address(0x0A000102)) == "10.0.1.2"


def test_copy_constructor():
    a = Address("1.2.3.4")
    assert Address(a) == a


def test_equality_with_string_and_int():
    a = Address("1.2.3.4")
    assert a == "1.2.3.4"
    assert a == int(a)
    assert a != "1.2.3.5"


def test_ordering():
    assert Address("1.0.0.1") < Address("1.0.0.2")
    assert Address("2.0.0.0") > Address("1.255.255.255")


def test_hashable():
    assert len({Address("1.1.1.1"), Address("1.1.1.1")}) == 1


def test_addition():
    assert Address("10.0.0.1") + 1 == Address("10.0.0.2")


def test_wire_round_trip():
    a = Address("172.16.5.9")
    assert Address.from_bytes(a.to_bytes()) == a


def test_broadcast_and_unspecified_flags():
    assert BROADCAST.is_broadcast
    assert UNSPECIFIED.is_unspecified
    assert not Address("1.2.3.4").is_broadcast


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                 "a.b.c.d", "", "1..2.3"])
def test_malformed_addresses_rejected(bad):
    with pytest.raises(AddressError):
        Address(bad)


def test_out_of_range_int_rejected():
    with pytest.raises(AddressError):
        Address(1 << 32)
    with pytest.raises(AddressError):
        Address(-1)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_int_str_round_trip_property(value):
    assert int(Address(str(Address(value)))) == value


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_bytes_round_trip_property(value):
    a = Address(value)
    assert Address.from_bytes(a.to_bytes()) == a


# ----------------------------------------------------------------------
# Prefix
# ----------------------------------------------------------------------
def test_prefix_parse():
    p = Prefix.parse("10.1.0.0/16")
    assert p.length == 16
    assert str(p) == "10.1.0.0/16"


def test_bare_address_parses_as_host_prefix():
    assert Prefix.parse("10.1.2.3").length == 32


def test_contains():
    p = Prefix.parse("10.1.0.0/16")
    assert p.contains("10.1.200.3")
    assert not p.contains("10.2.0.1")


def test_host_bits_rejected():
    with pytest.raises(AddressError):
        Prefix(Address("10.1.0.1"), 16)


def test_prefix_of_masks_host_bits():
    p = Prefix.of("10.1.200.3", 16)
    assert p == Prefix.parse("10.1.0.0/16")


def test_netmask():
    assert Prefix.parse("10.0.0.0/8").netmask == Address("255.0.0.0")
    assert Prefix.parse("10.1.2.0/24").netmask == Address("255.255.255.0")
    assert Prefix.parse("0.0.0.0/0").netmask == Address("0.0.0.0")


def test_broadcast_address():
    assert Prefix.parse("10.1.2.0/24").broadcast == Address("10.1.2.255")


def test_hosts_iteration_skips_network_and_broadcast():
    hosts = list(Prefix.parse("10.0.0.0/30").hosts())
    assert hosts == [Address("10.0.0.1"), Address("10.0.0.2")]


def test_hosts_for_point_to_point_31():
    hosts = list(Prefix.parse("10.0.0.0/31").hosts())
    assert len(hosts) == 2


def test_host_indexing():
    p = Prefix.parse("10.0.1.0/24")
    assert p.host(1) == Address("10.0.1.1")
    with pytest.raises(AddressError):
        p.host(500)


def test_covers():
    outer = Prefix.parse("10.0.0.0/8")
    inner = Prefix.parse("10.1.0.0/16")
    assert outer.covers(inner)
    assert not inner.covers(outer)
    assert outer.covers(outer)


def test_default_prefix_contains_everything():
    p = Prefix.parse("0.0.0.0/0")
    assert p.contains("255.255.255.255")
    assert p.contains("0.0.0.0")


def test_invalid_length_rejected():
    with pytest.raises(AddressError):
        Prefix(Address("0.0.0.0"), 33)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=32))
def test_prefix_of_always_contains_source_address(value, length):
    addr = Address(value)
    assert Prefix.of(addr, length).contains(addr)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=1, max_value=32))
def test_broadcast_is_in_prefix(value, length):
    p = Prefix.of(Address(value), length)
    assert p.contains(p.broadcast)
