"""Tests for ICMP Redirect: gateway advice, host route learning."""

import pytest

from repro.ip import icmp
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import Datagram, PROTO_UDP
from repro.netlayer.lan import LanBus
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.static import add_default_route, add_static_route
from repro.sim.engine import Simulator


@pytest.fixture
def two_gateway_lan(sim):
    """Host H and gateways G1, G2 share a LAN; the far host F hangs off G2.

    H's default route points at G1, so H's first packet to F goes
    H -> G1 -> G2 -> F: G1 forwards it back onto the same LAN and must
    send H a redirect naming G2.
    """
    lan_prefix = Prefix.parse("10.0.9.0/24")
    bus = LanBus(sim, lan_prefix)
    h = Node("H", sim)
    g1 = Node("G1", sim, is_gateway=True)
    g2 = Node("G2", sim, is_gateway=True)
    f = Node("F", sim)
    for node, index in [(h, 10), (g1, 1), (g2, 2)]:
        iface = Interface(f"{node.name}.lan", lan_prefix.host(index), lan_prefix)
        node.add_interface(iface)
        bus.attach(iface)
    far = Prefix.parse("10.0.8.0/30")
    ig2 = g2.add_interface(Interface("g2.s0", far.host(1), far))
    iff = f.add_interface(Interface("f.s0", far.host(2), far))
    PointToPointLink(sim, ig2, iff, bandwidth_bps=1e6, delay=0.002)
    add_default_route(h, lan_prefix.host(1))          # via G1 (suboptimal)
    add_static_route(g1, "10.0.8.0/30", lan_prefix.host(2))  # G1 knows: via G2
    add_default_route(f, far.host(1))
    return sim, h, g1, g2, f, bus


def test_gateway_sends_redirect(two_gateway_lan):
    sim, h, g1, g2, f, bus = two_gateway_lan
    got = []
    f.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    h.send("10.0.8.2", PROTO_UDP, b"first packet")
    sim.run(until=1)
    assert got                      # delivered via the dog-leg anyway
    assert g1.stats.icmp_sent >= 1  # and the advice went out


def test_host_installs_redirect_route(two_gateway_lan):
    sim, h, g1, g2, f, bus = two_gateway_lan
    f.register_protocol(PROTO_UDP, lambda n, d, i: None)
    h.send("10.0.8.2", PROTO_UDP, b"first packet")
    sim.run(until=1)
    route = h.routes.lookup("10.0.8.2")
    assert route.source == "redirect"
    assert route.next_hop == Address("10.0.9.2")  # G2, the better hop


def test_subsequent_traffic_bypasses_first_gateway(two_gateway_lan):
    sim, h, g1, g2, f, bus = two_gateway_lan
    f.register_protocol(PROTO_UDP, lambda n, d, i: None)
    h.send("10.0.8.2", PROTO_UDP, b"first")
    sim.run(until=1)
    forwarded_before = g1.stats.forwarded
    for _ in range(5):
        h.send("10.0.8.2", PROTO_UDP, b"later")
    sim.run(until=2)
    assert g1.stats.forwarded == forwarded_before  # G1 out of the path
    assert g2.stats.forwarded >= 6


def test_redirect_rate_limited(two_gateway_lan):
    sim, h, g1, g2, f, bus = two_gateway_lan
    h.accept_redirects = False      # keep sending via G1
    f.register_protocol(PROTO_UDP, lambda n, d, i: None)
    for i in range(10):
        sim.schedule(i * 0.1, lambda: h.send("10.0.8.2", PROTO_UDP, b"x"))
    sim.run(until=3)
    assert g1.stats.icmp_sent == 1  # one redirect per pair per 5 s


def test_no_redirect_for_transit_sources(two_gateway_lan):
    """Only on-link sources get advice: a datagram arriving from off-net
    and leaving the same interface draws no redirect."""
    sim, h, g1, g2, f, bus = two_gateway_lan
    foreign = Datagram(src=Address("172.16.0.1"), dst=Address("10.0.8.2"),
                       protocol=PROTO_UDP, payload=b"x", ttl=5)
    g1.datagram_arrived(foreign, g1.interfaces[0])
    sim.run(until=1)
    assert g1.stats.icmp_sent == 0


def test_redirect_disabled_on_gateway(two_gateway_lan):
    sim, h, g1, g2, f, bus = two_gateway_lan
    g1.send_redirects = False
    f.register_protocol(PROTO_UDP, lambda n, d, i: None)
    h.send("10.0.8.2", PROTO_UDP, b"x")
    sim.run(until=1)
    assert g1.stats.icmp_sent == 0


def test_redirect_wire_round_trip():
    offending = Datagram(src=Address("10.0.9.10"), dst=Address("10.0.8.2"),
                         protocol=PROTO_UDP, payload=b"\x00" * 12, ident=5)
    d = icmp.redirect(Address("10.0.9.1"), offending, Address("10.0.9.2"))
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.REDIRECT
    assert msg.gateway_address == Address("10.0.9.2")
    assert msg.quoted_datagram_header().dst == Address("10.0.8.2")
    assert msg.is_error
