"""Tests for the file transfer application."""

import pytest

from repro.apps.filetransfer import FileReceiver, FileSender, TransferResult


def test_transfer_completes(simple_internet):
    net, h1, h2, core = simple_internet
    receiver = FileReceiver(h2, port=21)
    sender = FileSender(h1, h2.address, 21, size=50_000)
    net.sim.run(until=net.sim.now + 120)
    assert len(receiver.results) == 1
    assert receiver.results[0].bytes_transferred == 50_000


def test_goodput_positive_and_bounded_by_bottleneck(simple_internet):
    net, h1, h2, core = simple_internet
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=100_000)
    net.sim.run(until=net.sim.now + 120)
    goodput = receiver.results[0].goodput_bps
    assert 0 < goodput <= 1_000_000  # core link is 1 Mb/s


def test_zero_byte_transfer(simple_internet):
    net, h1, h2, core = simple_internet
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=0)
    net.sim.run(until=net.sim.now + 30)
    assert len(receiver.results) == 1
    assert receiver.results[0].bytes_transferred == 0


def test_on_complete_callbacks(simple_internet):
    net, h1, h2, core = simple_internet
    events = []
    FileReceiver(h2, port=21, on_complete=lambda r: events.append("rx"))
    FileSender(h1, h2.address, 21, size=10_000,
               on_complete=lambda r: events.append("tx"))
    net.sim.run(until=net.sim.now + 60)
    assert "rx" in events


def test_multiple_sequential_transfers(simple_internet):
    net, h1, h2, core = simple_internet
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=10_000)
    net.sim.run(until=net.sim.now + 60)
    FileSender(h1, h2.address, 21, size=20_000)
    net.sim.run(until=net.sim.now + 60)
    sizes = sorted(r.bytes_transferred for r in receiver.results)
    assert sizes == [10_000, 20_000]


def test_concurrent_transfers_from_two_senders(simple_internet):
    net, h1, h2, core = simple_internet
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=30_000)
    FileSender(h1, h2.address, 21, size=30_000)
    net.sim.run(until=net.sim.now + 120)
    assert len(receiver.results) == 2


def test_negative_size_rejected(simple_internet):
    net, h1, h2, core = simple_internet
    FileReceiver(h2, port=21)
    with pytest.raises(ValueError):
        FileSender(h1, h2.address, 21, size=-1)


def test_result_properties():
    result = TransferResult(bytes_transferred=1000, started_at=1.0,
                            completed_at=3.0)
    assert result.duration == 2.0
    assert result.goodput_bps == 4000.0
