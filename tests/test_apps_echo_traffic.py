"""Tests for echo services and background traffic generators."""

from repro.apps.echo import TcpEchoServer, UdpEchoClient, UdpEchoServer
from repro.apps.traffic import CbrSource, OnOffSource, PoissonSource, UdpSink
from repro.sim.rand import RandomStreams


def test_udp_echo(simple_internet):
    net, h1, h2, core = simple_internet
    server = UdpEchoServer(h2, port=7)
    client = UdpEchoClient(h1, h2.address, 7)
    for _ in range(10):
        client.probe()
    net.sim.run(until=net.sim.now + 10)
    assert client.received == 10
    assert server.echoed == 10
    assert client.rtt.mean > 0


def test_udp_echo_rtt_reflects_path(simple_internet):
    net, h1, h2, core = simple_internet
    UdpEchoServer(h2, port=7)
    client = UdpEchoClient(h1, h2.address, 7)
    client.probe(size=64)
    net.sim.run(until=net.sim.now + 5)
    # Path one-way ~7 ms + serialization: RTT must exceed 14 ms.
    assert client.rtt.mean >= 0.014


def test_tcp_echo(simple_internet):
    net, h1, h2, core = simple_internet
    TcpEchoServer(h2, port=7)
    got = bytearray()
    sock = h1.connect(h2.address, 7)
    sock.on_data = got.extend
    sock.write(b"echo me")
    net.sim.run(until=net.sim.now + 10)
    assert bytes(got) == b"echo me"


def test_cbr_source_rate(simple_internet):
    net, h1, h2, core = simple_internet
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=4.0)
    net.sim.run(until=net.sim.now + 10)
    assert 190 <= sink.packets <= 205
    assert sink.bytes == sink.packets * 100


def test_cbr_stop(simple_internet):
    net, h1, h2, core = simple_internet
    sink = UdpSink(h2, 9000)
    src = CbrSource(h1, h2.address, 9000, rate=100.0)
    net.sim.run(until=net.sim.now + 1)
    src.stop()
    count = sink.packets
    net.sim.run(until=net.sim.now + 2)
    # Nothing new is emitted; at most the few packets in flight land.
    assert sink.packets <= count + 3
    assert src.sent <= count + 3


def test_poisson_source_mean_rate(simple_internet):
    net, h1, h2, core = simple_internet
    sink = UdpSink(h2, 9001)
    PoissonSource(h1, h2.address, 9001, rate=100.0, duration=10.0,
                  streams=RandomStreams(8))
    net.sim.run(until=net.sim.now + 15)
    assert 800 <= sink.packets <= 1200  # ~1000 expected


def test_onoff_source_bursts(simple_internet):
    net, h1, h2, core = simple_internet
    sink = UdpSink(h2, 9002)
    OnOffSource(h1, h2.address, 9002, peak_rate=200.0, mean_on=0.5,
                mean_off=0.5, duration=10.0, streams=RandomStreams(9))
    net.sim.run(until=net.sim.now + 15)
    # Average rate should be well below the peak (it idles half the time).
    assert 0 < sink.packets < 2000
