"""Tests for packet voice over UDP and the TCP counterfactual."""

import pytest

from repro import Internet
from repro.apps.voice import (
    TcpVoiceCall,
    TcpVoiceReceiver,
    UdpVoiceCall,
    UdpVoiceReceiver,
    VoiceCodec,
)
from repro.netlayer.loss import BernoulliLoss


def test_codec_arithmetic():
    codec = VoiceCodec(frame_bytes=160, frames_per_second=50.0)
    assert codec.interval == pytest.approx(0.020)
    assert codec.bitrate == pytest.approx(64_000.0)


def lossy_net(loss_rate=0.05, seed=5):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=1e6, delay=0.02, mtu=1500,
                loss=BernoulliLoss(loss_rate))
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    return net, h1, h2


def test_udp_voice_clean_path_all_on_time():
    net, h1, h2 = lossy_net(loss_rate=0.0)
    receiver = UdpVoiceReceiver(h2, 5004, playout_deadline=0.160)
    call = UdpVoiceCall(h1, h2.address, 5004, duration=5.0,
                        meter=receiver.meter)
    net.sim.run(until=net.sim.now + 10)
    assert call.frames_sent == pytest.approx(250, abs=2)
    assert receiver.meter.effective_loss_rate < 0.01


def test_udp_voice_lossy_path_loses_but_stays_on_time():
    net, h1, h2 = lossy_net(loss_rate=0.1)
    receiver = UdpVoiceReceiver(h2, 5004, playout_deadline=0.160)
    UdpVoiceCall(h1, h2.address, 5004, duration=10.0, meter=receiver.meter)
    net.sim.run(until=net.sim.now + 15)
    meter = receiver.meter
    assert 0.02 < meter.loss_rate < 0.25      # frames die, as expected
    assert meter.late_count == 0              # but survivors are on time
    assert meter.latency.maximum < 0.160


def test_tcp_voice_lossy_path_arrives_late():
    """The paper's §5 argument: reliability is the wrong service for voice."""
    net, h1, h2 = lossy_net(loss_rate=0.1)
    receiver = TcpVoiceReceiver(h2, 5005, playout_deadline=0.160)
    TcpVoiceCall(h1, h2.address, 5005, duration=10.0, meter=receiver.meter)
    net.sim.run(until=net.sim.now + 40)
    meter = receiver.meter
    # Nothing is lost (TCP is reliable)...
    assert meter.received_count == meter.sent_count
    assert meter.sent_count > 200
    # ...but retransmission stalls make many frames miss playout.
    assert meter.late_count > 0
    assert meter.effective_loss_rate > 0.05


def test_udp_beats_tcp_for_voice_on_lossy_path():
    net, h1, h2 = lossy_net(loss_rate=0.08, seed=9)
    udp_rx = UdpVoiceReceiver(h2, 5004, playout_deadline=0.160)
    tcp_rx = TcpVoiceReceiver(h2, 5005, playout_deadline=0.160)
    UdpVoiceCall(h1, h2.address, 5004, duration=10.0, meter=udp_rx.meter)
    TcpVoiceCall(h1, h2.address, 5005, duration=10.0, meter=tcp_rx.meter)
    net.sim.run(until=net.sim.now + 60)
    assert udp_rx.meter.effective_loss_rate < tcp_rx.meter.effective_loss_rate


def test_frames_carry_sequence_numbers():
    net, h1, h2 = lossy_net(loss_rate=0.0)
    receiver = UdpVoiceReceiver(h2, 5004)
    call = UdpVoiceCall(h1, h2.address, 5004, duration=1.0,
                        meter=receiver.meter)
    net.sim.run(until=net.sim.now + 5)
    assert receiver.meter.received_count == call.frames_sent
