"""Unit tests for static route helpers."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface
from repro.routing.static import add_default_route, add_static_route
from repro.sim.engine import Simulator


@pytest.fixture
def node(sim):
    n = Node("N", sim)
    n.add_interface(Interface("n0", Address("10.0.1.1"),
                              Prefix.parse("10.0.1.0/24")))
    n.add_interface(Interface("n1", Address("10.0.2.1"),
                              Prefix.parse("10.0.2.0/24")))
    return n


def test_static_route_selects_interface_by_next_hop(node):
    route = add_static_route(node, "172.16.0.0/12", "10.0.2.254")
    assert route.interface.name == "n1"
    assert node.routes.lookup("172.16.5.5") is route


def test_default_route(node):
    add_default_route(node, "10.0.1.254")
    route = node.routes.lookup("203.0.113.9")
    assert route.prefix == Prefix.parse("0.0.0.0/0")
    assert route.next_hop == Address("10.0.1.254")


def test_unconnected_next_hop_rejected(node):
    with pytest.raises(ValueError):
        add_static_route(node, "172.16.0.0/12", "192.168.9.1")


def test_accepts_prefix_objects(node):
    route = add_static_route(node, Prefix.parse("172.16.0.0/12"),
                             Address("10.0.1.254"))
    assert route.prefix.length == 12


def test_metric_recorded(node):
    route = add_static_route(node, "172.16.0.0/12", "10.0.1.254", metric=7)
    assert route.metric == 7
    assert route.source == "static"
