"""Unit tests for the alarm-gated canary rollout state machine."""

from repro.rollout import CanaryRollout, RolloutStage
from repro.sim.engine import Simulator


class FakeAlert:
    def __init__(self, rule, target, time, key=None):
        self.rule = rule
        self.target = target
        self.time = time
        self.key = key or f"{rule}:{target}"


class FakeBus:
    def __init__(self):
        self._raises = []
        self._active = []

    def raises(self):
        return list(self._raises)

    def active(self):
        return list(self._active)


class FakePlane:
    def __init__(self, sim):
        self.sim = sim
        self.bus = FakeBus()


class Recorder:
    def __init__(self):
        self.calls = []

    def stage(self, name, targets):
        return RolloutStage(name, targets,
                            lambda: self.calls.append(f"{name}.apply"),
                            lambda: self.calls.append(f"{name}.revert"))


def make(sim, *, hold_down=5.0, fleet=True, alarm_filter=None):
    plane = FakePlane(sim)
    rec = Recorder()
    rollout = CanaryRollout(
        plane, name="t",
        canary=rec.stage("canary", ["C"]),
        fleet=rec.stage("fleet", ["F1", "F2"]) if fleet else None,
        hold_down=hold_down, alarm_filter=alarm_filter, poll=0.25)
    return plane, rec, rollout


def test_clean_canary_promotes_then_settles():
    sim = Simulator()
    plane, rec, rollout = make(sim)
    sim.call_at(1.0, rollout.start)
    sim.run(until=20.0)
    assert rec.calls == ["canary.apply", "fleet.apply"]
    assert rollout.state == "settled"
    assert rollout.applied_at == 1.0
    assert rollout.promoted_at is not None
    assert rollout.promoted_at - rollout.applied_at >= rollout.hold_down
    assert rollout.rolled_back_at is None
    assert rollout.mttr is None
    assert rollout.done


def test_alarm_during_canary_rolls_back_before_fleet():
    sim = Simulator()
    plane, rec, rollout = make(sim)
    sim.call_at(1.0, rollout.start)

    def raise_alarm():
        alert = FakeAlert("storm", "C", sim.now)
        plane.bus._raises.append(alert)
        plane.bus._active.append(alert)
    sim.call_at(3.0, raise_alarm)
    sim.call_at(8.0, plane.bus._active.clear)   # alarm clears post-revert
    sim.run(until=30.0)
    assert rec.calls == ["canary.apply", "canary.revert"]
    assert "fleet.apply" not in rec.calls       # the gate held
    assert rollout.state == "healthy"
    assert rollout.alarm_at == 3.0
    assert rollout.rolled_back_at is not None
    assert rollout.rolled_back_at < 1.0 + rollout.hold_down
    # Repaired = rolled back, alarms gone, and a clean hold-down after.
    assert rollout.healthy_at >= 8.0 + rollout.hold_down
    assert rollout.mttr == rollout.healthy_at - rollout.applied_at
    assert rollout.to_dict()["detect_delay"] == rollout.alarm_at - 1.0


def test_unrelated_alarm_does_not_abort():
    sim = Simulator()
    plane, rec, rollout = make(
        sim, alarm_filter=lambda a: a.target == "C")
    sim.call_at(1.0, rollout.start)
    sim.call_at(2.0, lambda: plane.bus._raises.append(
        FakeAlert("storm", "ELSEWHERE", sim.now)))
    sim.run(until=20.0)
    assert rollout.state == "settled"
    assert "fleet.apply" in rec.calls
    assert rollout.matched_raises == 0


def test_pre_apply_alarm_history_is_ignored():
    """A raise from *before* the change was applied is not its verdict."""
    sim = Simulator()
    plane, rec, rollout = make(sim)
    plane.bus._raises.append(FakeAlert("storm", "C", 0.5))
    sim.call_at(1.0, rollout.start)
    sim.run(until=20.0)
    assert rollout.state == "settled"


def test_healthy_requires_alarms_to_stay_clear():
    sim = Simulator()
    plane, rec, rollout = make(sim, hold_down=4.0)
    sim.call_at(1.0, rollout.start)

    def raise_alarm():
        alert = FakeAlert("storm", "C", sim.now)
        plane.bus._raises.append(alert)
        plane.bus._active.append(alert)
    sim.call_at(2.0, raise_alarm)
    # The alarm keeps flapping back until t=12; only then does the
    # clean window start counting.
    sim.call_at(6.0, plane.bus._active.clear)
    sim.call_at(7.0, lambda: plane.bus._active.append(
        FakeAlert("storm", "C", sim.now)))
    sim.call_at(12.0, plane.bus._active.clear)
    sim.run(until=30.0)
    assert rollout.state == "healthy"
    assert rollout.healthy_at >= 16.0


def test_late_alarm_after_promotion_is_kept_visible():
    sim = Simulator()
    plane, rec, rollout = make(sim, hold_down=3.0)
    sim.call_at(1.0, rollout.start)

    def late():
        plane.bus._raises.append(FakeAlert("storm", "C", sim.now))
    # After promote (~4.0) but before settle (~7.0).
    sim.call_at(5.0, late)
    sim.run(until=30.0)
    assert rollout.promoted_at is not None
    assert rollout.state == "promoted-then-alarmed"
    assert rollout.done


def test_to_dict_is_json_shaped():
    sim = Simulator()
    plane, rec, rollout = make(sim)
    sim.call_at(1.0, rollout.start)
    sim.run(until=20.0)
    d = rollout.to_dict()
    assert d["state"] == "settled"
    assert d["canary"]["targets"] == ["C"]
    assert d["fleet"]["targets"] == ["F1", "F2"]
    assert d["mttr"] is None and d["detect_delay"] is None
