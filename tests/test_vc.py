"""Tests for the virtual-circuit baseline network (the E1 counterfactual)."""

import pytest

from repro.sim.engine import Simulator
from repro.vc.network import VirtualCircuitNetwork


@pytest.fixture
def vc_net(sim):
    """Square of switches with hosts on opposite corners.

    S1 - S2
     |    |
    S4 - S3ops    (S1-S2, S2-S3, S3-S4, S4-S1)
    """
    net = VirtualCircuitNetwork(sim)
    for name in ("S1", "S2", "S3", "S4"):
        net.add_switch(name)
    net.add_trunk("S1", "S2")
    net.add_trunk("S2", "S3")
    net.add_trunk("S3", "S4")
    net.add_trunk("S4", "S1")
    net.attach_host("alice", "S1")
    net.attach_host("bob", "S3")
    return net


def test_call_setup_succeeds(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    assert circuit is not None
    assert circuit.state == "SETUP"
    sim.run(until=2)
    assert circuit.state == "OPEN"
    assert circuit.setup_latency > 0


def test_setup_installs_state_in_every_switch(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    sim.run(until=2)
    for name in circuit.path:
        assert circuit.id in vc_net.switches[name].table
    assert vc_net.total_state_entries == len(circuit.path)


def test_data_flows_in_order(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    got = []
    circuit.on_data = got.append
    sim.run(until=2)
    for i in range(10):
        circuit.send(f"pkt{i}".encode())
    sim.run(until=5)
    assert got == [f"pkt{i}".encode() for i in range(10)]


def test_send_before_open_fails(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    assert not circuit.send(b"too early")


def test_call_to_unattached_host_refused(sim, vc_net):
    assert vc_net.place_call("alice", "nobody") is None
    assert vc_net.stats.calls_refused == 1


def test_trunk_failure_tears_down_circuits(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    disconnects = []
    circuit.on_disconnect = lambda: disconnects.append(sim.now)
    sim.run(until=2)
    a, b = circuit.path[0], circuit.path[1]
    vc_net.fail_trunk(a, b)
    sim.run(until=3)
    assert circuit.state == "TORN_DOWN"
    assert disconnects
    assert vc_net.stats.circuits_torn_down == 1
    assert vc_net.total_state_entries == 0


def test_switch_crash_loses_table(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    sim.run(until=2)
    middle = circuit.path[1]
    vc_net.fail_switch(middle)
    assert vc_net.switches[middle].table == {}
    assert circuit.state == "TORN_DOWN"


def test_unrelated_circuit_survives_failure(sim, vc_net):
    vc_net.attach_host("carol", "S2")
    vc_net.attach_host("dave", "S1")
    c1 = vc_net.place_call("alice", "bob")
    c2 = vc_net.place_call("dave", "carol")  # S1-S2 only
    sim.run(until=2)
    # Kill a trunk on c1's path that c2 does not use.
    for i in range(len(c1.path) - 1):
        seg = {c1.path[i], c1.path[i + 1]}
        if seg != {"S1", "S2"}:
            vc_net.fail_trunk(*seg)
            break
    sim.run(until=3)
    assert c2.state == "OPEN"


def test_replaced_call_uses_surviving_path(sim, vc_net):
    c1 = vc_net.place_call("alice", "bob")
    sim.run(until=2)
    path1 = list(c1.path)
    vc_net.fail_trunk(path1[0], path1[1])
    sim.run(until=3)
    c2 = vc_net.place_call("alice", "bob")
    assert c2 is not None
    sim.run(until=6)
    assert c2.state == "OPEN"
    assert c2.path != path1


def test_no_path_after_partition(sim, vc_net):
    vc_net.fail_trunk("S1", "S2")
    vc_net.fail_trunk("S4", "S1")
    assert vc_net.place_call("alice", "bob") is None


def test_packets_in_flight_lost_on_teardown(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    sim.run(until=2)
    circuit.send(b"doomed")
    # Tear down before the packet can traverse.
    vc_net.fail_trunk(circuit.path[0], circuit.path[1])
    sim.run(until=5)
    assert vc_net.stats.packets_lost_in_teardown >= 1
    assert circuit.packets_delivered == 0


def test_close_releases_state(sim, vc_net):
    circuit = vc_net.place_call("alice", "bob")
    sim.run(until=2)
    circuit.close()
    assert vc_net.total_state_entries == 0
    assert circuit.state == "CLOSED"


def test_setup_counts_per_hop_messages(sim, vc_net):
    vc_net.place_call("alice", "bob")
    sim.run(until=2)
    assert vc_net.stats.setup_messages >= 2  # at least both endpoints' switches


def test_duplicate_switch_rejected(sim, vc_net):
    with pytest.raises(ValueError):
        vc_net.add_switch("S1")


def test_trunk_to_unknown_switch_rejected(sim, vc_net):
    with pytest.raises(ValueError):
        vc_net.add_trunk("S1", "S9")
