"""Tests for the packet-journey observability layer (repro.obs).

Covers the tentpole acceptance criteria directly:

* trace ids survive fragmentation and reassembly — one journey end to end;
* spans attribute drops to the right node during chaos faults
  (GatewayCrash, HostRestart);
* invariant violations carry the offending packet's hop-by-hop journey;
* the metrics registry (labels, histograms, register adapter, disabled
  null path);
* the bounded SpanStore (journey-granular eviction, per-trace truncation);
* the simulator profiler (per-component attribution, deterministic
  event counts);
* same-seed campaigns with observability embedded stay byte-identical.
"""

from __future__ import annotations

import math

import pytest

from repro import Internet
from repro.chaos.campaign import FaultCampaign
from repro.chaos.faults import GatewayCrash, HostRestart
from repro.chaos.monitors import InvariantMonitor
from repro.ip.packet import PROTO_UDP, Datagram
from repro.obs import (HopSpan, MetricsRegistry, Observability, SimProfiler,
                       SpanStore, default_buckets)
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Topology helpers
# ----------------------------------------------------------------------
def observed_line(*, seed=3, core_mtu=1500):
    """H1 - G1 - G2 - H2 with observe() installed, routing converged."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=1_000_000, delay=0.005, mtu=core_mtu)
    net.connect(g2, h2, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    obs = net.observe()
    return net, h1, h2, g1, g2, obs


def journeys_from(obs, origin_node):
    """Trace ids whose journey starts with an origin span at ``origin_node``."""
    out = []
    for tid in obs.spans.trace_ids():
        journey = obs.journey(tid)
        if journey and journey[0].kind == "origin" \
                and journey[0].node == origin_node:
            out.append(tid)
    return out


# ----------------------------------------------------------------------
# Trace contexts: stamping and end-to-end journeys
# ----------------------------------------------------------------------
def test_origin_stamp_and_delivery_journey():
    net, h1, h2, g1, g2, obs = observed_line()
    h1.node.send(h2.node.address, PROTO_UDP, b"x" * 64)
    net.sim.run(until=net.sim.now + 2.0)

    tids = journeys_from(obs, "H1")
    assert tids, "no journey originated at H1"
    journey = obs.journey(tids[0])
    kinds = [(s.kind, s.node) for s in journey]
    assert ("origin", "H1") == kinds[0]
    assert ("forward", "G1") in kinds and ("forward", "G2") in kinds
    assert ("deliver", "H2") == kinds[-1]
    # Link spans carry the dwell breakdown.
    link_spans = [s for s in journey if s.kind == "link"]
    assert link_spans and all(s.serialization > 0 for s in link_spans)


def test_trace_id_survives_fragmentation_and_reassembly():
    # Core MTU 596 forces G1 to fragment an 1100-byte payload.
    net, h1, h2, g1, g2, obs = observed_line(core_mtu=596)
    h1.node.send(h2.node.address, PROTO_UDP, b"y" * 1100)
    net.sim.run(until=net.sim.now + 2.0)

    tids = journeys_from(obs, "H1")
    assert len(tids) == 1, "fragments must not allocate new trace ids"
    journey = obs.journey(tids[0])
    verdicts = [s.verdict for s in journey]
    assert "fragmented" in verdicts
    # Each fragment transits the core link under the same trace id...
    core_links = [s for s in journey
                  if s.kind == "link" and s.node == "G1"]
    assert len(core_links) >= 2
    # ...and the reassembled whole is delivered once, on the same journey.
    delivers = [s for s in journey if s.kind == "deliver"]
    assert len(delivers) == 1
    assert delivers[0].node == "H2"
    assert "reassembled" in delivers[0].detail


def test_untraced_datagram_records_no_spans():
    net, h1, h2, g1, g2, obs = observed_line()
    before = obs.spans.spans_recorded
    # A raw datagram injected below send() keeps trace_id 0 on arrival.
    d = Datagram(src=h1.node.address, dst=h2.node.address,
                 protocol=PROTO_UDP, payload=b"z")
    obs.hop(net.sim.now, "H1", "origin", "originated", d)
    assert obs.spans.spans_recorded == before


def test_disabled_layer_records_nothing():
    net, h1, h2, g1, g2, obs = observed_line()
    obs.disable()
    before = obs.snapshot()
    h1.node.send(h2.node.address, PROTO_UDP, b"q" * 32)
    net.sim.run(until=net.sim.now + 2.0)
    after = obs.snapshot()
    assert after["spans"]["spans_recorded"] == \
        before["spans"]["spans_recorded"]
    assert after["trace_ids_allocated"] == before["trace_ids_allocated"]
    assert after["metrics"]["counters"] == before["metrics"]["counters"]


# ----------------------------------------------------------------------
# Chaos fault attribution
# ----------------------------------------------------------------------
def periodic_sender(net, src, dst, *, every=0.5, payload=64):
    def tick():
        src.node.send(dst.node.address, PROTO_UDP, b"p" * payload)
        net.sim.schedule(every, tick, label="test:sender")
    net.sim.schedule(every, tick, label="test:sender")


def test_gateway_crash_drops_attributed_to_gateway():
    net, h1, h2, g1, g2, obs = observed_line()
    periodic_sender(net, h1, h2, every=0.25)
    campaign = FaultCampaign(
        net, [GatewayCrash("G1", at=net.sim.now + 1.0, dwell=3.0)],
        monitors=[], name="crash-attrib")
    campaign.run(until=net.sim.now + 10.0)

    reg = obs.registry
    # While G1 is dark, packets arriving at it die with drop-node-down —
    # and the ledger names the node and the reason.
    assert reg.counter("ip_drops", node="G1",
                       reason="drop-node-down").value > 0
    # Some journey ends in that drop span at G1.
    drop_spans = [s for tid in obs.spans.trace_ids()
                  for s in obs.journey(tid)
                  if s.kind == "drop" and s.node == "G1"]
    assert any(s.verdict == "drop-node-down" for s in drop_spans)


def test_host_restart_drops_attributed_to_host():
    net, h1, h2, g1, g2, obs = observed_line()
    periodic_sender(net, h1, h2, every=0.25)
    campaign = FaultCampaign(
        net, [HostRestart("H2", at=net.sim.now + 1.0, dwell=3.0)],
        monitors=[], name="restart-attrib")
    campaign.run(until=net.sim.now + 10.0)

    assert obs.registry.counter("ip_drops", node="H2",
                                reason="drop-node-down").value > 0
    drop_spans = [s for tid in obs.spans.trace_ids()
                  for s in obs.journey(tid)
                  if s.kind == "drop" and s.node == "H2"]
    assert any(s.verdict == "drop-node-down" for s in drop_spans)


# ----------------------------------------------------------------------
# Violations carry the offending packet's journey
# ----------------------------------------------------------------------
def test_violation_attaches_journey():
    net, h1, h2, g1, g2, obs = observed_line()
    h1.node.send(h2.node.address, PROTO_UDP, b"v" * 64)
    net.sim.run(until=net.sim.now + 2.0)
    tid = journeys_from(obs, "H1")[0]

    monitor = InvariantMonitor()
    monitor.attach(net, campaign=None)
    offending = Datagram(src=h1.node.address, dst=h2.node.address,
                         protocol=PROTO_UDP, trace_id=tid)
    monitor.violate("synthetic breach", datagram=offending)

    v = monitor.violations[0]
    assert v.journey, "violation must carry the journey"
    assert v.journey == tuple(obs.journey_lines(tid))
    # Journey lines name nodes and verdicts end to end.
    assert any("H1" in line and "originated" in line for line in v.journey)
    assert any("H2" in line and "delivered" in line for line in v.journey)
    assert v.to_dict()["journey"] == list(v.journey)


def test_violation_without_datagram_has_empty_journey():
    net, h1, h2, g1, g2, obs = observed_line()
    monitor = InvariantMonitor()
    monitor.attach(net, campaign=None)
    monitor.violate("no packet in hand")
    assert monitor.violations[0].journey == ()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_registry_labeled_counters_and_totals():
    reg = MetricsRegistry()
    reg.counter("drops", node="A", reason="ttl").inc()
    reg.counter("drops", node="A", reason="ttl").inc()
    reg.counter("drops", node="B", reason="queue").inc(3)
    assert reg.counter("drops", node="A", reason="ttl").value == 2
    assert reg.counter_total("drops") == 5
    snap = reg.to_dict()["counters"]
    assert snap["drops{node=A,reason=ttl}"] == 2
    assert snap["drops{node=B,reason=queue}"] == 3


def test_registry_histogram_buckets_and_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("dwell")
    for v in (2e-6, 2e-6, 1e-3, 0.5):
        h.observe(v)
    assert h.count == 4
    assert h.mean == pytest.approx((2e-6 + 2e-6 + 1e-3 + 0.5) / 4)
    assert h.quantile(0.5) <= h.quantile(1.0)
    d = h.to_dict()
    assert sum(d["buckets"].values()) + d["overflow"] == 4


def test_histogram_overflow_bucket():
    h = MetricsRegistry().histogram("x", bounds=(1.0, 2.0))
    h.observe(10.0)
    assert h.to_dict()["overflow"] == 1
    assert h.quantile(1.0) == math.inf


def test_default_buckets_span_microseconds_to_kiloseconds():
    b = default_buckets()
    assert b[0] == pytest.approx(1e-6)
    assert b[-1] > 1000


def test_registry_disabled_returns_null_instruments():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x", node="A")
    c.inc()
    reg.histogram("y").observe(1.0)
    reg.gauge("z").set(5.0)
    assert len(reg) == 0
    assert reg.to_dict() == {"counters": {}, "gauges": {},
                             "histograms": {}, "registered": {}}


def test_register_adapter_snapshots_live_objects():
    class Stats:
        def __init__(self):
            self.sent = 0
            self._private = 99

    reg = MetricsRegistry()
    s = Stats()
    reg.register("comp", s)
    s.sent = 7
    snap = reg.to_dict()["registered"]["comp"]
    assert snap == {"sent": 7}  # live value, private attrs excluded


def test_register_adapter_accepts_providers_and_dicts():
    reg = MetricsRegistry()
    box = {"n": 1}
    reg.register("provider", lambda: {"n": box["n"], "skip": object()})
    reg.register("plain", {"k": 2})
    box["n"] = 5
    snap = reg.to_dict()["registered"]
    assert snap["provider"] == {"n": 5}   # provider called at export time
    assert snap["plain"] == {"k": 2}


# ----------------------------------------------------------------------
# SpanStore bounds
# ----------------------------------------------------------------------
def span(tid, t=0.0):
    return HopSpan(tid, t, "N", "forward", "forwarded")


def test_span_store_evicts_whole_oldest_journeys():
    store = SpanStore(max_traces=3)
    for tid in (1, 2, 3):
        store.append(span(tid))
        store.append(span(tid, 1.0))
    store.append(span(4))
    assert store.trace_ids() == [2, 3, 4]
    assert store.journey(1) == []          # evicted journey fully gone
    assert store.traces_evicted == 1
    assert len(store.journey(2)) == 2      # retained journeys stay whole


def test_span_store_truncates_pathological_journeys():
    store = SpanStore(max_traces=8)
    for i in range(SpanStore.MAX_SPANS_PER_TRACE + 10):
        store.append(span(1, float(i)))
    assert len(store.journey(1)) == SpanStore.MAX_SPANS_PER_TRACE
    assert store.spans_truncated == 10


def test_span_store_jsonl_roundtrip(tmp_path):
    import json
    store = SpanStore()
    store.append(HopSpan(1, 0.5, "A", "origin", "originated", "d",
                         0.001, 0.002, 0.003))
    path = store.export_jsonl(tmp_path / "spans.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec["node"] == "A" and rec["queue_wait"] == 0.001


# ----------------------------------------------------------------------
# Simulator profiling
# ----------------------------------------------------------------------
def test_profiler_attributes_events_per_component():
    sim = Simulator()
    prof = SimProfiler()
    sim.profiler = prof
    sim.schedule(1.0, lambda: None, label="tcp:rto")
    sim.schedule(2.0, lambda: None, label="tcp:ack")
    sim.schedule(3.0, lambda: None, label="link:a<->b")
    sim.run()
    by_comp = prof.by_component()
    assert by_comp["tcp"][0] == 2
    assert by_comp["link"][0] == 1
    assert prof.event_counts() == {"link": 1, "tcp": 2}
    table = prof.table().render()
    assert "tcp" in table and "link" in table


def test_profiler_wall_time_is_positive_but_excluded_from_counts():
    sim = Simulator()
    prof = SimProfiler()
    sim.profiler = prof
    sim.schedule(0.0, lambda: sum(range(1000)), label="work:busy")
    sim.run()
    count, wall = prof.by_component()["work"]
    assert count == 1 and wall > 0.0
    # event_counts (what reports embed) carries no wall time.
    assert prof.event_counts() == {"work": 1}


def test_unprofiled_simulator_has_no_overhead_attribute_surprises():
    sim = Simulator()
    assert sim.profiler is None
    sim.schedule(0.0, lambda: None)
    sim.run()  # simply must not raise


# ----------------------------------------------------------------------
# Determinism: same seed, same bytes, with obs embedded
# ----------------------------------------------------------------------
def run_observed_campaign(seed):
    from repro.chaos.__main__ import build_default_net
    from repro.chaos.random_chaos import RandomChaos
    net = build_default_net(seed)
    net.observe()
    chaos = RandomChaos(net, budget=3, rate=0.25, start=net.sim.now + 2.0)
    report = chaos.campaign(name="determinism").run()
    return report, net.obs


def test_same_seed_observed_campaigns_byte_identical():
    r1, obs1 = run_observed_campaign(11)
    r2, obs2 = run_observed_campaign(11)
    assert r1.to_json() == r2.to_json()
    assert "\n".join(obs1.spans.to_jsonl_lines()) == \
        "\n".join(obs2.spans.to_jsonl_lines())
    # The report embeds the obs snapshot (metrics + span health).
    d = r1.to_dict()
    assert "obs" in d["counters"]
    assert d["counters"]["obs"]["spans"]["spans_recorded"] > 0


def test_observe_is_idempotent_and_attaches_late_nodes():
    net = Internet(seed=1)
    obs = net.observe()
    assert net.observe() is obs
    h = net.host("late")
    assert h.node.obs is obs
    assert "node.late" in net.obs.registry.to_dict()["registered"]


def test_histogram_percentiles_bracket_known_distribution():
    """Quantiles of 1..1000 with decade bounds: each estimate is the
    upper bound of the bucket holding the true quantile — never below
    the true value, never above the next bound."""
    h = MetricsRegistry().histogram(
        "known", bounds=(1.0, 10.0, 100.0, 1000.0))
    for v in range(1, 1001):
        h.observe(float(v))
    # True p50 = 500 -> bucket (100, 1000]; p95 = 950 -> same bucket.
    p = h.percentiles()
    assert set(p) == {"p50", "p95", "p99"}
    assert p["p50"] == 1000.0
    assert p["p95"] == 1000.0
    assert p["p99"] == 1000.0
    # A tight low quantile lands in the right decade.
    assert h.quantile(0.01) == 10.0      # true value 10, bound 10
    assert h.quantile(0.001) == 1.0      # true value 1, first bucket
    # Monotone in q, always.
    qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    estimates = [h.quantile(q) for q in qs]
    assert estimates == sorted(estimates)


def test_histogram_percentiles_key_naming_and_custom_qs():
    h = MetricsRegistry().histogram("x", bounds=(1.0,))
    h.observe(0.5)
    p = h.percentiles((0.5, 0.999))
    assert set(p) == {"p50", "p99.9"}
    assert p["p50"] == 1.0


def test_histogram_quantile_edge_cases():
    h = MetricsRegistry().histogram("empty", bounds=(1.0, 2.0))
    assert h.quantile(0.5) == 0.0          # empty histogram
    assert h.percentiles()["p99"] == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)


def test_null_histogram_quantiles_are_zero():
    reg = MetricsRegistry(enabled=False)
    h = reg.histogram("off")
    h.observe(123.0)
    assert h.quantile(0.99) == 0.0
    assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
