"""Unit/integration tests for hosts and gateways (the datagram path)."""

import pytest

from repro.ip import icmp
from repro.ip.address import Address, Prefix
from repro.ip.forwarding import Route
from repro.ip.node import Node
from repro.ip.packet import Datagram, PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.static import add_default_route
from repro.sim.engine import Simulator


def collect(node, proto=PROTO_UDP):
    got = []
    node.register_protocol(proto, lambda n, d, i: got.append(d))
    return got


def test_local_delivery(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    got = collect(h2)
    assert h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert len(got) == 1
    assert got[0].payload == b"hi"
    assert got[0].src == Address("10.0.1.1")


def test_gateway_forwards_and_counts(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    collect(h2)
    h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert gw.stats.forwarded == 1


def test_ttl_decremented_in_transit(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    got = collect(h2)
    h1.send("10.0.2.2", PROTO_UDP, b"hi", ttl=10)
    sim.run(until=1)
    assert got[0].ttl == 9


def test_ttl_expiry_generates_time_exceeded(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    h1.send("10.0.2.2", PROTO_UDP, b"hi", ttl=1)
    sim.run(until=1)
    assert gw.stats.dropped_ttl == 1
    assert len(errors) == 1
    assert errors[0].type == icmp.TIME_EXCEEDED


def test_no_route_generates_unreachable(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    h1.send("203.0.113.5", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert gw.stats.dropped_no_route == 1
    assert errors and errors[0].type == icmp.DEST_UNREACHABLE


def test_unknown_protocol_generates_unreachable(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    h1.send("10.0.2.2", 99, b"hi")  # no handler registered on h2
    sim.run(until=1)
    assert errors and errors[0].code == icmp.UNREACH_PROTOCOL


def test_host_does_not_forward(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    # Craft a datagram through h2 addressed elsewhere.
    d = Datagram(src=Address("10.0.2.1"), dst=Address("10.0.9.9"),
                 protocol=PROTO_UDP, payload=b"x")
    h2.datagram_arrived(d, h2.interfaces[0])
    assert h2.stats.dropped_not_mine == 1
    assert h2.stats.forwarded == 0


def test_ping_round_trip(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    replies = []
    h1.ping("10.0.2.2", replies.append)
    sim.run(until=2)
    assert len(replies) == 1
    assert replies[0] > 0


def test_fragmentation_on_small_mtu_egress():
    sim = Simulator()
    a, b = Node("A", sim), Node("B", sim, is_gateway=True)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    PointToPointLink(sim, ia, ib, mtu=200, bandwidth_bps=1e6, delay=0.001)
    got = collect(b)
    a.send("10.0.1.2", PROTO_UDP, b"z" * 500)
    sim.run(until=1)
    assert a.stats.fragments_created >= 3
    assert len(got) == 1 and got[0].payload == b"z" * 500


def test_df_drop_counted():
    sim = Simulator()
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    PointToPointLink(sim, ia, ib, mtu=200, bandwidth_bps=1e6, delay=0.001)
    assert not a.send("10.0.1.2", PROTO_UDP, b"z" * 500, dont_fragment=True)
    assert a.stats.dropped_df == 1


def test_down_node_sends_nothing(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    h1.up = False
    assert not h1.send("10.0.2.2", PROTO_UDP, b"hi")
    assert h1.stats.dropped_down == 1


def test_crashed_gateway_black_holes(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    got = collect(h2)
    gw.crash()
    h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert got == []


def test_crash_clears_dynamic_routes_only(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    gw.routes.install(Route(Prefix.parse("10.9.0.0/16"),
                            gw.interfaces[0], Address("10.0.1.1"),
                            metric=3, source="dv"))
    connected_before = sum(1 for r in gw.routes.routes()
                           if r.source == "connected")
    gw.crash()
    assert all(r.source != "dv" for r in gw.routes.routes())
    after = sum(1 for r in gw.routes.routes() if r.source == "connected")
    assert after == connected_before


def test_crash_and_restore_hooks(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    calls = []
    gw.on_crash.append(lambda: calls.append("crash"))
    gw.on_restore.append(lambda: calls.append("restore"))
    gw.crash()
    gw.restore()
    assert calls == ["crash", "restore"]


def test_crash_clears_redirect_and_echo_state(two_hosts_one_gateway):
    # Fate-sharing regression: redirect rate-limit memory and pending echo
    # waiters are volatile conversation state — a crash must take them too,
    # or the restored node resumes suppressing redirects it never sent and
    # fires callbacks for pings the dead incarnation issued.
    sim, h1, gw, h2 = two_hosts_one_gateway
    gw._redirects_sent_to[(int(Address("10.0.1.2")), 42)] = sim.now
    gw._echo_waiters[(7, 1)] = lambda t: None
    gw.crash()
    assert gw._redirects_sent_to == {}
    assert gw._echo_waiters == {}


def test_source_address_follows_outgoing_interface(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    got = collect(h2)
    h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert got[0].src == h1.interfaces[0].address


def test_broadcast_delivered_locally(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    got = collect(gw)
    h1.send("10.0.1.255", PROTO_UDP, b"hello all", ttl=1)
    sim.run(until=1)
    assert len(got) == 1


def test_forward_inspectors_see_transit(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    collect(h2)
    seen = []
    gw.forward_inspectors.append(seen.append)
    h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert len(seen) == 1
    assert seen[0].dst == Address("10.0.2.2")


def test_work_units_counted(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    collect(h2)
    h1.send("10.0.2.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert gw.stats.work_units >= 2  # arrival + output


def test_node_requires_interface_for_address():
    sim = Simulator()
    lonely = Node("L", sim)
    with pytest.raises(RuntimeError):
        _ = lonely.address


def test_icmp_error_rate_limited_per_type_and_source(two_hosts_one_gateway):
    """A garbage flood buys at most one ICMP error per (type, source)
    per interval — the rest are counted, not amplified back."""
    sim, h1, gw, h2 = two_hosts_one_gateway
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    for i in range(20):
        sim.call_at(0.01 * (i + 1),
                    lambda: h1.send("203.0.113.5", PROTO_UDP, b"junk"))
    sim.run(until=0.5)
    assert gw.stats.dropped_no_route == 20
    assert len(errors) == 1                  # one advisory, not twenty
    assert gw.icmp_suppressed == 19
    # A *different* error type from the same source still gets through.
    h1.send("10.0.2.2", PROTO_UDP, b"hi", ttl=1)
    sim.run(until=1.0)
    assert any(m.type == icmp.TIME_EXCEEDED for m in errors)


def test_icmp_rate_limit_window_expires(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    h1.send("203.0.113.5", PROTO_UDP, b"a")
    sim.run(until=0.5)
    h1.send("203.0.113.5", PROTO_UDP, b"b")
    sim.run(until=gw.icmp_error_interval + 0.6)   # next interval open
    h1.send("203.0.113.5", PROTO_UDP, b"c")
    sim.run(until=gw.icmp_error_interval + 1.2)
    assert len(errors) == 2                  # first and third; second muted
    assert gw.icmp_suppressed == 1
