"""Integration: goal 1 — conversations survive what kills virtual circuits.

These are the paper's headline claims run end to end: the same failure
schedule is applied to (a) a TCP conversation over the datagram internet
with redundant paths, and (b) a virtual circuit over an equivalent switch
topology.  The datagram conversation survives; the circuit does not.
"""

import pytest

from repro import Internet
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.tcp.state import TcpState
from repro.vc.network import VirtualCircuitNetwork


def redundant_internet(seed=7):
    """H1 - G1 {primary G2 | backup G3-G4} G5 - H2."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3, g4, g5 = (net.gateway(f"G{i}") for i in range(1, 6))
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    primary = net.connect(g1, g2, bandwidth_bps=256e3, delay=0.01)
    net.connect(g2, g5, bandwidth_bps=256e3, delay=0.01)
    net.connect(g1, g3, bandwidth_bps=256e3, delay=0.01)
    net.connect(g3, g4, bandwidth_bps=256e3, delay=0.01)
    net.connect(g4, g5, bandwidth_bps=256e3, delay=0.01)
    net.connect(g5, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing(period=1.0)
    net.converge(settle=10.0)
    return net, h1, h2, primary, (g1, g2, g3, g4, g5)


def test_tcp_conversation_survives_link_failure():
    net, h1, h2, primary, gws = redundant_internet()
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=300_000)
    net.sim.schedule(5.0, lambda: primary.set_up(False))
    net.sim.run(until=net.sim.now + 400)
    assert len(receiver.results) == 1
    assert receiver.results[0].bytes_transferred == 300_000
    # The backup gateways carried traffic after the cut.
    g3, g4 = gws[2], gws[3]
    assert g3.node.stats.forwarded > 0
    assert g4.node.stats.forwarded > 0


def test_tcp_conversation_survives_gateway_crash():
    net, h1, h2, primary, gws = redundant_internet(seed=8)
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=300_000)
    g2 = gws[1]
    net.sim.schedule(5.0, g2.node.crash)
    net.sim.run(until=net.sim.now + 400)
    assert len(receiver.results) == 1
    assert receiver.results[0].bytes_transferred == 300_000


def test_crashed_gateway_rejoins_after_restore():
    net, h1, h2, primary, gws = redundant_internet(seed=9)
    g2 = gws[1]
    g2.node.crash()
    net.sim.run(until=net.sim.now + 20)
    g2.node.restore()
    net.sim.run(until=net.sim.now + 20)
    # After rebooting with empty tables, G2 relearned everything it needs.
    assert net.routing["G2"].table_size > 0


def test_no_conversation_state_in_gateways():
    """Fate-sharing, literally: gateways hold zero per-connection state."""
    net, h1, h2, primary, gws = redundant_internet()
    receiver = FileReceiver(h2, port=21)
    FileSender(h1, h2.address, 21, size=50_000)
    net.sim.run(until=net.sim.now + 60)
    assert receiver.results
    for gw in gws:
        # The only state in a gateway is its routing table; there is no
        # TCP stack, no connection table, nothing per-conversation.
        assert not hasattr(gw, "tcp")
        assert all(r.source in ("connected", "dv", "static")
                   for r in gw.node.routes.routes())


def equivalent_vc_net(sim):
    net = VirtualCircuitNetwork(sim)
    for name in ("S1", "S2", "S3", "S4", "S5"):
        net.add_switch(name)
    net.add_trunk("S1", "S2")          # primary
    net.add_trunk("S2", "S5")
    net.add_trunk("S1", "S3")          # backup
    net.add_trunk("S3", "S4")
    net.add_trunk("S4", "S5")
    net.attach_host("h1", "S1")
    net.attach_host("h2", "S5")
    return net


def test_virtual_circuit_dies_where_tcp_survives(sim):
    vc = equivalent_vc_net(sim)
    circuit = vc.place_call("h1", "h2")
    disconnected = []
    circuit.on_disconnect = lambda: disconnected.append(sim.now)
    sim.run(until=2)
    assert circuit.state == "OPEN"
    # Same failure: kill the primary trunk the circuit is using.
    assert circuit.path == ["S1", "S2", "S5"]
    vc.fail_trunk("S1", "S2")
    sim.run(until=5)
    assert circuit.state == "TORN_DOWN"
    assert disconnected
    # The endpoints must rebuild from scratch (data lost, new circuit).
    replacement = vc.place_call("h1", "h2")
    sim.run(until=10)
    assert replacement.state == "OPEN"
    assert replacement.path == ["S1", "S3", "S4", "S5"]
    assert vc.stats.circuits_torn_down == 1


def test_transparent_recovery_vs_visible_disruption():
    """The quantitative contrast: the TCP transfer completes with zero
    application-visible disruption events; the VC app sees >= 1."""
    # Datagram side.
    net, h1, h2, primary, gws = redundant_internet(seed=10)
    receiver = FileReceiver(h2, port=21)
    sender = FileSender(h1, h2.address, 21, size=200_000)
    app_disruptions = []
    sender.sock.conn.on_reset = lambda: app_disruptions.append("reset")
    net.sim.schedule(5.0, lambda: primary.set_up(False))
    net.sim.run(until=net.sim.now + 400)
    assert receiver.results and not app_disruptions

    # Circuit side, same failure pattern.
    from repro.sim.engine import Simulator
    sim2 = Simulator()
    vc = equivalent_vc_net(sim2)
    circuit = vc.place_call("h1", "h2")
    vc_disruptions = []
    circuit.on_disconnect = lambda: vc_disruptions.append("disconnect")
    sim2.run(until=5)
    vc.fail_trunk("S1", "S2")
    sim2.run(until=10)
    assert vc_disruptions == ["disconnect"]
