"""Architectural invariant tests: the properties the paper treats as load-
bearing, checked adversarially."""

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ip import icmp
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.static import add_static_route
from repro.sim.engine import Simulator
from repro.vc.network import VirtualCircuitNetwork


# ----------------------------------------------------------------------
# TTL kills routing loops
# ----------------------------------------------------------------------
def looped_pair(sim):
    """Two gateways whose static routes for 10.99/16 point at each other."""
    a = Node("A", sim, is_gateway=True)
    b = Node("B", sim, is_gateway=True)
    prefix = Prefix.parse("10.0.1.0/30")
    ia = a.add_interface(Interface("a0", prefix.host(1), prefix))
    ib = b.add_interface(Interface("b0", prefix.host(2), prefix))
    PointToPointLink(sim, ia, ib, bandwidth_bps=10e6, delay=0.001)
    add_static_route(a, "10.99.0.0/16", prefix.host(2))
    add_static_route(b, "10.99.0.0/16", prefix.host(1))
    return a, b


def test_ttl_bounds_a_routing_loop(sim):
    a, b = looped_pair(sim)
    host = Node("H", sim)
    hp = Prefix.parse("10.0.2.0/30")
    ih = host.add_interface(Interface("h0", hp.host(1), hp))
    ia2 = a.add_interface(Interface("a1", hp.host(2), hp))
    PointToPointLink(sim, ih, ia2, bandwidth_bps=10e6, delay=0.001)
    add_static_route(host, "10.99.0.0/16", hp.host(2))
    # B needs a return route for its ICMP errors to reach the host.
    add_static_route(b, "10.0.2.0/30", Prefix.parse("10.0.1.0/30").host(1))

    errors = []
    host.add_icmp_error_listener(lambda n, m, d: errors.append(m.type))
    host.send("10.99.1.1", PROTO_UDP, b"doomed", ttl=16)
    sim.run(until=5)
    # The datagram ping-ponged at most TTL times, then died loudly.
    total_hops = a.stats.forwarded + b.stats.forwarded
    assert total_hops <= 16
    assert a.stats.dropped_ttl + b.stats.dropped_ttl == 1
    assert icmp.TIME_EXCEEDED in errors


def test_ttl_loop_does_not_runaway_the_simulator(sim):
    a, b = looped_pair(sim)
    # Inject directly at A as if from a host (no ICMP listener needed).
    from repro.ip.packet import Datagram
    d = Datagram(src=Address("10.0.1.1"), dst=Address("10.99.1.1"),
                 protocol=PROTO_UDP, payload=b"x", ttl=255)
    a.datagram_arrived(d.copy(), a.interfaces[0])
    sim.run(until=10, max_events=100_000)  # must terminate well within this
    # ~255 transit hops for the datagram plus a few for ICMP errors: the
    # point is boundedness, not the exact count.
    assert a.stats.forwarded + b.stats.forwarded <= 300


# ----------------------------------------------------------------------
# VC state accounting invariants under random failures
# ----------------------------------------------------------------------
SLOW = settings(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


@SLOW
@given(
    n_switches=st.integers(min_value=3, max_value=8),
    extra_edges=st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)),
                         max_size=8),
    n_calls=st.integers(min_value=1, max_value=6),
    failures=st.lists(st.integers(0, 100), max_size=4),
)
def test_vc_state_matches_open_circuits(n_switches, extra_edges, n_calls,
                                        failures):
    sim = Simulator()
    vc = VirtualCircuitNetwork(sim)
    names = [f"S{i}" for i in range(n_switches)]
    for name in names:
        vc.add_switch(name)
    edges = set()
    for i in range(n_switches - 1):
        edges.add((i, i + 1))
    for a, b in extra_edges:
        a, b = a % n_switches, b % n_switches
        if a != b and (a, b) not in edges and (b, a) not in edges:
            edges.add((a, b))
    for a, b in edges:
        vc.add_trunk(names[a], names[b])
    vc.attach_host("src", names[0])
    vc.attach_host("dst", names[-1])

    circuits = [vc.place_call("src", "dst") for _ in range(n_calls)]
    circuits = [c for c in circuits if c is not None]
    sim.run(until=5)

    edge_list = sorted(edges)
    for choice in failures:
        a, b = edge_list[choice % len(edge_list)]
        vc.fail_trunk(names[a], names[b])
    sim.run(until=10)

    open_circuits = [c for c in circuits if c.state == "OPEN"]
    # Invariant 1: per-switch table entries == open circuits through it.
    expected_entries = sum(len(c.path) for c in open_circuits)
    assert vc.total_state_entries == expected_entries
    # Invariant 2: no open circuit crosses a failed trunk.
    for circuit in open_circuits:
        for i in range(len(circuit.path) - 1):
            trunk = vc.trunk_between(circuit.path[i], circuit.path[i + 1])
            assert trunk is not None and trunk.up
    # Invariant 3: data still flows on every open circuit.
    delivered = []
    for circuit in open_circuits:
        circuit.on_data = delivered.append
        assert circuit.send(b"alive")
    sim.run(until=20)
    assert len(delivered) == len(open_circuits)


@SLOW
@given(
    n_switches=st.integers(min_value=3, max_value=6),
    n_calls=st.integers(min_value=1, max_value=5),
)
def test_vc_close_releases_all_state(n_switches, n_calls):
    sim = Simulator()
    vc = VirtualCircuitNetwork(sim)
    names = [f"S{i}" for i in range(n_switches)]
    for name in names:
        vc.add_switch(name)
    for i in range(n_switches - 1):
        vc.add_trunk(names[i], names[i + 1])
    vc.attach_host("src", names[0])
    vc.attach_host("dst", names[-1])
    circuits = [vc.place_call("src", "dst") for _ in range(n_calls)]
    sim.run(until=5)
    for circuit in circuits:
        circuit.close()
    assert vc.total_state_entries == 0
