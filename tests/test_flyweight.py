"""Flyweight packet pool: unit semantics + differential equivalence.

The pool is a lifetime optimisation, not a semantic change — the
differential tests run the same seeded scenarios with and without pooling
and demand packet-for-packet identical outcomes (delivery counts, obs
journeys, chaos campaign report bytes).
"""

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.ip.address import Address
from repro.ip.flyweight import PacketPool
from repro.ip.packet import Datagram


def make_datagram(**kw):
    kw.setdefault("src", Address("10.0.0.1"))
    kw.setdefault("dst", Address("10.0.0.2"))
    kw.setdefault("protocol", 17)
    return Datagram(**kw)


# ----------------------------------------------------------------------
# Pool unit semantics
# ----------------------------------------------------------------------
class TestPoolUnits:
    def test_acquire_release_recycles_same_shell(self):
        pool = PacketPool()
        d1 = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17,
                          payload=b"hello")
        assert pool.owns(d1) and d1.pool_state == 1
        pool.release(d1)
        assert d1.pool_state == 2 and pool.free == 1
        d2 = pool.acquire(Address("10.0.0.3"), Address("10.0.0.4"), 6)
        assert d2 is d1  # the shell came back
        assert d2.pool_state == 1
        assert pool.allocated == 1 and pool.reused == 1

    def test_release_clears_payload(self):
        pool = PacketPool()
        d = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17,
                         payload=b"x" * 4096)
        pool.release(d)
        assert d.payload == b""

    def test_double_release_is_counted_and_ignored(self):
        pool = PacketPool()
        d = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17)
        pool.release(d)
        pool.release(d)
        assert pool.released == 1
        assert pool.foreign_releases == 1
        assert pool.free == 1  # not on the free list twice

    def test_foreign_datagram_release_is_ignored(self):
        pool = PacketPool()
        d = make_datagram()
        assert not pool.owns(d)
        pool.release(d)
        assert pool.free == 0 and pool.released == 0
        assert pool.foreign_releases == 1

    def test_copy_of_pooled_product_is_ordinary(self):
        # Rule: a copy() derivative starts an un-pooled life — fragments
        # and ICMP quotes built via copy() must not get recycled.
        pool = PacketPool()
        d = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17)
        c = d.copy(ttl=5)
        assert c.pool_state == 0 and not pool.owns(c)
        pool.release(c)
        assert pool.foreign_releases == 1 and pool.free == 0

    def test_clone_forward_decrements_ttl_only(self):
        pool = PacketPool()
        d = make_datagram(ttl=9, ident=42, tos=3, payload=b"pp",
                          trace_id=77)
        c = pool.clone_forward(d)
        assert c.ttl == 8
        assert (c.src, c.dst, c.protocol, c.payload, c.ident, c.tos,
                c.trace_id) == (d.src, d.dst, d.protocol, d.payload,
                                d.ident, d.tos, d.trace_id)
        assert pool.owns(c)

    def test_clone_matches_copy(self):
        pool = PacketPool()
        d = make_datagram(ttl=9, payload=b"zz")
        c = pool.clone(d, tos=5)
        assert c == d.copy(tos=5)

    def test_from_wire_round_trip_and_interning(self):
        pool = PacketPool()
        d = make_datagram(payload=b"payload", ttl=7, ident=99)
        wire = d.to_bytes()
        p1 = pool.from_wire(wire, trace_id=5)
        p2 = pool.from_wire(wire)
        assert p2 == Datagram.from_bytes(wire)
        assert p1.trace_id == 5 and p2.trace_id == 0
        assert p1.to_bytes() == wire
        # Addresses interned: both parses share the same objects.
        assert p1.src is p2.src and p1.dst is p2.dst
        assert pool.counters()["interned_addresses"] == 2

    def test_header_key_interned(self):
        pool = PacketPool()
        a, b = make_datagram(), make_datagram()
        assert pool.header_key(a) is pool.header_key(b)

    def test_max_free_caps_the_free_list(self):
        pool = PacketPool(max_free=2)
        shells = [pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17)
                  for _ in range(5)]
        for s in shells:
            pool.release(s)
        assert pool.free == 2
        assert pool.released == 5

    def test_live_accounting(self):
        pool = PacketPool()
        d1 = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17)
        d2 = pool.acquire(Address("10.0.0.1"), Address("10.0.0.2"), 17)
        assert pool.live == 2
        pool.release(d1)
        assert pool.live == 1
        pool.release(d2)
        assert pool.live == 0


# ----------------------------------------------------------------------
# Differential: pooled vs object path on a live topology
# ----------------------------------------------------------------------
def build_net(pooled: bool, *, trace=False, seed=11, mtu=None):
    """H1 — G1 — G2 — LAN(H2, H3); CBR + UDP traffic both ways."""
    net = Internet(seed=seed, trace=trace)
    h1 = net.host("H1")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    h2, h3 = net.host("H2"), net.host("H3")
    kw = {} if mtu is None else {"mtu": mtu}
    net.connect(h1, g1, **kw)
    net.connect(g1, g2, **kw)
    net.lan("lan0", [g2, h2, h3])
    net.start_routing()
    if pooled:
        net.enable_packet_pool()
    net.converge(settle=8.0)
    return net, h1, h2, h3


def run_traffic(pooled: bool, *, payload=200, seed=11, mtu=None):
    net, h1, h2, h3 = build_net(pooled, seed=seed, mtu=mtu)
    sink2 = UdpSink(h2, port=9000)
    sink1 = UdpSink(h1, port=9000)
    CbrSource(h1, h2.node.address, 9000, size=payload, rate=40.0,
              duration=5.0)
    CbrSource(h3, h1.node.address, 9000, size=payload, rate=25.0,
              duration=5.0)
    net.sim.run(until=20.0)
    stats = {
        name: (n.stats.delivered, n.stats.forwarded, n.stats.originated,
               n.stats.fragments_created, n.stats.dropped_no_route)
        for name, n in net.nodes().items()
    }
    return stats, (sink1.packets, sink1.bytes, sink2.packets, sink2.bytes), net


class TestDifferential:
    def test_same_delivery_and_stats(self):
        s_pool, sinks_pool, net = run_traffic(True)
        s_obj, sinks_obj, _ = run_traffic(False)
        assert s_pool == s_obj
        assert sinks_pool == sinks_obj
        pool = net.packet_pool
        assert pool is not None and pool.reused > 0

    def test_same_behavior_through_fragmentation(self):
        # A small p2p MTU forces fragmentation + reassembly; rule 3 says
        # the reassembler retains fragments, so this is the path a buggy
        # release discipline would corrupt first.
        s_pool, sinks_pool, _ = run_traffic(True, payload=1200, mtu=576)
        s_obj, sinks_obj, _ = run_traffic(False, payload=1200, mtu=576)
        assert s_pool == s_obj
        assert sinks_pool == sinks_obj
        assert any(st[3] > 0 for st in s_pool.values())  # fragments happened

    def test_same_obs_journeys(self):
        def journeys(pooled):
            net, h1, h2, _ = build_net(pooled, trace=False)
            obs = net.observe()
            sink = UdpSink(h2, port=9000)
            CbrSource(h1, h2.node.address, 9000, size=300, rate=30.0,
                      duration=4.0)
            net.sim.run(until=18.0)
            spans = [
                (s.trace_id, s.time, s.node, s.kind, s.verdict, s.detail)
                for s in obs.spans
            ]
            return spans, sink.packets

        sp_pool, got_pool = journeys(True)
        sp_obj, got_obj = journeys(False)
        assert got_pool == got_obj > 0
        assert sp_pool == sp_obj

    def test_same_chaos_campaign_report_bytes(self):
        from repro.chaos.restart import build_restart_scenario

        def report_json(pooled):
            scenario = build_restart_scenario(
                seed=7, restarts=1, payload_len=4000, chunk=400,
                chunk_interval=0.2, first_at=2.0, tail=15.0)
            if pooled:
                scenario.net.enable_packet_pool()
            return scenario.run().to_json()

        assert report_json(True) == report_json(False)


# ----------------------------------------------------------------------
# Lifetime rules on live media
# ----------------------------------------------------------------------
class TestLifetimeRules:
    def test_directed_broadcast_on_lan_never_recycled(self):
        # Rule 4: a LAN hands the *same* object to every member; no
        # receiver may recycle it out from under the others.
        net = Internet(seed=3)
        g = net.gateway("G")
        hosts = [net.host(f"H{i}") for i in range(3)]
        lan = net.lan("lan0", [g] + hosts)
        net.start_routing()
        pool = net.enable_packet_pool()
        net.converge(settle=5.0)

        got = []
        for h in hosts:
            h.node.register_protocol(
                200, lambda node, d, iface: got.append((node.name,
                                                        d.payload)))
        bcast = lan.prefix.broadcast
        released_before = pool.released
        assert g.node.send(bcast, 200, b"to-everyone", ttl=1)
        net.sim.run(until=net.sim.now + 1.0)
        assert sorted(n for n, _ in got) == ["H0", "H1", "H2"]
        assert all(p == b"to-everyone" for _, p in got)
        assert pool.released == released_before  # nobody recycled it

    def test_unicast_terminal_release_recycles(self):
        net = Internet(seed=3)
        h1, h2 = net.host("H1"), net.host("H2")
        g = net.gateway("G")
        net.connect(h1, g)
        net.connect(h2, g)
        net.start_routing()
        pool = net.enable_packet_pool()
        net.converge(settle=5.0)
        h2.node.register_protocol(200, lambda node, d, iface: None)
        for _ in range(20):
            assert h1.node.send(h2.node.address, 200, b"ping")
            net.sim.run(until=net.sim.now + 0.5)
        # Steady state: shells recycle instead of growing the pool.
        assert pool.reused > 0
        assert pool.live <= 2
