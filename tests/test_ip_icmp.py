"""Unit tests for ICMP message formats and constructors."""

import pytest

from repro.ip import icmp
from repro.ip.address import Address
from repro.ip.packet import Datagram, PROTO_ICMP, PROTO_TCP


A = Address("10.0.0.1")
B = Address("10.0.0.2")
R = Address("10.0.0.254")


def test_echo_round_trip():
    msg = icmp.IcmpMessage(icmp.ECHO_REQUEST, 0, ident=7, sequence=3,
                           body=b"ping data")
    parsed = icmp.IcmpMessage.from_bytes(msg.to_bytes())
    assert parsed == msg


def test_checksum_detects_corruption():
    wire = bytearray(icmp.IcmpMessage(icmp.ECHO_REQUEST, 0, 1, 1).to_bytes())
    wire[4] ^= 0x55
    with pytest.raises(icmp.IcmpError):
        icmp.IcmpMessage.from_bytes(bytes(wire))


def test_short_message_rejected():
    with pytest.raises(icmp.IcmpError):
        icmp.IcmpMessage.from_bytes(b"\x08\x00")


def test_echo_request_datagram():
    d = icmp.echo_request(A, B, ident=5, sequence=9, data=b"x")
    assert d.protocol == PROTO_ICMP
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.ECHO_REQUEST
    assert (msg.ident, msg.sequence) == (5, 9)


def test_echo_reply_mirrors_request():
    request = icmp.IcmpMessage(icmp.ECHO_REQUEST, 0, 5, 9, b"payload")
    d = icmp.echo_reply(B, A, request)
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.ECHO_REPLY
    assert msg.body == b"payload"
    assert (msg.ident, msg.sequence) == (5, 9)


def offending():
    return Datagram(src=A, dst=B, protocol=PROTO_TCP,
                    payload=b"\x00\x50\x01\xbb" + b"\x00" * 20, ttl=1, ident=77)


def test_destination_unreachable_quotes_offender():
    d = icmp.destination_unreachable(R, offending(), icmp.UNREACH_PORT)
    assert d.dst == A  # error goes back to the source
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.DEST_UNREACHABLE
    assert msg.code == icmp.UNREACH_PORT
    assert msg.is_error
    quoted = msg.quoted_datagram_header()
    assert quoted is not None
    assert quoted.src == A and quoted.dst == B
    assert quoted.ident == 77


def test_time_exceeded():
    d = icmp.time_exceeded(R, offending())
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.TIME_EXCEEDED
    assert msg.quoted_datagram_header().protocol == PROTO_TCP


def test_source_quench():
    d = icmp.source_quench(R, offending())
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    assert msg.type == icmp.SOURCE_QUENCH
    assert msg.is_error


def test_quote_includes_transport_ports():
    # The quoted body carries header + 8 payload bytes: enough for ports.
    d = icmp.destination_unreachable(R, offending())
    msg = icmp.IcmpMessage.from_bytes(d.payload)
    quoted = msg.quoted_datagram_header()
    assert quoted.payload[:2] == b"\x00\x50"  # src port 80


def test_echo_is_not_error():
    msg = icmp.IcmpMessage(icmp.ECHO_REQUEST, 0, 1, 1)
    assert not msg.is_error
    assert msg.quoted_datagram_header() is None
