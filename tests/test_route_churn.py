"""Route-churn ledger + traceroute-vs-graph tests.

The ledger is the per-node memory of what the control plane *did*; the
probe walk is the measurement of what the data plane *does*.  These
tests pin both ends: the ledger's ring is capacity-bounded and its
counters monotonic, flaps are counted exactly when a prefix reinstalls
inside the flap window, a same-seed run exports byte-identical ledgers,
and on the full 512-node ring every steady-state traceroute reproduces
the graph-computed forwarding path hop for hop.
"""

from dataclasses import replace

import pytest

from repro.chaos.routeobs import build_diamond
from repro.harness.scaletopo import RingNet, ScaleConfig
from repro.ip.address import Address, Prefix
from repro.ip.forwarding import Route
from repro.metrics.export import canonical_json
from repro.obs.routing import (
    PathProbeResponder,
    PathProber,
    RouteChurnLedger,
    attach_route_ledger,
    forwarding_path,
)


class _FakeIface:
    name = "if0"
    up = True


def _route(prefix: str, metric: int = 1, at: float = 0.0, gen: int = 0):
    return Route(prefix=Prefix.parse(prefix), interface=_FakeIface(),
                 next_hop=Address("10.0.0.2"), metric=metric, source="dv",
                 learned_from=Address("10.0.0.2"), installed_at=at,
                 install_generation=gen)


# ----------------------------------------------------------------------
# Ledger ring semantics
# ----------------------------------------------------------------------
def test_ring_evicts_beyond_capacity_counters_survive():
    ledger = RouteChurnLedger("G1", capacity=8)
    for i in range(30):
        ledger.route_installed(_route(f"10.{i}.0.0/16", at=float(i), gen=i))
    assert len(ledger.events) == 8
    assert ledger.evicted == 30 - 8
    # Counters are not ring-bounded: every event is still accounted.
    assert ledger.installs == 30
    assert ledger.counters()["churn_events"] == 30
    # The ring keeps the *newest* events.
    assert [e.generation for e in ledger.events] == list(range(22, 30))


def test_replace_classification():
    ledger = RouteChurnLedger("G1")
    base = _route("10.1.0.0/16")
    ledger.route_replaced(_route("10.1.0.0/16", metric=5), base)   # metric
    moved = Route(prefix=base.prefix, interface=_FakeIface(),
                  next_hop=Address("10.0.0.9"), metric=1, source="dv")
    ledger.route_replaced(moved, base)                             # next hop
    ledger.route_replaced(_route("10.1.0.0/16"), base)             # refresh
    counters = ledger.counters()
    assert counters["churn_metric_changes"] == 1
    assert counters["churn_replacements"] == 1
    assert counters["churn_refreshes"] == 1


def test_flap_is_reinstall_inside_window_only():
    ledger = RouteChurnLedger("G1", flap_window=10.0)
    ledger.route_installed(_route("10.1.0.0/16", at=0.0))
    assert ledger.flaps == 0  # first install is not a flap
    ledger.route_withdrawn(_route("10.1.0.0/16"), when=5.0)
    ledger.route_installed(_route("10.1.0.0/16", at=9.0))
    assert ledger.flaps == 1  # back within 4 s of the withdrawal
    ledger.route_withdrawn(_route("10.1.0.0/16"), when=12.0)
    ledger.route_installed(_route("10.1.0.0/16", at=40.0))
    assert ledger.flaps == 1  # 28 s later is a new life, not a flap
    # A different prefix reinstalling never counts against this one.
    ledger.route_withdrawn(_route("10.2.0.0/16"), when=41.0)
    ledger.route_installed(_route("10.3.0.0/16", at=42.0))
    assert ledger.flaps == 1


# ----------------------------------------------------------------------
# Flap counting under a real LinkFlap storm
# ----------------------------------------------------------------------
def _storm_diamond(seed: int):
    """Diamond with ledgers, baseline arm flapped three times."""
    net = build_diamond(seed)
    ledgers = {name: attach_route_ledger(net.gateways[name].node)
               for name in sorted(net.gateways)}
    net.sim.run(until=8.0)
    h1, h2 = net.hosts["H1"], net.hosts["H2"]
    baseline = forwarding_path(net.address_owners(), h1.node,
                               h2.node.address) or []
    arm = net.links[1] if "G2" in baseline else net.links[2]
    # Down 4 s (long enough for DV to withdraw), up 4 s (reinstall lands
    # inside the 10 s flap window), three cycles.
    for k in range(3):
        start = 10.0 + 8.0 * k
        net.sim.call_at(start, lambda: net.fail_link(arm))
        net.sim.call_at(start + 4.0, lambda: net.restore_link(arm))
    net.sim.run(until=40.0)
    return net, ledgers


def test_linkflap_storm_counts_flaps():
    _net, ledgers = _storm_diamond(seed=7)
    totals = {name: ledger.counters() for name, ledger in ledgers.items()}
    flaps = sum(c["churn_flaps"] for c in totals.values())
    withdrawals = sum(c["churn_withdrawals"] for c in totals.values())
    assert withdrawals > 0, "storm never made DV withdraw anything"
    assert flaps >= 3, f"three flap cycles, only {flaps} flaps counted"
    # The flapping is localized to the diamond's gateways, and at least
    # one end of the flapped arm saw it directly.
    assert any(totals[g]["churn_flaps"] > 0 for g in ("G1", "G2", "G3"))


def test_same_seed_ledger_export_byte_identical():
    _, first = _storm_diamond(seed=11)
    _, second = _storm_diamond(seed=11)
    blob_a = canonical_json([first[g].to_dict() for g in sorted(first)])
    blob_b = canonical_json([second[g].to_dict() for g in sorted(second)])
    assert blob_a == blob_b


# ----------------------------------------------------------------------
# Traceroute agrees with the graph on the 512-node ring
# ----------------------------------------------------------------------
def test_traceroute_matches_graph_on_full_ring():
    cfg = replace(ScaleConfig(seed=7), n_as=8, gateways_per_as=8,
                  hosts_per_lan=7)
    net = RingNet(cfg)
    n = cfg.n_as
    for j in range(n):
        PathProbeResponder(net.hosts[f"A{j}G0H0"])
    net.sim.run(until=10.0)  # IGP + exterior fully converged

    owners = net.address_owners()
    results = {}
    probers = []
    for i in range(n):
        j = (i + 3) % n
        src = net.hosts[f"A{i}G1H1"]
        dst = cfg.lan_host_address(j, 0, 0)
        prober = PathProber(src, dst, owners=owners)
        prober.start(lambda r, key=f"A{i}G1H1->A{j}G0H0": results
                     .__setitem__(key, r))
        probers.append((src.node, dst))
    net.sim.run(until=25.0)

    assert len(results) == n, f"only {len(results)}/{n} walks finished"
    for (src_node, dst), (key, result) in zip(probers, sorted(results.items())):
        graph = forwarding_path(owners, src_node, dst)
        assert result.completed, f"{key}: walk went dark in steady state"
        assert graph is not None, f"{key}: graph says unreachable"
        assert list(result.hops) == graph, (
            f"{key}: traceroute {list(result.hops)} != graph {graph}")
        # Every walk crosses the exterior seam: at least source hub,
        # some transit hubs, destination hub.
        assert len(result.hops) >= 3
