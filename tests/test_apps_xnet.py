"""Tests for the XNET-style datagram debugger."""

from repro import Internet
from repro.apps.xnet import XnetClient, XnetServer
from repro.netlayer.loss import BernoulliLoss


def test_peek_poke_round_trip(simple_internet):
    net, h1, h2, core = simple_internet
    server = XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69)
    values = []
    client.poke(0x1000, 0xDEADBEEF)
    client.peek(0x1000, values.append)
    net.sim.run(until=net.sim.now + 10)
    assert values == [0xDEADBEEF]
    assert server.memory[0x1000] == 0xDEADBEEF
    assert client.completed == 2


def test_unwritten_memory_peeks_zero(simple_internet):
    net, h1, h2, core = simple_internet
    XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69)
    values = []
    client.peek(0x9999, values.append)
    net.sim.run(until=net.sim.now + 10)
    assert values == [0]


def test_latency_measured(simple_internet):
    net, h1, h2, core = simple_internet
    XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69)
    for addr in range(20):
        client.peek(addr)
    net.sim.run(until=net.sim.now + 30)
    summary = client.latency_summary()
    assert summary.count == 20
    assert 0.01 < summary.mean < 1.0


def lossy_net(loss_rate, seed=6):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G1")
    net.connect(h1, g, bandwidth_bps=1e6, delay=0.01,
                loss=BernoulliLoss(loss_rate))
    net.connect(g, h2, bandwidth_bps=1e6, delay=0.01)
    net.start_routing()
    net.converge(settle=6.0)
    return net, h1, h2


def test_application_retry_recovers_loss():
    net, h1, h2 = lossy_net(0.3)
    XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69, timeout=0.5, max_attempts=10)
    for addr in range(20):
        client.peek(addr)
    net.sim.run(until=net.sim.now + 120)
    assert client.completed == 20
    assert client.retries > 0


def test_gives_up_when_unreachable():
    net, h1, h2 = lossy_net(1.0)
    XnetServer(h2, port=69)
    results = []
    client = XnetClient(h1, h2.address, 69, timeout=0.2, max_attempts=3)
    client.peek(1, results.append)
    net.sim.run(until=net.sim.now + 30)
    assert results == [None]
    assert client.failed == 1


def test_duplicate_responses_dropped():
    """A retried request may yield two responses; only one must count."""
    net, h1, h2 = lossy_net(0.0)
    server = XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69, timeout=10.0)
    got = []
    client.peek(5, got.append)
    net.sim.run(until=net.sim.now + 5)
    # Forge a duplicate response by re-serving the same txid.
    assert client.completed == 1
    assert got == [0]


def test_server_is_stateless_per_client(simple_internet):
    net, h1, h2, core = simple_internet
    server = XnetServer(h2, port=69)
    c1 = XnetClient(h1, h2.address, 69)
    c2 = XnetClient(h1, h2.address, 69)
    c1.poke(1, 11)
    c2.poke(2, 22)
    net.sim.run(until=net.sim.now + 10)
    assert server.memory == {1: 11, 2: 22}
    assert server.requests_served == 2
