"""Tests for the accounting module (goal 7)."""

import pytest

from repro import Internet
from repro.accounting.ledger import (
    FlowAccountant,
    Ledger,
    PacketAccountant,
    SamplingAccountant,
)
from repro.apps.traffic import CbrSource, UdpSink


def traffic_net():
    net = Internet(seed=21)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(g, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=6.0)
    return net, h1, h2, g


def test_ledger_accumulates():
    ledger = Ledger()
    ledger.charge(("a", "b"), 2, 100)
    ledger.charge(("a", "b"), 1, 50)
    ledger.charge(("c", "d"), 1, 10)
    assert ledger.total_packets() == 4
    assert ledger.total_bytes() == 160
    assert ledger.bytes_for(("a", "b")) == 150
    assert ledger.entities == 2


def test_packet_accountant_charges_every_transit_packet():
    net, h1, h2, g = traffic_net()
    acct = PacketAccountant(g.node, granularity=24)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=4.0)
    net.sim.run(until=net.sim.now + 10)
    assert sink.packets > 150
    # Every forwarded user packet was charged (+ routing chatter).
    assert acct.ledger.total_packets() >= sink.packets
    assert acct.lookups == acct.ledger.total_packets()


def test_flow_accountant_matches_packet_totals():
    net, h1, h2, g = traffic_net()
    pkt = PacketAccountant(g.node, granularity=24)
    flow = FlowAccountant(g.node, granularity=24, idle_timeout=1.0)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=4.0)
    net.sim.run(until=net.sim.now + 15)
    flow.flush()
    assert flow.ledger.total_bytes() == pkt.ledger.total_bytes()
    assert flow.ledger.total_packets() == pkt.ledger.total_packets()


def test_flow_accountant_bounds_active_state():
    net, h1, h2, g = traffic_net()
    flow = FlowAccountant(g.node, idle_timeout=0.5, sweep_interval=0.5)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=2.0)
    net.sim.run(until=net.sim.now + 10)
    # Long after traffic stops, the active table must have drained.
    assert flow.state_entries == 0
    assert flow.records_exported >= 1


def test_flow_records_carry_times():
    net, h1, h2, g = traffic_net()
    flow = FlowAccountant(g.node, idle_timeout=0.5)
    sink = UdpSink(h2, 9000)
    start = net.sim.now
    CbrSource(h1, h2.address, 9000, size=100, rate=20.0, duration=2.0)
    net.sim.run(until=net.sim.now + 1)
    # Snapshot an active record.
    record = next(iter(flow.active.values()))
    assert record.first_seen >= start
    assert record.last_seen >= record.first_seen
    assert record.packets > 0


def test_sampling_accountant_approximates():
    net, h1, h2, g = traffic_net()
    exact = PacketAccountant(g.node, granularity=24)
    sampled = SamplingAccountant(g.node, granularity=24, sample_every=5)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=100.0, duration=10.0)
    net.sim.run(until=net.sim.now + 15)
    assert sampled.lookups < exact.lookups / 4
    assert sampled.ledger.total_bytes() == pytest.approx(
        exact.ledger.total_bytes(), rel=0.25)


def test_sampling_rejects_zero():
    net, h1, h2, g = traffic_net()
    with pytest.raises(ValueError):
        SamplingAccountant(g.node, sample_every=0)


def test_accounting_does_not_change_forwarding():
    net, h1, h2, g = traffic_net()
    PacketAccountant(g.node)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=2.0)
    net.sim.run(until=net.sim.now + 5)
    assert 95 <= sink.packets <= 105


def test_flow_finalize_exports_open_records():
    net, h1, h2, g = traffic_net()
    flow = FlowAccountant(g.node, idle_timeout=60.0, sweep_interval=60.0)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=2.0)
    net.sim.run(until=net.sim.now + 3)
    # The flow is still inside its (long) idle timeout: open, unexported.
    assert flow.state_entries > 0
    assert flow.records_exported == 0
    before = flow.ledger.total_bytes()
    flow.finalize()
    # Settlement: the open record reached the ledger, state drained.
    assert flow.state_entries == 0
    assert flow.records_exported > 0
    assert flow.ledger.total_bytes() > before


def test_flow_finalize_is_idempotent():
    net, h1, h2, g = traffic_net()
    flow = FlowAccountant(g.node, idle_timeout=60.0, sweep_interval=60.0)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=2.0)
    net.sim.run(until=net.sim.now + 3)
    flow.finalize()
    exported, total = flow.records_exported, flow.ledger.total_bytes()
    flow.finalize()
    flow.finalize()
    assert flow.records_exported == exported
    assert flow.ledger.total_bytes() == total


def test_flow_finalize_stops_the_sweeper():
    net, h1, h2, g = traffic_net()
    flow = FlowAccountant(g.node, idle_timeout=0.5, sweep_interval=0.5)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=1.0)
    net.sim.run(until=net.sim.now + 2)
    flow.finalize()
    # A finalized accountant schedules nothing: the simulator goes quiet
    # instead of sweeping an empty table forever.
    net.sim.run(until=net.sim.now + 30)
    assert not flow._sweeper.running


def test_flow_finalize_matches_packet_truth():
    net, h1, h2, g = traffic_net()
    pkt = PacketAccountant(g.node, granularity=24)
    flow = FlowAccountant(g.node, granularity=24, idle_timeout=60.0,
                          sweep_interval=60.0)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=100, rate=50.0, duration=3.0)
    net.sim.run(until=net.sim.now + 5)
    flow.finalize()
    assert flow.ledger.total_bytes() == pkt.ledger.total_bytes()
    assert flow.ledger.total_packets() == pkt.ledger.total_packets()


def test_sampling_bias_bound_per_entity():
    # The documented bound: per entity pair the sampled bill differs
    # from the exact one by less than sample_every packets' worth.
    net, h1, h2, g = traffic_net()
    n = 7
    exact = PacketAccountant(g.node, granularity=24)
    sampled = SamplingAccountant(g.node, granularity=24, sample_every=n)
    sink = UdpSink(h2, 9000)
    CbrSource(h1, h2.address, 9000, size=200, rate=80.0, duration=8.0)
    net.sim.run(until=net.sim.now + 12)
    for key, exact_packets in exact.ledger.packets.items():
        billed_packets = sampled.ledger.packets.get(key, 0)
        assert abs(billed_packets - exact_packets) <= n - 1
