"""Scale smoke tests: a bigger internet than any other test builds.

Not a micro-benchmark — just evidence that the engine, routing and
transports stay correct and tractable at tens of nodes and thousands of
datagrams, the scale a downstream user's first real experiment will have.
"""

import pytest

from repro import Internet, run_transfer
from repro.apps.traffic import CbrSource, UdpSink
from repro.sim.rand import RandomStreams


def build_grid(width=5, height=4, seed=99):
    """A width x height gateway grid with a host on each corner."""
    net = Internet(seed=seed)
    gws = {}
    for x in range(width):
        for y in range(height):
            gws[(x, y)] = net.gateway(f"G{x}-{y}")
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                net.connect(gws[(x, y)], gws[(x + 1, y)],
                            bandwidth_bps=1e6, delay=0.002)
            if y + 1 < height:
                net.connect(gws[(x, y)], gws[(x, y + 1)],
                            bandwidth_bps=1e6, delay=0.002)
    corners = [(0, 0), (width - 1, 0), (0, height - 1),
               (width - 1, height - 1)]
    hosts = []
    for i, corner in enumerate(corners):
        host = net.host(f"H{i}")
        net.connect(host, gws[corner], bandwidth_bps=10e6, delay=0.001)
        hosts.append(host)
    net.start_routing(period=2.0)
    net.converge(settle=25.0)
    return net, gws, hosts


@pytest.fixture(scope="module")
def grid():
    return build_grid()


def test_grid_converges(grid):
    net, gws, hosts = grid
    # Every gateway knows a route to every host attachment.
    for host in hosts:
        for proc in net.routing.values():
            from repro.ip.address import Prefix
            prefix = Prefix.of(host.address, 30)
            assert proc.metric_to(prefix) < 16


def test_cross_grid_transfers(grid):
    net, gws, hosts = grid
    outcome = run_transfer(net, hosts[0], hosts[3], size=100_000,
                           port=4100, deadline=300)
    assert outcome.completed
    assert outcome.goodput_bps > 100_000  # the 1 Mb/s grid carries it


def test_many_concurrent_flows(grid):
    net, gws, hosts = grid
    sinks = []
    for i, receiver in enumerate(hosts):
        sinks.append(UdpSink(receiver, 9100 + i))
    for i, sender in enumerate(hosts):
        receiver = hosts[(i + 2) % 4]   # opposite corner
        CbrSource(sender, receiver.address, 9100 + ((i + 2) % 4),
                  size=256, rate=50.0, duration=10.0)
    net.sim.run(until=net.sim.now + 20)
    for sink in sinks:
        assert sink.packets >= 450      # ~500 sent, minimal queue loss


def test_grid_survives_random_failures(grid):
    net, gws, hosts = grid
    rng = RandomStreams(5).stream("failures")
    victims = rng.sample([k for k in gws if k not in
                          [(0, 0), (4, 0), (0, 3), (4, 3)]], 3)
    for victim in victims:
        gws[victim].node.crash()
    net.sim.run(until=net.sim.now + 40)  # reconverge
    outcome = run_transfer(net, hosts[0], hosts[3], size=50_000,
                           port=4200, deadline=300)
    assert outcome.completed  # a 5x4 grid shrugs off three dead gateways
