"""Tests driven through the tracer and other observability surfaces."""

import random

import pytest

from repro.flows.scheduler import DrrScheduler
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import Datagram, PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.netlayer.loss import BernoulliLoss
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.tcp.stack import TcpStack


def traced_pair(sim, tracer, *, loss=None, seed=0):
    a = Node("A", sim, tracer=tracer)
    b = Node("B", sim, tracer=tracer)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    PointToPointLink(sim, ia, ib, bandwidth_bps=1e6, delay=0.005,
                     loss=loss, rng=random.Random(seed))
    return a, b


def test_tcp_lifecycle_appears_in_trace(sim):
    tracer = Tracer()
    a, b = traced_pair(sim, tracer)
    sa, sb = TcpStack(a), TcpStack(b)
    sb.listen(80, lambda c: setattr(c, "on_close", c.close))
    conn = sa.connect("10.0.1.2", 80)

    def finish():
        conn.send(b"bye")
        conn.close()

    conn.on_established = finish
    sim.run(until=60)
    assert tracer.count(component="tcp", node="A", event="syn-sent") == 1
    assert tracer.count(component="tcp", node="B", event="syn-received") == 1
    assert tracer.count(component="tcp", event="established") == 2
    assert tracer.count(component="tcp", node="A", event="fin-sent") == 1
    assert tracer.count(component="tcp", node="B", event="fin-received") == 1


def test_syn_retransmissions_counted_in_trace(sim):
    tracer = Tracer()
    loss = BernoulliLoss(1.0)
    a, b = traced_pair(sim, tracer, loss=loss)
    sa, sb = TcpStack(a), TcpStack(b)
    sb.listen(80, lambda c: None)
    conn = sa.connect("10.0.1.2", 80)
    # Heal after ~two retransmission intervals (3 s initial RTO).
    sim.schedule(8.0, lambda: setattr(loss, "rate", 0.0))
    sim.run(until=60)
    from repro.tcp.state import TcpState
    assert conn.state is TcpState.ESTABLISHED
    # SYN went out at t=0, ~3 s, ~9 s (backoff x2): >= 2 retransmissions.
    assert conn.stats.segments_retransmitted >= 2


def test_fragmentation_traced(sim):
    tracer = Tracer()
    a, b = traced_pair(sim, tracer)
    # Shrink the path MTU below the payload.
    a.interfaces[0].medium.mtu = 200
    b.register_protocol(PROTO_UDP, lambda n, d, i: None)
    a.send("10.0.1.2", PROTO_UDP, b"z" * 500)
    sim.run(until=1)
    assert tracer.count(component="ip", node="A", event="frag") == 1


def test_node_crash_traced(sim):
    tracer = Tracer()
    a, b = traced_pair(sim, tracer)
    a.crash()
    a.restore()
    assert tracer.count(component="node", node="A", event="crash") == 1
    assert tracer.count(component="node", node="A", event="restore") == 1


# ----------------------------------------------------------------------
# Scheduler ordering details
# ----------------------------------------------------------------------
def test_fifo_mode_preserves_arrival_order(sim):
    a = Node("A", sim)
    b = Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    PointToPointLink(sim, ia, ib, bandwidth_bps=10e6, delay=0.001)
    sched = DrrScheduler(sim, ia, 100_000, mode="fifo")
    got = []
    b.register_protocol(PROTO_UDP,
                        lambda n, d, i: got.append(d.payload[:1]))
    # Two "flows" interleaved; FIFO must not reorder across flows.
    for i in range(10):
        src = "10.0.1.1"
        a.send("10.0.1.2", PROTO_UDP,
               (b"A" if i % 2 == 0 else b"B") + bytes([i]))
    sim.run(until=5)
    assert len(got) == 10
    assert got == [b"A", b"B"] * 5


def test_drr_flow_stats_expose_service(sim):
    a = Node("A", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    b = Node("B", sim)
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    PointToPointLink(sim, ia, ib, bandwidth_bps=10e6, delay=0.001)
    sched = DrrScheduler(sim, ia, 1_000_000, mode="drr")
    b.register_protocol(PROTO_UDP, lambda n, d, i: None)
    for _ in range(5):
        a.send("10.0.1.2", PROTO_UDP, b"x" * 100)
    sim.run(until=2)
    stats = sched.flow_stats()
    assert sum(packets for packets, drops in stats.values()) == 5
    assert sched.stats.dequeued == 5
    assert sched.queued_packets == 0


# ----------------------------------------------------------------------
# StreamSocket under reset
# ----------------------------------------------------------------------
def test_stream_socket_reports_peer_reset(simple_internet):
    net, h1, h2, core = simple_internet
    server_socks = []
    h2.listen(4000, server_socks.append)
    sock = h1.connect(h2.address, 4000)
    closed = []
    sock.on_closed = lambda: closed.append(net.sim.now)
    net.sim.run(until=net.sim.now + 2)
    server_socks[0].abort()           # peer slams the door
    net.sim.run(until=net.sim.now + 5)
    assert closed
    from repro.tcp.state import TcpState
    assert sock.conn.state is TcpState.CLOSED
