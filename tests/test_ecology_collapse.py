"""The collapse ecology: archetypes, harm attribution, determinism.

The expensive full race lives in ``python -m repro.chaos --campaign
collapse``; these tests run the small (4-AS) shape of the same legs, so
every mechanism the campaign scores — storm, attribution, detection,
quench-behind-scheduler, byte-identical reports — is covered in seconds.
"""

import dataclasses

import pytest

from repro.chaos.collapse import _run_leg
from repro.ecology import (AGGRESSIVE, BROKEN, CONFORMING, EcologyConfig,
                           archetype_config, build_ecology, sink_config)
from repro.metrics.export import canonical_json


def small_config(**overrides):
    base = dict(n_as=4, gateways_per_as=4, hosts_per_lan=2, flows_per_as=2,
                seed=11, broken_ases=(1,), aggressive_ases=(3,))
    base.update(overrides)
    return EcologyConfig(**base)


# ----------------------------------------------------------------------
# Archetypes
# ----------------------------------------------------------------------
def test_conforming_is_the_post_1988_citizen():
    cfg = archetype_config(CONFORMING)
    assert cfg.congestion_control and cfg.fast_retransmit
    assert not cfg.ecn
    assert archetype_config(CONFORMING, ecn=True).ecn


def test_aggressive_never_backs_off():
    cfg = archetype_config(AGGRESSIVE)
    assert not cfg.congestion_control and not cfg.nagle
    assert cfg.rto == "fixed"            # fixed == backoff() is a no-op
    assert cfg.send_buffer > archetype_config(CONFORMING).send_buffer


def test_broken_rto_sits_below_congested_queueing_delay():
    cfg = archetype_config(BROKEN)
    assert cfg.rto == "fixed"
    assert cfg.rto_kwargs["value"] <= 1.0
    assert not cfg.congestion_control and not cfg.fast_retransmit
    assert not cfg.repacketize
    # ecn request is ignored: the archetype would not respond anyway.
    assert not archetype_config(BROKEN, ecn=True).ecn
    assert not archetype_config(AGGRESSIVE, ecn=True).ecn


def test_unknown_archetype_rejected():
    with pytest.raises(ValueError):
        archetype_config("polite")


def test_sink_window_is_not_the_bottleneck():
    assert sink_config().recv_buffer == 65535


# ----------------------------------------------------------------------
# Ecology construction
# ----------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        small_config(defense="wfq")
    with pytest.raises(ValueError):
        small_config(broken_ases=(9,))
    with pytest.raises(ValueError):
        small_config(broken_ases=(1,), aggressive_ases=(1,))


def test_archetype_map_and_flow_keys():
    cfg = small_config()
    assert cfg.archetype_of(1) == BROKEN
    assert cfg.archetype_of(3) == AGGRESSIVE
    assert cfg.archetype_of(0) == cfg.archetype_of(2) == CONFORMING
    assert cfg.misbehaving_ases == (1, 3)
    assert not cfg.ecn
    assert small_config(defense="red").ecn
    net = build_ecology(cfg)
    conf, mis = net.conforming_flow_keys(), net.misbehaving_flow_keys()
    assert len(conf) == 2 * cfg.flows_per_as
    assert len(mis) == 2 * cfg.flows_per_as
    assert not set(conf) & set(mis)


def test_ecology_builds_the_population():
    cfg = small_config()
    net = build_ecology(cfg)
    # 4 AS x (4 gateways + 4 LANs x 2 hosts)
    assert len(net.gateways) == 16
    assert len(net.hosts) == 32
    assert sorted(net.bottlenecks) == [0, 1, 2, 3]
    assert len(net.voice_receivers) == cfg.n_as
    # Every bottleneck ring link got a bounded queue and a quencher.
    for i, (iface, link) in net.bottlenecks.items():
        assert link.queue_limit == cfg.bottleneck_queue
    assert len(net.quenchers) == cfg.n_as
    assert len(net.harm) == cfg.n_as and len(net.flow_accountants) == cfg.n_as


def test_defense_wiring():
    assert not build_ecology(small_config()).red_states
    red_net = build_ecology(small_config(defense="red"))
    assert len(red_net.red_states) == 4 and not red_net.schedulers
    drr_net = build_ecology(small_config(defense="red_drr"))
    assert len(drr_net.schedulers) == 4 and not drr_net.red_states


def test_misbehaving_population_toggles():
    net = build_ecology(small_config())
    net.sim.run(until=14.0)              # conforming traffic is up
    assert net.misbehaving_started == 0
    net.start_misbehaving()
    assert net.misbehaving_started == 2 * net.config.flows_per_as
    net.sim.run(until=16.0)
    net.stop_misbehaving()
    assert net.misbehaving_stopped == net.misbehaving_started


# ----------------------------------------------------------------------
# The storm, scored (one small FIFO leg ~4 s wall clock)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fifo_leg():
    return _run_leg(3, "fifo", mixed=True, managed=True, size="small")


def test_harm_ledger_attributes_the_storm(fifo_leg):
    _, entry = fifo_leg
    harm = entry["harm"]
    assert harm["duplicate_bytes_total"] > 1_000_000
    # The majority of duplicate bytes charge to the misbehaving ASes.
    assert harm["misbehaving_duplicate_fraction"] > 0.5
    # ...and the conforming flows are visibly crushed.
    assert (entry["goodput_bps"]["conforming_per_flow_mean"]
            < entry["goodput_bps"]["misbehaving"] / 4)


def test_netmgmt_detects_collapse_by_mttd(fifo_leg):
    report, _ = fifo_leg
    records = report.counters["netmgmt"]["per_fault"]
    assert len(records) == 1
    assert records[0]["kind"] == "misbehaving-hosts"
    assert records[0]["detected"]
    assert 0 < records[0]["mttd"] < 20.0
    assert report.counters["netmgmt"]["false_alarms"] == 0


def test_quench_flows_during_the_storm(fifo_leg):
    _, entry = fifo_leg
    assert entry["quench"]["drops_seen"] > 0
    assert 0 < entry["quench"]["sent"] <= entry["quench"]["drops_seen"]


def test_flow_accounting_survives_finalize(fifo_leg):
    _, entry = fifo_leg
    acct = entry["accounting"]
    assert acct["flow_records_exported"] > 0
    assert acct["flow_ledger_bytes"] > 0
    assert acct["open_records_after_finalize"] == 0


def test_quench_fires_behind_the_drr_scheduler():
    # Scheduler drops are not link-queue drops; the notify path must
    # still reach the SourceQuencher or the defense silences the advice.
    _, entry = _run_leg(3, "red_drr", mixed=True, managed=False,
                        size="small")
    assert entry["scheduler_drops"] > 0
    assert entry["quench"]["drops_seen"] == entry["scheduler_drops"]
    assert entry["quench"]["sent"] > 0
    # Per-flow RED ran: some arrivals were early-signalled, and the ECT
    # stamping means conforming flows got marks, not just drops.
    assert entry["red"]["early_marked"] > 0
    assert entry["red"]["early_dropped"] + entry["red"]["forced_dropped"] > 0


# ----------------------------------------------------------------------
# Determinism: same seed, byte-identical scorecards
# ----------------------------------------------------------------------
def test_same_seed_leg_is_byte_identical(fifo_leg):
    report_a, entry_a = fifo_leg
    report_b, entry_b = _run_leg(3, "fifo", mixed=True, managed=True,
                                 size="small")
    assert canonical_json(entry_a) == canonical_json(entry_b)
    assert report_a.to_json() == report_b.to_json()


def test_different_seed_diverges_where_the_rng_lives():
    # A FIFO baseline is deterministic demand over deterministic service
    # — seeds cannot move it.  RED is where randomness enters, so the
    # seed must show up in its marking pattern (and nowhere by accident).
    _, a = _run_leg(3, "red", mixed=False, managed=False, size="small")
    _, b = _run_leg(4, "red", mixed=False, managed=False, size="small")
    assert a["red"] != b["red"]
