"""Keepalive, RST window validation, quiet time, and the fate-sharing
crash machinery — the TCP half of the host-restart closed loop."""

import struct

import pytest

from repro.ip.address import Address
from repro.ip import icmp
from repro.ip.packet import Datagram, PROTO_TCP
from repro.netlayer.loss import BernoulliLoss
from repro.tcp.connection import TcpConfig
from repro.tcp.segment import FLAG_ACK, FLAG_RST, TcpSegment, seq_add
from repro.tcp.stack import QuietTimeError
from repro.tcp.state import TcpState

from test_tcp_connection import accept_collect, tcp_pair


KEEPALIVE = dict(keepalive_idle=1.0, keepalive_interval=0.5,
                 keepalive_probes=2)


def established_pair(sim, *, client_config=None, server_config=None,
                     loss=None):
    ca, cb, a, b, link = tcp_pair(sim, client_config=client_config,
                                  server_config=server_config, loss=loss)
    conns, data = accept_collect(cb, 80)
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    assert conn.state is TcpState.ESTABLISHED
    return ca, cb, conn, conns[0], data, (a, b, link)


# ----------------------------------------------------------------------
# Keepalive
# ----------------------------------------------------------------------
def test_keepalive_probes_answered_by_live_peer(sim):
    ca, cb, conn, srv, _, _ = established_pair(
        sim, client_config=TcpConfig(**KEEPALIVE))
    sim.run(until=8)
    assert conn.state is TcpState.ESTABLISHED
    assert conn.stats.keepalives_sent >= 3
    # A live peer answers every probe (a resynchronizing ACK), so the
    # probe counter never accumulates and the connection never dies.
    assert conn.stats.keepalives_answered >= 3
    assert conn.close_reason is None


def test_keepalive_declares_dead_peer(sim):
    loss = BernoulliLoss(0.0)
    ca, cb, conn, srv, _, _ = established_pair(
        sim, client_config=TcpConfig(**KEEPALIVE), loss=loss)
    loss.rate = 1.0  # the path goes dark; nothing is in flight
    sim.run(until=20)
    assert conn.state is TcpState.CLOSED
    assert conn.close_reason == "keepalive-timeout"
    assert conn.stats.keepalives_sent == 2  # the configured probe budget
    assert conn.stats.keepalives_answered == 0


def test_keepalive_disabled_by_default(sim):
    ca, cb, conn, srv, _, _ = established_pair(sim)
    sim.run(until=30)
    assert conn.stats.keepalives_sent == 0
    assert TcpConfig().keepalive_death_threshold() is None


def test_keepalive_detects_silently_rebooted_peer(sim):
    """The RFC 793 half-open dance: a probe into a reborn stack draws an
    RST that lands exactly in our window and sheds the zombie."""
    ca, cb, conn, srv, _, (a, b, link) = established_pair(
        sim,
        client_config=TcpConfig(**KEEPALIVE),
        server_config=TcpConfig(quiet_time=0.2))
    sim.schedule(1.0, b.crash)
    sim.schedule(1.3, b.restore)
    sim.run(until=10)
    # B kept nothing (fate-sharing); A's probe was answered with RST.
    assert srv.close_reason == "host-crash"
    assert conn.state is TcpState.CLOSED
    assert conn.close_reason == "reset"
    assert conn.stats.keepalives_sent >= 1


def test_keepalive_death_threshold_arithmetic():
    cfg = TcpConfig(keepalive_idle=3.0, keepalive_interval=1.5,
                    keepalive_probes=4)
    assert cfg.keepalive_death_threshold() == pytest.approx(3.0 + 1.5 * 4)


# ----------------------------------------------------------------------
# RST acceptance window (RFC 5961 flavour) — satellite bugfix
# ----------------------------------------------------------------------
def forged_rst(conn, seq):
    return TcpSegment(src_port=conn.remote_port, dst_port=conn.local_port,
                      seq=seq, flags=FLAG_RST)


def test_off_window_forged_rst_is_rejected(sim):
    ca, cb, conn, srv, _, _ = established_pair(sim)
    window = max(conn.rcv.window, 1)
    blind = forged_rst(conn, seq_add(conn.rcv.rcv_next, window + 4096))
    conn.segment_arrived(blind)
    assert conn.state is TcpState.ESTABLISHED
    assert conn.stats.rst_out_of_window == 1
    # A second blind shot from below the window fares no better.
    conn.segment_arrived(forged_rst(conn, seq_add(conn.rcv.rcv_next, -1)))
    assert conn.state is TcpState.ESTABLISHED
    assert conn.stats.rst_out_of_window == 2
    assert conn.close_reason is None


def test_exact_rst_still_kills(sim):
    ca, cb, conn, srv, _, _ = established_pair(sim)
    resets = []
    conn.on_reset = lambda: resets.append(sim.now)
    conn.segment_arrived(forged_rst(conn, conn.rcv.rcv_next))
    assert conn.state is TcpState.CLOSED
    assert conn.close_reason == "reset"
    assert resets
    assert conn.stats.rst_out_of_window == 0


def test_off_window_rst_draws_challenge_ack(sim):
    ca, cb, conn, srv, _, _ = established_pair(sim)
    acked_before = srv.stats.segments_received
    conn.segment_arrived(
        forged_rst(conn, seq_add(conn.rcv.rcv_next, 70000)))
    sim.run(until=sim.now + 1)
    # The challenge ACK crossed the wire (the legitimate peer would use
    # it to resynchronize; a blind attacker learns nothing).
    assert srv.stats.segments_received > acked_before
    assert conn.state is TcpState.ESTABLISHED


# ----------------------------------------------------------------------
# Listener close — satellite bugfix
# ----------------------------------------------------------------------
def test_closed_listener_keeps_spawned_connections(sim):
    ca, cb, a, b, link = tcp_pair(sim)
    conns, data = accept_collect(cb, 80)
    listener = cb._listeners[80]
    conn = ca.connect("10.0.1.2", 80)
    sim.run(until=1)
    listener.close()
    conn.send(b"still works after the listener is gone")
    sim.run(until=3)
    assert bytes(data) == b"still works after the listener is gone"
    assert conns[0].state is TcpState.ESTABLISHED


def test_syn_to_closed_listener_refused_with_rst(sim):
    ca, cb, a, b, link = tcp_pair(sim)
    conns, _ = accept_collect(cb, 80)
    cb._listeners[80].close()
    conn = ca.connect("10.0.1.2", 80)
    resets = []
    conn.on_reset = lambda: resets.append(sim.now)
    sim.run(until=5)
    # Refused fast with RST, not left to burn the whole SYN budget.
    assert conn.state is TcpState.CLOSED
    assert resets
    assert cb.refused_syns >= 1
    assert cb.resets_sent >= 1
    assert conns == []


def test_double_listener_close_is_idempotent(sim):
    ca, cb, *_ = tcp_pair(sim)
    listener = cb.listen(80, lambda c: None)
    listener.close()
    listener.close()  # must not raise, must not evict a successor
    successor = cb.listen(80, lambda c: None)
    listener.close()
    assert cb._listeners[80] is successor


# ----------------------------------------------------------------------
# Quiet time and fate-sharing
# ----------------------------------------------------------------------
def test_host_crash_closes_connections_silently(sim):
    ca, cb, conn, srv, _, (a, b, link) = established_pair(sim)
    sent_before = b.stats.originated
    b.crash()
    assert srv.state is TcpState.CLOSED
    assert srv.close_reason == "host-crash"
    assert cb.connections == []
    assert cb._listeners == {}
    # No FIN, no RST — the dead host said nothing on the way down.
    assert b.stats.originated == sent_before


def test_quiet_time_blocks_active_open_then_allows(sim):
    ca, cb, conn, srv, _, (a, b, link) = established_pair(
        sim, client_config=TcpConfig(quiet_time=1.0))
    sim.run(until=2)
    a.crash()
    sim.schedule(0.5, a.restore)
    sim.run(until=2.6)  # restored at 2.5, quiet until 3.5
    assert ca.in_quiet_time()
    assert ca.quiet_remaining() > 0
    with pytest.raises(QuietTimeError):
        ca.connect("10.0.1.2", 80)
    sim.run(until=4)
    assert not ca.in_quiet_time()
    accept_collect(cb, 81)
    conn2 = ca.connect("10.0.1.2", 81)
    sim.run(until=5)
    assert conn2.state is TcpState.ESTABLISHED


def test_quiet_time_drops_inbound_segments(sim):
    ca, cb, conn, srv, _, (a, b, link) = established_pair(
        sim, server_config=TcpConfig(quiet_time=5.0))
    sim.run(until=2)
    b.crash()
    sim.schedule(0.2, b.restore)
    conn.send(b"retransmitted into the quiet window")
    sim.run(until=6)  # initial RTO is 3s: the retransmit lands at ~5.0
    assert cb.quiet_time_drops > 0
    assert cb.connections == []  # nothing accepted during quiet time


def test_isn_quiet_violation_counter_is_unconditional(sim):
    """With enforcement disabled, early ISNs still count — that counter is
    the observation surface the chaos monitor audits."""
    ca, cb, conn, srv, _, (a, b, link) = established_pair(
        sim, client_config=TcpConfig(quiet_time=10.0))
    sim.run(until=2)
    a.crash()
    sim.schedule(0.2, a.restore)
    sim.run(until=3)
    ca.enforce_quiet_time = False
    assert ca.quiet_remaining() == 0.0  # enforcement off: no wait claimed
    accept_collect(cb, 82)
    ca.connect("10.0.1.2", 82)          # ISN issued inside the window
    assert ca.isn_quiet_violations >= 1


# ----------------------------------------------------------------------
# ICMP advice — satellite coverage
# ----------------------------------------------------------------------
def quoted_tcp(conn):
    """An offending datagram quoting ``conn``'s outbound TCP header."""
    return Datagram(
        src=conn.local_addr, dst=conn.remote_addr, protocol=PROTO_TCP,
        payload=struct.pack("!HH", conn.local_port, conn.remote_port)
        + b"\x00" * 4)


def deliver_icmp(stack, node, carrier):
    message = icmp.IcmpMessage.from_bytes(carrier.payload)
    stack._icmp_error(node, message, carrier)


def test_source_quench_collapses_cwnd(sim):
    ca, cb, conn, srv, _, (a, b, link) = established_pair(sim)
    conn.send(b"x" * 200_000)
    sim.run(until=sim.now + 0.15)  # enough ACKs for slow start to open up
    flight = conn.flight_size
    assert flight > 0
    cwnd_before = conn.cwnd
    assert cwnd_before > conn.snd_mss
    carrier = icmp.source_quench(Address("10.0.1.2"), quoted_tcp(conn))
    deliver_icmp(ca, a, carrier)
    assert conn.cwnd == conn.snd_mss
    assert conn.cwnd < cwnd_before
    assert conn.ssthresh == max(flight // 2, 2 * conn.snd_mss)


def test_unreachable_fatal_in_syn_sent(sim):
    ca, cb, a, b, link = tcp_pair(sim)
    conn = ca.connect("10.0.1.2", 80)
    assert conn.state is TcpState.SYN_SENT
    carrier = icmp.destination_unreachable(
        Address("10.0.1.2"), quoted_tcp(conn), code=icmp.UNREACH_PORT)
    deliver_icmp(ca, a, carrier)
    assert conn.state is TcpState.CLOSED
    assert conn.close_reason == "icmp-unreachable"


def test_unreachable_advisory_when_synchronized(sim):
    ca, cb, conn, srv, _, (a, b, link) = established_pair(sim)
    for _ in range(3):
        carrier = icmp.destination_unreachable(
            Address("10.0.1.2"), quoted_tcp(conn), code=icmp.UNREACH_HOST)
        deliver_icmp(ca, a, carrier)
    # Soft error: counted, never fatal — the path may heal (goal 1).
    assert conn.state is TcpState.ESTABLISHED
    assert conn.stats.soft_errors == 3
    conn.send(b"the conversation continues")
    sim.run(until=sim.now + 2)
    assert conn.state is TcpState.ESTABLISHED
