"""Behavioural tests for distance-vector routing."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.base import INFINITY_METRIC, RouteAdvert, pack_adverts, unpack_adverts
from repro.routing.distance_vector import DistanceVectorRouting
from repro.sim.engine import Simulator
from repro.udp.udp import UdpStack


def build_chain(sim, count=4, period=1.0):
    """G1 - G2 - ... - Gn, each pair joined by a /30; DV everywhere."""
    gateways, procs, links = [], [], []
    for i in range(count):
        g = Node(f"G{i+1}", sim, is_gateway=True)
        gateways.append(g)
    base = int(Address("10.50.0.0"))
    for i in range(count - 1):
        prefix = Prefix(Address(base), 30)
        base += 4
        ia = gateways[i].add_interface(
            Interface(f"g{i}a", prefix.host(1), prefix))
        ib = gateways[i + 1].add_interface(
            Interface(f"g{i}b", prefix.host(2), prefix))
        links.append(PointToPointLink(sim, ia, ib, bandwidth_bps=1e6,
                                      delay=0.002))
    for g in gateways:
        dv = DistanceVectorRouting(g, UdpStack(g), period=period)
        dv.start()
        procs.append(dv)
    return gateways, procs, links


def test_convergence_on_chain(sim):
    gateways, procs, links = build_chain(sim, count=4)
    sim.run(until=10)
    # G1 must know the far-end /30 at hop distance 2 (via two updates).
    far_prefix = gateways[3].interfaces[-1].prefix
    assert procs[0].metric_to(far_prefix) < INFINITY_METRIC
    route = gateways[0].routes.lookup(far_prefix.host(2))
    assert route.source == "dv"


def test_metrics_count_hops(sim):
    gateways, procs, links = build_chain(sim, count=4)
    sim.run(until=10)
    far_prefix = gateways[3].interfaces[-1].prefix
    near_prefix = gateways[1].interfaces[0].prefix
    assert procs[0].metric_to(far_prefix) > procs[0].metric_to(near_prefix)


def test_forwarding_works_after_convergence(sim):
    gateways, procs, links = build_chain(sim, count=4)
    sim.run(until=10)
    got = []
    # NOTE: this handler replaces the UDP stack's (DV chatter included),
    # so filter to our payload.
    gateways[3].register_protocol(
        PROTO_UDP,
        lambda n, d, i: got.append(d) if d.payload == b"across the chain" else None)
    target = gateways[3].interfaces[-1].address
    gateways[0].send(target, PROTO_UDP, b"across the chain")
    sim.run(until=12)
    assert len(got) == 1


def test_link_failure_times_out_routes(sim):
    gateways, procs, links = build_chain(sim, count=3, period=1.0)
    sim.run(until=8)
    far = gateways[2].interfaces[-1].prefix
    assert procs[0].metric_to(far) < INFINITY_METRIC
    links[1].set_up(False)  # cut G2-G3
    sim.run(until=25)
    assert procs[0].metric_to(far) >= INFINITY_METRIC


def test_alternate_path_found_after_failure(sim):
    # Triangle: G1-G2, G2-G3, G1-G3.  The G2-G3 /30 is one hop from G1 by
    # either edge; cut whichever edge the route currently uses and expect
    # the other to take over.
    gateways, procs, links = build_chain(sim, count=3, period=1.0)
    prefix = Prefix.parse("10.60.0.0/30")
    ia = gateways[0].add_interface(Interface("x1", prefix.host(1), prefix))
    ib = gateways[2].add_interface(Interface("x2", prefix.host(2), prefix))
    closing = PointToPointLink(sim, ia, ib, bandwidth_bps=1e6, delay=0.002)
    sim.run(until=10)
    mid_prefix = gateways[1].interfaces[1].prefix
    before = gateways[0].routes.lookup(mid_prefix.host(1))
    if before.interface.name == "x1":
        closing.set_up(False)
    else:
        links[0].set_up(False)
    sim.run(until=50)
    after = gateways[0].routes.lookup(mid_prefix.host(1))
    assert after.interface.name != before.interface.name
    assert procs[0].metric_to(mid_prefix) < INFINITY_METRIC


def test_restored_link_reconverges(sim):
    gateways, procs, links = build_chain(sim, count=3, period=1.0)
    sim.run(until=8)
    links[1].set_up(False)
    sim.run(until=25)
    links[1].set_up(True)
    sim.run(until=40)
    far = gateways[2].interfaces[-1].prefix
    assert procs[0].metric_to(far) < INFINITY_METRIC


def test_crash_clears_and_relearns(sim):
    gateways, procs, links = build_chain(sim, count=3, period=1.0)
    sim.run(until=8)
    gateways[1].crash()
    assert procs[1].table_size == 0
    gateways[1].restore()
    sim.run(until=25)
    far = gateways[2].interfaces[-1].prefix
    assert procs[0].metric_to(far) < INFINITY_METRIC


def test_split_horizon_limits_count_to_infinity(sim):
    """After a cut, the poisoned route must not bounce between neighbours
    (metric slowly climbing) — poison reverse suppresses the loop."""
    gateways, procs, links = build_chain(sim, count=3, period=0.5)
    sim.run(until=6)
    far = gateways[2].interfaces[-1].prefix
    links[1].set_up(False)
    sim.run(until=10)
    # Within a few periods the route must be gone, not counting upward.
    assert procs[0].metric_to(far) >= INFINITY_METRIC or \
        procs[0].metric_to(far) <= 3


def test_stats_accumulate(sim):
    gateways, procs, links = build_chain(sim, count=3)
    sim.run(until=10)
    assert procs[0].stats.updates_sent > 0
    assert procs[0].stats.updates_received > 0
    assert procs[0].stats.bytes_sent > 0


def test_advert_wire_round_trip():
    adverts = [RouteAdvert(Prefix.parse("10.1.0.0/16"), 3),
               RouteAdvert(Prefix.parse("0.0.0.0/0"), 1),
               RouteAdvert(Prefix.parse("192.168.3.0/24"), INFINITY_METRIC)]
    assert unpack_adverts(pack_adverts(adverts)) == adverts


def test_advert_metric_clamped_to_infinity():
    packed = pack_adverts([RouteAdvert(Prefix.parse("10.0.0.0/8"), 99)])
    assert unpack_adverts(packed)[0].metric == INFINITY_METRIC


def test_garbage_advert_bytes_ignored():
    assert unpack_adverts(b"\x01\x02\x03") == []
