"""Tests for the replicated in-network state model (E8 counterfactual)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.statefulnet.replicated import ReplicatedStateNetwork

GATEWAYS = [f"G{i}" for i in range(10)]


def test_fate_sharing_mode_never_breaks(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=0, crash_rate=0.05,
                                 streams=RandomStreams(1))
    for _ in range(50):
        net.start_conversation(duration=100.0)
    sim.run(until=200)
    assert net.stats.conversations_broken == 0
    assert net.survival_rate == 1.0


def test_k1_breaks_under_crashes(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=1, crash_rate=0.01,
                                 repair_time=50.0,
                                 streams=RandomStreams(2))
    for _ in range(100):
        net.start_conversation(duration=200.0)
    sim.run(until=400)
    assert net.stats.gateway_crashes > 0
    assert net.stats.conversations_broken > 0
    assert net.survival_rate < 1.0


def test_more_replicas_survive_better(sim):
    def run(k, seed):
        s = Simulator()
        net = ReplicatedStateNetwork(s, GATEWAYS, k=k, crash_rate=0.02,
                                     repair_time=100.0,
                                     rereplication_time=20.0,
                                     streams=RandomStreams(seed))
        for _ in range(200):
            net.start_conversation(duration=150.0)
        s.run(until=300)
        return net.survival_rate

    k1 = sum(run(1, s) for s in range(3)) / 3
    k3 = sum(run(3, s) for s in range(3)) / 3
    assert k3 > k1


def test_replication_costs_sync_messages(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=3, crash_rate=0.0,
                                 update_rate=5.0, streams=RandomStreams(3))
    for _ in range(10):
        net.start_conversation(duration=20.0)
    sim.run(until=50)
    assert net.stats.sync_messages > 0
    # Roughly: 10 convs * 20 s * 5 updates/s * 3 replicas = 3000.
    assert net.stats.sync_messages == pytest.approx(3000, rel=0.3)


def test_fate_sharing_costs_nothing(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=0, crash_rate=0.0,
                                 update_rate=5.0, streams=RandomStreams(4))
    for _ in range(10):
        net.start_conversation(duration=20.0)
    sim.run(until=50)
    assert net.stats.sync_messages == 0


def test_rereplication_restores_factor(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=2, crash_rate=0.0,
                                 rereplication_time=1.0,
                                 streams=RandomStreams(5))
    conv = net.start_conversation(duration=100.0)
    # Manually crash one of its replica gateways.
    victim = next(iter(conv.replicas))
    net._crash_rng = net.streams.stream("unused")  # keep determinism simple
    net.gateways[victim] = False
    net.stats.gateway_crashes += 1
    conv.replicas.discard(victim)
    net._rereplicate(conv)
    assert len(conv.replicas) == 2
    assert not conv.broken
    assert net.stats.re_replications >= 1


def test_k_larger_than_pool_rejected(sim):
    with pytest.raises(ValueError):
        ReplicatedStateNetwork(sim, ["G1"], k=2)


def test_conversations_complete_and_tally(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=2, crash_rate=0.0,
                                 streams=RandomStreams(6))
    for _ in range(5):
        net.start_conversation(duration=10.0)
    sim.run(until=20)
    assert net.stats.conversations_survived == 5
    assert not net.conversations  # all finished and removed


def test_state_entry_seconds_accumulate(sim):
    net = ReplicatedStateNetwork(sim, GATEWAYS, k=2, crash_rate=0.0,
                                 streams=RandomStreams(7))
    net.start_conversation(duration=10.0)
    assert net.stats.state_entry_seconds == pytest.approx(20.0)
