"""Tests for flows + soft state (the paper's next-generation sketch)."""

import pytest

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.flows.flowspec import PROTO_RSVP, FlowSpec, flow_key_of
from repro.flows.gateway import FlowGateway, ReservationSender, accept_reservations
from repro.flows.scheduler import DrrScheduler
from repro.ip.address import Address
from repro.ip.packet import Datagram, PROTO_UDP


# ----------------------------------------------------------------------
# FlowSpec
# ----------------------------------------------------------------------
def test_flowspec_pack_round_trip():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004, weight=4, lifetime=9.0)
    parsed = FlowSpec.unpack(spec.pack())
    assert parsed == spec


def test_flowspec_matches_by_addresses_and_port():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004)
    # UDP payload with dst port 5004 at bytes 2..4.
    payload = (1234).to_bytes(2, "big") + (5004).to_bytes(2, "big") + b"\x00" * 8
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=payload)
    assert spec.matches(d)
    other = d.copy(src=Address("10.0.0.9"))
    assert not spec.matches(other)
    wrong_port = d.copy(payload=(1234).to_bytes(2, "big") + (80).to_bytes(2, "big"))
    assert not spec.matches(wrong_port)


def test_flowspec_any_port():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=0)
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=b"\x00" * 8)
    assert spec.matches(d)


def test_flow_key_of():
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=b"")
    assert flow_key_of(d) == (int(d.src), int(d.dst), PROTO_UDP)


# ----------------------------------------------------------------------
# Scheduler (driven through a real bottleneck)
# ----------------------------------------------------------------------
def bottleneck_net(mode):
    """Two senders share one slow gateway egress with the given scheduler."""
    net = Internet(seed=13)
    h1, h2, sink_host = net.host("H1"), net.host("H2"), net.host("SINK")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(h2, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=200_000, delay=0.005)
    net.start_routing()
    net.converge(settle=8.0)
    # Attach the scheduler to the gateway's egress toward the sink.
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    fgw = FlowGateway(g.node, egress, 200_000, mode=mode)
    return net, h1, h2, sink_host, fgw


@pytest.mark.parametrize("mode", ["fifo", "drr"])
def test_scheduler_passes_traffic(mode):
    net, h1, h2, sink_host, fgw = bottleneck_net(mode)
    sink = UdpSink(sink_host, 9000)
    CbrSource(h1, sink_host.address, 9000, size=200, rate=20.0, duration=5.0)
    net.sim.run(until=net.sim.now + 10)
    assert sink.packets > 90


def test_drr_isolates_flows_fifo_does_not():
    """An aggressive flow starves a polite one under FIFO but not DRR."""
    results = {}
    for mode in ("fifo", "drr"):
        net, h1, h2, sink_host, fgw = bottleneck_net(mode)
        polite = UdpSink(sink_host, 9001)
        greedy = UdpSink(sink_host, 9002)
        # Polite: 20 kb/s.  Greedy: ~4x the bottleneck.
        CbrSource(h1, sink_host.address, 9001, size=125, rate=20.0,
                  duration=10.0)
        CbrSource(h2, sink_host.address, 9002, size=1000, rate=100.0,
                  duration=10.0)
        net.sim.run(until=net.sim.now + 15)
        results[mode] = polite.packets
    assert results["drr"] > results["fifo"]
    assert results["drr"] >= 150  # nearly all of the polite flow's ~200


def test_reserved_flow_gets_weighted_share():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    favored = UdpSink(sink_host, 9001)
    other = UdpSink(sink_host, 9002)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=8, lifetime=60.0)
    fgw.scheduler.install_spec(spec)
    fgw._expiry[spec.key] = net.sim.now + spec.lifetime
    # Both flows oversubscribe the bottleneck equally.
    CbrSource(h1, sink_host.address, 9001, size=500, rate=100.0, duration=10.0)
    CbrSource(h2, sink_host.address, 9002, size=500, rate=100.0, duration=10.0)
    net.sim.run(until=net.sim.now + 15)
    assert favored.packets > 1.5 * other.packets


# ----------------------------------------------------------------------
# Soft state end to end
# ----------------------------------------------------------------------
def test_refresh_installs_state_along_path():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=5.0)
    ReservationSender(h1, spec, refresh_interval=1.0)
    net.sim.run(until=net.sim.now + 3)
    assert fgw.installed_flows == 1
    assert fgw.refreshes_seen >= 2


def test_state_expires_without_refresh():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=2.0)
    sender = ReservationSender(h1, spec, refresh_interval=0.5)
    net.sim.run(until=net.sim.now + 2)
    assert fgw.installed_flows == 1
    sender.stop()
    net.sim.run(until=net.sim.now + 5)
    assert fgw.installed_flows == 0
    assert fgw.specs_expired >= 1


def test_soft_state_survives_gateway_crash():
    """The closing claim of the paper: losing flow state is not critical —
    the next refresh rebuilds it."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=5.0)
    ReservationSender(h1, spec, refresh_interval=1.0)
    net.sim.run(until=net.sim.now + 3)
    assert fgw.installed_flows == 1
    gw_node = fgw.node
    gw_node.crash()
    assert fgw.installed_flows == 0       # state gone with the crash
    gw_node.restore()
    net.sim.run(until=net.sim.now + 12)   # routing + refresh recover
    assert fgw.installed_flows == 1       # soft state rebuilt itself
    assert fgw.state_losses == 1
