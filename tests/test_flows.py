"""Tests for flows + soft state (the paper's next-generation sketch)."""

import pytest

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.flows.flowspec import PROTO_RSVP, FlowSpec, flow_key_of
from repro.flows.gateway import FlowGateway, ReservationSender, accept_reservations
from repro.flows.scheduler import DrrScheduler
from repro.ip.address import Address, Prefix
from repro.ip.packet import Datagram, PROTO_UDP
from repro.netlayer.link import Interface
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# FlowSpec
# ----------------------------------------------------------------------
def test_flowspec_pack_round_trip():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004, weight=4, lifetime=9.0)
    parsed = FlowSpec.unpack(spec.pack())
    assert parsed == spec


def test_flowspec_matches_by_addresses_and_port():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004)
    # UDP payload with dst port 5004 at bytes 2..4.
    payload = (1234).to_bytes(2, "big") + (5004).to_bytes(2, "big") + b"\x00" * 8
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=payload)
    assert spec.matches(d)
    other = d.copy(src=Address("10.0.0.9"))
    assert not spec.matches(other)
    wrong_port = d.copy(payload=(1234).to_bytes(2, "big") + (80).to_bytes(2, "big"))
    assert not spec.matches(wrong_port)


def test_flowspec_any_port():
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=0)
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=b"\x00" * 8)
    assert spec.matches(d)


def test_flow_key_of():
    d = Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                 protocol=PROTO_UDP, payload=b"")
    assert flow_key_of(d) == (int(d.src), int(d.dst), PROTO_UDP)


# ----------------------------------------------------------------------
# Scheduler (driven through a real bottleneck)
# ----------------------------------------------------------------------
def bottleneck_net(mode, **fgw_kwargs):
    """Two senders share one slow gateway egress with the given scheduler."""
    net = Internet(seed=13)
    h1, h2, sink_host = net.host("H1"), net.host("H2"), net.host("SINK")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(h2, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=200_000, delay=0.005)
    net.start_routing()
    net.converge(settle=8.0)
    # Attach the scheduler to the gateway's egress toward the sink.
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    fgw = FlowGateway(g.node, egress, 200_000, mode=mode, **fgw_kwargs)
    return net, h1, h2, sink_host, fgw


@pytest.mark.parametrize("mode", ["fifo", "drr"])
def test_scheduler_passes_traffic(mode):
    net, h1, h2, sink_host, fgw = bottleneck_net(mode)
    sink = UdpSink(sink_host, 9000)
    CbrSource(h1, sink_host.address, 9000, size=200, rate=20.0, duration=5.0)
    net.sim.run(until=net.sim.now + 10)
    assert sink.packets > 90


def test_drr_isolates_flows_fifo_does_not():
    """An aggressive flow starves a polite one under FIFO but not DRR."""
    results = {}
    for mode in ("fifo", "drr"):
        net, h1, h2, sink_host, fgw = bottleneck_net(mode)
        polite = UdpSink(sink_host, 9001)
        greedy = UdpSink(sink_host, 9002)
        # Polite: 20 kb/s.  Greedy: ~4x the bottleneck.
        CbrSource(h1, sink_host.address, 9001, size=125, rate=20.0,
                  duration=10.0)
        CbrSource(h2, sink_host.address, 9002, size=1000, rate=100.0,
                  duration=10.0)
        net.sim.run(until=net.sim.now + 15)
        results[mode] = polite.packets
    assert results["drr"] > results["fifo"]
    assert results["drr"] >= 150  # nearly all of the polite flow's ~200


def test_reserved_flow_gets_weighted_share():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    favored = UdpSink(sink_host, 9001)
    other = UdpSink(sink_host, 9002)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=8, lifetime=60.0)
    fgw.scheduler.install_spec(spec)
    fgw._expiry[spec.key] = net.sim.now + spec.lifetime
    # Both flows oversubscribe the bottleneck equally.
    CbrSource(h1, sink_host.address, 9001, size=500, rate=100.0, duration=10.0)
    CbrSource(h2, sink_host.address, 9002, size=500, rate=100.0, duration=10.0)
    net.sim.run(until=net.sim.now + 15)
    assert favored.packets > 1.5 * other.packets


# ----------------------------------------------------------------------
# Soft state end to end
# ----------------------------------------------------------------------
def test_refresh_installs_state_along_path():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=5.0)
    ReservationSender(h1, spec, refresh_interval=1.0)
    net.sim.run(until=net.sim.now + 3)
    assert fgw.installed_flows == 1
    assert fgw.refreshes_seen >= 2


def test_state_expires_without_refresh():
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=2.0)
    sender = ReservationSender(h1, spec, refresh_interval=0.5)
    net.sim.run(until=net.sim.now + 2)
    assert fgw.installed_flows == 1
    sender.stop()
    net.sim.run(until=net.sim.now + 5)
    assert fgw.installed_flows == 0
    assert fgw.specs_expired >= 1


def test_soft_state_survives_gateway_crash():
    """The closing claim of the paper: losing flow state is not critical —
    the next refresh rebuilds it."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=5.0)
    ReservationSender(h1, spec, refresh_interval=1.0)
    net.sim.run(until=net.sim.now + 3)
    assert fgw.installed_flows == 1
    gw_node = fgw.node
    gw_node.crash()
    assert fgw.installed_flows == 0       # state gone with the crash
    gw_node.restore()
    net.sim.run(until=net.sim.now + 12)   # routing + refresh recover
    assert fgw.installed_flows == 1       # soft state rebuilt itself
    assert fgw.state_losses == 1


def test_soft_state_expires_exactly_at_lifetime():
    """A single unrefreshed install lives ``lifetime`` seconds — present
    strictly before the deadline, swept within one sweep interval after."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr", sweep_interval=0.05)
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=2.0)
    h1.node.send(spec.dst, PROTO_RSVP, spec.pack())   # one refresh, no more
    net.sim.run(until=net.sim.now + 0.5)
    assert fgw.installed_flows == 1
    deadline = fgw._expiry[spec.key]
    net.sim.run(until=deadline - 0.06)                # > one sweep before
    assert fgw.installed_flows == 1
    net.sim.run(until=deadline + 0.11)                # ~two sweeps after
    assert fgw.installed_flows == 0
    assert fgw.specs_expired == 1
    assert fgw.scheduler.installed_specs == []


def test_sender_survives_two_consecutive_refresh_losses():
    """The ``lifetime / 3`` discipline in the sender's docstring: with
    refreshes every lifetime/3, two consecutive losses must not let the
    reservation expire."""
    net = Internet(seed=13)
    h1, sink_host = net.host("H1"), net.host("SINK")
    g = net.gateway("G")
    access = net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=200_000, delay=0.005)
    net.start_routing()
    net.converge(settle=8.0)
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    fgw = FlowGateway(g.node, egress, 200_000, mode="drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=6.0)
    sender = ReservationSender(h1, spec)              # default: lifetime / 3
    t0 = net.sim.now
    # Refreshes go out at t0, t0+2, t0+4, t0+6, ...  Kill the access link
    # across the middle two.
    net.sim.schedule(1.9, lambda: net.fail_link(access))
    net.sim.schedule(4.1, lambda: net.restore_link(access))
    net.sim.run(until=t0 + 5.9)
    assert fgw.installed_flows == 1                   # not yet expired
    net.sim.run(until=t0 + 7.5)                       # t0+6 refresh landed
    assert fgw.installed_flows == 1
    assert fgw.specs_expired == 0                     # never lapsed
    assert sender.refreshes_sent >= 4


def test_drr_shares_converge_to_weight_ratio():
    """DRR delivers throughput proportional to installed weights; FIFO
    gives the same two flows a ~1:1 split regardless."""
    ratios = {}
    for mode in ("drr", "fifo"):
        net, h1, h2, sink_host, fgw = bottleneck_net(mode)
        heavy = UdpSink(sink_host, 9001)
        light = UdpSink(sink_host, 9002)
        for host, port, weight in ((h1, 9001, 3), (h2, 9002, 1)):
            spec = FlowSpec(host.address, sink_host.address, PROTO_UDP,
                            dst_port=port, weight=weight, lifetime=120.0)
            fgw.scheduler.install_spec(spec)
            fgw._expiry[spec.key] = net.sim.now + spec.lifetime
        # Both flows offer ~2x the bottleneck with equal packet sizes, so
        # delivered-packet counts mirror the byte service ratio.  The
        # rates differ slightly: identical periods would phase-lock the
        # deterministic arrivals and bias FIFO's tail-drop.
        CbrSource(h1, sink_host.address, 9001, size=500, rate=100.0,
                  duration=20.0)
        CbrSource(h2, sink_host.address, 9002, size=500, rate=103.0,
                  duration=20.0)
        net.sim.run(until=net.sim.now + 25)
        ratios[mode] = heavy.packets / max(1, light.packets)
    assert 2.4 <= ratios["drr"] <= 3.6       # converges to the 3:1 weights
    assert 0.75 <= ratios["fifo"] <= 1.3     # FIFO cannot differentiate


# ----------------------------------------------------------------------
# Bug regressions: crash flush, flyweight use-after-release, queue merge
# ----------------------------------------------------------------------
def test_crash_flushes_scheduler_and_stays_silent():
    """A crashed gateway's queues die with it: no queued packet may reach
    the wire after the crash, and the pending serve callback is dead."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    sink = UdpSink(sink_host, 9000)
    CbrSource(h1, sink_host.address, 9000, size=500, rate=100.0,
              duration=10.0)
    net.sim.run(until=net.sim.now + 2)      # 2x oversubscribed: queue fills
    queued = fgw.scheduler.queued_packets
    assert queued > 0
    fgw.node.crash()
    assert fgw.scheduler.queued_packets == 0
    assert fgw.packets_flushed_on_crash == queued
    assert fgw.scheduler.stats.flushed == queued
    sent_before = sum(i.stats.packets_sent for i in fgw.node.interfaces)
    delivered_before = sink.packets
    net.sim.run(until=net.sim.now + 1.5)
    assert sum(i.stats.packets_sent
               for i in fgw.node.interfaces) == sent_before
    # Packets already serialized onto the link before the crash may still
    # arrive (they were counted in sent_before); nothing beyond that.
    assert sink.packets - delivered_before <= 8


def test_sweeper_restarts_after_crash():
    """Soft state installed after a crash/restore cycle must still expire:
    the expiry sweeper is part of the gateway's volatile state and has to
    come back with the node."""
    net, h1, h2, sink_host, fgw = bottleneck_net("drr")
    accept_reservations(sink_host)
    spec = FlowSpec(h1.address, sink_host.address, PROTO_UDP,
                    dst_port=9001, weight=4, lifetime=2.0)
    sender = ReservationSender(h1, spec, refresh_interval=0.5)
    net.sim.run(until=net.sim.now + 2)
    fgw.node.crash()
    net.sim.run(until=net.sim.now + 1)
    fgw.node.restore()
    net.sim.run(until=net.sim.now + 3)
    assert fgw.installed_flows == 1         # refresh re-installed it
    sender.stop()
    net.sim.run(until=net.sim.now + 5)
    assert fgw.installed_flows == 0         # reborn sweeper expired it
    assert fgw.specs_expired >= 1


def _pool_differential_run(pool: bool):
    """Saturate a scheduler that meters *above* the link rate, so the link
    queue tail-drops — synchronously releasing pooled shells inside
    ``transmit_now`` — and return the observable outcome."""
    net = Internet(seed=17)
    h1, sink_host = net.host("H1"), net.host("SINK")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=100_000, delay=0.005,
                      queue_limit=4)
    if pool:
        net.enable_packet_pool()
    net.start_routing()
    net.converge(settle=8.0)
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    # 4x the link rate: the scheduler overruns the link queue by design.
    # The source in turn overruns the *scheduler*, so its queue stays
    # occupied and serve-loop pacing is observable in what gets through.
    fgw = FlowGateway(g.node, egress, 400_000, mode="drr")
    sink = UdpSink(sink_host, 9000)
    CbrSource(h1, sink_host.address, 9000, size=500, rate=120.0,
              duration=5.0)
    net.sim.run(until=net.sim.now + 10)
    stats = fgw.scheduler.stats
    return (sink.packets, stats.dequeued, stats.bytes_sent,
            egress.stats.packets_dropped_queue)


def test_scheduler_flyweight_differential():
    """Pooled and unpooled runs must agree packet for packet.  The
    regression: reading ``total_length`` after ``transmit_now`` sees a
    released (payload-cleared) shell when the link drops synchronously,
    so the pooled run paced its serve loop differently."""
    assert _pool_differential_run(False) == _pool_differential_run(True)


class _RecorderMedium:
    """A stub medium that records transmissions in order."""

    mtu = 1006
    FRAME_OVERHEAD = 0

    def __init__(self):
        self.sent = []

    def transmit(self, iface, datagram, next_hop=None):
        self.sent.append(datagram)

    def is_up(self):
        return True


def _udp_datagram(seq, port=5004, size=200):
    payload = (1234).to_bytes(2, "big") + port.to_bytes(2, "big")
    payload += seq.to_bytes(4, "big")
    payload += b"\x00" * (size - len(payload))
    return Datagram(src=Address("10.0.0.1"), dst=Address("10.0.0.2"),
                    protocol=PROTO_UDP, payload=payload)


def _seq_of(datagram):
    return int.from_bytes(datagram.payload[4:8], "big")


def test_install_spec_merges_implicit_queue_without_reorder():
    """Packets queued before the reservation arrives must be served ahead
    of packets queued after it — one flow, one queue.  The regression:
    install left the backlog under ``flow_key_of()`` while new arrivals
    classified to the spec key, and DRR interleaved the two."""
    sim = Simulator()
    iface = Interface("x", Address("10.0.0.254"), Prefix.parse("10.0.0.0/24"))
    iface.medium = _RecorderMedium()
    sched = DrrScheduler(sim, iface, 100_000.0, mode="drr")
    for seq in range(6):
        sched.enqueue(_udp_datagram(seq), None)
    # seq 0 went straight out; 1..5 sit in the implicit flow_key_of queue.
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004, weight=4, lifetime=60.0)
    sched.install_spec(spec)
    assert sched.stats.migrated == 5
    for seq in range(6, 12):
        sched.enqueue(_udp_datagram(seq), None)
    sim.run(until=10.0)
    seqs = [_seq_of(d) for d in iface.medium.sent]
    assert seqs == list(range(12))


def test_remove_spec_migrates_backlog_back():
    """Expiry while packets are queued under the spec key: the backlog
    moves to the implicit key future packets will classify to, and the
    flow keeps serving in order."""
    sim = Simulator()
    iface = Interface("x", Address("10.0.0.254"), Prefix.parse("10.0.0.0/24"))
    iface.medium = _RecorderMedium()
    sched = DrrScheduler(sim, iface, 100_000.0, mode="drr")
    spec = FlowSpec(Address("10.0.0.1"), Address("10.0.0.2"), PROTO_UDP,
                    dst_port=5004, weight=4, lifetime=60.0)
    sched.install_spec(spec)
    for seq in range(6):
        sched.enqueue(_udp_datagram(seq), None)
    sched.remove_spec(spec.key)
    for seq in range(6, 12):
        sched.enqueue(_udp_datagram(seq), None)
    sim.run(until=10.0)
    seqs = [_seq_of(d) for d in iface.medium.sent]
    assert seqs == list(range(12))
