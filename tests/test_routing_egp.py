"""Behavioural tests for the path-vector exterior gateway protocol."""

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.egp import ExteriorGateway
from repro.sim.engine import Simulator
from repro.udp.udp import UdpStack


def border_pair(sim, *, as_a=1, as_b=2, period=1.0,
                export_a=None, import_b=None):
    """Two border gateways peering over a /30."""
    a = Node("BA", sim, is_gateway=True)
    b = Node("BB", sim, is_gateway=True)
    prefix = Prefix.parse("192.0.2.0/30")
    ia = a.add_interface(Interface("ba0", prefix.host(1), prefix))
    ib = b.add_interface(Interface("bb0", prefix.host(2), prefix))
    PointToPointLink(sim, ia, ib, bandwidth_bps=1e6, delay=0.005)
    kw_a = {"export_policy": export_a} if export_a else {}
    kw_b = {"import_policy": import_b} if import_b else {}
    ea = ExteriorGateway(a, UdpStack(a), local_as=as_a, period=period, **kw_a)
    eb = ExteriorGateway(b, UdpStack(b), local_as=as_b, period=period, **kw_b)
    ea.add_peer(prefix.host(2), remote_as=as_b)
    eb.add_peer(prefix.host(1), remote_as=as_a)
    return a, b, ea, eb


def test_peering_establishes(sim):
    a, b, ea, eb = border_pair(sim)
    ea.start(); eb.start()
    sim.run(until=5)
    assert ea.established_peers == 1
    assert eb.established_peers == 1


def test_originated_prefix_propagates(sim):
    a, b, ea, eb = border_pair(sim)
    block = Prefix.parse("10.1.0.0/16")
    ea.originate(block)
    ea.start(); eb.start()
    sim.run(until=5)
    assert eb.best_path(block) == (1,)
    route = b.routes.lookup("10.1.5.5")
    assert route.source == "egp"
    assert route.next_hop == Address("192.0.2.1")


def test_as_path_grows_through_transit(sim):
    # Chain: AS1 -- AS2 -- AS3.
    a = Node("A", sim, is_gateway=True)
    b = Node("B", sim, is_gateway=True)
    c = Node("C", sim, is_gateway=True)
    p1 = Prefix.parse("192.0.2.0/30")
    p2 = Prefix.parse("192.0.2.4/30")
    ia = a.add_interface(Interface("a0", p1.host(1), p1))
    ib1 = b.add_interface(Interface("b0", p1.host(2), p1))
    ib2 = b.add_interface(Interface("b1", p2.host(1), p2))
    ic = c.add_interface(Interface("c0", p2.host(2), p2))
    PointToPointLink(sim, ia, ib1, bandwidth_bps=1e6, delay=0.005)
    PointToPointLink(sim, ib2, ic, bandwidth_bps=1e6, delay=0.005)
    ea = ExteriorGateway(a, UdpStack(a), local_as=1, period=1.0)
    eb = ExteriorGateway(b, UdpStack(b), local_as=2, period=1.0)
    ec = ExteriorGateway(c, UdpStack(c), local_as=3, period=1.0)
    ea.add_peer(p1.host(2), 2)
    eb.add_peer(p1.host(1), 1)
    eb.add_peer(p2.host(2), 3)
    ec.add_peer(p2.host(1), 2)
    block = Prefix.parse("10.1.0.0/16")
    ea.originate(block)
    for e in (ea, eb, ec):
        e.start()
    sim.run(until=10)
    assert ec.best_path(block) == (2, 1)


def test_loop_prevention_rejects_own_as(sim):
    a, b, ea, eb = border_pair(sim)
    block = Prefix.parse("10.1.0.0/16")
    ea.originate(block)
    ea.start(); eb.start()
    sim.run(until=5)
    # AS2 must never accept its own advertisement echoed back: the route
    # learned from AS1 must not reappear at AS1 with a longer path.
    assert ea.best_path(block) is None  # AS1 originates it; no learned route


def test_shortest_path_preferred(sim):
    # Diamond: AS4 hears 10.1/16 from AS1 directly and via AS2+AS1.
    sim2 = sim
    hub = Node("HUB", sim2, is_gateway=True)
    left = Node("L", sim2, is_gateway=True)
    origin = Node("O", sim2, is_gateway=True)
    p_direct = Prefix.parse("192.0.2.8/30")
    p_via = Prefix.parse("192.0.2.12/30")
    p_lo = Prefix.parse("192.0.2.16/30")
    io1 = origin.add_interface(Interface("o0", p_direct.host(1), p_direct))
    ih1 = hub.add_interface(Interface("h0", p_direct.host(2), p_direct))
    ih2 = hub.add_interface(Interface("h1", p_via.host(1), p_via))
    il1 = left.add_interface(Interface("l0", p_via.host(2), p_via))
    il2 = left.add_interface(Interface("l1", p_lo.host(1), p_lo))
    io2 = origin.add_interface(Interface("o1", p_lo.host(2), p_lo))
    PointToPointLink(sim2, io1, ih1, bandwidth_bps=1e6, delay=0.005)
    PointToPointLink(sim2, ih2, il1, bandwidth_bps=1e6, delay=0.005)
    PointToPointLink(sim2, il2, io2, bandwidth_bps=1e6, delay=0.005)
    e_origin = ExteriorGateway(origin, UdpStack(origin), local_as=1, period=1.0)
    e_hub = ExteriorGateway(hub, UdpStack(hub), local_as=4, period=1.0)
    e_left = ExteriorGateway(left, UdpStack(left), local_as=2, period=1.0)
    e_origin.add_peer(p_direct.host(2), 4)
    e_origin.add_peer(p_lo.host(1), 2)
    e_hub.add_peer(p_direct.host(1), 1)
    e_hub.add_peer(p_via.host(2), 2)
    e_left.add_peer(p_via.host(1), 4)
    e_left.add_peer(p_lo.host(2), 1)
    block = Prefix.parse("10.9.0.0/16")
    e_origin.originate(block)
    for e in (e_origin, e_hub, e_left):
        e.start()
    sim2.run(until=10)
    assert e_hub.best_path(block) == (1,)  # direct beats (2, 1)


def test_peer_death_withdraws_routes(sim):
    a, b, ea, eb = border_pair(sim, period=0.5)
    block = Prefix.parse("10.1.0.0/16")
    ea.originate(block)
    ea.start(); eb.start()
    sim.run(until=4)
    assert eb.best_path(block) is not None
    a.crash()
    sim.run(until=15)
    assert eb.best_path(block) is None
    with pytest.raises(Exception):
        b.routes.lookup("10.1.5.5")


def test_export_policy_filters(sim):
    from repro.mgmt.policy import deny_prefixes
    secret = Prefix.parse("10.99.0.0/16")
    a, b, ea, eb = border_pair(sim, export_a=deny_prefixes([secret]))
    ea.originate(secret)
    ea.originate(Prefix.parse("10.1.0.0/16"))
    ea.start(); eb.start()
    sim.run(until=5)
    assert eb.best_path(Prefix.parse("10.1.0.0/16")) is not None
    assert eb.best_path(secret) is None


def test_import_policy_filters(sim):
    from repro.mgmt.policy import max_path_length
    a, b, ea, eb = border_pair(sim, import_b=max_path_length(0))
    ea.originate(Prefix.parse("10.1.0.0/16"))
    ea.start(); eb.start()
    sim.run(until=5)
    assert eb.best_path(Prefix.parse("10.1.0.0/16")) is None


def test_misconfigured_peer_as_refused(sim):
    a, b, ea, eb = border_pair(sim, as_a=1, as_b=2)
    # Reconfigure b to expect AS 9 from a's address: messages are dropped.
    eb._peers[int(Address("192.0.2.1"))].remote_as = 9
    ea.originate(Prefix.parse("10.1.0.0/16"))
    ea.start(); eb.start()
    sim.run(until=5)
    assert eb.best_path(Prefix.parse("10.1.0.0/16")) is None


def test_peer_must_be_directly_connected(sim):
    a = Node("X", sim, is_gateway=True)
    a.add_interface(Interface("x0", Address("192.0.2.1"),
                              Prefix.parse("192.0.2.0/30")))
    egp = ExteriorGateway(a, UdpStack(a), local_as=1)
    with pytest.raises(ValueError):
        egp.add_peer(Address("203.0.113.1"), remote_as=2)


def test_crash_clears_egp_state(sim):
    a, b, ea, eb = border_pair(sim)
    ea.originate(Prefix.parse("10.1.0.0/16"))
    ea.start(); eb.start()
    sim.run(until=5)
    b.crash()
    assert eb.table_size == 0
    assert eb.established_peers == 0
