"""Unit tests for the RTO estimation policies (the goal-6 knob)."""

import pytest

from repro.tcp.rto import (
    FixedRto,
    JacobsonKarnEstimator,
    Rfc793Estimator,
    make_estimator,
)


def test_fixed_ignores_samples():
    rto = FixedRto(3.0)
    rto.sample(0.01, retransmitted=False)
    rto.sample(5.0, retransmitted=False)
    assert rto.timeout() == 3.0


def test_fixed_never_backs_off():
    rto = FixedRto(3.0)
    for _ in range(10):
        rto.backoff()
    assert rto.timeout() == 3.0


def test_rfc793_converges_toward_rtt():
    rto = Rfc793Estimator()
    for _ in range(100):
        rto.sample(0.1, retransmitted=False)
    assert rto.srtt == pytest.approx(0.1, rel=0.01)
    assert rto.timeout() == pytest.approx(0.2, rel=0.05)  # beta = 2


def test_rfc793_initial_timeout_before_samples():
    rto = Rfc793Estimator(initial_rto=3.0)
    assert rto.timeout() == 3.0


def test_rfc793_backoff_doubles_and_resets():
    rto = Rfc793Estimator()
    for _ in range(50):
        rto.sample(1.0, retransmitted=False)
    base = rto.timeout()
    rto.backoff()
    assert rto.timeout() == pytest.approx(2 * base)
    rto.backoff()
    assert rto.timeout() == pytest.approx(4 * base)
    rto.reset_backoff()
    assert rto.timeout() == pytest.approx(base)


def test_rfc793_samples_retransmissions_too():
    """The original spec's flaw: retransmitted samples pollute SRTT."""
    rto = Rfc793Estimator()
    rto.sample(10.0, retransmitted=True)
    assert rto.srtt == 10.0


def test_rfc793_clamped_to_bounds():
    rto = Rfc793Estimator(min_rto=0.5, max_rto=4.0)
    rto.sample(0.001, retransmitted=False)
    assert rto.timeout() == 0.5
    for _ in range(20):
        rto.sample(100.0, retransmitted=False)
    assert rto.timeout() == 4.0


def test_jacobson_karn_discards_retransmitted_samples():
    rto = JacobsonKarnEstimator()
    rto.sample(0.1, retransmitted=False)
    before = rto.srtt
    rto.sample(99.0, retransmitted=True)  # Karn's rule: ignored
    assert rto.srtt == before


def test_jacobson_tracks_variance():
    rto = JacobsonKarnEstimator()
    for rtt in [0.1, 0.1, 0.1, 0.1]:
        rto.sample(rtt, retransmitted=False)
    quiet = rto.timeout()
    rto2 = JacobsonKarnEstimator()
    for rtt in [0.05, 0.15, 0.05, 0.15]:
        rto2.sample(rtt, retransmitted=False)
    noisy = rto2.timeout()
    assert noisy > quiet  # variance inflates the timeout


def test_jacobson_timeout_exceeds_srtt():
    rto = JacobsonKarnEstimator()
    for _ in range(20):
        rto.sample(0.3, retransmitted=False)
    assert rto.timeout() >= rto.srtt


def test_jacobson_backoff_capped():
    rto = JacobsonKarnEstimator(max_rto=60.0)
    rto.sample(1.0, retransmitted=False)
    for _ in range(100):
        rto.backoff()
    assert rto.timeout() == 60.0


def test_factory():
    assert isinstance(make_estimator("fixed"), FixedRto)
    assert isinstance(make_estimator("rfc793"), Rfc793Estimator)
    assert isinstance(make_estimator("jacobson"), JacobsonKarnEstimator)
    with pytest.raises(ValueError):
        make_estimator("nonsense")


def test_factory_forwards_kwargs():
    rto = make_estimator("fixed", value=7.5)
    assert rto.timeout() == 7.5
