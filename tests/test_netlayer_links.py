"""Unit tests for link substrates: p2p, LAN, satellite, radio, X.25."""

import random

import pytest

from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import Datagram, PROTO_UDP
from repro.netlayer.lan import LanBus
from repro.netlayer.link import Interface, PointToPointLink
from repro.netlayer.loss import BernoulliLoss
from repro.netlayer.radio import PacketRadioLink
from repro.netlayer.satellite import SatelliteLink
from repro.netlayer.serial import arpanet_trunk, slow_serial_line, t1_line
from repro.netlayer.x25 import X25Subnet
from repro.sim.engine import Simulator


def wire_pair(sim, link_cls=PointToPointLink, **kwargs):
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", Address("10.0.1.1"),
                                   Prefix.parse("10.0.1.0/24")))
    ib = b.add_interface(Interface("b0", Address("10.0.1.2"),
                                   Prefix.parse("10.0.1.0/24")))
    link = link_cls(sim, ia, ib, **kwargs)
    return a, b, ia, ib, link


def dgram(payload=b"x" * 100):
    return Datagram(src=Address("10.0.1.1"), dst=Address("10.0.1.2"),
                    protocol=PROTO_UDP, payload=payload)


def test_p2p_delivers(sim):
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=1e6, delay=0.01)
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    a.send("10.0.1.2", PROTO_UDP, b"hello")
    sim.run(until=1)
    assert len(got) == 1


def test_p2p_latency_includes_serialization_and_propagation(sim):
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=8000, delay=0.1)
    arrivals = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: arrivals.append(sim.now))
    a.send("10.0.1.2", PROTO_UDP, b"x" * 80)  # 100B + 8B framing = 108ms @ 8kb/s
    sim.run(until=1)
    assert arrivals
    assert arrivals[0] == pytest.approx(0.108 + 0.1, abs=1e-6)


def test_p2p_serialization_queues_back_to_back(sim):
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=8000, delay=0.0)
    arrivals = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: arrivals.append(sim.now))
    for _ in range(3):
        a.send("10.0.1.2", PROTO_UDP, b"x" * 80)
    sim.run(until=2)
    assert len(arrivals) == 3
    gaps = [arrivals[i + 1] - arrivals[i] for i in range(2)]
    assert all(g == pytest.approx(0.108, abs=1e-6) for g in gaps)


def test_p2p_queue_limit_drops(sim):
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=8000, delay=0.0,
                                   queue_limit=2)
    for _ in range(5):
        a.send("10.0.1.2", PROTO_UDP, b"x" * 80)
    assert ia.stats.packets_dropped_queue == 3


def test_p2p_down_drops(sim):
    a, b, ia, ib, link = wire_pair(sim)
    link.set_up(False)
    assert not ia.up
    # The node checks interface liveness before handing off...
    a.send("10.0.1.2", PROTO_UDP, b"x")
    assert a.stats.dropped_down == 1
    # ...and the medium itself also refuses if bypassed directly.
    ia.output(dgram())
    sim.run(until=1)
    assert ia.stats.packets_dropped_down == 1


def test_p2p_in_flight_lost_when_link_dies(sim):
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=1e6, delay=0.5)
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    a.send("10.0.1.2", PROTO_UDP, b"x")
    sim.schedule(0.1, lambda: link.set_up(False))
    sim.run(until=2)
    assert got == []
    # Everything un-arrived when the link went down is flushed then and
    # accounted as an administrative drop (not a wire loss).
    assert ia.stats.packets_dropped_down == 1
    assert ia.stats.packets_lost == 0


def test_p2p_flap_does_not_resurrect_in_flight_packets(sim):
    """Down→up before the scheduled arrival must NOT deliver the packet.

    Regression: set_up(False) used to zero the queue counter but leave the
    in-flight _arrive event scheduled; if the link came back up before the
    arrival time the 'flushed' packet was delivered anyway.
    """
    a, b, ia, ib, link = wire_pair(sim, bandwidth_bps=1e6, delay=0.5)
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    a.send("10.0.1.2", PROTO_UDP, b"x")
    # Arrival is at ~0.5008s; flap down at 0.1 and back up at 0.2.
    sim.schedule(0.1, lambda: link.set_up(False))
    sim.schedule(0.2, lambda: link.set_up(True))
    sim.run(until=2)
    assert got == [], "flushed packet was resurrected by the flap"
    assert ia.stats.packets_dropped_down == 1
    # A packet sent after the flap cleared goes through normally.
    a.send("10.0.1.2", PROTO_UDP, b"y")
    sim.run(until=4)
    assert len(got) == 1
    assert got[0].payload == b"y"


def test_lan_flap_does_not_resurrect_in_flight_frames(sim):
    prefix = Prefix.parse("10.0.2.0/24")
    a, b = Node("A", sim), Node("B", sim)
    ia = a.add_interface(Interface("a0", prefix.host(1), prefix))
    ib = b.add_interface(Interface("b0", prefix.host(2), prefix))
    bus = LanBus(sim, prefix, delay=0.5)
    bus.attach(ia)
    bus.attach(ib)
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    a.send(str(prefix.host(2)), PROTO_UDP, b"x")
    sim.schedule(0.1, lambda: bus.set_up(False))
    sim.schedule(0.2, lambda: bus.set_up(True))
    sim.run(until=2)
    assert got == []
    assert ia.stats.packets_dropped_down == 1


def test_p2p_loss_model_applied(sim):
    a, b, ia, ib, link = wire_pair(sim, loss=BernoulliLoss(1.0),
                                   rng=random.Random(1))
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    a.send("10.0.1.2", PROTO_UDP, b"x")
    sim.run(until=1)
    assert got == []
    assert ia.stats.packets_lost == 1


def test_p2p_rejects_sub_minimum_mtu(sim):
    with pytest.raises(ValueError):
        wire_pair(sim, mtu=50)


def test_interface_stats_count_bytes(sim):
    a, b, ia, ib, link = wire_pair(sim)
    a.send("10.0.1.2", PROTO_UDP, b"x" * 100)
    sim.run(until=1)
    assert ia.stats.packets_sent == 1
    assert ia.stats.bytes_sent == 120  # 100 payload + 20 header
    assert ia.stats.link_header_bytes == link.FRAME_OVERHEAD


# ----------------------------------------------------------------------
# LAN
# ----------------------------------------------------------------------
def lan_with_nodes(sim, count=3):
    prefix = Prefix.parse("10.0.9.0/24")
    bus = LanBus(sim, prefix)
    nodes = []
    for i in range(1, count + 1):
        node = Node(f"N{i}", sim)
        iface = Interface(f"n{i}", prefix.host(i), prefix)
        node.add_interface(iface)
        bus.attach(iface)
        nodes.append(node)
    return bus, nodes


def test_lan_unicast(sim):
    bus, nodes = lan_with_nodes(sim)
    got = []
    nodes[1].register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    nodes[0].send("10.0.9.2", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert len(got) == 1


def test_lan_broadcast_reaches_all_but_sender(sim):
    bus, nodes = lan_with_nodes(sim, count=4)
    counts = [0, 0, 0, 0]
    for idx, node in enumerate(nodes):
        node.register_protocol(
            PROTO_UDP, lambda n, d, i, idx=idx: counts.__setitem__(idx, counts[idx] + 1))
    nodes[0].send("10.0.9.255", PROTO_UDP, b"all", ttl=1)
    sim.run(until=1)
    assert counts == [0, 1, 1, 1]


def test_lan_unknown_address_dropped(sim):
    bus, nodes = lan_with_nodes(sim)
    iface = nodes[0].interfaces[0]
    nodes[0].send("10.0.9.77", PROTO_UDP, b"hi")
    sim.run(until=1)
    assert iface.stats.packets_lost == 1


def test_lan_duplicate_address_rejected(sim):
    bus, nodes = lan_with_nodes(sim)
    dup = Interface("dup", Address("10.0.9.1"), Prefix.parse("10.0.9.0/24"))
    with pytest.raises(ValueError):
        bus.attach(dup)


def test_lan_wrong_prefix_rejected(sim):
    bus, nodes = lan_with_nodes(sim)
    foreign = Interface("f", Address("10.1.0.1"), Prefix.parse("10.1.0.0/24"))
    with pytest.raises(ValueError):
        bus.attach(foreign)


def test_lan_detach(sim):
    bus, nodes = lan_with_nodes(sim)
    bus.detach(nodes[1].interfaces[0])
    assert bus.resolve(Address("10.0.9.2")) is None


# ----------------------------------------------------------------------
# Specialty media
# ----------------------------------------------------------------------
def test_satellite_has_long_delay(sim):
    a, b, ia, ib, link = wire_pair(sim, link_cls=SatelliteLink)
    arrivals = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: arrivals.append(sim.now))
    a.send("10.0.1.2", PROTO_UDP, b"x" * 10)
    sim.run(until=2)
    assert arrivals and arrivals[0] > 0.27


def test_radio_reorders(sim):
    a, b, ia, ib, link = wire_pair(
        sim, link_cls=PacketRadioLink, rng=random.Random(4),
        loss=BernoulliLoss(0.0), reorder_spread=0.2, bandwidth_bps=1e7,
        queue_limit=64)
    seqs = []
    b.register_protocol(PROTO_UDP,
                        lambda n, d, i: seqs.append(int.from_bytes(d.payload[:2], "big")))
    for i in range(40):
        a.send("10.0.1.2", PROTO_UDP, i.to_bytes(2, "big") + b"\x00" * 30)
    sim.run(until=5)
    assert len(seqs) == 40
    assert seqs != sorted(seqs)  # reordering occurred


def test_radio_default_loss_is_bursty(sim):
    a, b, ia, ib, link = wire_pair(sim, link_cls=PacketRadioLink,
                                   rng=random.Random(11))
    got = []
    b.register_protocol(PROTO_UDP, lambda n, d, i: got.append(d))
    for i in range(300):
        a.send("10.0.1.2", PROTO_UDP, b"\x00" * 32)
    sim.run(until=60)
    assert 0 < len(got) < 300  # some loss, not total


def test_x25_never_loses_and_preserves_order(sim):
    a, b, ia, ib, link = wire_pair(sim, link_cls=X25Subnet,
                                   rng=random.Random(5),
                                   internal_retx_prob=0.3)
    seqs = []
    b.register_protocol(PROTO_UDP,
                        lambda n, d, i: seqs.append(int.from_bytes(d.payload[:2], "big")))
    for i in range(50):
        a.send("10.0.1.2", PROTO_UDP, i.to_bytes(2, "big") + b"\x00" * 30)
    sim.run(until=60)
    assert seqs == list(range(50))


def test_x25_internal_retransmission_adds_delay(sim):
    # With retx probability 1 capped by the geometric draw, delay spikes.
    a1, b1, _, _, _ = wire_pair(sim, link_cls=X25Subnet,
                                rng=random.Random(5), internal_retx_prob=0.0)
    t_clean = []
    b1.register_protocol(PROTO_UDP, lambda n, d, i: t_clean.append(sim.now))
    a1.send("10.0.1.2", PROTO_UDP, b"x" * 10)
    sim.run(until=5)

    sim2 = Simulator()
    a2, b2, _, _, _ = wire_pair(sim2, link_cls=X25Subnet,
                                rng=random.Random(5), internal_retx_prob=0.9)
    t_retx = []
    b2.register_protocol(PROTO_UDP, lambda n, d, i: t_retx.append(sim2.now))
    a2.send("10.0.1.2", PROTO_UDP, b"x" * 10)
    sim2.run(until=60)
    assert t_retx[0] > t_clean[0]


def test_serial_presets_have_expected_character(sim):
    a, b, ia, ib, trunk = wire_pair(sim, link_cls=lambda s, x, y, **kw:
                                    arpanet_trunk(s, x, y, **kw))
    assert trunk.bandwidth_bps == 56_000.0
    assert trunk.mtu == 1006

    sim2 = Simulator()
    a2, b2, i2, j2, t1 = wire_pair(sim2, link_cls=lambda s, x, y, **kw:
                                   t1_line(s, x, y, **kw))
    assert t1.bandwidth_bps > 1e6

    sim3 = Simulator()
    a3, b3, i3, j3, slow = wire_pair(sim3, link_cls=lambda s, x, y, **kw:
                                     slow_serial_line(s, x, y, **kw))
    assert slow.mtu == 296
