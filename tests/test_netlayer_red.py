"""RED gateway discipline: marking math at the boundaries, determinism.

:class:`RedState` is pure (queue length, time) -> verdict math, so the
threshold behavior the collapse campaign depends on is testable without
a simulator: below ``min_th`` nothing is signalled, above ``max_th``
everything drops (ECT included), and in between the probability ramps
linearly with the uniformizer spreading signals evenly.
"""

import random

import pytest

from repro.netlayer.red import DROP, MARK, PASS, RedParams, RedState


class ScriptedRng:
    """random.Random stand-in returning a scripted sequence."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        # The fallback sits just under 1.0: "never volunteers a signal,
        # but cannot out-argue pa == 1.0" (a literal 1.0 would, since
        # the comparison is strict).
        return self.values.pop(0) if self.values else 1.0 - 1e-12


def eager_rng():
    """Always signals: random() == 0.0 < any positive probability."""
    return ScriptedRng([0.0] * 10_000)


# ----------------------------------------------------------------------
# Parameter validation
# ----------------------------------------------------------------------
def test_params_validate():
    with pytest.raises(ValueError):
        RedParams(weight=0.0)
    with pytest.raises(ValueError):
        RedParams(weight=1.5)
    with pytest.raises(ValueError):
        RedParams(min_th=10, max_th=10)
    with pytest.raises(ValueError):
        RedParams(min_th=-1, max_th=5)
    with pytest.raises(ValueError):
        RedParams(max_p=0.0)
    RedParams()  # defaults are valid


# ----------------------------------------------------------------------
# Threshold boundaries (weight=1.0 makes avg == instantaneous queue, so
# the boundary being tested is exact, not smeared by the EWMA)
# ----------------------------------------------------------------------
def instant(min_th=5.0, max_th=15.0, max_p=0.1, rng=None):
    return RedState(RedParams(min_th=min_th, max_th=max_th, max_p=max_p,
                              weight=1.0), rng or eager_rng())


def test_below_min_th_never_signals():
    red = instant()
    for t in range(100):
        assert red.on_enqueue(4, float(t)) == PASS
    assert red.counters() == {"arrivals": 100, "early_marked": 0,
                              "early_dropped": 0, "forced_dropped": 0}


def test_at_min_th_probability_is_zero():
    # avg == min_th enters the ramp at pb == 0: even an adversarial rng
    # (random() == 0.0) must not signal, because 0.0 < 0.0 is false.
    red = instant()
    for t in range(100):
        assert red.on_enqueue(5, float(t)) == PASS
    assert red.early_dropped == 0


def test_at_max_th_everything_drops_even_ect():
    # A rng that never signals cannot save an arrival past max_th, and
    # neither can ECT: the drop is forced, not probabilistic.
    red = instant(rng=ScriptedRng([]))   # random() -> 1.0 always
    assert red.on_enqueue(15, 0.0, ect=True) == DROP
    assert red.on_enqueue(40, 1.0, ect=False) == DROP
    assert red.counters()["forced_dropped"] == 2
    assert red.counters()["early_marked"] == 0


def test_ramp_midpoint_probability():
    # At the midpoint avg the base probability is max_p/2; the first
    # arrival after a reset uses pa == pb exactly (count == 0).
    pb = 0.1 * (10 - 5) / (15 - 5)       # == 0.05
    red = instant(rng=ScriptedRng([pb - 1e-9]))
    assert red.on_enqueue(10, 0.0) == DROP          # just under pb: signal
    red = instant(rng=ScriptedRng([1.0, pb + 1e-9]))
    red.on_enqueue(4, 0.0)                          # reset count below min_th
    assert red.on_enqueue(10, 1.0) == PASS          # just over pb: admit


def test_ect_marks_where_non_ect_drops():
    marked = instant()
    dropped = instant()
    assert marked.on_enqueue(10, 0.0, ect=True) == MARK
    assert dropped.on_enqueue(10, 0.0, ect=False) == DROP
    assert marked.counters()["early_marked"] == 1
    assert dropped.counters()["early_dropped"] == 1


def test_uniformizer_guarantees_signal_within_1_over_pb():
    # Classic RED's count term turns the geometric inter-signal gap into
    # a uniform one: with pb == 0.05, pa reaches 1.0 within 1/pb == 20
    # arrivals even if the rng never volunteers a signal.
    red = instant(rng=ScriptedRng([]))   # random() -> 1.0: never volunteers
    verdicts = [red.on_enqueue(10, float(t)) for t in range(25)]
    assert DROP in verdicts
    assert verdicts.index(DROP) < 21


def test_signals_spread_not_bursty():
    # After a signal the count resets, so two consecutive forced signals
    # at midpoint probability cannot happen (pa goes back to pb).
    red = instant(rng=ScriptedRng([]))
    verdicts = [red.on_enqueue(10, float(t)) for t in range(60)]
    drops = [i for i, v in enumerate(verdicts) if v == DROP]
    assert len(drops) >= 2
    assert all(b - a > 1 for a, b in zip(drops, drops[1:]))


# ----------------------------------------------------------------------
# EWMA and idle decay
# ----------------------------------------------------------------------
def test_ewma_sees_standing_queue_through_bursts():
    # weight=0.2: one 20-packet burst into an empty queue must not push
    # the average past min_th, but a standing 20-packet queue must.
    red = RedState(RedParams(weight=0.2), eager_rng())
    assert red.on_enqueue(20, 0.0) == PASS          # avg == 4 < 5
    red2 = RedState(RedParams(weight=0.2), eager_rng())
    verdicts = {red2.on_enqueue(20, t * 0.01) for t in range(50)}
    assert verdicts != {PASS}                        # avg converged past min_th


def test_idle_period_ages_average_down():
    params = RedParams(weight=0.2, idle_decay=0.05)
    red = RedState(params, eager_rng())
    for t in range(50):
        red.on_enqueue(20, t * 0.01)
    congested = red.avg
    assert congested > params.min_th
    # A long-idle queue must not inherit the congested average.
    red.on_enqueue(0, 10.0)
    red.on_enqueue(0, 20.0)
    assert red.avg < 0.01 * congested
    assert red.on_enqueue(1, 20.01) == PASS


# ----------------------------------------------------------------------
# Determinism: the campaign's byte-identical-reports property rests here
# ----------------------------------------------------------------------
def test_same_seed_same_verdict_sequence():
    def run(seed):
        red = RedState(RedParams(), random.Random(seed))
        walk = random.Random(seed + 1)
        return [red.on_enqueue(walk.randrange(0, 25), t * 0.01,
                               ect=walk.random() < 0.5)
                for t in range(500)], red.counters()

    assert run(7) == run(7)
    v42, _ = run(42)
    v7, _ = run(7)
    assert v42 != v7


def test_counters_partition_arrivals():
    red = RedState(RedParams(), random.Random(3))
    walk = random.Random(4)
    admitted = 0
    for t in range(2000):
        v = red.on_enqueue(walk.randrange(0, 30), t * 0.01,
                           ect=walk.random() < 0.5)
        if v in (PASS, MARK):
            admitted += 1
    c = red.counters()
    assert c["arrivals"] == 2000
    assert (c["arrivals"] - c["early_dropped"] - c["forced_dropped"]
            == admitted)
    assert c["early_marked"] > 0 and c["early_dropped"] > 0
