"""Unit tests for timers and periodic processes."""

import pytest

from repro.sim.process import PeriodicProcess, Timer


def test_timer_fires_once(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_restart_reschedules(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.schedule(1.0, lambda: timer.start(5.0))  # restart at t=1 -> fires t=6
    sim.run()
    assert fired == [6.0]


def test_timer_stop_cancels(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(2.0)
    timer.stop()
    sim.run()
    assert fired == []


def test_timer_running_property(sim):
    timer = Timer(sim, lambda: None)
    assert not timer.running
    timer.start(1.0)
    assert timer.running
    sim.run()
    assert not timer.running


def test_timer_expires_at(sim):
    timer = Timer(sim, lambda: None)
    timer.start(3.5)
    assert timer.expires_at == 3.5
    timer.stop()
    assert timer.expires_at is None


def test_timer_can_restart_from_callback(sim):
    fired = []
    timer = Timer(sim, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer._callback = cb
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_periodic_fires_repeatedly(sim):
    fired = []
    proc = PeriodicProcess(sim, 1.0, lambda: fired.append(sim.now))
    proc.start()
    sim.run(until=5.5)
    assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_periodic_initial_delay(sim):
    fired = []
    proc = PeriodicProcess(sim, 2.0, lambda: fired.append(sim.now))
    proc.start(initial_delay=0.0)
    sim.run(until=4.5)
    assert fired == [0.0, 2.0, 4.0]


def test_periodic_stop(sim):
    fired = []
    proc = PeriodicProcess(sim, 1.0, lambda: fired.append(sim.now))
    proc.start()
    sim.schedule(2.5, proc.stop)
    sim.run(until=10)
    assert fired == [1.0, 2.0]


def test_periodic_stop_from_callback(sim):
    fired = []
    proc = PeriodicProcess(sim, 1.0, lambda: None)

    def cb():
        fired.append(sim.now)
        if len(fired) == 2:
            proc.stop()

    proc._callback = cb
    proc.start()
    sim.run(until=10)
    assert fired == [1.0, 2.0]


def test_periodic_jitter_applied(sim):
    fired = []
    proc = PeriodicProcess(sim, 1.0, lambda: fired.append(sim.now),
                           jitter_fn=lambda: 0.25)
    proc.start()
    sim.run(until=3.0)
    assert fired == [1.25, 2.5]


def test_periodic_rejects_nonpositive_interval(sim):
    with pytest.raises(ValueError):
        PeriodicProcess(sim, 0.0, lambda: None)


def test_periodic_running_property(sim):
    proc = PeriodicProcess(sim, 1.0, lambda: None)
    assert not proc.running
    proc.start()
    assert proc.running
    proc.stop()
    assert not proc.running
