"""Unit and property tests for the Internet checksum."""

from hypothesis import given, strategies as st

from repro.ip.checksum import internet_checksum, verify_checksum


def test_known_vector():
    # Classic RFC 1071 worked example.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_empty_data():
    assert internet_checksum(b"") == 0xFFFF


def test_odd_length_padded():
    # Odd-length input must behave as if zero-padded.
    assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")


def test_verify_accepts_data_with_embedded_checksum():
    data = b"hello world!"
    csum = internet_checksum(data)
    # Append the checksum as the trailing 16-bit word.
    whole = data + csum.to_bytes(2, "big")
    assert verify_checksum(whole)


def test_verify_detects_corruption():
    data = bytearray(b"hello world!")
    csum = internet_checksum(bytes(data))
    whole = bytearray(bytes(data) + csum.to_bytes(2, "big"))
    whole[3] ^= 0xFF
    assert not verify_checksum(bytes(whole))


@given(st.binary(min_size=0, max_size=256))
def test_checksum_in_range(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


@given(st.binary(min_size=2, max_size=256).filter(lambda d: len(d) % 2 == 0))
def test_append_checksum_always_verifies(data):
    csum = internet_checksum(data)
    assert verify_checksum(data + csum.to_bytes(2, "big"))


@given(st.binary(min_size=2, max_size=128).filter(lambda d: len(d) % 2 == 0),
       st.integers(min_value=0, max_value=127),
       st.integers(min_value=1, max_value=255))
def test_single_byte_corruption_detected(data, pos, flip):
    """One's-complement sums detect any single-byte error."""
    csum = internet_checksum(data)
    whole = bytearray(data + csum.to_bytes(2, "big"))
    pos = pos % len(data)
    original = whole[pos]
    whole[pos] = original ^ flip
    if whole[pos] != original:
        # 0x0000 <-> 0xFFFF aliasing is the checksum's one blind spot for
        # full-word flips; single-byte flips never alias.
        assert not verify_checksum(bytes(whole))
