"""Tests for the reachability monitor."""

import pytest

from repro import Internet
from repro.mgmt.monitor import ReachabilityMonitor


@pytest.fixture
def monitored_net():
    net = Internet(seed=55)
    ops = net.host("OPS")
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(ops, g, bandwidth_bps=1e6, delay=0.002)
    link1 = net.connect(g, h1, bandwidth_bps=1e6, delay=0.002)
    net.connect(g, h2, bandwidth_bps=1e6, delay=0.002)
    net.start_routing()
    net.converge(settle=8.0)
    return net, ops, h1, h2, link1


def test_targets_come_up(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, [h1.address, h2.address],
                                  interval=1.0)
    monitor.start()
    net.sim.run(until=net.sim.now + 5)
    assert monitor.status_of(h1.address).reachable is True
    assert monitor.status_of(h2.address).reachable is True
    assert monitor.status_of(h1.address).rtt.n >= 3


def test_down_transition_after_consecutive_failures(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    events = []
    monitor = ReachabilityMonitor(
        ops.node, [h1.address], interval=1.0, down_after=3,
        on_change=lambda addr, up: events.append((str(addr), up)))
    monitor.start()
    net.sim.run(until=net.sim.now + 4)
    link1.set_up(False)
    net.sim.run(until=net.sim.now + 8)
    status = monitor.status_of(h1.address)
    assert status.reachable is False
    assert events[0][1] is True
    assert events[-1][1] is False


def test_recovery_transition(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    events = []
    monitor = ReachabilityMonitor(
        ops.node, [h1.address], interval=1.0,
        on_change=lambda addr, up: events.append(up))
    monitor.start()
    net.sim.run(until=net.sim.now + 4)
    link1.set_up(False)
    net.sim.run(until=net.sim.now + 8)
    link1.set_up(True)
    net.sim.run(until=net.sim.now + 8)
    assert events == [True, False, True]
    assert monitor.status_of(h1.address).reachable is True


def test_availability_reflects_outage(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, [h1.address], interval=1.0)
    monitor.start()
    net.sim.run(until=net.sim.now + 5)
    link1.set_up(False)
    net.sim.run(until=net.sim.now + 5)
    status = monitor.status_of(h1.address)
    assert 0.2 < status.availability < 0.9


def test_unreachable_target_never_up(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, ["203.0.113.99"], interval=1.0)
    monitor.start()
    net.sim.run(until=net.sim.now + 6)
    assert monitor.status_of("203.0.113.99").reachable is False


def test_report_format(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, [h1.address], interval=1.0)
    monitor.start()
    net.sim.run(until=net.sim.now + 4)
    text = monitor.report()
    assert "UP" in text
    assert "avail" in text


def test_stop_halts_probing(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, [h1.address], interval=1.0)
    monitor.start()
    net.sim.run(until=net.sim.now + 3)
    monitor.stop()
    sent = monitor.status_of(h1.address).probes_sent
    net.sim.run(until=net.sim.now + 5)
    assert monitor.status_of(h1.address).probes_sent == sent


# ----------------------------------------------------------------------
# PR-5 polish: stats surface, registry enrollment, alert-bus wiring
# ----------------------------------------------------------------------
def test_never_replying_target_transitions_down_exactly_once(monitored_net):
    """Regression: a target that never answers a single probe must still
    transition None -> False after ``down_after`` probes (silence is a
    verdict), and must do so exactly once."""
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, ["203.0.113.99"],
                                  interval=1.0, down_after=3)
    monitor.start()
    net.sim.run(until=net.sim.now + 10)
    status = monitor.status_of("203.0.113.99")
    assert status.reachable is False
    assert status.probes_sent >= 3
    assert monitor.stats.transitions_down == 1
    assert monitor.stats.transitions_up == 0
    # The last probes' timeouts may still be pending at run end.
    assert 3 <= monitor.stats.probes_timed_out <= status.probes_sent


def test_monitor_stats_dict_surface(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    monitor = ReachabilityMonitor(ops.node, [h1.address, "203.0.113.99"],
                                  interval=1.0, down_after=3)
    monitor.start()
    net.sim.run(until=net.sim.now + 8)
    surface = monitor.stats_dict()
    assert surface["targets"] == 2
    assert surface["targets_up"] == 1
    assert surface["targets_down"] == 1
    assert surface["replies"] > 0
    assert surface["probes_sent"] == monitor.stats.probes_sent


def test_monitor_enrolls_in_metrics_registry(monitored_net):
    net, ops, h1, h2, link1 = monitored_net
    obs = net.observe()
    monitor = ReachabilityMonitor(ops.node, [h1.address], interval=1.0)
    assert "mgmt_monitor.OPS" in obs.registry._registered
    monitor.start()
    net.sim.run(until=net.sim.now + 3)
    assert monitor.stats.probes_sent > 0


def test_monitor_fires_into_alert_bus(monitored_net):
    """The ICMP view and the management view share one alert log."""
    from repro.netmgmt.alarms import AlertBus

    net, ops, h1, h2, link1 = monitored_net
    bus = AlertBus()
    monitor = ReachabilityMonitor(ops.node, [h1.address], interval=1.0,
                                  down_after=3, alert_bus=bus)
    monitor.start()
    net.sim.run(until=net.sim.now + 4)
    key = f"ping-unreachable:{h1.address}"
    assert not bus.is_active(key)          # reachable: nothing raised
    link1.set_up(False)
    net.sim.run(until=net.sim.now + 8)
    assert bus.is_active(key)
    link1.set_up(True)
    net.sim.run(until=net.sim.now + 8)
    assert not bus.is_active(key)
    assert [a.state for a in bus.log] == ["raise", "clear"]
