"""Fuzz tests: no wire parser may crash or silently accept corruption.

Hosts must survive arbitrary bytes arriving from the network (goal 3's
"reasonable reliability" implies occasional garbage).  Every parser either
returns a valid object or raises its declared error — never an unexpected
exception — and checksummed formats never accept a corrupted payload as
valid.
"""

import pytest
from hypothesis import given, strategies as st

from repro.ip import icmp
from repro.ip.address import Address
from repro.ip.packet import Datagram, HeaderError
from repro.netmgmt import protocol as mgmt_proto
from repro.routing.base import unpack_adverts
from repro.routing.link_state import _Lsa
from repro.tcp.segment import SegmentError, TcpSegment
from repro.udp import udp as udp_mod
from repro.flows.flowspec import FlowSpec

A = Address("10.0.0.1")
B = Address("10.0.0.2")


@given(st.binary(max_size=512))
def test_ip_parser_never_crashes(data):
    try:
        parsed = Datagram.from_bytes(data)
    except HeaderError:
        return
    # If it parsed, re-serializing must reproduce a consistent datagram.
    assert parsed.total_length <= max(len(data), 20)


@given(st.binary(max_size=256))
def test_tcp_parser_never_crashes(data):
    try:
        TcpSegment.from_bytes(A, B, data)
    except SegmentError:
        pass


@given(st.binary(max_size=256))
def test_udp_parser_never_crashes(data):
    try:
        udp_mod.decode(A, B, data)
    except udp_mod.UdpError:
        pass


@given(st.binary(max_size=256))
def test_icmp_parser_never_crashes(data):
    try:
        icmp.IcmpMessage.from_bytes(data)
    except icmp.IcmpError:
        pass


@given(st.binary(max_size=256))
def test_dv_advert_parser_never_crashes(data):
    adverts = unpack_adverts(data)
    assert isinstance(adverts, list)


@given(st.binary(max_size=256))
def test_lsa_parser_never_crashes(data):
    lsa = _Lsa.unpack(data)
    assert lsa is None or lsa.router_id >= 0


@given(st.binary(max_size=128))
def test_flowspec_parser_never_crashes(data):
    spec = FlowSpec.unpack(data)
    assert spec is None or spec.weight >= 1


@given(st.binary(max_size=512))
def test_mgmt_pdu_parser_never_crashes(data):
    """The management-plane decoder raises MgmtDecodeError and nothing
    else, no matter what the network hands it."""
    try:
        pdu = mgmt_proto.decode_pdu(data)
    except mgmt_proto.MgmtDecodeError:
        return
    # Anything that parses must re-encode (the caps were enforced).
    assert mgmt_proto.decode_pdu(mgmt_proto.encode_pdu(pdu)) == pdu


_mgmt_values = st.one_of(
    st.none(),
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=32),
)


@given(st.integers(min_value=0, max_value=3),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.text(max_size=mgmt_proto.MAX_COMMUNITY_LEN // 4),
       st.lists(st.tuples(st.text(min_size=1, max_size=24), _mgmt_values),
                max_size=8))
def test_mgmt_pdu_round_trip(pdu_type, request_id, community, bindings):
    pdu = mgmt_proto.Pdu(pdu_type=pdu_type, request_id=request_id,
                         community=community, bindings=tuple(bindings))
    assert mgmt_proto.decode_pdu(mgmt_proto.encode_pdu(pdu)) == pdu


@given(st.integers(min_value=0, max_value=200))
def test_mgmt_pdu_every_truncation_rejected_cleanly(cut):
    """Chopping a valid PDU at any byte raises MgmtDecodeError, never
    an IndexError/struct.error, and never parses."""
    pdu = mgmt_proto.request(mgmt_proto.BULK, 42,
                             ["sys.uptime", "if.e0.bytes_sent"],
                             max_repetitions=10)
    wire = mgmt_proto.encode_pdu(pdu)
    cut = cut % len(wire)
    with pytest.raises(mgmt_proto.MgmtDecodeError):
        mgmt_proto.decode_pdu(wire[:cut])


@given(st.binary(min_size=24, max_size=512),
       st.integers(min_value=0, max_value=511),
       st.integers(min_value=1, max_value=255))
def test_tcp_single_bit_corruption_never_accepted(data, pos, flip):
    """A valid segment with one corrupted byte must fail the checksum."""
    seg = TcpSegment(src_port=1, dst_port=2, seq=100, ack=200,
                     flags=0x18, window=1000, payload=data[:64])
    wire = bytearray(seg.to_bytes(A, B))
    pos = pos % len(wire)
    original = wire[pos]
    wire[pos] = original ^ flip
    if wire[pos] == original:
        return
    # Corrupting the data-offset nibble may turn header bytes into
    # "option" bytes and vice versa; whatever happens, the parser must
    # reject (checksum) or raise (structure) — it must never return a
    # segment equal to the original with different bytes on the wire.
    try:
        parsed = TcpSegment.from_bytes(A, B, bytes(wire))
    except SegmentError:
        return
    assert parsed != seg


@given(st.binary(min_size=0, max_size=128),
       st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=255))
def test_udp_single_bit_corruption_never_accepted(payload, pos, flip):
    wire = bytearray(udp_mod.encode(A, B, 9, 10, payload))
    pos = pos % len(wire)
    original = wire[pos]
    wire[pos] = original ^ flip
    if wire[pos] == original:
        return
    try:
        header, parsed_payload = udp_mod.decode(A, B, bytes(wire))
    except udp_mod.UdpError:
        return
    # Only reachable if corruption hit bytes beyond the UDP length field's
    # coverage — in which case the decoded payload must equal the original.
    assert parsed_payload == payload


# ----------------------------------------------------------------------
# Session resume hellos (the RSES 20-byte handshake frame)
# ----------------------------------------------------------------------
from repro.session import frames  # noqa: E402  (grouped with its tests)


@given(st.binary(max_size=64),
       st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=8))
def test_session_hello_parser_never_crashes(data, cuts):
    """Arbitrary first-bytes, arriving in arbitrary chunkings, either
    produce a hello or raise SessionProtocolError — nothing else, and
    never a partial/garbage Hello object."""
    parser = frames.HelloParser()
    offset = 0
    try:
        for cut in cuts:
            if offset >= len(data):
                break
            parser.feed(data[offset:offset + cut])
            offset += cut
        parser.feed(data[offset:])
    except frames.SessionProtocolError:
        return
    if parser.done:
        assert 0 <= parser.hello.session_id < (1 << 64)
        assert 0 <= parser.hello.recv_offset < (1 << 64)
    else:
        # Starved: everything fed so far must be a strict prefix of a
        # valid frame (otherwise the magic check would have raised).
        assert len(data) < frames.HELLO_LEN
        assert data[:4] == frames.MAGIC[:len(data[:4])]


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.binary(max_size=32),
       st.integers(min_value=1, max_value=frames.HELLO_LEN + 8))
def test_session_hello_round_trip_any_chunking(sid, offset, trailing, cut):
    """encode -> chunked feed -> identical fields, stream bytes intact."""
    wire = frames.encode_hello(sid, offset) + trailing
    parser = frames.HelloParser()
    rest = bytearray()
    for start in range(0, len(wire), cut):
        rest.extend(parser.feed(wire[start:start + cut]))
    assert parser.done
    assert parser.hello.session_id == sid
    assert parser.hello.recv_offset == offset
    assert bytes(rest) == trailing


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.integers(min_value=0, max_value=frames.HELLO_LEN - 1),
       st.integers(min_value=1, max_value=255))
def test_session_hello_corruption_rejected_or_differs(sid, offset, pos,
                                                      flip):
    """A flipped byte in the magic is refused; a flipped byte in the id
    or offset fields must change the parsed value — a corrupted hello is
    never mistaken for the original."""
    wire = bytearray(frames.encode_hello(sid, offset))
    wire[pos] ^= flip
    parser = frames.HelloParser()
    try:
        parser.feed(bytes(wire))
    except frames.SessionProtocolError:
        assert pos < len(frames.MAGIC)
        return
    assert parser.done
    assert (parser.hello.session_id, parser.hello.recv_offset) != (sid,
                                                                   offset)


# ----------------------------------------------------------------------
# FlowSpec PDUs (soft-state reservations on PROTO_RSVP)
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=0xFFFFFFFF),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=1, max_value=255),
       st.integers(min_value=0, max_value=3_600_000))
def test_flowspec_round_trip(src, dst, proto, port, weight, life_ms):
    spec = FlowSpec(Address(src), Address(dst), proto, port,
                    weight, life_ms / 1000.0)
    parsed = FlowSpec.unpack(spec.pack())
    assert parsed is not None
    assert (parsed.src, parsed.dst) == (spec.src, spec.dst)
    assert (parsed.protocol, parsed.dst_port) == (proto, port)
    assert parsed.weight == weight
    # The wire carries whole milliseconds (truncating int()), so one ms
    # is the format's honest precision.
    assert abs(parsed.lifetime - spec.lifetime) <= 0.001


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_flowspec_truncation_returns_none(cut):
    """Any truncated spec is rejected with None — never an exception,
    never a spec built from partial fields."""
    spec = FlowSpec(Address("10.1.2.3"), Address("10.4.5.6"), 17, 4242,
                    weight=9, lifetime=12.5)
    wire = spec.pack()
    cut = cut % len(wire)
    assert FlowSpec.unpack(wire[:cut]) is None
