"""Unit/integration tests for UDP."""

import pytest

from repro.ip import icmp
from repro.ip.address import Address
from repro.udp.udp import UdpError, UdpStack, decode, encode


A = Address("10.0.1.1")
B = Address("10.0.2.2")


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_encode_decode_round_trip():
    wire = encode(A, B, 1234, 80, b"payload")
    header, payload = decode(A, B, wire)
    assert header.src_port == 1234
    assert header.dst_port == 80
    assert payload == b"payload"


def test_checksum_detects_corruption():
    wire = bytearray(encode(A, B, 1234, 80, b"payload"))
    wire[-1] ^= 0xFF
    with pytest.raises(UdpError):
        decode(A, B, bytes(wire))


def test_checksum_covers_pseudo_header():
    # Same bytes, different claimed addresses: checksum must fail.
    wire = encode(A, B, 1234, 80, b"payload")
    with pytest.raises(UdpError):
        decode(A, Address("10.0.2.3"), wire)


def test_no_checksum_accepted():
    wire = encode(A, B, 1, 2, b"data", with_checksum=False)
    header, payload = decode(A, B, wire)
    assert header.checksum == 0
    assert payload == b"data"


def test_short_segment_rejected():
    with pytest.raises(UdpError):
        decode(A, B, b"\x00\x01")


def test_bad_length_field_rejected():
    wire = bytearray(encode(A, B, 1, 2, b"data", with_checksum=False))
    wire[4:6] = (100).to_bytes(2, "big")  # longer than the segment
    with pytest.raises(UdpError):
        decode(A, B, bytes(wire))


def test_empty_payload_ok():
    header, payload = decode(A, B, encode(A, B, 5, 6, b""))
    assert payload == b""


# ----------------------------------------------------------------------
# Stack behaviour
# ----------------------------------------------------------------------
@pytest.fixture
def udp_pair(two_hosts_one_gateway):
    sim, h1, gw, h2 = two_hosts_one_gateway
    return sim, h1, h2, UdpStack(h1), UdpStack(h2)


def test_datagram_delivery(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    got = []
    u2.bind(7000, lambda data, src, port: got.append((data, str(src), port)))
    sock = u1.bind(5000)
    sock.sendto(b"hello", "10.0.2.2", 7000)
    sim.run(until=1)
    assert got == [(b"hello", "10.0.1.1", 5000)]


def test_reply_path(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    server = u2.bind(7000)
    server.on_datagram = lambda data, src, port: server.sendto(data.upper(), src, port)
    got = []
    client = u1.bind(0, lambda data, src, port: got.append(data))
    client.sendto(b"hello", "10.0.2.2", 7000)
    sim.run(until=1)
    assert got == [b"HELLO"]


def test_unbound_port_generates_port_unreachable(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    errors = []
    h1.add_icmp_error_listener(lambda n, m, d: errors.append(m))
    u1.bind(5000).sendto(b"x", "10.0.2.2", 9999)
    sim.run(until=1)
    assert errors and errors[0].code == icmp.UNREACH_PORT


def test_duplicate_bind_rejected(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    u1.bind(5000)
    with pytest.raises(UdpError):
        u1.bind(5000)


def test_ephemeral_ports_unique(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    ports = {u1.bind(0).port for _ in range(50)}
    assert len(ports) == 50
    assert all(p >= UdpStack.EPHEMERAL_BASE for p in ports)


def test_close_unbinds(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    sock = u1.bind(5000)
    sock.close()
    u1.bind(5000)  # rebinding works now


def test_send_after_close_raises(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    sock = u1.bind(5000)
    sock.close()
    with pytest.raises(UdpError):
        sock.sendto(b"x", "10.0.2.2", 1)


def test_socket_counters(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    server = u2.bind(7000, lambda *a: None)
    client = u1.bind(0)
    client.sendto(b"a", "10.0.2.2", 7000)
    client.sendto(b"b", "10.0.2.2", 7000)
    sim.run(until=1)
    assert client.sent == 2
    assert server.received == 2


def test_corrupted_segment_counted(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    u2.bind(7000, lambda *a: None)
    # Deliver a mangled UDP payload directly.
    from repro.ip.packet import Datagram, PROTO_UDP
    bad = Datagram(src=Address("10.0.1.1"), dst=Address("10.0.2.2"),
                   protocol=PROTO_UDP, payload=b"\x00")
    h2._deliver_local(bad, None)
    assert u2.bad_segments == 1


def test_large_datagram_fragmented_and_reassembled(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    got = []
    u2.bind(7000, lambda data, src, port: got.append(data))
    payload = bytes(range(256)) * 20  # 5120 bytes > 1500 MTU
    u1.bind(5000).sendto(payload, "10.0.2.2", 7000)
    sim.run(until=2)
    assert got == [payload]


def test_bit_flipped_segment_dropped_and_counted(udp_pair):
    """A corrupted segment is dropped at the UdpStack boundary (like a real
    host), counted in checksum_failures, and never raises through the
    node's delivery path."""
    sim, h1, h2, u1, u2 = udp_pair
    got = []
    u2.bind(7000, lambda data, src, port: got.append(data))
    from repro.ip.packet import Datagram, PROTO_UDP
    wire = bytearray(encode(Address("10.0.1.1"), Address("10.0.2.2"),
                            5000, 7000, b"hello"))
    wire[-1] ^= 0x01  # flip one payload bit
    bad = Datagram(src=Address("10.0.1.1"), dst=Address("10.0.2.2"),
                   protocol=PROTO_UDP, payload=bytes(wire))
    h2._deliver_local(bad, None)  # must not raise
    assert got == []
    assert u2.checksum_failures == 1
    assert u2.bad_segments == 1


def test_short_segment_counts_as_bad_but_not_checksum_failure(udp_pair):
    sim, h1, h2, u1, u2 = udp_pair
    u2.bind(7000, lambda *a: None)
    from repro.ip.packet import Datagram, PROTO_UDP
    bad = Datagram(src=Address("10.0.1.1"), dst=Address("10.0.2.2"),
                   protocol=PROTO_UDP, payload=b"\x00")
    h2._deliver_local(bad, None)
    assert u2.bad_segments == 1
    assert u2.checksum_failures == 0


def test_decode_raises_specific_checksum_error():
    from repro.udp.udp import UdpChecksumError
    wire = bytearray(encode(A, B, 1234, 80, b"payload"))
    wire[-1] ^= 0x80
    with pytest.raises(UdpChecksumError):
        decode(A, B, bytes(wire))
