"""Tests for the metrics utilities."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.metrics.flowstats import FlowMeter, PlayoutMeter
from repro.metrics.stats import RunningStats, Summary, percentile


# ----------------------------------------------------------------------
# percentile / Summary
# ----------------------------------------------------------------------
def test_percentile_basic():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 3.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 25) == 2.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == 1.5


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_summary_of_sample():
    s = Summary.of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.count == 8
    assert s.mean == 5.0
    assert s.stdev == pytest.approx(2.0)
    assert s.minimum == 2.0 and s.maximum == 9.0


def test_summary_of_empty():
    s = Summary.of([])
    assert s.count == 0
    assert s.mean == 0.0


def test_summary_str_readable():
    text = str(Summary.of([1.0, 2.0, 3.0]))
    assert "mean=" in text and "p99=" in text


# ----------------------------------------------------------------------
# RunningStats
# ----------------------------------------------------------------------
def test_running_stats_welford_matches_batch():
    values = [1.5, 2.5, 0.5, 9.0, 4.0, 3.0]
    rs = RunningStats()
    for v in values:
        rs.add(v)
    batch = Summary.of(values)
    assert rs.mean == pytest.approx(batch.mean)
    assert rs.stdev == pytest.approx(batch.stdev)
    assert rs.minimum == min(values)
    assert rs.maximum == max(values)


def test_running_stats_empty():
    rs = RunningStats()
    assert rs.mean == 0.0
    assert rs.stdev == 0.0


def test_running_stats_summary_uses_samples():
    rs = RunningStats()
    for v in range(100):
        rs.add(float(v))
    s = rs.summary()
    assert s.p50 == pytest.approx(49.5)


def test_running_stats_capacity_bound():
    rs = RunningStats(capacity=10)
    for v in range(100):
        rs.add(float(v))
    assert len(rs.samples) == 10
    assert rs.n == 100  # moments still track everything


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_running_stats_never_negative_variance(values):
    rs = RunningStats(keep_samples=False)
    for v in values:
        rs.add(v)
    assert rs.variance >= -1e-6


# ----------------------------------------------------------------------
# FlowMeter / PlayoutMeter
# ----------------------------------------------------------------------
def test_flow_meter_latency_and_loss():
    meter = FlowMeter()
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.sent(2, 2.0)
    meter.received(0, 0.1)
    meter.received(2, 2.3)
    assert meter.received_count == 2
    assert meter.loss_rate == pytest.approx(1 / 3)
    assert meter.latency.mean == pytest.approx(0.2)


def test_flow_meter_detects_reordering_and_duplicates():
    meter = FlowMeter()
    for i in range(3):
        meter.sent(i, float(i))
    meter.received(2, 2.1)
    meter.received(0, 2.2)   # arrives after a higher sequence: reordered
    meter.received(0, 2.3)   # duplicate
    assert meter.reordered_count == 1
    assert meter.duplicate_count == 1


def test_flow_meter_jitter():
    meter = FlowMeter()
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.received(0, 0.10)
    meter.received(1, 1.30)  # latency jumped 0.1 -> 0.3
    assert meter.jitter.mean == pytest.approx(0.2)


def test_playout_meter_scores_lateness():
    meter = PlayoutMeter(deadline=0.15)
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.sent(2, 2.0)
    meter.received(0, 0.1)   # on time
    meter.received(1, 1.5)   # late
    # seq 2 lost entirely
    assert meter.on_time_count == 1
    assert meter.late_count == 1
    assert meter.effective_loss_rate == pytest.approx(2 / 3)


def test_playout_meter_zero_sent():
    meter = PlayoutMeter(deadline=0.1)
    assert meter.effective_loss_rate == 0.0
    assert meter.loss_rate == 0.0
