"""Tests for the metrics utilities."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.metrics.export import canonical_json
from repro.metrics.flowstats import FlowMeter, PlayoutMeter
from repro.metrics.stats import RunningStats, Summary, percentile


# ----------------------------------------------------------------------
# percentile / Summary
# ----------------------------------------------------------------------
def test_percentile_basic():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 3.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 25) == 2.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == 1.5


def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_summary_of_sample():
    s = Summary.of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
    assert s.count == 8
    assert s.mean == 5.0
    # Sample (Bessel-corrected, n-1) standard deviation: sqrt(32/7).
    assert s.stdev == pytest.approx(math.sqrt(32 / 7))
    assert s.minimum == 2.0 and s.maximum == 9.0


def test_summary_single_value_has_zero_variance():
    s = Summary.of([3.0])
    assert s.stdev == 0.0


def test_summary_of_empty():
    s = Summary.of([])
    assert s.count == 0
    assert s.mean == 0.0


def test_summary_str_readable():
    text = str(Summary.of([1.0, 2.0, 3.0]))
    assert "mean=" in text and "p99=" in text


# ----------------------------------------------------------------------
# RunningStats
# ----------------------------------------------------------------------
def test_running_stats_welford_matches_batch():
    values = [1.5, 2.5, 0.5, 9.0, 4.0, 3.0]
    rs = RunningStats()
    for v in values:
        rs.add(v)
    batch = Summary.of(values)
    assert rs.mean == pytest.approx(batch.mean)
    assert rs.stdev == pytest.approx(batch.stdev)
    assert rs.minimum == min(values)
    assert rs.maximum == max(values)


def test_running_stats_empty():
    rs = RunningStats()
    assert rs.mean == 0.0
    assert rs.stdev == 0.0


def test_running_stats_summary_uses_samples():
    rs = RunningStats()
    for v in range(100):
        rs.add(float(v))
    s = rs.summary()
    assert s.p50 == pytest.approx(49.5)


def test_running_stats_capacity_bound():
    rs = RunningStats(capacity=10)
    for v in range(100):
        rs.add(float(v))
    assert len(rs.samples) == 10
    assert rs.n == 100  # moments still track everything


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_running_stats_never_negative_variance(values):
    rs = RunningStats(keep_samples=False)
    for v in values:
        rs.add(v)
    assert rs.variance >= -1e-6


def test_running_stats_matches_sample_variance():
    values = [1.0, 2.0, 3.0, 4.0]
    rs = RunningStats()
    for v in values:
        rs.add(v)
    # Sample (n-1) variance of 1..4 is 5/3, not the population 5/4.
    assert rs.variance == pytest.approx(5 / 3)


# ----------------------------------------------------------------------
# Reservoir sampling (regression: the old code *stopped* sampling at
# capacity, so the retained window was just the first k values — every
# percentile computed from a long run was biased toward startup).
# ----------------------------------------------------------------------
def test_reservoir_keeps_sampling_past_capacity():
    rs = RunningStats(capacity=50, rng=random.Random(1234))
    for v in range(10_000):
        rs.add(float(v))
    assert len(rs.samples) == 50
    # Algorithm R keeps a uniform sample of the whole stream: the old bug
    # (first-k retention) would make every sample < 50.  A uniform draw of
    # 50 from 10k has vanishing probability of staying below 1000.
    assert max(rs.samples) >= 1000
    assert rs.n == 10_000


def test_reservoir_is_deterministic_for_same_seed():
    def fill(rng):
        rs = RunningStats(capacity=20, rng=rng)
        for v in range(5_000):
            rs.add(float(v))
        return rs.samples

    assert fill(random.Random(7)) == fill(random.Random(7))


def test_reservoir_default_rng_is_seeded():
    """No rng given: the default stream is derived deterministically, so
    two identical runs still agree sample-for-sample."""
    def fill():
        rs = RunningStats(capacity=10)
        for v in range(1_000):
            rs.add(float(v))
        return rs.samples

    assert fill() == fill()


# ----------------------------------------------------------------------
# Canonical export (regression: -0.0 serialized as "-0.0", so two
# mathematically equal payloads produced different bytes)
# ----------------------------------------------------------------------
def test_canonical_json_normalizes_negative_zero():
    assert canonical_json({"v": -0.0}) == canonical_json({"v": 0.0})
    assert "-0.0" not in canonical_json({"v": -0.0})


def test_canonical_json_negative_zero_after_rounding():
    # A tiny negative value rounds to -0.0 at 9 digits; the canonical form
    # must still come out as plain 0.0.
    assert "-0.0" not in canonical_json({"v": -1e-12})
    assert canonical_json({"v": -1e-12}) == canonical_json({"v": 0.0})


# ----------------------------------------------------------------------
# FlowMeter / PlayoutMeter
# ----------------------------------------------------------------------
def test_flow_meter_latency_and_loss():
    meter = FlowMeter()
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.sent(2, 2.0)
    meter.received(0, 0.1)
    meter.received(2, 2.3)
    assert meter.received_count == 2
    assert meter.loss_rate == pytest.approx(1 / 3)
    assert meter.latency.mean == pytest.approx(0.2)


def test_flow_meter_detects_reordering_and_duplicates():
    meter = FlowMeter()
    for i in range(3):
        meter.sent(i, float(i))
    meter.received(2, 2.1)
    meter.received(0, 2.2)   # arrives after a higher sequence: reordered
    meter.received(0, 2.3)   # duplicate
    assert meter.reordered_count == 1
    assert meter.duplicate_count == 1


def test_flow_meter_jitter():
    meter = FlowMeter()
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.received(0, 0.10)
    meter.received(1, 1.30)  # latency jumped 0.1 -> 0.3
    assert meter.jitter.mean == pytest.approx(0.2)


def test_playout_meter_scores_lateness():
    meter = PlayoutMeter(deadline=0.15)
    meter.sent(0, 0.0)
    meter.sent(1, 1.0)
    meter.sent(2, 2.0)
    meter.received(0, 0.1)   # on time
    meter.received(1, 1.5)   # late
    # seq 2 lost entirely
    assert meter.on_time_count == 1
    assert meter.late_count == 1
    assert meter.effective_loss_rate == pytest.approx(2 / 3)


def test_playout_meter_zero_sent():
    meter = PlayoutMeter(deadline=0.1)
    assert meter.effective_loss_rate == 0.0
    assert meter.loss_rate == 0.0


def test_summary_quantile_returns_stored_order_statistics():
    values = [float(v) for v in range(1, 101)]   # 1..100
    s = Summary.of(values)
    assert s.quantile(0.0) == 1.0
    assert s.quantile(0.5) == s.p50 == percentile(values, 50)
    assert s.quantile(0.9) == s.p90 == percentile(values, 90)
    assert s.quantile(0.99) == s.p99 == percentile(values, 99)
    assert s.quantile(1.0) == 100.0
    # True quantiles of the uniform 1..100 sample, for the record.
    assert s.p50 == pytest.approx(50.5)
    assert s.p90 == pytest.approx(90.1)


def test_summary_quantile_rejects_unretained_q():
    s = Summary.of([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        s.quantile(0.75)   # not retained: refuse, don't interpolate
    with pytest.raises(ValueError):
        s.quantile(0.95)


def test_summary_percentiles_dict():
    s = Summary.of([float(v) for v in range(1, 101)])
    p = s.percentiles()
    assert p == {"p50": s.p50, "p90": s.p90, "p99": s.p99}
    # Empty summaries answer with zeros, not errors.
    assert Summary.of([]).percentiles() == {"p50": 0.0, "p90": 0.0,
                                            "p99": 0.0}
