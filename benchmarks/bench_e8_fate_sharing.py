"""E8 — Fate-sharing vs replicated in-network state (paper §4).

The paper names exactly two ways to protect conversation state from
network failure: replicate it inside the network, or move it to the
endpoints (fate-sharing).  We sweep the replication factor k and the
gateway crash rate, measuring conversation survival and the
synchronization traffic the replicated design must pay.

Expected shape: survival improves with k but never reaches fate-sharing's
100 % (a crash burst can still wipe every replica), while sync cost grows
linearly with k; fate-sharing (k = 0) survives everything for free.
"""

import pytest

from repro.harness.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.statefulnet.replicated import ReplicatedStateNetwork

from _common import emit, once

GATEWAYS = [f"G{i}" for i in range(12)]
CRASH_RATES = [0.002, 0.01, 0.02]
KS = [0, 1, 2, 3]
CONVERSATIONS = 300
DURATION = 120.0
TRIALS = 3


def trial(k: int, crash_rate: float, seed: int) -> tuple[float, float]:
    sim = Simulator()
    net = ReplicatedStateNetwork(
        sim, GATEWAYS, k=k, crash_rate=crash_rate,
        repair_time=60.0, rereplication_time=10.0, update_rate=2.0,
        streams=RandomStreams(seed),
    )
    arrivals = RandomStreams(seed).stream("arrivals")
    for i in range(CONVERSATIONS):
        sim.schedule(arrivals.uniform(0, 60.0),
                     lambda: net.start_conversation(DURATION))
    sim.run(until=300.0)
    return net.survival_rate, net.sync_overhead_per_conversation


def run_experiment():
    table = Table(
        "E8  Conversation survival vs where the state lives",
        ["crash rate /gw/s", "k=0 (fate-sharing)", "k=1", "k=2", "k=3",
         "sync msgs/conv (k=3)"],
        note=f"{CONVERSATIONS} conversations x {TRIALS} trials, "
             f"{len(GATEWAYS)} gateways, {DURATION:.0f} s lifetimes",
    )
    grid = {}
    for rate in CRASH_RATES:
        row = []
        sync_k3 = 0.0
        for k in KS:
            survival = 0.0
            sync = 0.0
            for t in range(TRIALS):
                s, c = trial(k, rate, seed=1000 * t + int(rate * 10000) + k)
                survival += s
                sync += c
            survival /= TRIALS
            sync /= TRIALS
            grid[(rate, k)] = (survival, sync)
            row.append(survival)
            if k == 3:
                sync_k3 = sync
        table.add(f"{rate:.3f}",
                  *[f"{v * 100:.1f}%" for v in row],
                  f"{sync_k3:.0f}")
    emit(table, "e8_fate_sharing.txt")
    return grid


@pytest.mark.benchmark(group="e8")
def test_e8_fate_sharing(benchmark):
    grid = once(benchmark, run_experiment)
    for rate in CRASH_RATES:
        # Fate-sharing always survives gateway failure, by construction.
        assert grid[(rate, 0)][0] == 1.0
        # Replication is better with more replicas...
        assert grid[(rate, 3)][0] >= grid[(rate, 1)][0]
        # ...but costs sync traffic roughly linear in k,
        assert grid[(rate, 3)][1] > 2 * grid[(rate, 1)][1] * 0.8
        # while fate-sharing costs nothing.
        assert grid[(rate, 0)][1] == 0.0
    # At the highest crash rate even k=3 loses conversations.
    assert grid[(CRASH_RATES[-1], 3)][0] < 1.0
    # And k=1 visibly suffers there.
    assert grid[(CRASH_RATES[-1], 1)][0] < 0.97
