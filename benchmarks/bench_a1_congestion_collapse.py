"""A1 (ablation) — congestion collapse and the 1988 toolkit.

The paper's "resource management" discussion is thin because, in 1988, the
problem had just bitten: the 1986 congestion collapses (RFC 896's
mechanism) were driven by *spurious duplicates* — hosts whose fixed
retransmission timers were shorter than the queueing delay of a congested
gateway retransmitted packets that were merely delayed, and the duplicates
then crossed the bottleneck themselves, consuming the very capacity that
was scarce.  Goodput collapses even though the wire is 100 % busy.

Topology: five senders into a gateway with a *deep* queue (several seconds
of buffering at 128 kb/s — bufferbloat, 1986 edition).  Variants:

* naive hosts — fixed 1 s RTO, no congestion control: the timer fires while
  packets sit queued, so duplicates multiply;
* naive hosts + gateway Source Quench with quench-responsive windows —
  the architecture's own in-network remedy;
* 1988 hosts — Jacobson/Karn adaptive RTO + Tahoe: the end-host fix the
  paper's fate-sharing placement made possible.

Measured: time to deliver all files, aggregate goodput over that time, and
the duplicate fraction crossing the bottleneck.
"""

import pytest

from repro import Internet
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.harness.tables import Table
from repro.ip.quench import SourceQuencher
from repro.tcp.connection import TcpConfig

from _common import emit, once

BOTTLENECK = 128_000.0
SENDERS = 5
SIZE = 40_000
DEADLINE = 1200.0

#: All hosts get period-accurate 8 KiB socket buffers (BSD defaults were
#: 4-16 KiB); what differs is purely the protocol machinery.
_BUF = dict(send_buffer=8192, recv_buffer=8192)

NAIVE = TcpConfig(rto="fixed", rto_kwargs={"value": 1.0}, nagle=False,
                  fast_retransmit=False, congestion_control=False,
                  repacketize=False, max_retransmits=400, **_BUF)
#: Same blind timer, but the host honours Source Quench by collapsing a
#: window it otherwise never manages.
NAIVE_QUENCHED = TcpConfig(rto="fixed", rto_kwargs={"value": 1.0},
                           nagle=False, fast_retransmit=False,
                           congestion_control=True,
                           initial_cwnd_segments=31,  # starts wide open
                           repacketize=False, max_retransmits=400, **_BUF)
# The 1988 host: Jacobson/Karn timers with BSD's coarse (~1 s minimum
# effective) timer granularity, Nagle, fast retransmit, Tahoe.
GOOD = TcpConfig(rto_kwargs={"min_rto": 1.0}, **_BUF)


def trial(config: TcpConfig, quench: bool, seed: int):
    net = Internet(seed=seed)
    receiver_host = net.host("RX")
    g = net.gateway("G")
    senders = [net.host(f"S{i}") for i in range(SENDERS)]
    for sender in senders:
        net.connect(sender, g, bandwidth_bps=10e6, delay=0.002)
    # Deep buffer: ~5 s of queueing at the bottleneck rate.
    net.connect(g, receiver_host, bandwidth_bps=BOTTLENECK, delay=0.01,
                queue_limit=170)
    net.start_routing()
    net.converge(settle=8.0)
    if quench:
        SourceQuencher(g.node, min_interval=0.2)

    receiver = FileReceiver(receiver_host, port=21)
    for sender in senders:
        FileSender(sender, receiver_host.address, 21, size=SIZE,
                   tcp_config=config)
    start = net.sim.now
    net.sim.run(until=start + DEADLINE)
    completed = len(receiver.results)
    finish = (max(r.completed_at for r in receiver.results) - start
              if completed == SENDERS else DEADLINE)
    goodput = SIZE * completed * 8 / finish
    # Duplicate fraction actually crossing the bottleneck output.
    egress = next(i for i in g.node.interfaces
                  if i.prefix.contains(receiver_host.address))
    useful = SIZE * completed
    dup_fraction = max(0.0, 1 - useful / max(egress.stats.bytes_sent, 1))
    return finish, goodput, completed, dup_fraction


def run_experiment():
    table = Table(
        "A1  Five senders into a deeply buffered 128 kb/s gateway",
        ["hosts", "all files by (s)", "aggregate goodput kb/s",
         "bottleneck bytes that were waste %"],
        note="~6 s of buffering; fixed 1 s timers fire while packets queue "
             "-> duplicates consume the bottleneck (RFC 896's collapse)",
    )
    rows = {}
    for label, config, quench in [
        ("naive (pre-1986)", NAIVE, False),
        ("naive + source quench", NAIVE_QUENCHED, True),
        ("1988 (Jacobson/Tahoe)", GOOD, False),
    ]:
        finish, goodput, completed, dup = trial(config, quench, seed=91)
        rows[label] = (finish, goodput, completed, dup)
        table.add(label, f"{finish:.0f}", f"{goodput / 1000:.1f}",
                  f"{dup * 100:.0f}")
    emit(table, "a1_congestion_collapse.txt")
    return rows


@pytest.mark.benchmark(group="a1")
def test_a1_congestion_collapse(benchmark):
    rows = once(benchmark, run_experiment)
    naive = rows["naive (pre-1986)"]
    quenched = rows["naive + source quench"]
    good = rows["1988 (Jacobson/Tahoe)"]
    # Everyone eventually delivers (TCP is correct even while colliding).
    assert good[2] == SENDERS and naive[2] == SENDERS
    # The collapse: naive hosts waste most of the bottleneck on duplicates
    # and finish last.
    assert naive[3] > 0.3
    assert good[3] < naive[3]
    assert good[0] < naive[0]
    # Source Quench, the architecture's own remedy, recovers a real part
    # of the loss (less waste or earlier finish than plain naive).
    assert quenched[3] < naive[3] or quenched[0] < naive[0]
    # Honest footnote: even the 1988 host pays heavily in this standing-
    # queue regime — multi-second buffering defeats RTT adaptation, which
    # is why resource management is the paper's acknowledged open problem.
    assert good[3] > 0.2
