"""E6 — Ease of host attachment (goal 6): the host bears the burden.

The architecture moved the reliability machinery into the hosts, so "the
burden of implementing TCP correctly falls on the host" and a poor
implementation "can hurt both itself and the network."  We run the same
transfer over the same paths with three host TCP implementations:

* **naive 1981** — fixed 3 s retransmission timer, no Nagle, no fast
  retransmit, no congestion control, no repacketization;
* **spec 1981** — RFC-793 smoothed RTT (no variance term), the rest basic;
* **good 1988** — Jacobson/Karn timers, Nagle, fast retransmit, Tahoe.

Expected shape: on a benign LAN all three work; on the satellite path the
naive host retransmits needlessly (its fixed timer fires under the long
RTT) and achieves poor goodput; the 1988 host adapts everywhere.
"""

import pytest

from repro import Internet, format_rate, run_transfer
from repro.harness.tables import Table
from repro.netlayer.loss import BernoulliLoss
from repro.tcp.connection import TcpConfig

from _common import emit, once


CONFIGS = {
    # The fixed timer is tuned for terrestrial RTTs — the classic mistake
    # that melts down over a satellite hop.
    "naive-1981": TcpConfig(rto="fixed", rto_kwargs={"value": 1.0},
                            nagle=False, fast_retransmit=False,
                            congestion_control=False, repacketize=False,
                            max_retransmits=40),
    "spec-1981": TcpConfig(rto="rfc793", nagle=False, fast_retransmit=False,
                           congestion_control=False, repacketize=True,
                           max_retransmits=40),
    "good-1988": TcpConfig(rto="jacobson", nagle=True, fast_retransmit=True,
                           congestion_control=True, repacketize=True),
}

PATHS = ["lan", "satellite", "lossy-trunk"]
SIZE = 50_000


def build(path: str, seed: int):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    if path == "lan":
        net.lan("core", [g1, g2])
    elif path == "satellite":
        net.connect(g1, g2, media="satellite", mtu=576)
    elif path == "lossy-trunk":
        net.connect(g1, g2, bandwidth_bps=256e3, delay=0.02,
                    loss=BernoulliLoss(0.03))
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=10.0)
    return net, h1, h2


def run_experiment():
    table = Table(
        "E6  The same transfer, three host TCP implementations",
        ["path", "host TCP", "goodput", "spurious retx %"],
        note=f"{SIZE} B transfer; spurious = retransmitted segments / "
             "segments sent",
    )
    results = {}
    for path in PATHS:
        for name, config in CONFIGS.items():
            net, h1, h2 = build(path, seed=17)
            outcome = run_transfer(net, h1, h2, size=SIZE, deadline=2400,
                                   tcp_config=config)
            results[(path, name)] = outcome
            table.add(path, name,
                      format_rate(outcome.goodput_bps) if outcome.completed
                      else "INCOMPLETE",
                      f"{outcome.retransmit_ratio * 100:.1f}")
    emit(table, "e6_host_implementation.txt")
    return results


@pytest.mark.benchmark(group="e6")
def test_e6_host_implementation(benchmark):
    results = once(benchmark, run_experiment)
    # Everyone completes everywhere (TCP is robust even when dumb)...
    assert all(o.completed for o in results.values())
    # ...but the terrestrially-tuned fixed timer wastes the satellite path:
    # heavy spurious retransmission where the adaptive host has almost none.
    # (Its own goodput can even survive — brute-force flooding saturates
    # the channel — which is exactly the "hurts the network" half of the
    # paper's warning: a quarter of everything it sends is waste.)
    assert results[("satellite", "naive-1981")].retransmit_ratio > 0.15
    assert results[("satellite", "good-1988")].retransmit_ratio < 0.05
    # Implementation quality costs real performance even on a benign LAN
    # (the naive host stalls on its own queue overflows).
    assert (results[("lan", "good-1988")].goodput_bps
            > 5 * results[("lan", "naive-1981")].goodput_bps)
    # The 1988 host also wastes far less of the lossy trunk.
    assert (results[("lossy-trunk", "good-1988")].retransmit_ratio
            < results[("lossy-trunk", "naive-1981")].retransmit_ratio)
