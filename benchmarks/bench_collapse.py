"""Congestion-collapse ecology benchmark (the paper's flaw, measured).

Runs the four-leg defense race from ``repro.chaos --campaign collapse``
— all-conforming baseline, then the mixed ecology under FIFO, RED/ECN,
and RED+DRR gateways — and distills it to the numbers later PRs must
defend:

* ``collapse_ratio`` — mixed-ecology aggregate goodput over baseline
  under FIFO, at >= 95% bottleneck utilization (the RFC 896 signature:
  the wire is busy, the work is gone; gate: < 0.40);
* ``recovery_fair_share`` — conforming per-flow goodput under RED+DRR
  over baseline (gate: >= 0.90);
* ``attribution`` — the share of duplicate bytes the per-AS harm ledger
  charges to misbehaving ASes (gate: > 0.5);
* ``mttd_s`` — how long the management plane needs to raise the
  congestion-collapse alarm from the duplicate-bytes MIB series.

Writes ``BENCH_collapse.json`` at the repo root so the trajectory is
versioned.  Run directly::

    PYTHONPATH=src python benchmarks/bench_collapse.py [--quick]

``--quick`` runs the 4-AS small shape for CI smoke (the committed JSON
should come from a full 8-AS/512-node run).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.chaos.collapse import run_collapse_campaign

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_collapse.json"

SEED = 7


def bench_race(quick: bool) -> dict:
    size = "small" if quick else "full"
    start = time.perf_counter()
    report = run_collapse_campaign(SEED, size=size)
    wall = time.perf_counter() - start

    race = report.race
    base = race["baseline"]["goodput_bps"]
    fifo = race["fifo"]
    drr = race["red_drr"]
    red = race["red"]

    ratio = fifo["goodput_bps"]["aggregate"] / base["aggregate"]
    fair = (drr["goodput_bps"]["conforming_per_flow_mean"]
            / base["conforming_per_flow_mean"])
    mgmt = report.legs["fifo"].counters.get("netmgmt", {})
    detected = [r for r in mgmt.get("per_fault", [])
                if r["kind"] == "misbehaving-hosts" and r["detected"]]

    cells = {
        leg: {
            "aggregate_kbps": round(
                race[leg]["goodput_bps"]["aggregate"] / 1000, 1),
            "conforming_per_flow_kbps": round(
                race[leg]["goodput_bps"]["conforming_per_flow_mean"] / 1000,
                2),
            "bottleneck_busy": race[leg]["bottleneck_busy"]["mean"],
            "voice_on_time_pct": race[leg]["voice"]["on_time_pct"],
        }
        for leg in ("baseline", "fifo", "red", "red_drr")
    }

    return {
        "wall_s": round(wall, 2),
        "size": size,
        "violations": report.violation_count,
        "cells": cells,
        "collapse_ratio": round(ratio, 4),
        "collapse_busy_min": fifo["bottleneck_busy"]["min"],
        "red_aggregate_ratio": round(
            red["goodput_bps"]["aggregate"] / base["aggregate"], 4),
        "recovery_fair_share": round(fair, 4),
        "attribution": fifo["harm"]["misbehaving_duplicate_fraction"],
        "mttd_s": round(detected[0]["mttd"], 3) if detected else None,
        "gates": {
            "collapse_ratio_lt_0.40": ratio < 0.40,
            "busy_ge_0.95": fifo["bottleneck_busy"]["min"] >= 0.95,
            "fair_share_ge_0.90": fair >= 0.90,
            "attribution_gt_0.5":
                fifo["harm"]["misbehaving_duplicate_fraction"] > 0.5,
            "collapse_detected": bool(detected),
            "no_violations": report.violation_count == 0,
        },
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    results = {
        "benchmark": "congestion-collapse ecology race",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "race": bench_race(quick),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    gates = results["race"]["gates"]
    # The quick (4-AS) shape races the same machinery but is not deep
    # enough to cross the full collapse gate; it gates on mechanism
    # (attribution, detection, recovery, zero violations) only.
    checked = dict(gates)
    if quick:
        checked.pop("collapse_ratio_lt_0.40")
        checked.pop("busy_ge_0.95")
    failed = [name for name, ok in checked.items() if not ok]
    for name in failed:
        print(f"FAIL: gate {name}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
