"""E9 — Byte vs packet sequencing (paper §9): the repacketization payoff.

TCP numbers bytes so a sender may cut *different* packet boundaries when it
retransmits — coalescing a burst of tiny interactive writes into one
recovery segment.  The rejected alternative numbered packets, freezing the
boundaries at first transmission.

Workload: an interactive sender emits many small application writes over a
lossy path.  Both transports are otherwise comparable (adaptive RTO,
cumulative acks).  Measured: packets on the wire, wire bytes (headers
included), and retransmission counts to deliver the identical byte stream.

Expected shape: the byte-sequenced TCP puts fewer, fuller packets on the
wire and recovers a loss burst with a handful of coalesced
retransmissions; the packet-sequenced transport must resend every tiny
original packet one by one.
"""

import pytest

from repro import Internet
from repro.harness.tables import Table
from repro.netlayer.loss import BernoulliLoss
from repro.tcp.connection import TcpConfig
from repro.tcp.packet_tcp import PacketTransport

from _common import emit, once

LOSS_RATES = [0.0, 0.05, 0.15]
WRITES = 400
WRITE_SIZE = 12   # a dozen-byte interactive message
WRITE_GAP = 0.02


def build_net(loss: float, seed: int):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g = net.gateway("G")
    net.connect(h1, g, bandwidth_bps=1e6, delay=0.01,
                loss=BernoulliLoss(loss))
    net.connect(g, h2, bandwidth_bps=1e6, delay=0.01)
    net.start_routing()
    net.converge(settle=6.0)
    return net, h1, h2


def host_wire_cost(host) -> tuple[int, int]:
    iface = host.node.interfaces[0]
    return iface.stats.packets_sent, iface.stats.bytes_sent


def byte_tcp_trial(loss: float, seed: int):
    net, h1, h2 = build_net(loss, seed)
    received = bytearray()

    def serve(sock):
        sock.on_data = received.extend

    h2.listen(7000, serve)
    config = TcpConfig(nagle=True, repacketize=True)
    sock = h1.connect(h2.address, 7000, config=config)
    for i in range(WRITES):
        net.sim.schedule(i * WRITE_GAP,
                         lambda: sock.write(b"k" * WRITE_SIZE))
    net.sim.run(until=net.sim.now + WRITES * WRITE_GAP + 300)
    assert len(received) == WRITES * WRITE_SIZE
    packets, wire = host_wire_cost(h1)
    conn = sock.conn
    return packets, wire, conn.stats.segments_retransmitted


def packet_tcp_trial(loss: float, seed: int):
    net, h1, h2 = build_net(loss, seed)
    received = bytearray()
    transport_rx = PacketTransport(h2.node)
    transport_tx = PacketTransport(h1.node)
    transport_rx.listen(7000, lambda c: setattr(c, "on_receive",
                                                received.extend))
    conn = transport_tx.connect(h2.address, 7000)
    for i in range(WRITES):
        net.sim.schedule(i * WRITE_GAP,
                         lambda: conn.send(b"k" * WRITE_SIZE))
    net.sim.run(until=net.sim.now + WRITES * WRITE_GAP + 300)
    assert len(received) == WRITES * WRITE_SIZE
    packets, wire = host_wire_cost(h1)
    return packets, wire, conn.packets_retransmitted


def run_experiment():
    table = Table(
        "E9  Interactive small writes: byte vs packet sequencing",
        ["loss %", "byte TCP pkts", "pkt TCP pkts",
         "byte TCP wire B", "pkt TCP wire B",
         "byte retx", "pkt retx"],
        note=f"{WRITES} writes of {WRITE_SIZE} B each; identical stream "
             "delivered by both",
    )
    rows = []
    for loss in LOSS_RATES:
        b = byte_tcp_trial(loss, seed=int(loss * 100) + 41)
        p = packet_tcp_trial(loss, seed=int(loss * 100) + 41)
        table.add(f"{loss * 100:.0f}", b[0], p[0], b[1], p[1], b[2], p[2])
        rows.append((loss, b, p))
    emit(table, "e9_byte_sequencing.txt")
    return rows


@pytest.mark.benchmark(group="e9")
def test_e9_byte_sequencing(benchmark):
    rows = once(benchmark, run_experiment)
    for loss, byte_r, pkt_r in rows:
        # Byte sequencing (with Nagle riding on it) always needs fewer
        # packets and fewer wire bytes for the same stream.
        assert byte_r[0] < pkt_r[0]
        assert byte_r[1] < pkt_r[1]
    # Under heavy loss the retransmission counts diverge sharply: the
    # packet transport resends tiny packets one by one.
    heavy = rows[-1]
    assert heavy[2][2] > 2 * heavy[1][2]
