"""Management-plane overhead benchmark (the <=5% of-goodput gate).

In-band management only works if it stays a rounding error next to the
data it manages — a monitoring plane that eats the bandwidth it's
supposed to observe has failed goal 4 *and* goal 3.  This benchmark
builds a campus network (an OPS station plus four hosts behind two
gateways, 10 Mb/s access links and an 8 Mb/s core), drives steady
cross-core application traffic, runs a full
:class:`~repro.netmgmt.campaign.ManagementPlane` scraping every node at
the collector's default interval, and then compares bytes:

* **goodput** — application payload bytes delivered to the traffic sinks;
* **scrape overhead** — management request + response bytes seen by the
  collector (both directions of every scrape).

Both counts are *simulation-deterministic* — same seed, same bytes —
so unlike the wall-clock benches this gate cannot flap on CI timing
noise.  (The AS-chain preset is deliberately not used here: its 256 kb/s
1988-era backbone caps cross-AS goodput so low that *any* per-node
telemetry exceeds 5% of it — the interesting regime is a network with
capacity headroom, where the gate measures the plane's own appetite.)

Writes ``BENCH_netmgmt.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_netmgmt.py [--quick]

Exit status is non-zero when scrape bytes exceed the gate fraction of
goodput, or when scrapes mostly failed (a dead collector would trivially
"pass" a pure ratio test).
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro import Internet
from repro.netmgmt import ManagementPlane

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_netmgmt.json"

#: Management bytes must stay within 5% of application goodput bytes.
GATE = 0.05

TRAFFIC_PORT = 4000
PAYLOAD_SIZE = 900          # fits a 1006-byte MTU without fragmenting
SEND_INTERVAL = 0.01        # per-flow: 900 B / 10 ms = 720 kb/s


def build_campus(seed: int) -> Internet:
    """OPS + H1..H4 behind two gateways; enough headroom that the
    network, not the benchmark, decides what management costs."""
    net = Internet(seed=seed)
    ops = net.host("OPS")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    hosts = [net.host(f"H{i}") for i in (1, 2, 3, 4)]
    net.connect(ops, g1, bandwidth_bps=10_000_000, delay=0.001, mtu=1006)
    for h in hosts[:2]:
        net.connect(h, g1, bandwidth_bps=10_000_000, delay=0.001, mtu=1006)
    for h in hosts[2:]:
        net.connect(h, g2, bandwidth_bps=10_000_000, delay=0.001, mtu=1006)
    net.connect(g1, g2, bandwidth_bps=8_000_000, delay=0.002, mtu=1006)
    net.start_routing()
    net.converge(settle=8.0)
    return net


def run(seed: int, *, duration: float) -> dict:
    net = build_campus(seed)
    net.observe()

    delivered = {"bytes": 0, "datagrams": 0}

    def sink(payload, *_rest):
        delivered["bytes"] += len(payload)
        delivered["datagrams"] += 1

    # Two flows crossing the core (H1->H3, H2->H4): the managed traffic.
    flows = [("H1", "H3"), ("H2", "H4")]
    payload = bytes(PAYLOAD_SIZE)
    for _src, dst in flows:
        net.hosts[dst].udp.bind(TRAFFIC_PORT, sink)
    for src, dst in flows:
        sock = net.hosts[src].udp.bind(0)
        addr = net.hosts[dst].node.address

        def tick(sock=sock, addr=addr, src=src):
            sock.sendto(payload, addr, TRAFFIC_PORT)
            net.sim.schedule(SEND_INTERVAL, tick, label=f"bench.{src}")

        net.sim.schedule(SEND_INTERVAL, tick, label=f"bench.{src}")

    # Collector defaults: interval 2.0 s, timeout 1.0 s — the numbers a
    # plain ManagementPlane ships with are the numbers we gate on.
    plane = ManagementPlane(net, station="OPS", interval=2.0, timeout=1.0)
    plane.start()
    net.sim.run(until=net.sim.now + duration)

    stats = plane.collector.stats
    mgmt_bytes = stats.request_bytes + stats.response_bytes
    goodput = delivered["bytes"]
    return {
        "seed": seed,
        "duration_s": duration,
        "scrape_interval_s": plane.collector.interval,
        "targets": len(plane.collector.targets),
        "goodput_bytes": goodput,
        "goodput_datagrams": delivered["datagrams"],
        "mgmt_request_bytes": stats.request_bytes,
        "mgmt_response_bytes": stats.response_bytes,
        "mgmt_bytes": mgmt_bytes,
        "scrapes_completed": stats.scrapes_completed,
        "scrapes_failed": stats.scrapes_failed,
        "bindings_ingested": stats.bindings_ingested,
        "overhead_fraction": round(mgmt_bytes / goodput, 6) if goodput else 1.0,
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    duration = 20.0 if quick else 60.0

    result = run(seed=7, duration=duration)
    overhead = result["overhead_fraction"]
    scrapes = result["scrapes_completed"]
    healthy = scrapes > 0 and result["scrapes_failed"] <= scrapes // 4
    results = {
        "benchmark": "management-plane overhead",
        "mode": "quick" if quick else "full",
        "topology": "campus: OPS+4 hosts, 2 gateways, 8 Mb/s core; "
                    f"2 flows x {PAYLOAD_SIZE}B/{SEND_INTERVAL}s",
        **result,
        "gate": GATE,
        "gate_passed": overhead <= GATE and healthy,
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    if not healthy:
        print("FAIL: collector mostly failed to scrape; ratio meaningless",
              file=sys.stderr)
        return 1
    if overhead > GATE:
        print(f"FAIL: scrape overhead {overhead:.4f} of goodput exceeds "
              f"the {GATE:.2f} gate", file=sys.stderr)
        return 1
    print(f"OK: scrape overhead {overhead:.4f} of goodput "
          f"(gate {GATE:.2f}); {scrapes} scrapes, "
          f"{result['bindings_ingested']} bindings")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
