"""E2 — Types of service (goal 2): why one reliable service is not enough.

Two real-time workloads from the paper — packet voice and the XNET
debugger — run over (a) the raw datagram service (UDP) and (b) the reliable
stream (TCP), across a path with increasing loss.

Expected shape: for voice, UDP's usable-frame rate degrades gracefully with
loss while TCP's collapses (every loss stalls the stream past the playout
deadline).  For XNET, application-level retry over UDP yields bounded
transaction latency where TCP adds connection machinery a barely-alive
debug target could not run at all.
"""

import pytest

from repro import Internet
from repro.apps.voice import (
    TcpVoiceCall,
    TcpVoiceReceiver,
    UdpVoiceCall,
    UdpVoiceReceiver,
)
from repro.apps.xnet import XnetClient, XnetServer
from repro.harness.tables import Table
from repro.netlayer.loss import BernoulliLoss

from _common import emit, once

LOSS_RATES = [0.0, 0.02, 0.05, 0.10]
CALL_SECONDS = 15.0
DEADLINE = 0.160


def build_net(loss: float, seed: int):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    net.connect(g1, g2, bandwidth_bps=1e6, delay=0.02,
                loss=BernoulliLoss(loss))
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=8.0)
    return net, h1, h2


def voice_trial(loss: float, seed: int) -> tuple[float, float]:
    """Returns (udp usable fraction, tcp usable fraction)."""
    net, h1, h2 = build_net(loss, seed)
    udp_rx = UdpVoiceReceiver(h2, 5004, playout_deadline=DEADLINE)
    tcp_rx = TcpVoiceReceiver(h2, 5005, playout_deadline=DEADLINE)
    UdpVoiceCall(h1, h2.address, 5004, duration=CALL_SECONDS,
                 meter=udp_rx.meter)
    TcpVoiceCall(h1, h2.address, 5005, duration=CALL_SECONDS,
                 meter=tcp_rx.meter)
    net.sim.run(until=net.sim.now + CALL_SECONDS + 60)
    return (1 - udp_rx.meter.effective_loss_rate,
            1 - tcp_rx.meter.effective_loss_rate)


def xnet_trial(loss: float, seed: int) -> float:
    """Returns mean transaction latency (s) for UDP request/retry."""
    net, h1, h2 = build_net(loss, seed)
    XnetServer(h2, port=69)
    client = XnetClient(h1, h2.address, 69, timeout=0.3, max_attempts=8)
    for address in range(60):
        net.sim.schedule(address * 0.05, lambda a=address: client.peek(a))
    net.sim.run(until=net.sim.now + 120)
    assert client.completed >= 55  # essentially all transactions finish
    return client.latency_summary().mean


def run_experiment():
    table = Table(
        "E2  Service type vs workload across increasing loss",
        ["loss %", "voice UDP usable %", "voice TCP usable %",
         "xnet mean latency ms"],
        note=f"64 kb/s voice, {DEADLINE * 1000:.0f} ms playout budget; "
             "xnet = 60 peeks with app-level retry",
    )
    rows = []
    for loss in LOSS_RATES:
        udp_ok, tcp_ok = voice_trial(loss, seed=int(loss * 1000) + 3)
        xnet_ms = xnet_trial(loss, seed=int(loss * 1000) + 7) * 1000
        table.add(f"{loss * 100:.0f}", f"{udp_ok * 100:.1f}",
                  f"{tcp_ok * 100:.1f}", f"{xnet_ms:.0f}")
        rows.append((loss, udp_ok, tcp_ok, xnet_ms))
    emit(table, "e2_types_of_service.txt")
    return rows


@pytest.mark.benchmark(group="e2")
def test_e2_types_of_service(benchmark):
    rows = once(benchmark, run_experiment)
    clean = rows[0]
    assert clean[1] > 0.99 and clean[2] > 0.95  # both fine on a clean path
    for loss, udp_ok, tcp_ok, xnet_ms in rows[1:]:
        # UDP voice degrades roughly with the loss rate...
        assert udp_ok >= 1 - 3 * loss - 0.02
        # ...and beats TCP voice, whose stalls compound.
        assert udp_ok > tcp_ok
    # At 10% loss the gap is dramatic (the paper's qualitative claim).
    heavy = rows[-1]
    assert heavy[1] - heavy[2] > 0.10
    # XNET transactions stay bounded even at 10% loss.
    assert rows[-1][3] < 1000.0
