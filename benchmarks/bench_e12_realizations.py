"""E12 — Realizations (paper §8): the architecture does not constrain
performance.

"The architecture tolerated a variety of realizations" whose services
differ by orders of magnitude.  We run the identical protocol stack and the
identical two workloads (a bulk transfer and an interactive echo) over
every canonical realization, from a one-room LAN internet to a
satellite-plus-X.25 world net, and tabulate the spread — which is the
point: same architecture, wildly different service, all of them legitimate
internets.
"""

import pytest

from repro import format_rate, run_transfer
from repro.apps.echo import UdpEchoClient, UdpEchoServer
from repro.harness.realizations import REALIZATIONS, build_realization
from repro.harness.tables import Table

from _common import emit, once

SIZE = 40_000


def trial(name: str):
    net, h1, h2 = build_realization(name, seed=71)
    # Interactive probe: 20 echo round trips.
    UdpEchoServer(h2, port=7)
    client = UdpEchoClient(h1, h2.address, 7)
    for i in range(20):
        net.sim.schedule(i * 0.3, lambda: client.probe(size=64))
    net.sim.run(until=net.sim.now + 30)
    rtt_ms = client.rtt.mean * 1000 if client.received else float("inf")
    outcome = run_transfer(net, h1, h2, size=SIZE, deadline=2400)
    return outcome, rtt_ms, client.received


def run_experiment():
    table = Table(
        "E12  Identical stack and workloads over six realizations",
        ["realization", "bulk goodput", "echo rtt ms", "echoes", "completed"],
        note=f"{SIZE} B transfer + 20 UDP echoes; spread IS the result",
    )
    results = {}
    for realization in REALIZATIONS:
        outcome, rtt_ms, echoes = trial(realization.name)
        results[realization.name] = (outcome, rtt_ms, echoes)
        table.add(realization.name, format_rate(outcome.goodput_bps),
                  f"{rtt_ms:.1f}", f"{echoes}/20",
                  "yes" if outcome.completed else "NO")
    emit(table, "e12_realizations.txt")
    return results


@pytest.mark.benchmark(group="e12")
def test_e12_realizations(benchmark):
    results = once(benchmark, run_experiment)
    # Every realization carries both workloads.
    assert all(o.completed for o, _, _ in results.values())
    assert all(echoes >= 15 for _, _, echoes in results.values())
    # The performance spread spans orders of magnitude.
    goodputs = [o.goodput_bps for o, _, _ in results.values()]
    assert max(goodputs) > 100 * min(goodputs)
    rtts = [rtt for _, rtt, _ in results.values()]
    assert max(rtts) > 20 * min(rtts)
    # The LAN-only realization is the fast extreme; the satellite-bearing
    # ones are the slow extreme.
    assert results["lan-only"][0].goodput_bps == max(goodputs)
    slowest = min(results, key=lambda n: results[n][0].goodput_bps)
    assert slowest in ("transatlantic", "mixed-worldnet")
