"""Session-resumption benchmark (goal 1: recovery, measurably).

Two figures of merit for the fate-sharing closed loop:

* **Reconnect-to-resume latency** — sim-seconds from a host's restore to
  the moment its session has completed the hello exchange and is
  streaming again.  The floor is the RFC 793 quiet time (the reborn
  stack *owes* the net that silence), so the acceptance bar is
  quiet-time plus a modest dialing/handshake allowance.

* **Keepalive overhead** — extra segments per simulated minute that an
  otherwise-idle connection pays for liveness detection, versus an
  identical keepalive-off build.  Probes must stay cheap enough to leave
  on wherever zombie detection matters.

Writes ``BENCH_session.json`` at the repo root so later PRs have a
trajectory to defend.  Run directly::

    PYTHONPATH=src python benchmarks/bench_session.py [--quick]

``--quick`` shrinks the restart count and idle horizon for CI smoke runs
(the committed JSON should come from a full run).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.chaos.restart import build_restart_scenario
from repro.harness.topology import Internet
from repro.metrics.stats import Summary
from repro.tcp.connection import TcpConfig
from repro.tcp.state import TcpState

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_session.json"

SEED = 7
QUIET_TIME = 1.5


def bench_resume(quick: bool) -> dict:
    """Seeded restart campaign; measure restore -> resumed-sync latency."""
    restarts = 2 if quick else 3
    scenario = build_restart_scenario(SEED, restarts=restarts,
                                      quiet_time=QUIET_TIME)
    net = scenario.net

    syncs: list[float] = []
    endpoint = scenario.client.endpoint
    inner = endpoint.peer_hello

    def recording_peer_hello(peer_offset: int) -> None:
        inner(peer_offset)
        syncs.append(net.sim.now)

    endpoint.peer_hello = recording_peer_hello

    start = time.perf_counter()
    report = scenario.run()
    wall = time.perf_counter() - start

    latencies = []
    for fault in scenario.campaign.faults:
        after = [t for t in syncs if t >= fault.clear_time]
        if after:
            latencies.append(after[0] - fault.clear_time)
    summary = Summary.of(latencies)
    mean = summary.mean if latencies else float("inf")
    worst = max(latencies) if latencies else float("inf")
    # Floor: quiet time, plus one SYN retransmission timeout — the redial
    # lands on the zombie's 4-tuple, and the RFC 793 half-open dance
    # (challenge ACK, client RST, SYN retransmit) costs exactly one RTO
    # before the fresh accept.  Allowance on top: dialing + handshake.
    bar = QUIET_TIME + 3.0 + 0.5
    return {
        "restarts": restarts,
        "resumes_observed": len(latencies),
        "resume_latency_s": [round(v, 4) for v in latencies],
        "resume_latency_mean_s": round(mean, 4),
        "resume_latency_worst_s": round(worst, 4),
        # Sample (n-1) standard deviation, per the corrected Summary.of.
        "resume_latency_stdev_s": round(summary.stdev, 4),
        "bytes_replayed": report.counters["session_client"]["bytes_replayed"],
        "payload_intact": report.counters["payload_intact"],
        "violations": report.violation_count,
        "wall_s": round(wall, 4),
        "events": report.counters["events_processed"],
        "bar_s": bar,
        "within_budget": (len(latencies) == restarts
                          and worst <= bar
                          and report.ok
                          and report.counters["payload_intact"]),
    }


def _idle_connection(keepalive: bool, horizon: float) -> dict:
    """One established, idle connection for ``horizon`` sim-seconds."""
    cfg = (TcpConfig(keepalive_idle=3.0, keepalive_interval=1.0,
                     keepalive_probes=3)
           if keepalive else TcpConfig())
    net = Internet(seed=SEED)
    # Probing is one-sided: the client watches for the server's death
    # (symmetric keepalive doubles the segment count for no extra
    # information on this two-party topology).
    h1 = net.host("H1", tcp_config=cfg)
    h2 = net.host("H2")
    g = net.gateway("G1")
    net.connect(h1, g)
    net.connect(g, h2)
    net.start_routing()
    net.converge(settle=10.0)

    server_conns = []
    h2.tcp.listen(9000, server_conns.append)
    conn = h1.tcp.connect(str(h2.address), 9000)
    net.sim.run(until=net.sim.now + 1.0)
    assert conn.state is TcpState.ESTABLISHED
    begin = net.sim.now
    events_before = net.sim.events_processed
    baseline = (conn.stats.segments_sent
                + server_conns[0].stats.segments_sent)  # handshake et al.
    net.sim.run(until=begin + horizon)
    minutes = horizon / 60.0
    total = (conn.stats.segments_sent
             + server_conns[0].stats.segments_sent) - baseline
    return {
        "alive": conn.state is TcpState.ESTABLISHED,
        "segments": total,
        "segments_per_min": total / minutes,
        "keepalives_sent": conn.stats.keepalives_sent,
        "keepalives_answered": conn.stats.keepalives_answered,
        "events": net.sim.events_processed - events_before,
    }


def bench_keepalive_overhead(quick: bool) -> dict:
    horizon = 60.0 if quick else 300.0
    off = _idle_connection(False, horizon)
    on = _idle_connection(True, horizon)
    extra = on["segments_per_min"] - off["segments_per_min"]
    # Answered probes reset the idle clock: one probe+answer per idle
    # period (~3s) is ~40 segments/min round trip.  Bar with headroom:
    bar = 60.0
    return {
        "idle_horizon_s": horizon,
        "keepalive_off": {
            "segments_per_min": round(off["segments_per_min"], 2),
            "alive": off["alive"],
        },
        "keepalive_on": {
            "segments_per_min": round(on["segments_per_min"], 2),
            "keepalives_sent": on["keepalives_sent"],
            "keepalives_answered": on["keepalives_answered"],
            "alive": on["alive"],
        },
        "extra_segments_per_min": round(extra, 2),
        "bar_segments_per_min": bar,
        "within_budget": (extra <= bar
                          and on["alive"] and off["alive"]
                          and on["keepalives_answered"] > 0
                          and off["segments_per_min"] == 0.0),
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    results = {
        "benchmark": "session resumption",
        "mode": "quick" if quick else "full",
        "resume": bench_resume(quick),
        "keepalive": bench_keepalive_overhead(quick),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    ok = (results["resume"]["within_budget"]
          and results["keepalive"]["within_budget"])
    if not ok:
        print("FAIL: session benchmark outside its acceptance bars",
              file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
