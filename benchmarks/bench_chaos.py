"""Chaos-monitor overhead benchmark (goal 1: survivability, measurably).

Runs the *same* seeded fault campaign twice against identical two-tier
AS-chain builds — once bare (``monitors=[]``) and once under the full
invariant suite — with steady background datagram traffic so the
per-packet ``forward_inspectors`` hook is actually exercised.  The
figure of merit is the slowdown factor:

    overhead = monitored wall time / bare wall time

The invariant suite must stay cheap enough to leave on by default in CI
(the acceptance bar is <= 2x).  Writes ``BENCH_chaos.json`` at the repo
root so later PRs have a trajectory to defend.  Run directly::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick]

``--quick`` shrinks the fault budget and traffic for CI smoke runs (the
committed JSON should come from a full run).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.chaos import RandomChaos, default_monitors
from repro.harness.presets import build_as_chain
from repro.ip.address import Address

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_chaos.json"

SEED = 7
TRAFFIC_PROTO = 253  # experimental: pure datagram load, no transport


def _start_traffic(net, topo, interval: float) -> None:
    """Every host streams datagrams at every other host's address for the
    whole campaign — fodder for the per-packet loop inspector."""
    hosts = sorted(topo.hosts)
    pairs = [(topo.hosts[a].node, Address(f"10.{b}.1.10"))
             for a in hosts for b in hosts if a != b]

    def tick():
        for src, dst in pairs:
            src.send(dst, TRAFFIC_PROTO, b"x" * 64)
        net.sim.schedule(interval, tick, label="bench:traffic")

    net.sim.schedule(interval, tick, label="bench:traffic")


def _run_campaign(monitors, *, budget: int, interval: float) -> dict:
    topo = build_as_chain(3, seed=SEED)
    net = topo.net
    _start_traffic(net, topo, interval)
    chaos = RandomChaos(net, budget=budget, rate=0.25,
                        start=net.sim.now + 2.0)
    campaign = chaos.campaign(monitors, name="bench")
    start = time.perf_counter()
    report = campaign.run()
    wall = time.perf_counter() - start
    counters = report.counters
    reconv = report.reconvergence_summary()
    return {
        "wall_s": wall,
        "events": counters["events_processed"],
        "events_per_s": counters["events_processed"] / wall,
        "sim_seconds": counters["sim_time_end"],
        "faults": len(report.faults),
        "violations": report.violation_count,
        "monitor_samples": counters["monitor_samples"],
        "reconvergence_mean_s": reconv.mean,
        "reconvergence_max_s": reconv.maximum,
        "reconvergence_stdev_s": reconv.stdev,
    }


def bench_overhead(quick: bool) -> dict:
    budget = 4 if quick else 8
    interval = 0.05 if quick else 0.02
    # Bare first, then monitored, from identical seeded builds.
    bare = _run_campaign([], budget=budget, interval=interval)
    monitored = _run_campaign(default_monitors(), budget=budget,
                              interval=interval)
    overhead = monitored["wall_s"] / bare["wall_s"]
    return {
        "bare": {
            "wall_s": round(bare["wall_s"], 4),
            "events": bare["events"],
            "events_per_s": round(bare["events_per_s"]),
        },
        "monitored": {
            "wall_s": round(monitored["wall_s"], 4),
            "events": monitored["events"],
            "events_per_s": round(monitored["events_per_s"]),
            "monitor_samples": monitored["monitor_samples"],
            "violations": monitored["violations"],
        },
        "faults": monitored["faults"],
        "sim_seconds": round(monitored["sim_seconds"], 3),
        # Deterministic recovery figures (same seed => same values); the
        # stdev is sample (n-1), per the corrected Summary.of.
        "reconvergence_mean_s": round(monitored["reconvergence_mean_s"], 4),
        "reconvergence_max_s": round(monitored["reconvergence_max_s"], 4),
        "reconvergence_stdev_s": round(monitored["reconvergence_stdev_s"], 4),
        "overhead_x": round(overhead, 3),
        "budget_x": 2.0,
        "within_budget": overhead <= 2.0,
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    results = {
        "benchmark": "chaos monitor overhead",
        "mode": "quick" if quick else "full",
        "campaign": bench_overhead(quick),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    ok = results["campaign"]["within_budget"]
    if not ok:
        print("FAIL: monitor overhead exceeds the 2x budget", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
