"""Adversarial-campaign benchmark: cost of attacking yourself in CI.

The adversary campaign is the most expensive robustness gate in the tree
(three fuzz legs + four byzantine windows + three staged rollouts), so
its wall-clock cost is a number worth defending: if fuzzing the stack
gets slow, it gets skipped.  This benchmark times each piece separately
and reports the detection/repair figures alongside, so a perf regression
and a detection regression show up in the same artifact.

Writes ``BENCH_adversary.json`` at the repo root on full runs.  Run::

    PYTHONPATH=src python benchmarks/bench_adversary.py [--quick]

``--quick`` runs only the three fuzz legs (the campaign's cheap third) —
enough for CI smoke to notice a blow-up without re-running the full
campaign it already gates on.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.adversary.campaign import (_run_byzantine, _run_mgmt_leg,
                                      _run_rollout_egp, _run_rollout_tcp,
                                      _run_session_leg, _run_tcp_leg)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_adversary.json"

SEED = 7


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def bench_fuzz_legs() -> dict:
    out = {}
    total_injected = 0
    total_wall = 0.0
    for name, runner in (("tcp", _run_tcp_leg),
                         ("session", _run_session_leg),
                         ("netmgmt", _run_mgmt_leg)):
        leg, wall = _timed(runner, SEED)
        total_injected += leg["injected"]
        total_wall += wall
        out[name] = {
            "wall_s": round(wall, 4),
            "injected": leg["injected"],
            "ok": leg["ok"],
            "violations": len(leg["violations"]),
        }
    out["total"] = {
        "wall_s": round(total_wall, 4),
        "injected": total_injected,
        "exchanges_per_s": round(total_injected / total_wall),
    }
    return out


def bench_byzantine() -> dict:
    result, wall = _timed(_run_byzantine, SEED)
    report = result["report"]
    return {
        "wall_s": round(wall, 4),
        "violations": report.violation_count,
        "mttd_s": {
            r["behavior"]: (round(r["mttd"], 2) if r["detected"] else None)
            for r in result["behavior_detection"]
        },
        "all_detected": all(r["detected"]
                            for r in result["behavior_detection"]),
    }


def bench_rollouts() -> dict:
    out = {}
    for name, runner, kwargs in (
            ("tcp_good", _run_rollout_tcp, {"broken": False}),
            ("tcp_broken", _run_rollout_tcp, {"broken": True}),
            ("egp_broken", _run_rollout_egp, {})):
        record, wall = _timed(runner, SEED, **kwargs)
        out[name] = {
            "wall_s": round(wall, 4),
            "state": record["state"],
            "mttr_s": (round(record["mttr"], 2)
                       if record["mttr"] is not None else None),
        }
    return out


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    start = time.perf_counter()
    results = {
        "benchmark": "adversary campaign cost",
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "fuzz_legs": bench_fuzz_legs(),
    }
    ok = all(leg["ok"] for name, leg in results["fuzz_legs"].items()
             if name != "total")
    if not quick:
        results["byzantine"] = bench_byzantine()
        results["rollouts"] = bench_rollouts()
        ok = (ok and results["byzantine"]["all_detected"]
              and results["byzantine"]["violations"] == 0
              and results["rollouts"]["tcp_good"]["state"] == "settled"
              and results["rollouts"]["tcp_broken"]["state"] == "healthy"
              and results["rollouts"]["egp_broken"]["state"] == "healthy")
    results["total_wall_s"] = round(time.perf_counter() - start, 4)
    text = json.dumps(results, indent=2)
    print(text)
    out_path = OUT_PATH if not quick else None
    if "--out" in argv:
        out_path = pathlib.Path(argv[argv.index("--out") + 1])
    if out_path is not None:
        out_path.write_text(text + "\n")
        print(f"\nwrote {out_path}")
    if not ok:
        print("FAIL: adversary benchmark gates not met", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
