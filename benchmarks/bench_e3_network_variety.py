"""E3 — Variety of networks (goal 3): one IP, many substrates.

The identical TCP file transfer runs over every link technology the 1988
internet had to absorb — LAN, ARPANET trunk, satellite, packet radio, X.25
— and over a concatenation of all of them.  IP makes only the minimal
assumptions, so every transfer must complete; what varies (enormously) is
performance, which the architecture deliberately does not constrain.
"""

import pytest

from repro import Internet, format_rate, run_transfer
from repro.harness.tables import Table

from _common import emit, once

SIZE = 60_000


def build(media_name: str, seed: int):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001)
    if media_name == "lan":
        net.lan("core", [g1, g2])
    elif media_name == "trunk-56k":
        net.connect(g1, g2, bandwidth_bps=56_000, delay=0.015, mtu=1006)
    elif media_name == "satellite":
        net.connect(g1, g2, media="satellite")
    elif media_name == "radio":
        net.connect(g1, g2, media="radio")
    elif media_name == "x25":
        net.connect(g1, g2, media="x25")
    else:
        raise ValueError(media_name)
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=10.0)
    return net, h1, h2


def build_concatenation(seed: int):
    """All substrates in tandem: the 'mixed worldnet'."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    gws = [net.gateway(f"G{i}") for i in range(1, 6)]
    net.connect(h1, gws[0], bandwidth_bps=10e6, delay=0.001)
    net.connect(gws[0], gws[1], bandwidth_bps=56_000, delay=0.015, mtu=1006)
    net.connect(gws[1], gws[2], media="satellite")
    net.connect(gws[2], gws[3], media="x25")
    net.connect(gws[3], gws[4], media="radio")
    net.connect(gws[4], h2, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=10.0)
    return net, h1, h2


MEDIA = ["lan", "trunk-56k", "satellite", "radio", "x25"]


def run_experiment():
    table = Table(
        "E3  Identical TCP transfer over every network type",
        ["substrate", "completed", "goodput", "retransmissions",
         "srtt ms (final)"],
        note=f"{SIZE} bytes end to end; minimal assumptions, maximal variety",
    )
    rows = []
    for name in MEDIA:
        net, h1, h2 = build(name, seed=11)
        outcome = run_transfer(net, h1, h2, size=SIZE, deadline=1200)
        # Peek at the sender's final smoothed RTT for the adaptation story.
        rows.append((name, outcome))
        table.add(name, "yes" if outcome.completed else "NO",
                  format_rate(outcome.goodput_bps),
                  outcome.segments_retransmitted,
                  f"{_srtt_ms(net):.0f}")
    net, h1, h2 = build_concatenation(seed=11)
    outcome = run_transfer(net, h1, h2, size=SIZE, deadline=2400)
    rows.append(("concatenation", outcome))
    table.add("all-in-tandem", "yes" if outcome.completed else "NO",
              format_rate(outcome.goodput_bps),
              outcome.segments_retransmitted, f"{_srtt_ms(net):.0f}")
    emit(table, "e3_network_variety.txt")
    return rows


def _srtt_ms(net) -> float:
    for host in net.hosts.values():
        for conn in host.tcp.connections:
            if conn.rto.srtt is not None:
                return conn.rto.srtt * 1000
    # Connections may be fully closed already; report 0 (table cosmetic).
    return 0.0


@pytest.mark.benchmark(group="e3")
def test_e3_network_variety(benchmark):
    rows = once(benchmark, run_experiment)
    outcomes = {name: o for name, o in rows}
    # THE claim: every substrate carries the transfer to completion.
    assert all(o.completed for o in outcomes.values())
    # The performance spread is huge — orders of magnitude.
    assert outcomes["lan"].goodput_bps > 50 * outcomes["satellite"].goodput_bps
    # Lossy radio needed end-to-end retransmission; the LAN did not.
    assert outcomes["radio"].segments_retransmitted > 0
    assert outcomes["lan"].segments_retransmitted == 0
    # The concatenation is no faster than its slowest member's class.
    assert (outcomes["concatenation"].goodput_bps
            <= outcomes["satellite"].goodput_bps * 1.5)
