"""E4 — Distributed management (goal 4): two-tier vs flat routing.

The same three-administration internet is wired two ways:

* **flat** — one distance-vector computation spanning everybody, as if a
  single agency ran all the gateways;
* **two-tier** — each AS runs its own scoped IGP, borders exchange
  aggregated blocks over the path-vector EGP.

Measured: forwarding-table size at a border, routing chatter crossing the
AS boundary, and the blast radius of an interior flap in AS3 (how much
routing-table churn AS1 sees).

Expected shape: two-tier tables are smaller (aggregates, not subnets),
boundary chatter is lower, and — the management point — an AS3 interior
flap causes *zero* churn inside AS1.
"""

import pytest

from repro import Internet
from repro.harness.tables import Table
from repro.ip.address import Prefix
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.distance_vector import DistanceVectorRouting
from repro.routing.egp import ExteriorGateway
from repro.routing.static import add_default_route

from _common import emit, once


def build(two_tier: bool, seed: int = 31):
    """Three ASes in a chain; returns handles for measurement."""
    net = Internet(seed=seed)
    interiors, borders, egps, igps = {}, {}, {}, {}
    from repro.netlayer.lan import LanBus
    for n in (1, 2, 3):
        interior, border = net.gateway(f"I{n}"), net.gateway(f"B{n}")
        # Two interior LANs per AS (subnet detail that should stay inside).
        for sub in (1, 2):
            lan = Prefix.parse(f"10.{n}.{sub}.0/24")
            iface = interior.node.add_interface(
                Interface(f"i{n}l{sub}", lan.host(1), lan))
            LanBus(net.sim, lan, name=f"lan{n}.{sub}").attach(iface)
        core = Prefix.parse(f"10.{n}.0.0/30")
        ib = interior.node.add_interface(Interface(f"i{n}c", core.host(1), core))
        bi = border.node.add_interface(Interface(f"b{n}c", core.host(2), core))
        PointToPointLink(net.sim, ib, bi, bandwidth_bps=1e6, delay=0.002)
        interiors[n], borders[n] = interior, border
    inter_links = [net.connect(borders[1], borders[2],
                               bandwidth_bps=256e3, delay=0.02),
                   net.connect(borders[2], borders[3],
                               bandwidth_bps=256e3, delay=0.02)]

    if two_tier:
        for n in (1, 2, 3):
            igp_i = DistanceVectorRouting(interiors[n].node, interiors[n].udp,
                                          period=1.0)
            intra = borders[n].node.interface_by_name(f"b{n}c")
            igp_b = DistanceVectorRouting(borders[n].node, borders[n].udp,
                                          period=1.0, interfaces=[intra])
            igp_i.start(); igp_b.start()
            add_default_route(interiors[n].node, Prefix.parse(f"10.{n}.0.0/30").host(2))
            igps[n] = [igp_i, igp_b]
        def peer(mine, theirs):
            for iface in theirs.node.interfaces:
                for local in mine.node.interfaces:
                    if local.prefix == iface.prefix and local is not iface:
                        return iface.address
            raise AssertionError
        for n in (1, 2, 3):
            egp = ExteriorGateway(borders[n].node, borders[n].udp,
                                  local_as=n, period=1.0)
            egp.originate(Prefix.parse(f"10.{n}.0.0/16"))
            egps[n] = egp
        egps[1].add_peer(peer(borders[1], borders[2]), 2)
        egps[2].add_peer(peer(borders[2], borders[1]), 1)
        egps[2].add_peer(peer(borders[2], borders[3]), 3)
        egps[3].add_peer(peer(borders[3], borders[2]), 2)
        for egp in egps.values():
            egp.start()
    else:
        for n in (1, 2, 3):
            igp_i = DistanceVectorRouting(interiors[n].node, interiors[n].udp,
                                          period=1.0)
            igp_b = DistanceVectorRouting(borders[n].node, borders[n].udp,
                                          period=1.0)
            igp_i.start(); igp_b.start()
            igps[n] = [igp_i, igp_b]

    net.converge(settle=15.0)
    return net, interiors, borders, egps, igps, inter_links


def boundary_bytes(borders, egps, igps, two_tier: bool) -> int:
    """Routing bytes that crossed an AS boundary so far."""
    if two_tier:
        return sum(e.stats.bytes_sent for e in egps.values())
    # Flat: DV updates leave on boundary interfaces too; approximate by
    # counting each border's DV bytes on its inter-AS interfaces.
    total = 0
    for n, border in borders.items():
        for iface in border.node.interfaces:
            if iface.name.startswith(f"B{n}.l"):  # auto-named inter-AS links
                total += iface.stats.bytes_sent
    return total


def run_one(two_tier: bool):
    net, interiors, borders, egps, igps, links = build(two_tier)
    table_size = len(borders[1].node.routes)
    chatter_before = boundary_bytes(borders, egps, igps, two_tier)
    t0 = net.sim.now
    # Blast radius: flap AS3's interior gateway, watch AS1.
    churn_before = sum(p.stats.triggered_updates
                       for p in igps[1])
    interiors[3].node.crash()
    net.sim.run(until=net.sim.now + 8)
    interiors[3].node.restore()
    net.sim.run(until=net.sim.now + 8)
    churn_after = sum(p.stats.triggered_updates for p in igps[1])
    chatter_after = boundary_bytes(borders, egps, igps, two_tier)
    window = net.sim.now - t0
    return {
        "table": table_size,
        "chatter_rate": (chatter_after - chatter_before) / window,
        "as1_churn": churn_after - churn_before,
    }


def run_experiment():
    flat = run_one(two_tier=False)
    tiered = run_one(two_tier=True)
    table = Table(
        "E4  Flat routing vs two-tier (IGP per AS + EGP)",
        ["architecture", "B1 table entries", "boundary routing B/s",
         "AS1 churn from AS3 flap"],
        note="churn = triggered updates inside AS1 while AS3's interior flaps",
    )
    table.add("flat DV", flat["table"], f"{flat['chatter_rate']:.0f}",
              flat["as1_churn"])
    table.add("two-tier", tiered["table"], f"{tiered['chatter_rate']:.0f}",
              tiered["as1_churn"])
    emit(table, "e4_distributed_mgmt.txt")
    return flat, tiered


@pytest.mark.benchmark(group="e4")
def test_e4_distributed_mgmt(benchmark):
    flat, tiered = once(benchmark, run_experiment)
    # Aggregation shrinks the border's world view.
    assert tiered["table"] < flat["table"]
    # An interior flap in AS3 is invisible inside AS1 under two-tier,
    # but ripples through the flat computation.
    assert tiered["as1_churn"] == 0
    assert flat["as1_churn"] > 0
