"""E7 — Accountability (goal 7): accounting for datagrams is awkward.

The paper ranks accounting last and admits the architecture gives it little
support: gateways see isolated packets, so per-packet accounting pays a
table operation on *every* packet forever, while the natural billing unit
— the flow — must be reconstructed.  We run a mixed workload through one
gateway with three accountants attached and compare cost (lookups, state)
against fidelity (byte error vs ground truth).

Expected shape: per-packet accounting is exact but does the most work;
flow accounting matches its totals with bounded state; sampling is cheap
and approximately right.
"""

import pytest

from repro import Internet
from repro.accounting.ledger import (
    FlowAccountant,
    PacketAccountant,
    SamplingAccountant,
)
from repro.apps.traffic import CbrSource, PoissonSource, UdpSink
from repro.harness.tables import Table
from repro.sim.rand import RandomStreams

from _common import emit, once


def run_experiment():
    net = Internet(seed=23)
    senders = [net.host(f"S{i}") for i in range(4)]
    receiver = net.host("R")
    g = net.gateway("G")
    for sender in senders:
        net.connect(sender, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(g, receiver, bandwidth_bps=10e6, delay=0.001)
    net.start_routing()
    net.converge(settle=8.0)

    exact = PacketAccountant(g.node, granularity=30)
    flow = FlowAccountant(g.node, granularity=30, idle_timeout=2.0)
    sampled = SamplingAccountant(g.node, granularity=30, sample_every=10)

    sinks = [UdpSink(receiver, 9000 + i) for i in range(4)]
    for i, sender in enumerate(senders):
        if i % 2 == 0:
            CbrSource(sender, receiver.address, 9000 + i, size=400,
                      rate=40.0, duration=20.0)
        else:
            PoissonSource(sender, receiver.address, 9000 + i, size=200,
                          rate=60.0, duration=20.0,
                          streams=RandomStreams(40 + i))
    net.sim.run(until=net.sim.now + 40)
    flow.flush()

    truth_bytes = exact.ledger.total_bytes()  # per-packet IS ground truth
    table = Table(
        "E7  Accounting strategies at one transit gateway",
        ["strategy", "lookups", "peak state entries", "bytes error %",
         "records"],
        note="4 senders, 20 s mixed CBR/Poisson load; truth = per-packet ledger",
    )
    rows = {}
    rows["per-packet"] = (exact.lookups, exact.state_entries, 0.0, "-")
    flow_err = abs(flow.ledger.total_bytes() - truth_bytes) / truth_bytes * 100
    rows["per-flow"] = (flow.lookups, flow.peak_active, flow_err,
                        flow.records_exported)
    samp_err = abs(sampled.ledger.total_bytes() - truth_bytes) / truth_bytes * 100
    rows["sampled 1/10"] = (sampled.lookups, sampled.ledger.entities,
                            samp_err, "-")
    for name, (lookups, state, err, records) in rows.items():
        table.add(name, lookups, state, f"{err:.1f}", records)
    emit(table, "e7_accountability.txt")
    return rows


@pytest.mark.benchmark(group="e7")
def test_e7_accountability(benchmark):
    rows = once(benchmark, run_experiment)
    # Flow accounting is byte-exact once flushed, with bounded state.
    assert rows["per-flow"][2] < 0.5
    assert rows["per-flow"][1] <= 16
    # And it does the same number of lookups but exports few records.
    assert rows["per-flow"][3] < rows["per-flow"][0] / 50
    # Sampling cuts the work by ~10x at modest error.
    assert rows["sampled 1/10"][0] < rows["per-packet"][0] / 5
    assert rows["sampled 1/10"][2] < 25.0
