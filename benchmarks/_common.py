"""Shared helpers for the experiment benchmarks.

Each ``bench_e*.py`` regenerates one experiment from DESIGN.md's index,
prints its result table, and saves it under ``benchmarks/results/`` so the
rows quoted in EXPERIMENTS.md can be reproduced exactly.
"""

from __future__ import annotations

import pathlib

from repro.harness.tables import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(table: Table, filename: str) -> str:
    """Print a result table and persist it; returns the rendered text."""
    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    return text


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark's timer.

    These are simulation experiments, not micro-benchmarks: the interesting
    output is the table, the benchmark fixture just times the run.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
