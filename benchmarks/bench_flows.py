"""Flows-subsystem benchmark: voice isolation at saturation + scheduler cost.

Two gates, both on the canonical flows topology
(:func:`~repro.harness.flowtopo.build_flow_topology` — voice and
oversubscribed bulk TCP sharing a 300 kb/s bottleneck), no faults:

* **latency isolation** — the voice flow's *exact* p99 one-way latency
  under the soft-state DRR gateway must come in at no more than
  ``LATENCY_GATE`` of the FIFO baseline's p99 at the same saturation.
  This is the paper's §10 bet in one number: per-flow scheduling plus a
  refreshed reservation keeps real-time traffic usable on a link that
  bulk transfer has saturated.  (The p99 is computed from the recording
  meter's full arrival log, not a reservoir estimate.)

* **scheduler overhead** — the DRR run may cost at most
  ``EVENTS_GATE`` x the FIFO baseline's *simulation events processed*.
  Event counts are simulation-deterministic, so unlike wall-clock this
  gate cannot flap on CI timing noise; wall-clock seconds are reported
  alongside as information only.

Writes ``BENCH_flows.json`` at the repo root (full mode), or to ``--out``
when given (the CI quick mode uploads it as an artifact).  Run directly::

    PYTHONPATH=src python benchmarks/bench_flows.py [--quick] [--out PATH]

Exit status is non-zero when either gate fails or the runs carried no
meaningful traffic.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.harness.flowtopo import build_flow_topology

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_flows.json"

#: DRR voice p99 must be at most this fraction of the FIFO voice p99.
LATENCY_GATE = 0.5
#: DRR run may process at most this multiple of the FIFO run's events.
EVENTS_GATE = 1.5


def run(mode: str, *, seed: int, duration: float) -> dict:
    wall = time.perf_counter()
    topo = build_flow_topology(seed, mode=mode,
                               reserve=(mode == "drr"), duration=duration)
    topo.net.sim.run(until=topo.start_time + duration + 2.0)
    wall = time.perf_counter() - wall
    meter = topo.meter
    out = {
        "mode": mode,
        "voice_frames_sent": meter.sent_count,
        "voice_frames_on_time": meter.on_time_count,
        "voice_usable_pct": meter.usable_pct(),
        "voice_p50_s": round(meter.latency_quantile(0.50) or 0.0, 6),
        "voice_p99_s": round(meter.latency_quantile(0.99) or 0.0, 6),
        "bulk_bytes_received": topo.bulk_bytes_received,
        "events_processed": topo.net.sim.events_processed,
        "wall_seconds_info_only": round(wall, 3),
    }
    out["flow_gateway"] = topo.fgw.counters()
    return out


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    out_path = OUT_PATH
    if "--out" in argv:
        out_path = pathlib.Path(argv[argv.index("--out") + 1])
    duration = 15.0 if quick else 45.0

    fifo = run("fifo", seed=7, duration=duration)
    drr = run("drr", seed=7, duration=duration)

    fifo_p99, drr_p99 = fifo["voice_p99_s"], drr["voice_p99_s"]
    latency_ratio = (drr_p99 / fifo_p99) if fifo_p99 else 1.0
    events_ratio = (drr["events_processed"] / fifo["events_processed"]
                    if fifo["events_processed"] else 1.0)
    # The link must actually have been saturated in both runs, or the
    # isolation ratio is vacuous.
    meaningful = (fifo["voice_frames_sent"] >= 500
                  and fifo["bulk_bytes_received"] > 0
                  and drr["bulk_bytes_received"] > 0)
    gate_passed = (meaningful and latency_ratio <= LATENCY_GATE
                   and events_ratio <= EVENTS_GATE)

    results = {
        "benchmark": "flows: voice isolation + scheduler overhead",
        "mode": "quick" if quick else "full",
        "topology": "flowtopo: voice 64kb/s + bulk TCP 384kb/s offered "
                    "over a 300kb/s bottleneck",
        "seed": 7,
        "duration_s": duration,
        "fifo": fifo,
        "drr": drr,
        "latency_ratio_p99": round(latency_ratio, 6),
        "latency_gate": LATENCY_GATE,
        "events_ratio": round(events_ratio, 6),
        "events_gate": EVENTS_GATE,
        "gate_passed": gate_passed,
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick or "--out" in argv:
        out_path.write_text(text + "\n")
        print(f"\nwrote {out_path}")
    if not meaningful:
        print("FAIL: runs carried no meaningful traffic; ratios vacuous",
              file=sys.stderr)
        return 1
    if latency_ratio > LATENCY_GATE:
        print(f"FAIL: DRR voice p99 {drr_p99:.4f}s is {latency_ratio:.2f}x "
              f"the FIFO p99 {fifo_p99:.4f}s (gate {LATENCY_GATE:.2f}x)",
              file=sys.stderr)
        return 1
    if events_ratio > EVENTS_GATE:
        print(f"FAIL: DRR processed {events_ratio:.2f}x the FIFO run's "
              f"events (gate {EVENTS_GATE:.2f}x)", file=sys.stderr)
        return 1
    print(f"OK: voice p99 drr={drr_p99*1000:.1f}ms vs fifo="
          f"{fifo_p99*1000:.1f}ms ({latency_ratio:.2f}x, gate "
          f"{LATENCY_GATE:.2f}x); events ratio {events_ratio:.2f}x "
          f"(gate {EVENTS_GATE:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
