"""E5 — Cost effectiveness (goal 5): the two costs the paper concedes.

(a) **Header overhead.**  The internet headers are ~40 bytes; for small
packets (a remote-terminal keystroke) that is a huge multiplier, for large
packets it vanishes.  We measure actual wire bytes (IP + transport headers,
link framing, and for TCP the acknowledgment traffic too) per useful payload
byte, across payload sizes.

(b) **Retransmission waste.**  Lost packets are retransmitted end to end,
so a loss on the *last* hop re-crosses every earlier hop.  We measure total
byte-hops expended per delivered byte over a 3-hop path whose only lossy
hop is the final one, and compare with the analytic hop-by-hop-recovery
cost (which pays the retransmission only on the lossy hop).
"""

import pytest

from repro import Internet
from repro.apps.traffic import UdpSink
from repro.harness.tables import Table
from repro.netlayer.loss import BernoulliLoss

from _common import emit, once


# ----------------------------------------------------------------------
# (a) header overhead
# ----------------------------------------------------------------------
PAYLOADS = [1, 16, 64, 512, 4096, 8192]


def wire_bytes(net) -> int:
    total = 0
    for collection in (net.hosts.values(), net.gateways.values()):
        for node in collection:
            for iface in node.node.interfaces:
                total += iface.stats.bytes_sent + iface.stats.link_header_bytes
    return total


def overhead_trial(payload: int, transport: str, seed: int = 3) -> float:
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    net.connect(h1, h2, bandwidth_bps=10e6, delay=0.001, mtu=9000)
    net.start_routing(host_defaults=True)
    net.converge(settle=2.0)
    base = wire_bytes(net)
    count = 50
    delivered = payload * count
    if transport == "udp":
        sink = UdpSink(h2, 9000)
        sock = h1.udp_socket(0)
        for i in range(count):
            net.sim.schedule(i * 0.01,
                             lambda: sock.sendto(b"\x00" * payload,
                                                 h2.address, 9000))
        net.sim.run(until=net.sim.now + 5)
        assert sink.packets == count
    else:
        received = bytearray()

        def serve(s):
            s.on_data = received.extend
            s.on_closed = s.close

        h2.listen(9000, serve)
        sock = h1.connect(h2.address, 9000)
        from repro.tcp.connection import TcpConfig
        for i in range(count):
            net.sim.schedule(i * 0.01,
                             lambda: sock.write(b"\x00" * payload))
        net.sim.schedule(count * 0.01 + 0.1, sock.close)
        net.sim.run(until=net.sim.now + 30)
        assert len(received) == delivered
    return wire_bytes(net) - base


# ----------------------------------------------------------------------
# (b) retransmission waste
# ----------------------------------------------------------------------
LOSS_RATES = [0.0, 0.05, 0.10, 0.20]


def waste_trial(loss: float, seed: int = 5):
    """3-hop path, loss only on the last hop; returns byte-hops per
    delivered payload byte for end-to-end recovery."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=1e6, delay=0.005)
    net.connect(g1, g2, bandwidth_bps=1e6, delay=0.005)
    net.connect(g2, h2, bandwidth_bps=1e6, delay=0.005,
                loss=BernoulliLoss(loss))
    net.start_routing()
    net.converge(settle=8.0)
    base = wire_bytes(net)
    from repro import run_transfer
    from repro.tcp.connection import TcpConfig
    # Keep the window below the queue depth so every retransmission in the
    # measurement is loss-driven, not self-induced congestion.
    config = TcpConfig(send_buffer=16384, recv_buffer=16384)
    size = 100_000
    outcome = run_transfer(net, h1, h2, size=size, deadline=2000,
                           tcp_config=config)
    assert outcome.completed
    return (wire_bytes(net) - base) / size


def hop_by_hop_cost(loss: float, hops: int = 3) -> float:
    """Analytic byte-hops/byte when every hop recovers its own losses:
    lossless hops cost 1 each; the lossy hop costs 1/(1-p)."""
    per_byte = (hops - 1) + 1.0 / (1.0 - loss)
    overhead = (20 + 20 + 8) / 536  # headers still ride along
    return per_byte * (1 + overhead)


def run_experiment():
    header_table = Table(
        "E5a  Wire bytes per payload byte (headers + framing + acks)",
        ["payload B", "UDP overhead x", "TCP overhead x"],
        note="50 datagrams/writes each; 40-byte internet headers dominate small packets",
    )
    header_rows = []
    for payload in PAYLOADS:
        udp = overhead_trial(payload, "udp") / (payload * 50)
        tcp = overhead_trial(payload, "tcp") / (payload * 50)
        header_table.add(payload, f"{udp:.2f}", f"{tcp:.2f}")
        header_rows.append((payload, udp, tcp))
    emit(header_table, "e5a_header_overhead.txt")

    waste_table = Table(
        "E5b  Byte-hops per delivered byte, loss on the LAST of 3 hops",
        ["last-hop loss %", "end-to-end (measured)", "hop-by-hop (analytic)"],
        note="e2e retransmissions re-cross the two clean upstream hops",
    )
    waste_rows = []
    for loss in LOSS_RATES:
        e2e = waste_trial(loss)
        hbh = hop_by_hop_cost(loss)
        waste_table.add(f"{loss * 100:.0f}", f"{e2e:.2f}", f"{hbh:.2f}")
        waste_rows.append((loss, e2e, hbh))
    emit(waste_table, "e5b_retransmission_waste.txt")
    return header_rows, waste_rows


@pytest.mark.benchmark(group="e5")
def test_e5_cost_effectiveness(benchmark):
    header_rows, waste_rows = once(benchmark, run_experiment)
    # Small packets pay tens of bytes of header per payload byte.
    one_byte = header_rows[0]
    assert one_byte[1] > 20     # UDP: ~56x at 1 byte
    assert one_byte[2] > 20     # TCP worse still (acks)
    # Large packets amortize to near 1.
    big = header_rows[-1]
    assert big[1] < 1.2
    # Overhead decreases monotonically with payload size.
    udp_curve = [r[1] for r in header_rows]
    assert udp_curve == sorted(udp_curve, reverse=True)
    # End-to-end recovery costs more byte-hops than hop-by-hop, and the
    # gap widens with loss.
    for loss, e2e, hbh in waste_rows[1:]:
        assert e2e > hbh
    gaps = [e2e - hbh for _, e2e, hbh in waste_rows]
    assert gaps[-1] > gaps[0]
