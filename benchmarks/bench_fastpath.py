"""Datagram fast-path microbenchmark (goal 5: cost effectiveness).

Measures the three hot loops the fast path rewrote, each against its
retained reference implementation:

* **checksum** — vectorized :func:`internet_checksum` vs the per-word
  reference loop, in MB/s over MTU-sized buffers;
* **LPM** — cached :meth:`RouteTable.lookup` (repeat destinations) vs the
  uncached longest-prefix scan, in lookups/s;
* **events** — :class:`Simulator` schedule/fire throughput, plus a
  cancel-heavy timer workload exercising lazy-deletion heap compaction,
  in events/s.

Writes ``BENCH_fastpath.json`` at the repo root so later PRs have a
perf trajectory to defend.  Run directly::

    PYTHONPATH=src python benchmarks/bench_fastpath.py [--quick]

``--quick`` shrinks iteration counts for CI smoke runs (results are then
noisy; the committed JSON should come from a full run).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.ip.address import Address, Prefix
from repro.ip.checksum import (
    internet_checksum,
    internet_checksum_reference,
    verify_checksum,
    verify_checksum_reference,
)
from repro.ip.forwarding import Route, RouteTable
from repro.sim.engine import Simulator

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_fastpath.json"


class _FakeInterface:
    """Stand-in for netlayer Interface; forwarding only reads ``.name``."""

    def __init__(self, name: str):
        self.name = name


def _bench(fn, *, min_time: float) -> tuple[float, int]:
    """Run ``fn`` repeatedly for ~min_time seconds; return (secs, reps)."""
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_time:
            return elapsed, reps


# ----------------------------------------------------------------------
# 1. Checksum throughput
# ----------------------------------------------------------------------
def bench_checksum(quick: bool) -> dict:
    size = 1500  # MTU-sized buffer: the per-packet unit of work
    data = bytes(range(256)) * 6  # 1536 B, trim:
    data = data[:size]
    assert internet_checksum(data) == internet_checksum_reference(data)
    assert verify_checksum(data) == verify_checksum_reference(data)
    min_time = 0.2 if quick else 1.0

    batch = 64

    def run_fast():
        for _ in range(batch):
            internet_checksum(data)

    def run_ref():
        for _ in range(batch):
            internet_checksum_reference(data)

    fast_s, fast_reps = _bench(run_fast, min_time=min_time)
    ref_s, ref_reps = _bench(run_ref, min_time=min_time)
    fast_mbs = fast_reps * batch * size / fast_s / 1e6
    ref_mbs = ref_reps * batch * size / ref_s / 1e6
    return {
        "buffer_bytes": size,
        "reference_mb_s": round(ref_mbs, 2),
        "vectorized_mb_s": round(fast_mbs, 2),
        "speedup": round(fast_mbs / ref_mbs, 2),
    }


# ----------------------------------------------------------------------
# 2. Longest-prefix-match lookups
# ----------------------------------------------------------------------
def bench_lpm(quick: bool) -> dict:
    table = RouteTable()
    iface = _FakeInterface("eth0")
    # A realistically mixed table: /8 .. /28 prefixes over many networks.
    n_routes = 0
    for length in (8, 12, 16, 20, 24, 28):
        for i in range(32):
            net = (10 << 24) | (i << (32 - length)) if length > 8 else (i + 1) << 24
            prefix = Prefix.of(Address(net & 0xFFFFFFFF), length)
            table.install(Route(prefix=prefix, interface=iface))
            n_routes += 1
    # Repeat-destination working set (the fast-path case the cache targets).
    dests = [Address((10 << 24) | (i << 8) | 7) for i in range(64)]
    for d in dests:
        table.lookup(d)  # warm the cache
    min_time = 0.2 if quick else 1.0

    def run_cached():
        lookup = table.lookup
        for d in dests:
            lookup(d)

    def run_uncached():
        lookup = table.lookup_uncached
        for d in dests:
            lookup(d)

    cached_s, cached_reps = _bench(run_cached, min_time=min_time)
    uncached_s, uncached_reps = _bench(run_uncached, min_time=min_time)
    cached_rate = cached_reps * len(dests) / cached_s
    uncached_rate = uncached_reps * len(dests) / uncached_s
    return {
        "routes": n_routes,
        "working_set": len(dests),
        "uncached_lookups_s": round(uncached_rate),
        "cached_lookups_s": round(cached_rate),
        "speedup": round(cached_rate / uncached_rate, 2),
    }


# ----------------------------------------------------------------------
# 3. Event engine throughput
# ----------------------------------------------------------------------
def bench_events(quick: bool) -> dict:
    n = 20_000 if quick else 200_000

    # Plain schedule/fire throughput.
    sim = Simulator()
    start = time.perf_counter()
    for i in range(n):
        sim.schedule(i * 1e-6, lambda: None)
    sim.run()
    fire_s = time.perf_counter() - start
    fire_rate = n / fire_s

    # Cancel-heavy timer workload: every "timer" is rescheduled (cancel +
    # schedule) many times before finally firing — the pattern TCP RTO
    # timers produce.  Compaction keeps the heap near the live count.
    sim2 = Simulator()
    handles = []
    start = time.perf_counter()
    ops = 0
    for round_ in range(10):
        for h in handles:
            h.cancel()
            ops += 1
        handles = [
            sim2.schedule(1.0 + round_ * 0.1 + i * 1e-6, lambda: None)
            for i in range(n // 20)
        ]
        ops += n // 20
    peak_queue = sim2.queue_size
    sim2.run()
    cancel_s = time.perf_counter() - start
    return {
        "events_fired_s": round(fire_rate),
        "cancel_heavy_ops_s": round(ops / cancel_s),
        "compactions": sim2.compactions,
        "peak_queue_after_churn": peak_queue,
        "live_timers_per_round": n // 20,
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    results = {
        "benchmark": "datagram fast path",
        "mode": "quick" if quick else "full",
        "checksum": bench_checksum(quick),
        "lpm": bench_lpm(quick),
        "engine": bench_events(quick),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
