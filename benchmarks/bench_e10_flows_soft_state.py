"""E10 — Flows and soft state (paper §10): the next-generation sketch, built.

"The datagram ... almost certainly [will not be] the building block for the
next generation" — the paper proposes *flows*, identified at gateways and
described by *soft state* that endpoints refresh and gateways may lose
harmlessly.  We build exactly that and measure:

(a) a voice flow crossing a bottleneck shared with aggressive bulk traffic,
    under the 1988 FIFO gateway vs the flow gateway (DRR) with a reserved
    share — the voice flow's usable-frame rate is the figure of merit;

(b) the soft-state property itself: the flow gateway crashes and reboots
    mid-call; its flow table is lost, service degrades to best-effort, and
    the next endpoint refresh rebuilds it — no management action, no
    permanent disruption.

Expected shape: FIFO lets the bulk load destroy the voice flow; DRR + a
reservation protects it; after a crash the protection lapses for at most a
refresh interval and returns.
"""

import pytest

from repro import Internet
from repro.apps.traffic import CbrSource, UdpSink
from repro.apps.voice import UdpVoiceCall, UdpVoiceReceiver
from repro.flows.flowspec import FlowSpec
from repro.flows.gateway import FlowGateway, ReservationSender, accept_reservations
from repro.harness.tables import Table
from repro.ip.packet import PROTO_UDP
from repro.metrics.flowstats import PlayoutMeter

from _common import emit, once

BOTTLENECK = 300_000.0
CALL_SECONDS = 30.0
DEADLINE = 0.200


def build(mode: str, reserve: bool, seed: int):
    net = Internet(seed=seed)
    voice_host, bulk_host, sink_host = (net.host("V"), net.host("B"),
                                        net.host("S"))
    g = net.gateway("G")
    net.connect(voice_host, g, bandwidth_bps=10e6, delay=0.001)
    net.connect(bulk_host, g, bandwidth_bps=10e6, delay=0.001)
    out = net.connect(g, sink_host, bandwidth_bps=BOTTLENECK, delay=0.005,
                      queue_limit=8)
    net.start_routing()
    net.converge(settle=8.0)
    egress = out.ends[0] if out.ends[0].node is g.node else out.ends[1]
    fgw = FlowGateway(g.node, egress, BOTTLENECK, mode=mode,
                      per_flow_limit=16)
    accept_reservations(sink_host)
    reservation = None
    if reserve:
        spec = FlowSpec(voice_host.address, sink_host.address, PROTO_UDP,
                        dst_port=5004, weight=4, lifetime=6.0)
        reservation = ReservationSender(voice_host, spec,
                                        refresh_interval=2.0)
    return net, voice_host, bulk_host, sink_host, g, fgw, reservation


def contention_trial(mode: str, reserve: bool, seed: int):
    net, voice_host, bulk_host, sink_host, g, fgw, _ = build(mode, reserve,
                                                             seed)
    rx = UdpVoiceReceiver(sink_host, 5004, playout_deadline=DEADLINE)
    UdpVoiceCall(voice_host, sink_host.address, 5004,
                 duration=CALL_SECONDS, meter=rx.meter)
    bulk_sink = UdpSink(sink_host, 9000)
    # Bulk load ~3x the bottleneck.
    # 900 B payloads stay under the 1006 B link MTU: one datagram =
    # one packet, so scheduling (not fragment mortality) decides outcomes.
    CbrSource(bulk_host, sink_host.address, 9000, size=900, rate=120.0,
              duration=CALL_SECONDS)
    net.sim.run(until=net.sim.now + CALL_SECONDS + 20)
    usable = 1 - rx.meter.effective_loss_rate
    bulk_goodput = bulk_sink.bytes * 8 / CALL_SECONDS
    return usable, bulk_goodput


def crash_trial(seed: int):
    """Soft-state recovery: crash the flow gateway mid-call."""
    net, voice_host, bulk_host, sink_host, g, fgw, _ = build(
        "drr", reserve=True, seed=seed)
    CbrSource(bulk_host, sink_host.address, 9000, size=900, rate=120.0,
              duration=90.0)
    UdpSink(sink_host, 9000)

    windows = {}

    def measure(label: str, start: float, seconds: float):
        meter = PlayoutMeter(DEADLINE)
        rx = UdpVoiceReceiver(sink_host, 5004 + len(windows),
                              playout_deadline=DEADLINE)
        call_port = rx.socket.port
        def begin():
            UdpVoiceCall(voice_host, sink_host.address, call_port,
                         duration=seconds, meter=rx.meter)
        net.sim.schedule(start, begin)
        windows[label] = rx

    t0 = 2.0
    measure("before crash", t0, 10.0)
    # The reservation refreshers only target port 5004-line flows; install a
    # broader spec covering all the measurement ports.
    spec = FlowSpec(voice_host.address, sink_host.address, PROTO_UDP,
                    dst_port=0, weight=4, lifetime=6.0)
    ReservationSender(voice_host, spec, refresh_interval=2.0)

    def crash_and_restore():
        g.node.crash()
        net.sim.schedule(0.5, g.node.restore)

    net.sim.schedule(t0 + 12.0, crash_and_restore)
    # Right after restore: routing back, flow state not yet refreshed for
    # up to one refresh interval.
    measure("after recovery", t0 + 25.0, 10.0)
    net.sim.run(until=net.sim.now + 60)
    state_losses = fgw.state_losses
    return {label: 1 - rx.meter.effective_loss_rate
            for label, rx in windows.items()}, state_losses


def run_experiment():
    table = Table(
        "E10a  Voice vs 3x-overload bulk at one bottleneck gateway",
        ["gateway discipline", "voice usable %", "bulk goodput kb/s"],
        note="64 kb/s voice + ~890 kb/s bulk into a 300 kb/s link",
    )
    outcomes = {}
    for mode, reserve, label in [
        ("fifo", False, "FIFO (1988 datagram gateway)"),
        ("drr", False, "per-flow fair (DRR, no reservation)"),
        ("drr", True, "flow + soft-state reservation"),
    ]:
        usable, bulk = contention_trial(mode, reserve, seed=51)
        outcomes[label] = (usable, bulk)
        table.add(label, f"{usable * 100:.1f}", f"{bulk / 1000:.0f}")
    emit(table, "e10a_flow_scheduling.txt")

    windows, losses = crash_trial(seed=52)
    table2 = Table(
        "E10b  Soft state across a gateway crash (reserved voice flow)",
        ["window", "voice usable %"],
        note=f"gateway crashed once (flow table losses: {losses}); "
             "endpoint refreshes rebuilt the state unaided",
    )
    for label, usable in windows.items():
        table2.add(label, f"{usable * 100:.1f}")
    emit(table2, "e10b_soft_state_recovery.txt")
    return outcomes, windows, losses


@pytest.mark.benchmark(group="e10")
def test_e10_flows_soft_state(benchmark):
    outcomes, windows, losses = once(benchmark, run_experiment)
    fifo = outcomes["FIFO (1988 datagram gateway)"]
    fair = outcomes["per-flow fair (DRR, no reservation)"]
    reserved = outcomes["flow + soft-state reservation"]
    # FIFO lets the bulk overload trash the voice flow.
    assert fifo[0] < 0.75
    # Per-flow fairness already rescues it; the reservation seals it.
    assert fair[0] > fifo[0]
    assert reserved[0] > 0.95
    # The bulk flow still gets most of the remaining capacity.
    assert reserved[1] > 0.5 * BOTTLENECK / 1000 * 0.5
    # Soft state: the crash genuinely wiped the table, yet service after
    # recovery is as good as before.
    assert losses >= 1
    assert windows["after recovery"] > 0.9
    assert windows["before crash"] > 0.9
