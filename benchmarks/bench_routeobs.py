"""Probe-mesh overhead benchmark (the <=5% of-goodput gate).

An active measurement mesh only earns its keep if the traffic it injects
— TTL-walked probes, responder echoes, and the ICMP Time Exceeded it
deliberately elicits from every transit gateway — stays a rounding error
next to the application traffic whose paths it measures.  This benchmark
runs the routeobs ring (the small determinism shape: 4 ASes, 4 gateways
each, CBR flows on every spoke LAN) twice with the same seed:

* **bare**  — the ring and its flows, no mesh;
* **meshed** — the same ring plus the campaign's probe mesh (one pair
  per AS probing the hub LAN three ASes east, 2.5 s walk cadence).

and compares bytes:

* **goodput** — application payload bytes delivered to the traffic
  sinks on the meshed leg;
* **mesh overhead** — probe + reply wire bytes plus every elicited
  Time Exceeded, as accounted by the probers themselves.

Both counts are simulation-deterministic — same seed, same bytes — so
the gate cannot flap on CI timing noise.  The bare leg pins the
displacement check: the mesh must not move the sinks' byte count by
more than a hair (shared queues mean *some* interleaving jitter is
physical, not a bug).

Writes ``BENCH_routeobs.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_routeobs.py [--quick]

Exit status is non-zero when mesh bytes exceed the gate fraction of
goodput, when the mesh visibly displaces application traffic, or when
the walks mostly failed (a dead mesh trivially "passes" a ratio test).
"""

from __future__ import annotations

import json
import pathlib
import sys
from dataclasses import replace

from repro.harness.scaletopo import RingNet, ScaleConfig
from repro.obs.routing import PathProbeResponder, ProbeMesh

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_routeobs.json"

#: Mesh wire bytes must stay within 5% of application goodput bytes.
GATE = 0.05
#: The meshed leg's goodput may differ from bare by at most this
#: fraction (queue-interleaving jitter, not displacement).
DISPLACEMENT_GATE = 0.01

MESH_START = 8.0
MESH_INTERVAL = 2.5


def build_ring(seed: int) -> tuple[RingNet, ScaleConfig]:
    cfg = replace(ScaleConfig(seed=seed), n_as=4, gateways_per_as=4,
                  hosts_per_lan=2)
    return RingNet(cfg), cfg


def run(seed: int, *, duration: float, meshed: bool) -> dict:
    net, cfg = build_ring(seed)
    n = cfg.n_as
    mesh = None
    if meshed:
        for j in range(n):
            PathProbeResponder(net.hosts[f"A{j}G0H0"])
        pairs = []
        for i in range(n):
            j = (i + min(3, n - 1)) % n
            pairs.append((net.hosts[f"A{i}G1H1"],
                          cfg.lan_host_address(j, 0, 0),
                          f"A{i}G1H1->A{j}G0H0"))
        mesh = ProbeMesh(net, pairs,
                         rng=net.streams.stream("obs.probemesh"),
                         interval=MESH_INTERVAL, start_at=MESH_START)
        mesh.start()
    net.sim.run(until=duration)

    goodput = sum(sink.bytes for sink in net.sinks.values())
    out = {
        "seed": seed,
        "duration_s": duration,
        "goodput_bytes": goodput,
        "goodput_datagrams": sum(s.packets for s in net.sinks.values()),
    }
    if mesh is not None:
        counters = mesh.counters()
        out.update({
            "mesh_pairs": counters["pairs"],
            "mesh_rounds": counters["rounds"],
            "mesh_completed": counters["completed"],
            "mesh_lost": counters["lost"],
            "mesh_bytes": counters["mesh_bytes"],
            "probes_sent": counters["probes_sent"],
            "overhead_fraction": (round(counters["mesh_bytes"] / goodput, 6)
                                  if goodput else 1.0),
        })
    return out


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    duration = 25.0 if quick else 60.0

    bare = run(seed=7, duration=duration, meshed=False)
    meshed = run(seed=7, duration=duration, meshed=True)
    overhead = meshed["overhead_fraction"]
    displacement = (abs(meshed["goodput_bytes"] - bare["goodput_bytes"])
                    / bare["goodput_bytes"] if bare["goodput_bytes"] else 1.0)
    walks = meshed["mesh_rounds"]
    healthy = walks > 0 and meshed["mesh_lost"] <= walks // 4
    results = {
        "benchmark": "probe-mesh overhead",
        "mode": "quick" if quick else "full",
        "topology": "routeobs small ring: 4 AS x 4 gw x 2 hosts, one CBR "
                    "flow per spoke LAN, 4 probe pairs every "
                    f"{MESH_INTERVAL:g}s",
        "bare": bare,
        "meshed": meshed,
        "displacement_fraction": round(displacement, 6),
        "displacement_gate": DISPLACEMENT_GATE,
        "gate": GATE,
        "gate_passed": (overhead <= GATE and healthy
                        and displacement <= DISPLACEMENT_GATE),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    if not healthy:
        print("FAIL: most probe walks died on a healthy ring; overhead "
              "ratio meaningless", file=sys.stderr)
        return 1
    if overhead > GATE:
        print(f"FAIL: mesh overhead {overhead:.4f} of goodput exceeds "
              f"the {GATE:.2f} gate", file=sys.stderr)
        return 1
    if displacement > DISPLACEMENT_GATE:
        print(f"FAIL: mesh displaced {100 * displacement:.2f}% of "
              f"application goodput (gate {100 * DISPLACEMENT_GATE:.0f}%)",
              file=sys.stderr)
        return 1
    print(f"OK: mesh overhead {overhead:.4f} of goodput (gate {GATE:.2f}); "
          f"{walks} walks, goodput moved {100 * displacement:.3f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
