"""E1 — Survivability (goal 1): datagrams + fate-sharing vs virtual circuits.

Identical redundant topologies, identical failure schedules.  For each
failure rate we run a population of long-lived conversations and count how
many complete without an application-visible disruption.

Expected shape: the datagram internet's conversations survive every single-
element failure (recovery is a retransmission pause); the virtual-circuit
network tears down every circuit crossing a failed element.
"""

import pytest

from repro import Internet
from repro.apps.filetransfer import FileReceiver, FileSender
from repro.harness.tables import Table
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.vc.network import VirtualCircuitNetwork

from _common import emit, once


#: At most 2 of the 3 disjoint paths are killed, so the datagram internet
#: always has a route left — the regime where the architectures differ.
FAILURE_COUNTS = [0, 1, 2]
CONVERSATIONS = 4


def datagram_trial(n_failures: int, seed: int) -> tuple[int, int]:
    """Run CONVERSATIONS transfers over the redundant internet while
    killing ``n_failures`` core links; returns (survived, disrupted)."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    gws = [net.gateway(f"G{i}") for i in range(1, 7)]
    net.connect(h1, gws[0], bandwidth_bps=10e6, delay=0.001)
    net.connect(gws[5], h2, bandwidth_bps=10e6, delay=0.001)
    # Three disjoint two-hop paths G1 -> {G2|G3|G4} -> G6.
    core_links = []
    for middle in (1, 2, 3):
        core_links.append(net.connect(gws[0], gws[middle],
                                      bandwidth_bps=256e3, delay=0.01))
        core_links.append(net.connect(gws[middle], gws[5],
                                      bandwidth_bps=256e3, delay=0.01))
    net.start_routing(period=1.0)
    net.converge(settle=10.0)

    receiver = FileReceiver(h2, port=21)
    senders = [FileSender(h1, h2.address, 21, size=150_000)
               for _ in range(CONVERSATIONS)]
    disruptions = []
    for sender in senders:
        sender.sock.conn.on_reset = lambda: disruptions.append(1)

    # Fail one link of distinct paths at staggered times.
    rng = RandomStreams(seed).stream("failures")
    for i in range(n_failures):
        link = core_links[2 * i]  # first hop of path i
        net.sim.schedule(4.0 + 2.0 * i, lambda l=link: l.set_up(False))
    net.sim.run(until=net.sim.now + 900)
    survived = len(receiver.results)
    return survived, len(disruptions)


def vc_trial(n_failures: int, seed: int) -> tuple[int, int]:
    """Same shape in the circuit world; returns (intact, torn_down)."""
    sim = Simulator()
    vc = VirtualCircuitNetwork(sim)
    for name in ("A", "M1", "M2", "M3", "B"):
        vc.add_switch(name)
    for middle in ("M1", "M2", "M3"):
        vc.add_trunk("A", middle)
        vc.add_trunk(middle, "B")
    vc.attach_host("h1", "A")
    vc.attach_host("h2", "B")
    circuits = [vc.place_call("h1", "h2") for _ in range(CONVERSATIONS)]
    sim.run(until=2)
    for i in range(n_failures):
        middle = f"M{i + 1}"
        sim.schedule(4.0 + 2.0 * i, lambda m=middle: vc.fail_trunk("A", m))
    sim.run(until=60)
    intact = sum(1 for c in circuits if c.state == "OPEN")
    return intact, vc.stats.circuits_torn_down


def run_experiment():
    table = Table(
        "E1  Conversation survivability under core failures",
        ["failures", "datagram: completed", "datagram: disruptions",
         "VC: circuits intact", "VC: torn down"],
        note=f"{CONVERSATIONS} conversations; 3 disjoint paths; "
             "paired failure schedules",
    )
    rows = []
    for n in FAILURE_COUNTS:
        d_ok, d_bad = datagram_trial(n, seed=100 + n)
        v_ok, v_bad = vc_trial(n, seed=100 + n)
        table.add(n, f"{d_ok}/{CONVERSATIONS}", d_bad,
                  f"{v_ok}/{CONVERSATIONS}", v_bad)
        rows.append((n, d_ok, d_bad, v_ok, v_bad))
    emit(table, "e1_survivability.txt")
    return rows


@pytest.mark.benchmark(group="e1")
def test_e1_survivability(benchmark):
    rows = once(benchmark, run_experiment)
    # Shape assertions: datagram side completes everything with zero
    # disruptions at every failure level; the VC side loses circuits as
    # soon as failures start.
    for n, d_ok, d_bad, v_ok, v_bad in rows:
        assert d_ok == CONVERSATIONS
        assert d_bad == 0
    assert rows[0][3] == CONVERSATIONS          # no failures: VC fine
    for n, _, _, v_ok, v_bad in rows[1:]:
        assert v_bad >= 1                        # any failure tears circuits
    # More failures, more torn circuits (monotone, by construction).
    torn = [r[4] for r in rows]
    assert torn == sorted(torn)
