"""E11 — Fragmentation across MTU diversity (goal 3's mechanism, costed).

Gateways fragment; only hosts reassemble.  The cost structure the
architecture accepted: a datagram cut into n fragments survives only if
*every* fragment survives, so effective datagram loss compounds as
1-(1-p)^n, and every fragment repays the 20-byte IP header.

We push fixed-size datagrams through a bottleneck whose MTU shrinks across
the sweep, with fixed per-packet loss, and measure delivered-datagram rate
and header overhead.  The measured survival should track the analytic
1-(1-p)^n curve.
"""

import pytest

from repro import Internet
from repro.apps.traffic import UdpSink
from repro.harness.tables import Table
from repro.ip.packet import IP_HEADER_LEN
from repro.netlayer.loss import BernoulliLoss

from _common import emit, once

DATAGRAM_PAYLOAD = 1400
MTUS = [1500, 776, 396, 204, 132]
LOSS = 0.02
COUNT = 600


def expected_fragments(mtu: int) -> int:
    if DATAGRAM_PAYLOAD + 28 + IP_HEADER_LEN - IP_HEADER_LEN <= mtu:
        return 1
    chunk = ((mtu - IP_HEADER_LEN) // 8) * 8
    total = DATAGRAM_PAYLOAD + 8  # UDP header rides in the payload
    return -(-total // chunk)


def trial(mtu: int, seed: int):
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=2e6, delay=0.005, mtu=mtu,
                loss=BernoulliLoss(LOSS), queue_limit=512)
    net.connect(g2, h2, bandwidth_bps=10e6, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    sink = UdpSink(h2, 9000)
    sock = h1.udp_socket(0)
    for i in range(COUNT):
        net.sim.schedule(i * 0.01,
                         lambda: sock.sendto(b"\x00" * DATAGRAM_PAYLOAD,
                                             h2.address, 9000))
    base_bytes = _core_bytes(g1)
    net.sim.run(until=net.sim.now + COUNT * 0.01 + 30)
    delivered = sink.packets / COUNT
    frags = max(1, g1.node.stats.fragments_created // COUNT) \
        if g1.node.stats.fragments_created else 1
    wire = _core_bytes(g1) - base_bytes
    overhead = wire / (sink.packets * DATAGRAM_PAYLOAD) if sink.packets else 0
    return delivered, frags, overhead


def _core_bytes(g1) -> int:
    total = 0
    for iface in g1.node.interfaces:
        total += iface.stats.bytes_sent + iface.stats.link_header_bytes
    return total


def analytic_survival(n_frags: int) -> float:
    return (1 - LOSS) ** n_frags


def run_experiment():
    table = Table(
        "E11  One 1400 B datagram through a shrinking-MTU bottleneck",
        ["bottleneck MTU", "fragments", "delivered %", "analytic %",
         "wire bytes per payload byte"],
        note=f"{LOSS * 100:.0f}% per-packet loss on the bottleneck; "
             "a datagram dies with ANY of its fragments",
    )
    rows = []
    for mtu in MTUS:
        delivered, frags, overhead = trial(mtu, seed=61)
        analytic = analytic_survival(frags)
        table.add(mtu, frags, f"{delivered * 100:.1f}",
                  f"{analytic * 100:.1f}", f"{overhead:.3f}")
        rows.append((mtu, frags, delivered, analytic, overhead))
    emit(table, "e11_fragmentation.txt")
    return rows


@pytest.mark.benchmark(group="e11")
def test_e11_fragmentation(benchmark):
    rows = once(benchmark, run_experiment)
    # Fragment counts rise as the MTU shrinks.
    frag_counts = [r[1] for r in rows]
    assert frag_counts == sorted(frag_counts)
    assert frag_counts[0] == 1 and frag_counts[-1] >= 8
    # Measured survival tracks the compounding analytic curve.
    for mtu, frags, delivered, analytic, overhead in rows:
        assert abs(delivered - analytic) < 0.05
    # Survival strictly degrades from one fragment to many.
    assert rows[-1][2] < rows[0][2] - 0.08
    # And the per-fragment headers cost real bandwidth.
    assert rows[-1][4] > rows[0][4] + 0.05
