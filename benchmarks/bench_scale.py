"""Internet-scale benchmark: sharded AS-parallel engine + flyweight packets.

Three measurements, written to ``BENCH_scale.json`` at the repo root:

* **engine** — raw scheduler throughput of the rebuilt hot loop: the
  handle-free ``post()`` path (what every packet hop now uses) and the
  cancellable ``schedule()`` path, compared against the PR-1 committed
  baseline of 156,859 events/s (``BENCH_fastpath.json``).
* **flyweight** — the same multi-AS scenario run single-shard with and
  without the :class:`~repro.ip.flyweight.PacketPool`, in simulation
  events/s and delivered packets/s.
* **scale** — the ≥500-node multi-AS ring run at 1..N workers through the
  conservative-lookahead sharded scheduler, with per-worker and aggregate
  events/s plus the determinism digest CI diffs across worker counts.

A note on CPUs: ``aggregate_events_s`` sums each worker process's own
events-per-CPU-second.  With one core per worker that equals wall-clock
throughput; on a machine with fewer cores than workers (this repo's CI
container has 1) the workers time-slice, wall-clock shows no speedup, and
the aggregate states the capacity the shard decomposition exposes.  The
JSON records both numbers and ``cpus`` so nobody has to guess.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick] [--workers N]
    [--out PATH]

``--quick`` shrinks the topology and horizon for CI smoke runs.
``--workers N`` runs the scale scenario at exactly N workers (CI runs 1
and 2 and diffs the ``deterministic`` sections of the two reports).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.harness.scaletopo import MultiAsBuilder, ScaleConfig
from repro.sim.engine import Simulator
from repro.sim.shard import ShardedSimulation

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_scale.json"

#: Committed by PR 1 in BENCH_fastpath.json (events_fired_s); the issue's
#: single-worker improvement target is measured against this.
PR1_BASELINE_EVENTS_S = 156_859


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# 1. Engine hot-loop throughput
# ----------------------------------------------------------------------
def bench_engine(quick: bool) -> dict:
    n = 50_000 if quick else 400_000

    sim = Simulator()
    noop = lambda: None
    start = time.perf_counter()
    post = sim.post
    for i in range(n):
        post(i * 1e-6, noop)
    sim.run()
    post_rate = n / (time.perf_counter() - start)

    sim2 = Simulator()
    start = time.perf_counter()
    for i in range(n):
        sim2.schedule(i * 1e-6, lambda: None)
    sim2.run()
    schedule_rate = n / (time.perf_counter() - start)

    return {
        "events": n,
        "post_events_s": round(post_rate),
        "schedule_events_s": round(schedule_rate),
        "pr1_baseline_events_s": PR1_BASELINE_EVENTS_S,
        "post_speedup_vs_pr1": round(post_rate / PR1_BASELINE_EVENTS_S, 2),
        "schedule_speedup_vs_pr1": round(
            schedule_rate / PR1_BASELINE_EVENTS_S, 2),
    }


# ----------------------------------------------------------------------
# 2. Flyweight packet path vs object path
# ----------------------------------------------------------------------
def _run_single(cfg: ScaleConfig, horizon: float) -> dict:
    builder = MultiAsBuilder(cfg)
    start_wall = time.perf_counter()
    start_cpu = time.process_time()
    with ShardedSimulation(builder, 1, lookahead=builder.lookahead()) as ss:
        ss.run(until=horizon)
        summary = ss.collect()[0]
    wall = time.perf_counter() - start_wall
    cpu = time.process_time() - start_cpu
    events = summary["events_processed"]
    packets = summary["delivered"] + summary["forwarded"]
    return {
        "wall_s": round(wall, 3),
        "cpu_s": round(cpu, 3),
        "events": events,
        "events_s": round(events / wall),
        "packets": packets,
        "packets_s": round(packets / wall),
        "delivered": summary["delivered"],
        "sink_packets": summary["sink_packets"],
        "pool": summary.get("pool"),
    }


def bench_flyweight(cfg: ScaleConfig, horizon: float) -> dict:
    pooled = _run_single(cfg, horizon)
    import dataclasses

    object_cfg = dataclasses.replace(cfg, packet_pool=False)
    plain = _run_single(object_cfg, horizon)
    return {
        "pooled": pooled,
        "object_path": plain,
        "identical_delivery": (
            pooled["delivered"] == plain["delivered"]
            and pooled["sink_packets"] == plain["sink_packets"]),
        "packets_s_speedup": round(
            pooled["packets_s"] / plain["packets_s"], 2)
        if plain["packets_s"] else None,
    }


# ----------------------------------------------------------------------
# 3. Sharded scaling
# ----------------------------------------------------------------------
def bench_scale(cfg: ScaleConfig, horizon: float, n_shards: int,
                worker_counts: list[int]) -> dict:
    builder = MultiAsBuilder(cfg)
    runs = []
    deterministic = None
    for workers in worker_counts:
        start_wall = time.perf_counter()
        start_cpu = time.process_time()
        with ShardedSimulation(builder, n_shards,
                               lookahead=builder.lookahead(),
                               workers=workers) as ss:
            ss.run(until=horizon)
            summaries = ss.collect()
            crossed, windows = ss.messages_crossed, ss.windows
        wall = time.perf_counter() - start_wall
        parent_cpu = time.process_time() - start_cpu
        events = sum(s["events_processed"] for s in summaries)
        delivered = sum(s["delivered"] for s in summaries)
        sink_packets = sum(s["sink_packets"] for s in summaries)
        flows = sum(s["flows"] for s in summaries)
        if workers == 1:
            # Inline: every harness shares this process, so per-shard
            # cpu_seconds all measure the same clock — use the parent's.
            aggregate = events / parent_cpu if parent_cpu else 0.0
        else:
            # Forked: each worker's own events per its own CPU second,
            # summed — wall-clock throughput when every worker has a core.
            aggregate = sum(
                s["events_processed"] / s["cpu_seconds"]
                for s in summaries if s["cpu_seconds"])
        det = {
            "collect": sorted(
                ({k: v for k, v in s.items()
                  if k not in ("cpu_seconds", "pool")}
                 for s in summaries),
                key=lambda s: s["shard"]),
            "messages_crossed": crossed,
            "windows": windows,
        }
        if deterministic is None:
            deterministic = det
            identical = True
        else:
            identical = json.dumps(det, sort_keys=True) == json.dumps(
                deterministic, sort_keys=True)
        runs.append({
            "workers": workers,
            "wall_s": round(wall, 3),
            "events": events,
            "events_s_wall": round(events / wall),
            "aggregate_events_s": round(aggregate),
            "delivered": delivered,
            "sink_packets": sink_packets,
            "flows": flows,
            "flows_s_wall": round(sink_packets / wall),
            "identical_to_first_run": identical,
        })
    one = next((r for r in runs if r["workers"] == 1), runs[0])
    four = next((r for r in runs if r["workers"] == 4), None)
    return {
        "n_shards": n_shards,
        "nodes": cfg.total_nodes,
        "horizon_s": horizon,
        "runs": runs,
        "aggregate_speedup_4w_vs_1w": round(
            four["aggregate_events_s"] / one["aggregate_events_s"], 2)
        if four else None,
        "deterministic": deterministic,
    }


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    out_path = OUT_PATH
    if "--out" in argv:
        out_path = pathlib.Path(argv[argv.index("--out") + 1])
    if quick:
        cfg = ScaleConfig(n_as=4, gateways_per_as=4, hosts_per_lan=3, seed=7)
        horizon, n_shards = 30.0, 4
        worker_counts = [1, 2]
    else:
        cfg = ScaleConfig(n_as=8, gateways_per_as=8, hosts_per_lan=7, seed=7)
        horizon, n_shards = 40.0, 4
        worker_counts = [1, 2, 4]
    if "--workers" in argv:
        worker_counts = [int(argv[argv.index("--workers") + 1])]
    results = {
        "benchmark": "internet-scale sharded engine",
        "mode": "quick" if quick else "full",
        "cpus": _cpus(),
        "engine": bench_engine(quick),
        "flyweight": bench_flyweight(cfg, horizon),
        "scale": bench_scale(cfg, horizon, n_shards, worker_counts),
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick or "--out" in argv:
        out_path.write_text(text + "\n")
        print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
