"""A2 (ablation) — interior routing choice: distance vector vs link state.

Goal 4 leaves the interior protocol to each administration, and the trade
was already understood in 1988: distance-vector gateways hold a vector and
gossip periodically (cheap, slow to heal, bounded by count-to-infinity
defences); link-state gateways hold the whole map and flood events
(heavier state and chatter, near-immediate healing).

Same ring-of-six topology, same failure, both protocols:

* reconvergence time — from cutting the in-use link to the first probe
  that crosses the rerouted path;
* routing chatter over a quiet minute;
* per-gateway routing state held.

Expected shape: at equal timers both heal on detection (the timers
dominate); paying for faster detection (0.5 s hellos) heals several times
faster at higher chatter; the map always costs more per-gateway state than
the vector.
"""

import pytest

from repro.harness.tables import Table
from repro.ip.address import Address, Prefix
from repro.ip.node import Node
from repro.ip.packet import PROTO_UDP
from repro.netlayer.link import Interface, PointToPointLink
from repro.routing.distance_vector import DistanceVectorRouting
from repro.routing.link_state import LinkStateRouting
from repro.sim.engine import Simulator
from repro.udp.udp import UdpStack

from _common import emit, once

N_GATEWAYS = 6


def build_ring(protocol: str, hello: float = 2.0):
    sim = Simulator()
    gateways, procs, links = [], {}, {}
    for i in range(N_GATEWAYS):
        gateways.append(Node(f"G{i}", sim, is_gateway=True))
    base = int(Address("10.80.0.0"))
    for i in range(N_GATEWAYS):
        j = (i + 1) % N_GATEWAYS
        prefix = Prefix(Address(base), 30)
        base += 4
        ia = gateways[i].add_interface(
            Interface(f"g{i}-{j}", prefix.host(1), prefix))
        ib = gateways[j].add_interface(
            Interface(f"g{j}-{i}", prefix.host(2), prefix))
        links[(i, j)] = PointToPointLink(sim, ia, ib, bandwidth_bps=1e6,
                                         delay=0.003)
    for i, g in enumerate(gateways):
        udp = UdpStack(g)
        if protocol == "dv":
            proc = DistanceVectorRouting(g, udp, period=hello)
        else:
            proc = LinkStateRouting(g, udp, hello_interval=hello)
        proc.start()
        procs[i] = proc
    sim.run(until=30)  # converge
    return sim, gateways, procs, links


def routing_bytes(procs) -> int:
    return sum(p.stats.bytes_sent for p in procs.values())


def state_held(protocol: str, procs) -> float:
    """Mean routing state per gateway, in comparable byte units."""
    if protocol == "dv":
        # 6 bytes per vector entry (prefix + metric on the wire).
        return sum(len(p._entries) * 6 for p in procs.values()) / len(procs)
    return sum(p.lsdb_size_bytes for p in procs.values()) / len(procs)


def reconvergence_probe(sim, gateways, links) -> float:
    """Cut the G0-G1 link, then measure when G0 can again reach G1's far
    interface (now only via the long way around the ring)."""
    target = gateways[1].interfaces[1].address  # G1's side of G1-G2
    received = []
    gateways[1].register_protocol(
        PROTO_UDP,
        lambda n, d, i: received.append(sim.now) if d.payload == b"probe" else None)
    links[(0, 1)].set_up(False)
    cut_at = sim.now

    def probe():
        if received:
            return
        gateways[0].send(target, PROTO_UDP, b"probe")
        sim.schedule(0.25, probe)

    # Let any in-flight delivery from the pre-cut path drain, then probe.
    sim.schedule(0.30, probe)
    sim.run(until=cut_at + 120)
    if not received:
        return float("inf")
    return received[0] - cut_at


def run_one(protocol: str, hello: float):
    sim, gateways, procs, links = build_ring(protocol, hello)
    chatter_start, t_start = routing_bytes(procs), sim.now
    sim.run(until=sim.now + 60)  # a quiet minute
    idle_rate = (routing_bytes(procs) - chatter_start) / (sim.now - t_start)
    state = state_held(protocol, procs)
    heal = reconvergence_probe(sim, gateways, links)
    return heal, idle_rate, state


def run_experiment():
    table = Table(
        "A2  Interior routing: distance vector vs link state (6-gateway ring)",
        ["protocol", "reconvergence s", "idle chatter B/s",
         "state per gateway B"],
        note="reconvergence = cut the in-use link, time until a probe "
             "crosses the rerouted path",
    )
    rows = {}
    for key, protocol, hello, label in [
        ("dv", "dv", 2.0, "distance vector (2 s period)"),
        ("ls", "ls", 2.0, "link state (2 s hellos)"),
        ("ls-fast", "ls", 0.5, "link state (0.5 s hellos)"),
    ]:
        heal, idle, state = run_one(protocol, hello)
        rows[key] = (heal, idle, state)
        table.add(label, f"{heal:.2f}", f"{idle:.0f}", f"{state:.0f}")
    emit(table, "a2_igp_choice.txt")
    return rows


@pytest.mark.benchmark(group="a2")
def test_a2_igp_choice(benchmark):
    rows = once(benchmark, run_experiment)
    dv, ls, ls_fast = rows["dv"], rows["ls"], rows["ls-fast"]
    # Everyone heals (the ring reroutes the long way).
    assert all(r[0] != float("inf") for r in rows.values())
    # At equal detection timers the protocols heal comparably — detection
    # dominates at this scale.
    assert abs(ls[0] - dv[0]) < 3.0
    # Buying faster detection with fast hellos heals several times faster...
    assert ls_fast[0] < dv[0] / 2
    # ...at the price of more chatter than slow-hello link state...
    assert ls_fast[1] > ls[1]
    # ...and the map always costs more state than the vector.
    assert ls[2] > dv[2]