"""Observability overhead benchmark (the <=5% disabled-cost gate).

The obs layer's contract is that the *instrumented but un-observed* stack
stays within 5% of the seed fast path: every hook in the packet path is a
``self.obs`` attribute load (None when never installed) or one extra
boolean check (installed but disabled).  This benchmark measures a real
forwarding workload — H1 - G1 - G2 - H2, periodic UDP through two
gateways with fragmentation in the core — three ways:

* **baseline** — no Observability installed (``node.obs is None``);
* **disabled** — ``net.observe()`` then ``obs.disable()`` (the gated mode:
  attribute load + boolean per hook, nothing recorded);
* **enabled** — full span/metric/profile recording (informational; this
  mode buys the journeys and is allowed to cost more).

Writes ``BENCH_obs.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

Exit status is non-zero when the disabled-mode overhead exceeds the gate,
so CI can enforce the contract.  ``--quick`` runs a smaller workload with
a looser smoke gate (short runs are timing-noise bound); the committed
JSON and the authoritative 1.05x gate come from full runs.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro import Internet
from repro.ip.packet import PROTO_UDP

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_obs.json"

#: The disabled-mode gate: instrumented-but-off must stay within 5%.
GATE = 1.05
#: Smoke-run gate for ``--quick``: the workload is ~10x smaller, so
#: scheduler jitter alone can swing a run several percent.  The loose
#: gate still catches real regressions (a forgotten profiler detach
#: costs >1.3x even here) without flapping CI on noise.
QUICK_GATE = 1.20


def build_net(mode: str) -> Internet:
    """H1 - G1 - G2 - H2 with a small-MTU core (exercises fragmentation)."""
    net = Internet(seed=17)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    net.connect(g1, g2, bandwidth_bps=8_000_000, delay=0.002, mtu=596)
    net.connect(g2, h2, bandwidth_bps=10_000_000, delay=0.001, mtu=1500)
    net.start_routing()
    net.converge(settle=8.0)
    if mode != "baseline":
        obs = net.observe()
        if mode == "disabled":
            obs.disable()
    return net


def run_workload(net: Internet, packets: int) -> float:
    """Time the traffic phase only: ``packets`` UDP sends, half of them
    large enough to fragment in the core, pumped through both gateways."""
    h1 = net.hosts["H1"].node
    h2 = net.hosts["H2"].node
    dst = h2.address
    interval = 0.002
    sent = 0

    def tick():
        nonlocal sent
        payload = b"x" * (1100 if sent % 2 else 64)
        h1.send(dst, PROTO_UDP, payload)
        sent += 1
        if sent < packets:
            net.sim.schedule(interval, tick, label="bench:tick")

    net.sim.schedule(interval, tick, label="bench:tick")
    start = time.perf_counter()
    net.sim.run(until=net.sim.now + packets * interval + 5.0)
    elapsed = time.perf_counter() - start
    assert sent == packets, f"workload under-ran: {sent}/{packets}"
    assert h2.stats.delivered >= packets // 2, "path broken; timing invalid"
    return elapsed


def measure(mode: str, *, packets: int, reps: int) -> float:
    """Best-of-``reps`` wall time for the workload in ``mode`` (fresh net
    each rep; min is the standard noise filter for microbenchmarks)."""
    best = float("inf")
    for _ in range(reps):
        net = build_net(mode)
        best = min(best, run_workload(net, packets))
    return best


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    packets = 500 if quick else 4000
    reps = 3 if quick else 5
    gate = QUICK_GATE if quick else GATE

    baseline = measure("baseline", packets=packets, reps=reps)
    disabled = measure("disabled", packets=packets, reps=reps)
    enabled = measure("enabled", packets=packets, reps=reps)

    disabled_ratio = disabled / baseline
    enabled_ratio = enabled / baseline
    results = {
        "benchmark": "observability overhead",
        "mode": "quick" if quick else "full",
        "workload": {
            "packets": packets,
            "reps_best_of": reps,
            "topology": "H1-G1-G2-H2, 596B-MTU core (fragmenting)",
        },
        "baseline_s": round(baseline, 4),
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "disabled_overhead": round(disabled_ratio, 4),
        "enabled_overhead": round(enabled_ratio, 4),
        "gate": gate,
        "gate_passed": disabled_ratio <= gate,
    }
    text = json.dumps(results, indent=2)
    print(text)
    if not quick:
        OUT_PATH.write_text(text + "\n")
        print(f"\nwrote {OUT_PATH}")
    if disabled_ratio > gate:
        print(f"FAIL: disabled-mode overhead {disabled_ratio:.3f}x "
              f"exceeds the {gate:.2f}x gate", file=sys.stderr)
        return 1
    print(f"OK: disabled-mode overhead {disabled_ratio:.3f}x "
          f"(gate {gate:.2f}x); enabled costs {enabled_ratio:.3f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
