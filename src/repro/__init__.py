"""repro — a reproduction of Clark's *The Design Philosophy of the DARPA
Internet Protocols* (SIGCOMM 1988).

The package builds, from scratch, the system the paper rationalizes — a
datagram internetwork with TCP/IP, heterogeneous link substrates, two-tier
routing, and host-resident conversation state — plus the counterfactual
architectures the paper argues against (virtual circuits, replicated
in-network state, packet-sequenced TCP) and toward (flows with soft state),
so that every architectural claim is a runnable experiment.

Quick start::

    from repro import Internet, run_transfer

    net = Internet(seed=1)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1)
    net.connect(g1, g2, media="satellite")
    net.connect(g2, h2)
    net.start_routing()
    net.converge()
    outcome = run_transfer(net, h1, h2, size=100_000)
    print(outcome.goodput_bps)

Subpackages
-----------
``repro.sim``          discrete-event engine, timers, RNG streams, tracing
``repro.netlayer``     link substrates: serial, LAN, satellite, radio, X.25
``repro.ip``           datagrams, addressing, forwarding, fragmentation, ICMP
``repro.routing``      distance-vector and link-state IGPs, path-vector EGP
``repro.tcp``          full byte-stream TCP + the packet-sequenced variant
``repro.udp``          the raw datagram service
``repro.sockets``      host API: Host, Gateway, StreamSocket
``repro.apps``         file transfer, terminal, packet voice, XNET, traffic
``repro.vc``           virtual-circuit baseline network
``repro.statefulnet``  replicated in-network state baseline
``repro.flows``        flows + soft state (the paper's outlook, built)
``repro.accounting``   packet/flow/sampled resource accounting
``repro.mgmt``         autonomous systems and inter-AS policy
``repro.metrics``      summaries, flow meters, playout scoring
``repro.harness``      topology kit, tables, canonical realizations
"""

from .harness.experiment import TransferOutcome, run_transfer
from .harness.tables import Table, format_bytes, format_rate
from .harness.topology import Internet
from .ip.address import Address, Prefix
from .ip.node import Node
from .ip.packet import Datagram
from .sim.engine import Simulator
from .sim.rand import RandomStreams
from .sockets.api import Gateway, Host, StreamSocket
from .tcp.connection import TcpConfig, TcpConnection
from .tcp.stack import TcpStack
from .udp.udp import UdpStack

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "RandomStreams",
    "Address",
    "Prefix",
    "Datagram",
    "Node",
    "Host",
    "Gateway",
    "StreamSocket",
    "TcpConfig",
    "TcpConnection",
    "TcpStack",
    "UdpStack",
    "Internet",
    "Table",
    "format_rate",
    "format_bytes",
    "run_transfer",
    "TransferOutcome",
]
