"""Distance-vector interior routing (RIP-flavoured).

This is the IGP of experiment E1/E4: hop-count metrics, periodic full
updates broadcast on every attached network, split horizon with poisoned
reverse, triggered updates, route expiry and hold-down.  When a gateway or
link dies, neighbours time the routes out and the vectors reconverge —
the network "relearns" the derivable state, which is why datagram
conversations survive failures that would kill a virtual circuit.

The protocol runs over UDP port 520 so its overhead crosses the same links
as user data (and is counted by :class:`~repro.routing.base.RoutingStats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ip.address import Address, Prefix
from ..ip.forwarding import Route
from ..ip.node import Node
from ..netlayer.link import Interface
from ..sim.process import PeriodicProcess
from ..udp.udp import UdpStack
from .base import INFINITY_METRIC, RouteAdvert, RoutingStats, pack_adverts, unpack_adverts

__all__ = ["DistanceVectorRouting", "DV_PORT"]

DV_PORT = 520


@dataclass
class _DvEntry:
    """Internal protocol state for one destination prefix."""

    prefix: Prefix
    metric: int
    next_hop: Optional[Address]     # None for connected networks
    interface: Interface
    last_heard: float
    connected: bool = False
    poisoned_at: Optional[float] = None  # set when metric hit infinity
    #: Seed metric this router originates the prefix at (0 for genuinely
    #: connected networks, the redistribution metric for EGP-seam
    #: aggregates injected via :meth:`DistanceVectorRouting.originate`).
    origin_metric: int = 0


class DistanceVectorRouting:
    """One router's distance-vector process.

    Parameters mirror RIP's classic timers, scaled down by default so that
    simulated convergence happens in seconds rather than minutes (the ratio
    between timers — the thing that matters for correctness — is preserved).
    """

    def __init__(
        self,
        node: Node,
        udp: UdpStack,
        *,
        period: float = 5.0,
        route_timeout: Optional[float] = None,
        gc_timeout: Optional[float] = None,
        triggered_updates: bool = True,
        poison_reverse: bool = True,
        jitter_fn=None,
        interfaces: Optional[list[Interface]] = None,
    ):
        """``interfaces`` restricts the protocol to those attachments —
        the "passive interface" scoping an administration uses to keep its
        IGP from leaking across an AS boundary (goal 4)."""
        self.node = node
        self.udp = udp
        self.sim = node.sim
        self.period = period
        self.route_timeout = route_timeout if route_timeout is not None else 3 * period
        self.gc_timeout = gc_timeout if gc_timeout is not None else 2 * period
        self.triggered_updates = triggered_updates
        self.poison_reverse = poison_reverse
        self._scope = interfaces  # None = every interface
        self.stats = RoutingStats()
        self._entries: dict[Prefix, _DvEntry] = {}
        #: Aggregates this router redistributes into the IGP (the EGP
        #: seam); survives crash/restore like static configuration does.
        self._originated: list[tuple[Prefix, int, Optional[Interface]]] = []
        self._socket = udp.bind(DV_PORT, self._update_received)
        self._periodic = PeriodicProcess(self.sim, period, self._on_tick,
                                         jitter_fn=jitter_fn, label="dv:tick")
        self._running = False
        #: Optional callback ``(node_name, reason, sim_time)`` fired just
        #: before a *triggered* (event-driven) update goes out — the
        #: convergence tracer's causal anchor between a topology change and
        #: the update wave it launched.  Periodic ticks don't fire it.
        self.update_listener = None
        node.on_crash.append(self._on_node_crash)
        node.on_restore.append(self._on_node_restore)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def active_interfaces(self) -> list[Interface]:
        """Interfaces this process speaks on (all, unless scoped)."""
        if self._scope is not None:
            return list(self._scope)
        return list(self.node.interfaces)

    def start(self) -> None:
        """Load connected networks and begin advertising."""
        self._running = True
        for iface in self.active_interfaces():
            self._entries[iface.prefix] = _DvEntry(
                prefix=iface.prefix, metric=0, next_hop=None,
                interface=iface, last_heard=self.sim.now, connected=True)
        for prefix, metric, iface in self._originated:
            self._add_origination(prefix, metric, iface)
        self._periodic.start(initial_delay=0.0)

    def originate(self, prefix: Prefix, *, metric: int = 1,
                  interface: Optional[Interface] = None) -> None:
        """Redistribute an externally learned aggregate into this IGP.

        This is the IGP/EGP seam (goal 4): a border gateway that reaches
        ``prefix`` through its exterior peering advertises it interior-wide
        as if directly attached, seeded at ``metric``.  The entry never
        times out (this router *is* its origin) and is not installed in the
        border's own forwarding table — its exterior (static/EGP) route
        already covers the prefix.  ``interface`` anchors liveness: when it
        goes down the aggregate is poisoned, exactly like a connected
        network; default is the node's first interface.  Like static
        configuration, originations survive crash/restore.
        """
        self._originated.append((prefix, metric, interface))
        if self._running:
            self._add_origination(prefix, metric, interface)

    def _add_origination(self, prefix: Prefix, metric: int,
                         interface: Optional[Interface]) -> None:
        iface = interface if interface is not None else self.node.interfaces[0]
        self._entries[prefix] = _DvEntry(
            prefix=prefix, metric=metric, next_hop=None, interface=iface,
            last_heard=self.sim.now, connected=True, origin_metric=metric)

    def stop(self) -> None:
        self._running = False
        self._periodic.stop()

    def _on_node_crash(self) -> None:
        """The router died: all protocol state is volatile and gone."""
        self.stop()
        self._entries.clear()

    def _on_node_restore(self) -> None:
        """Reboot: start from scratch with only connected networks."""
        self.start()

    # ------------------------------------------------------------------
    # Periodic behaviour
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        if not self._running or not self.node.up:
            return
        self._expire_routes()
        self._broadcast_full_update()

    def _expire_routes(self) -> None:
        now = self.sim.now
        changed = False
        for prefix, entry in list(self._entries.items()):
            if entry.connected:
                # Connected routes track interface liveness directly.
                if not entry.interface.up and entry.metric < INFINITY_METRIC:
                    entry.metric = INFINITY_METRIC
                    entry.poisoned_at = now
                    self._uninstall(prefix)
                    changed = True
                elif entry.interface.up and entry.metric >= INFINITY_METRIC:
                    entry.metric = entry.origin_metric
                    entry.poisoned_at = None
                    if entry.origin_metric == 0:
                        # Genuinely connected; originated aggregates
                        # (origin_metric >= 1) are advertised, never
                        # installed over the border's exterior route.
                        self._install(entry)
                    changed = True
                continue
            if entry.metric >= INFINITY_METRIC:
                if entry.poisoned_at is not None and now - entry.poisoned_at > self.gc_timeout:
                    del self._entries[prefix]
                continue
            if now - entry.last_heard > self.route_timeout:
                entry.metric = INFINITY_METRIC
                entry.poisoned_at = now
                self._uninstall(prefix)
                self.stats.routes_expired += 1
                changed = True
        if changed and self.triggered_updates:
            self.stats.triggered_updates += 1
            if self.update_listener is not None:
                self.update_listener(self.node.name, "expiry", self.sim.now)
            self._broadcast_full_update()

    def _broadcast_full_update(self) -> None:
        for iface in self.active_interfaces():
            if not iface.up:
                continue
            adverts = self._adverts_for(iface)
            if not adverts:
                continue
            payload = pack_adverts(adverts)
            self.stats.updates_sent += 1
            self.stats.bytes_sent += len(payload)
            self._socket.sendto(payload, iface.prefix.broadcast, DV_PORT,
                                ttl=1, trace_label="dv-update")

    def _adverts_for(self, iface: Interface) -> list[RouteAdvert]:
        """Build the vector for one interface, applying split horizon."""
        adverts = []
        for entry in self._entries.values():
            if entry.interface is iface and not entry.connected:
                if self.poison_reverse:
                    # Poisoned reverse: advertise back as unreachable.
                    adverts.append(RouteAdvert(entry.prefix, INFINITY_METRIC))
                continue  # plain split horizon: stay silent
            adverts.append(RouteAdvert(entry.prefix, min(entry.metric, INFINITY_METRIC)))
        return adverts

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _update_received(self, payload: bytes, src: Address, src_port: int) -> None:
        if not self._running or not self.node.up:
            return
        if self.node.owns_address(src):
            return  # our own broadcast echoed back
        iface = self._iface_for_neighbor(src)
        if iface is None:
            return
        self.stats.updates_received += 1
        changed = False
        for advert in unpack_adverts(payload):
            if self._consider(advert, src, iface):
                changed = True
        if changed and self.triggered_updates:
            self.stats.triggered_updates += 1
            if self.update_listener is not None:
                self.update_listener(self.node.name, "update", self.sim.now)
            self._broadcast_full_update()

    def _iface_for_neighbor(self, src: Address) -> Optional[Interface]:
        for iface in self.active_interfaces():
            if iface.prefix.contains(src):
                return iface
        return None

    def _consider(self, advert: RouteAdvert, neighbor: Address,
                  iface: Interface) -> bool:
        """Bellman-Ford relaxation for one advertised destination."""
        metric = min(advert.metric + 1, INFINITY_METRIC)
        entry = self._entries.get(advert.prefix)
        now = self.sim.now
        if entry is None:
            if metric >= INFINITY_METRIC:
                return False
            entry = _DvEntry(prefix=advert.prefix, metric=metric,
                             next_hop=neighbor, interface=iface,
                             last_heard=now)
            self._entries[advert.prefix] = entry
            self._install(entry)
            return True
        if entry.connected:
            return False
        from_current = entry.next_hop == neighbor
        if from_current:
            entry.last_heard = now
            if metric != entry.metric:
                was_reachable = entry.metric < INFINITY_METRIC
                entry.metric = metric
                if metric >= INFINITY_METRIC:
                    entry.poisoned_at = now
                    if was_reachable:
                        self._uninstall(entry.prefix)
                        return True
                    return False
                entry.poisoned_at = None
                self._install(entry)
                return True
            return False
        if metric < entry.metric:
            entry.metric = metric
            entry.next_hop = neighbor
            entry.interface = iface
            entry.last_heard = now
            entry.poisoned_at = None
            self._install(entry)
            return True
        return False

    # ------------------------------------------------------------------
    # Forwarding-table maintenance
    # ------------------------------------------------------------------
    def _install(self, entry: _DvEntry) -> None:
        self.node.routes.install(Route(
            prefix=entry.prefix, interface=entry.interface,
            next_hop=entry.next_hop, metric=entry.metric, source="dv",
            learned_from=entry.next_hop))

    def _uninstall(self, prefix: Prefix) -> None:
        route = self.node.routes.get(prefix)
        if route is not None and route.source == "dv":
            self.node.routes.withdraw(prefix)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        """Reachable destinations currently known (E4's state metric)."""
        return sum(1 for e in self._entries.values()
                   if e.metric < INFINITY_METRIC)

    def metric_to(self, prefix: Prefix) -> int:
        entry = self._entries.get(prefix)
        return entry.metric if entry is not None else INFINITY_METRIC

    def converged_on(self, prefixes: list[Prefix]) -> bool:
        """True when every given prefix is currently reachable."""
        return all(self.metric_to(p) < INFINITY_METRIC for p in prefixes)
