"""Exterior gateway protocol: path-vector routing between administrations.

Goal 4 — "the architecture must permit distributed management of its
resources" — is realized by the two-tier routing structure this module
completes: inside an autonomous system an administration runs whatever IGP
it likes (:mod:`distance_vector`, :mod:`link_state`); *between* systems a
deliberately information-poor protocol exchanges only reachability with an
AS-level path.  The path serves two masters at once: loop prevention
(reject anything carrying our own AS number) and policy (an administration
can filter what it tells — or believes from — a competitor, without
exposing its interior, unlike a link-state protocol which must publish its
whole map).

Peering sessions run over UDP unicast between directly connected border
gateways.  Each update carries the sender's full exportable table for that
peer; a hold timer detects dead peers (whereupon everything learned from
them is withdrawn).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..ip.address import Address, Prefix
from ..ip.forwarding import Route
from ..ip.node import Node
from ..netlayer.link import Interface
from ..sim.process import PeriodicProcess
from ..udp.udp import UdpStack
from .base import RoutingStats

__all__ = ["ExteriorGateway", "EgpRoute", "EGP_PORT", "ExportPolicy", "ImportPolicy"]

EGP_PORT = 179

#: Policy hooks: (prefix, as_path, peer_as) -> accept/advertise?
ExportPolicy = Callable[[Prefix, tuple[int, ...], int], bool]
ImportPolicy = Callable[[Prefix, tuple[int, ...], int], bool]


@dataclass(frozen=True)
class EgpRoute:
    """A path-vector route: destination prefix + AS-level path.

    ``path[0]`` is the neighbouring AS that advertised it to us.
    """

    prefix: Prefix
    path: tuple[int, ...]

    @property
    def path_length(self) -> int:
        return len(self.path)


@dataclass
class _Peer:
    """One configured peering session."""

    address: Address
    remote_as: int
    interface: Interface
    last_heard: float = 0.0
    established: bool = False
    #: Routes currently learned from this peer, by prefix.
    learned: dict[Prefix, EgpRoute] = field(default_factory=dict)


def _accept_all(prefix: Prefix, path: tuple[int, ...], peer_as: int) -> bool:
    return True


class ExteriorGateway:
    """The border-gateway half of a node: one EGP speaker.

    >>> egp = ExteriorGateway(border_node, udp, local_as=2)
    >>> egp.originate(Prefix.parse("10.2.0.0/16"))
    >>> egp.add_peer(Address("192.0.2.1"), remote_as=1)
    >>> egp.start()
    """

    def __init__(
        self,
        node: Node,
        udp: UdpStack,
        *,
        local_as: int,
        period: float = 5.0,
        hold_time: Optional[float] = None,
        export_policy: ExportPolicy = _accept_all,
        import_policy: ImportPolicy = _accept_all,
        jitter_fn=None,
    ):
        self.node = node
        self.udp = udp
        self.sim = node.sim
        self.local_as = local_as
        self.period = period
        self.hold_time = hold_time if hold_time is not None else 3 * period
        self.export_policy = export_policy
        self.import_policy = import_policy
        self.stats = RoutingStats()
        self._peers: dict[int, _Peer] = {}          # keyed by int(address)
        self._originated: list[Prefix] = []
        self._best: dict[Prefix, tuple[EgpRoute, _Peer]] = {}
        self._socket = udp.bind(EGP_PORT, self._message_received)
        self._periodic = PeriodicProcess(self.sim, period, self._on_tick,
                                         jitter_fn=jitter_fn, label="egp:tick")
        self._running = False
        node.on_crash.append(self._on_node_crash)
        node.on_restore.append(self._on_node_restore)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def originate(self, prefix: Prefix) -> None:
        """Advertise ``prefix`` as belonging to our AS (typically the AS's
        aggregated address block — 'addresses reflect connectivity')."""
        if prefix not in self._originated:
            self._originated.append(prefix)

    def add_peer(self, address: Address, remote_as: int) -> None:
        """Configure a peering with a directly connected border gateway."""
        iface = self._iface_for(address)
        if iface is None:
            raise ValueError(
                f"peer {address} is not on a connected network of {self.node.name}")
        self._peers[int(address)] = _Peer(address=address, remote_as=remote_as,
                                          interface=iface)

    def _iface_for(self, address: Address) -> Optional[Interface]:
        for iface in self.node.interfaces:
            if iface.prefix.contains(address):
                return iface
        return None

    def start(self) -> None:
        self._running = True
        self._periodic.start(initial_delay=0.0)

    def stop(self) -> None:
        self._running = False
        self._periodic.stop()

    def _on_node_crash(self) -> None:
        self.stop()
        for peer in self._peers.values():
            peer.established = False
            peer.learned.clear()
        self._best.clear()

    def _on_node_restore(self) -> None:
        self.start()

    # ------------------------------------------------------------------
    # Periodic behaviour
    # ------------------------------------------------------------------
    def _on_tick(self) -> None:
        if not self._running or not self.node.up:
            return
        self._expire_peers()
        for peer in self._peers.values():
            self._send_update(peer)

    def _expire_peers(self) -> None:
        now = self.sim.now
        for peer in self._peers.values():
            if peer.established and now - peer.last_heard > self.hold_time:
                peer.established = False
                peer.learned.clear()
                self.stats.routes_expired += 1
                self._reselect_all()

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def _exportable(self, peer: _Peer) -> list[EgpRoute]:
        routes = [EgpRoute(p, (self.local_as,)) for p in self._originated]
        for prefix, (route, learned_from) in self._best.items():
            if learned_from is peer:
                continue  # never reflect a route back to its source
            path = (self.local_as,) + route.path
            if self.local_as in route.path:
                continue
            routes.append(EgpRoute(prefix, path))
        return [r for r in routes
                if self.export_policy(r.prefix, r.path, peer.remote_as)]

    def _send_update(self, peer: _Peer) -> None:
        routes = self._exportable(peer)
        out = bytearray(struct.pack("!HH", self.local_as, len(routes)))
        for route in routes:
            out.extend(struct.pack("!4sBB", route.prefix.network.to_bytes(),
                                   route.prefix.length, len(route.path)))
            for asn in route.path:
                out.extend(struct.pack("!H", asn))
        self.stats.updates_sent += 1
        self.stats.bytes_sent += len(out)
        self._socket.sendto(bytes(out), peer.address, EGP_PORT, ttl=2)

    def _message_received(self, payload: bytes, src: Address, src_port: int) -> None:
        if not self._running or not self.node.up:
            return
        peer = self._peers.get(int(src))
        if peer is None or len(payload) < 4:
            return
        sender_as, count = struct.unpack("!HH", payload[:4])
        if sender_as != peer.remote_as:
            return  # misconfigured peer: refuse
        self.stats.updates_received += 1
        peer.last_heard = self.sim.now
        peer.established = True
        pos = 4
        fresh: dict[Prefix, EgpRoute] = {}
        for _ in range(count):
            if pos + 6 > len(payload):
                break
            network, length, path_len = struct.unpack("!4sBB",
                                                      payload[pos : pos + 6])
            pos += 6
            if pos + 2 * path_len > len(payload):
                break
            path = tuple(struct.unpack(f"!{path_len}H",
                                       payload[pos : pos + 2 * path_len]))
            pos += 2 * path_len
            try:
                prefix = Prefix(Address.from_bytes(network), length)
            except Exception:
                continue
            if self.local_as in path:
                continue  # loop prevention: our own AS in the path
            if not self.import_policy(prefix, path, peer.remote_as):
                continue
            fresh[prefix] = EgpRoute(prefix, path)
        # Full-table replacement semantics for this peer.
        peer.learned = fresh
        self._reselect_all()

    # ------------------------------------------------------------------
    # Route selection
    # ------------------------------------------------------------------
    def _reselect_all(self) -> None:
        """Best-path selection: shortest AS path, then lowest peer address."""
        self.node.routes.withdraw_by_source("egp")
        self._best.clear()
        candidates: dict[Prefix, list[tuple[EgpRoute, _Peer]]] = {}
        for peer in self._peers.values():
            for prefix, route in peer.learned.items():
                candidates.setdefault(prefix, []).append((route, peer))
        local = {iface.prefix for iface in self.node.interfaces}
        for prefix, options in candidates.items():
            if prefix in local or prefix in self._originated:
                continue
            options.sort(key=lambda rp: (rp[0].path_length, int(rp[1].address)))
            route, peer = options[0]
            self._best[prefix] = (route, peer)
            self.node.routes.install(Route(
                prefix=prefix, interface=peer.interface,
                next_hop=peer.address, metric=route.path_length,
                source="egp", learned_from=peer.address))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        return len(self._best)

    def best_path(self, prefix: Prefix) -> Optional[tuple[int, ...]]:
        entry = self._best.get(prefix)
        return entry[0].path if entry is not None else None

    @property
    def established_peers(self) -> int:
        return sum(1 for p in self._peers.values() if p.established)
