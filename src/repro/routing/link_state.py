"""Link-state interior routing (OSPF-flavoured, single area).

The comparison IGP for experiment E4: every router floods link-state
advertisements describing its adjacencies and attached prefixes, builds the
full topology database, and runs Dijkstra.  Against distance-vector it
trades *much* more routing state per node (the whole map) and flooding churn
for faster, loop-free convergence — the paper's "distributed management"
discussion is exactly about which of these costs an administration accepts.

Subprotocols: HELLO (neighbour discovery/liveness, UDP 521 broadcast) and
LSA flooding (UDP 522, per-neighbour unicast with sequence-numbered
superseding).
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass
from typing import Optional

from ..ip.address import Address, Prefix
from ..ip.forwarding import Route
from ..ip.node import Node
from ..netlayer.link import Interface
from ..sim.process import PeriodicProcess
from ..udp.udp import UdpStack
from .base import RoutingStats

__all__ = ["LinkStateRouting", "HELLO_PORT", "LSA_PORT"]

HELLO_PORT = 521
LSA_PORT = 522


@dataclass
class _Neighbor:
    """An adjacency discovered via HELLO."""

    router_id: int
    address: Address
    interface: Interface
    last_heard: float
    cost: int = 1
    #: The neighbour's boot generation — a change means it restarted with
    #: an empty database and needs a full resync.
    generation: int = 0


@dataclass
class _Lsa:
    """One router's link-state advertisement."""

    router_id: int
    seq: int
    neighbors: list[tuple[int, int]]          # (router_id, cost)
    prefixes: list[Prefix]
    received_at: float = 0.0

    def pack(self) -> bytes:
        out = bytearray(struct.pack("!IIHH", self.router_id, self.seq,
                                    len(self.neighbors), len(self.prefixes)))
        for rid, cost in self.neighbors:
            out.extend(struct.pack("!IH", rid, cost))
        for prefix in self.prefixes:
            out.extend(struct.pack("!4sBxxx", prefix.network.to_bytes(),
                                   prefix.length))
        return bytes(out)

    @classmethod
    def unpack(cls, data: bytes) -> Optional["_Lsa"]:
        if len(data) < 12:
            return None
        router_id, seq, n_nbr, n_pfx = struct.unpack("!IIHH", data[:12])
        pos = 12
        neighbors = []
        for _ in range(n_nbr):
            if pos + 6 > len(data):
                return None
            rid, cost = struct.unpack("!IH", data[pos : pos + 6])
            neighbors.append((rid, cost))
            pos += 6
        prefixes = []
        for _ in range(n_pfx):
            if pos + 8 > len(data):
                return None
            network, length = struct.unpack("!4sBxxx", data[pos : pos + 8])
            try:
                prefixes.append(Prefix(Address.from_bytes(network), length))
            except Exception:
                return None
            pos += 8
        return cls(router_id, seq, neighbors, prefixes)


class LinkStateRouting:
    """One router's link-state process."""

    def __init__(
        self,
        node: Node,
        udp: UdpStack,
        *,
        hello_interval: float = 2.0,
        dead_interval: Optional[float] = None,
        lsa_refresh: float = 30.0,
        max_age: float = 90.0,
        jitter_fn=None,
    ):
        self.node = node
        self.udp = udp
        self.sim = node.sim
        self.router_id = int(node.address)
        self.hello_interval = hello_interval
        self.dead_interval = dead_interval if dead_interval is not None else 3 * hello_interval
        self.lsa_refresh = lsa_refresh
        self.max_age = max_age
        self.stats = RoutingStats()
        self.neighbors: dict[int, _Neighbor] = {}
        self.lsdb: dict[int, _Lsa] = {}
        self._seq = 0
        self._generation = 0  # bumped on every start (crash recovery signal)
        self._hello_sock = udp.bind(HELLO_PORT, self._hello_received)
        self._lsa_sock = udp.bind(LSA_PORT, self._lsa_received)
        self._hello_proc = PeriodicProcess(self.sim, hello_interval,
                                           self._on_hello_tick,
                                           jitter_fn=jitter_fn, label="ls:hello")
        self._refresh_proc = PeriodicProcess(self.sim, lsa_refresh,
                                             self._originate_lsa,
                                             jitter_fn=jitter_fn, label="ls:refresh")
        self._running = False
        node.on_crash.append(self._on_node_crash)
        node.on_restore.append(self._on_node_restore)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._generation += 1
        self._hello_proc.start(initial_delay=0.0)
        self._refresh_proc.start()
        self._originate_lsa()

    def stop(self) -> None:
        self._running = False
        self._hello_proc.stop()
        self._refresh_proc.stop()

    def _on_node_crash(self) -> None:
        self.stop()
        self.neighbors.clear()
        self.lsdb.clear()

    def _on_node_restore(self) -> None:
        self.start()

    # ------------------------------------------------------------------
    # HELLO subprotocol
    # ------------------------------------------------------------------
    def _on_hello_tick(self) -> None:
        if not self._running or not self.node.up:
            return
        payload = struct.pack("!II", self.router_id, self._generation)
        for iface in self.node.interfaces:
            if iface.up:
                self._hello_sock.sendto(payload, iface.prefix.broadcast,
                                        HELLO_PORT, ttl=1)
                self.stats.bytes_sent += len(payload)  # hellos are chatter too
        self._check_dead_neighbors()
        self._age_lsdb()

    def _hello_received(self, payload: bytes, src: Address, src_port: int) -> None:
        if not self._running or len(payload) < 8 or self.node.owns_address(src):
            return
        router_id, generation = struct.unpack("!II", payload[:8])
        iface = self._iface_for(src)
        if iface is None:
            return
        existing = self.neighbors.get(router_id)
        is_new = existing is None or existing.generation != generation
        self.neighbors[router_id] = _Neighbor(router_id, src, iface,
                                              self.sim.now,
                                              generation=generation)
        if is_new:
            # New adjacency, or a neighbour that rebooted with an empty
            # database: (re)announce ourselves and give it the full map.
            self._originate_lsa()
            for lsa in self.lsdb.values():
                self._send_lsa(lsa, src)

    def _check_dead_neighbors(self) -> None:
        now = self.sim.now
        dead = [rid for rid, nbr in self.neighbors.items()
                if now - nbr.last_heard > self.dead_interval]
        for rid in dead:
            del self.neighbors[rid]
        if dead:
            self._originate_lsa()

    def _age_lsdb(self) -> None:
        now = self.sim.now
        expired = [rid for rid, lsa in self.lsdb.items()
                   if rid != self.router_id and now - lsa.received_at > self.max_age]
        for rid in expired:
            del self.lsdb[rid]
        if expired:
            self._run_spf()

    def _iface_for(self, src: Address) -> Optional[Interface]:
        for iface in self.node.interfaces:
            if iface.prefix.contains(src):
                return iface
        return None

    # ------------------------------------------------------------------
    # LSA origination and flooding
    # ------------------------------------------------------------------
    def _originate_lsa(self) -> None:
        if not self._running or not self.node.up:
            return
        self._seq += 1
        lsa = _Lsa(
            router_id=self.router_id,
            seq=self._seq,
            neighbors=[(nbr.router_id, nbr.cost)
                       for nbr in self.neighbors.values()],
            prefixes=[iface.prefix for iface in self.node.interfaces if iface.up],
            received_at=self.sim.now,
        )
        self.lsdb[self.router_id] = lsa
        self._flood(lsa, exclude=None)
        self._run_spf()

    def _flood(self, lsa: _Lsa, exclude: Optional[int]) -> None:
        for nbr in self.neighbors.values():
            if nbr.router_id == exclude:
                continue
            self._send_lsa(lsa, nbr.address)

    def _send_lsa(self, lsa: _Lsa, to: Address) -> None:
        payload = lsa.pack()
        self.stats.updates_sent += 1
        self.stats.bytes_sent += len(payload)
        self._lsa_sock.sendto(payload, to, LSA_PORT, ttl=4)

    def _lsa_received(self, payload: bytes, src: Address, src_port: int) -> None:
        if not self._running or not self.node.up:
            return
        lsa = _Lsa.unpack(payload)
        if lsa is None or lsa.router_id == self.router_id:
            return
        self.stats.updates_received += 1
        current = self.lsdb.get(lsa.router_id)
        if current is not None and current.seq >= lsa.seq:
            return  # old news
        lsa.received_at = self.sim.now
        self.lsdb[lsa.router_id] = lsa
        # Reflood to everyone except the sender's router.
        sender_rid = None
        for nbr in self.neighbors.values():
            if nbr.address == src:
                sender_rid = nbr.router_id
                break
        self._flood(lsa, exclude=sender_rid)
        self._run_spf()

    # ------------------------------------------------------------------
    # Shortest-path computation
    # ------------------------------------------------------------------
    def _run_spf(self) -> None:
        """Dijkstra over the LSDB; install routes via first-hop neighbours."""
        self.stats.full_recomputations += 1
        # Build adjacency: edge exists only if BOTH ends advertise it.
        graph: dict[int, dict[int, int]] = {}
        for rid, lsa in self.lsdb.items():
            graph.setdefault(rid, {})
            for nbr_rid, cost in lsa.neighbors:
                graph[rid][nbr_rid] = cost
        dist: dict[int, int] = {self.router_id: 0}
        first_hop: dict[int, int] = {}
        heap: list[tuple[int, int, Optional[int]]] = [(0, self.router_id, None)]
        visited: set[int] = set()
        while heap:
            d, rid, hop = heapq.heappop(heap)
            if rid in visited:
                continue
            visited.add(rid)
            if hop is not None:
                first_hop[rid] = hop
            for nbr_rid, cost in graph.get(rid, {}).items():
                # Bidirectionality check against the neighbour's own LSA.
                back = graph.get(nbr_rid, {})
                if rid not in back:
                    continue
                nd = d + cost
                if nbr_rid not in dist or nd < dist[nbr_rid]:
                    dist[nbr_rid] = nd
                    next_hop = hop if hop is not None else nbr_rid
                    heapq.heappush(heap, (nd, nbr_rid, next_hop))
        self._install_routes(dist, first_hop)

    def _install_routes(self, dist: dict[int, int],
                        first_hop: dict[int, int]) -> None:
        self.node.routes.withdraw_by_source("ls")
        local_prefixes = {iface.prefix for iface in self.node.interfaces}
        for rid, lsa in self.lsdb.items():
            if rid == self.router_id or rid not in dist:
                continue
            hop_rid = first_hop.get(rid)
            nbr = self.neighbors.get(hop_rid) if hop_rid is not None else None
            if nbr is None:
                continue
            for prefix in lsa.prefixes:
                if prefix in local_prefixes:
                    continue
                existing = self.node.routes.get(prefix)
                if existing is not None and existing.source == "ls" and existing.metric <= dist[rid]:
                    continue
                self.node.routes.install(Route(
                    prefix=prefix, interface=nbr.interface,
                    next_hop=nbr.address, metric=dist[rid], source="ls",
                    learned_from=nbr.address))

    # ------------------------------------------------------------------
    @property
    def table_size(self) -> int:
        return sum(1 for r in self.node.routes.routes() if r.source == "ls")

    @property
    def lsdb_size_bytes(self) -> int:
        """Total LSDB state held (E4's per-node memory metric)."""
        return sum(len(lsa.pack()) for lsa in self.lsdb.values())
