"""Routing: the derivable, rebuildable state gateways are allowed to keep."""

from .base import INFINITY_METRIC, RouteAdvert, RoutingStats, pack_adverts, unpack_adverts
from .distance_vector import DV_PORT, DistanceVectorRouting
from .egp import EGP_PORT, EgpRoute, ExteriorGateway
from .link_state import HELLO_PORT, LSA_PORT, LinkStateRouting
from .static import add_default_route, add_static_route

__all__ = [
    "DistanceVectorRouting",
    "LinkStateRouting",
    "ExteriorGateway",
    "EgpRoute",
    "RouteAdvert",
    "RoutingStats",
    "pack_adverts",
    "unpack_adverts",
    "add_static_route",
    "add_default_route",
    "INFINITY_METRIC",
    "DV_PORT",
    "EGP_PORT",
    "HELLO_PORT",
    "LSA_PORT",
]
