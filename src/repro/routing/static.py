"""Static route configuration helpers."""

from __future__ import annotations

from typing import Union

from ..ip.address import Address, Prefix
from ..ip.forwarding import Route
from ..ip.node import Node

__all__ = ["add_static_route", "add_default_route"]


def add_static_route(node: Node, prefix: Union[str, Prefix],
                     next_hop: Union[str, Address],
                     *, metric: int = 1) -> Route:
    """Install a static route via a directly connected next hop.

    The outgoing interface is derived from the next hop's address — a
    next hop must be on a connected network.
    """
    if isinstance(prefix, str):
        prefix = Prefix.parse(prefix)
    hop = Address(next_hop)
    for iface in node.interfaces:
        if iface.prefix.contains(hop):
            route = Route(prefix=prefix, interface=iface, next_hop=hop,
                          metric=metric, source="static")
            node.routes.install(route)
            return route
    raise ValueError(f"next hop {hop} is not on any connected network of {node.name}")


def add_default_route(node: Node, next_hop: Union[str, Address]) -> Route:
    """Install 0.0.0.0/0 via the given next hop — the classic host config."""
    return add_static_route(node, "0.0.0.0/0", next_hop)
