"""Shared machinery for the routing protocols.

Routing state is the one kind of state the architecture allows inside the
network, precisely because it is *derivable*: a gateway can crash, reboot
empty, and relearn everything from its neighbours (goal 1).  The protocols
here install :class:`~repro.ip.forwarding.Route` entries into their node's
table and carry their chatter over UDP — so routing traffic competes for
the same links as user traffic, and its overhead is measurable (E4).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable

from ..ip.address import Address, Prefix

__all__ = ["RouteAdvert", "pack_adverts", "unpack_adverts", "RoutingStats",
           "INFINITY_METRIC"]

#: RIP-style infinity: unreachable.
INFINITY_METRIC = 16

_ENTRY_FMT = "!4sBB"
_ENTRY_LEN = struct.calcsize(_ENTRY_FMT)


@dataclass(frozen=True)
class RouteAdvert:
    """One advertised destination: a prefix and its metric."""

    prefix: Prefix
    metric: int


def pack_adverts(adverts: Iterable[RouteAdvert]) -> bytes:
    """Serialize adverts to the compact wire form (6 bytes each)."""
    out = bytearray()
    for advert in adverts:
        out.extend(struct.pack(_ENTRY_FMT, advert.prefix.network.to_bytes(),
                               advert.prefix.length,
                               min(advert.metric, INFINITY_METRIC)))
    return bytes(out)


def unpack_adverts(data: bytes) -> list[RouteAdvert]:
    """Parse a packed advert list; trailing garbage is ignored."""
    adverts = []
    for i in range(0, len(data) - _ENTRY_LEN + 1, _ENTRY_LEN):
        network, length, metric = struct.unpack(_ENTRY_FMT,
                                                data[i : i + _ENTRY_LEN])
        try:
            prefix = Prefix(Address.from_bytes(network), length)
        except Exception:
            continue
        adverts.append(RouteAdvert(prefix, metric))
    return adverts


@dataclass
class RoutingStats:
    """Protocol chatter counters: the cost side of experiment E4."""

    updates_sent: int = 0
    updates_received: int = 0
    bytes_sent: int = 0
    triggered_updates: int = 0
    routes_expired: int = 0
    full_recomputations: int = 0
