"""Conservative-lookahead parallel simulation, sharded at the AS seam.

The paper's internet is "a network of networks" administered by different
entities (goal 4); the simulator exploits exactly that seam for parallelism.
Each autonomous system (or group of them) becomes a *shard*: an independent
:class:`~repro.sim.engine.Simulator` carrying the AS's gateways, hosts,
links and IGP.  Shards touch only at inter-AS links, and an inter-AS link
has irreducible latency — a packet handed to it at time *t* cannot affect
the far side before ``t + delay``.  That latency is the classic
*conservative lookahead* window of parallel discrete-event simulation
(Chandy/Misra/Bryant): every shard may safely run ``W = min inter-AS
delay`` ahead of the barrier without waiting, because nothing a peer emits
in the current window can arrive inside it (serialization time is strictly
positive, so arrivals land strictly beyond ``T + W``).

Execution alternates compute windows and message barriers::

    while T < until:
        T' = min(T + W, until)
        deliver to each shard every pending cross-shard message with
            arrival <= T'   (all were emitted before T, so none is late)
        run every shard to T'                      (parallel, no contact)
        drain each shard's outbox; merge deterministically
        T = T'

Cross-shard links are *conduits*: the egress half (:class:`ConduitPort`)
is an ordinary medium that charges serialization and propagation exactly
like a :class:`~repro.netlayer.link.PointToPointLink`, but instead of
scheduling a local arrival it serializes the datagram to RFC-791 wire
bytes and appends ``(arrival, dst_shard, dst_port, wire, trace_id)`` to
the shard's outbox.  The ingress half parses the bytes back — through the
destination shard's :class:`~repro.ip.flyweight.PacketPool` when pooling
is on, interning the addresses — and delivers to the attached interface.
Crossing the seam by value, never by reference, is what makes one-process
and N-process execution indistinguishable.

Determinism
-----------
Same seed ⇒ byte-identical results at any worker count:

* each shard owns its simulator, random streams and address space, so its
  intra-window execution is sequential and seeded;
* drained messages are merged in ``(arrival, src_shard, emission_index)``
  order before delivery, so the destination simulator's insertion order —
  its tie-break for same-timestamp events — is reproducible;
* ``workers=1`` runs every shard harness in-process through the *same*
  window loop; ``workers=N`` forks one process per shard and moves the
  identical tuples over pipes.  Nothing about the schedule depends on
  which mode executed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import Callable, Optional

from .engine import SimulationError, Simulator

__all__ = ["ConduitPort", "ShardBuild", "ShardHarness", "ShardedSimulation"]


class ConduitPort:
    """Egress half of an inter-AS link that crosses a shard boundary.

    Attaches to one interface as its medium and mirrors
    :class:`~repro.netlayer.link.PointToPointLink` timing — per-direction
    serialization at ``bandwidth_bps``, then ``delay`` of propagation —
    so a topology partitioned across shards keeps the exact packet timing
    it has in one process.  The delivery itself becomes an outbox record
    for the orchestrator instead of a local event.
    """

    FRAME_OVERHEAD = 8  # match PointToPointLink framing
    is_shared = False   # point-to-point semantics for pool release

    def __init__(
        self,
        sim: Simulator,
        iface,
        *,
        dst_shard: int,
        dst_port: str,
        outbox: list,
        bandwidth_bps: float = 56_000.0,
        delay: float = 0.005,
        mtu: int = 1006,
        name: str = "",
    ):
        if delay <= 0:
            raise ValueError("a cross-shard conduit must have positive delay "
                             "(it is the lookahead window)")
        self.sim = sim
        self.iface = iface
        self.dst_shard = dst_shard
        self.dst_port = dst_port
        self.outbox = outbox
        self.bandwidth_bps = bandwidth_bps
        self.delay = delay
        self.mtu = mtu
        self.name = name or f"conduit:{iface.name}->{dst_shard}:{dst_port}"
        self._busy_until = 0.0
        iface.medium = self

    def is_up(self) -> bool:
        return True

    def transmit(self, iface, datagram, next_hop) -> None:
        size = datagram.total_length + self.FRAME_OVERHEAD
        tx_time = size * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + tx_time
        iface.stats.packets_sent += 1
        iface.stats.bytes_sent += datagram.total_length
        iface.stats.link_header_bytes += self.FRAME_OVERHEAD
        arrival = start + tx_time + self.delay
        self.outbox.append(
            (arrival, self.dst_shard, self.dst_port, datagram.to_bytes(),
             datagram.trace_id))
        # Serialized by value: the local shell's life ends at the seam.
        node = iface.node
        if node is not None and node.packet_pool is not None:
            node.packet_pool.release(datagram)


@dataclass
class ShardBuild:
    """What a shard builder hands back to the harness.

    ``builder(shard_id, n_shards) -> ShardBuild`` must be deterministic in
    its arguments (seed everything from them) and, for forked execution,
    importable/picklable.
    """

    #: Object owning ``.sim`` (an Internet, or anything with a Simulator).
    net: object
    #: Ingress attachment points: port name -> Interface.  Cross-shard
    #: messages addressed to a port are parsed and delivered here.
    ports: dict = field(default_factory=dict)
    #: The list every local ConduitPort appends egress records to.
    outbox: list = field(default_factory=list)
    #: Optional picklable stats summary, fetched once after the run.
    collect: Optional[Callable[[], dict]] = None


class ShardHarness:
    """One shard's runtime: its simulator, conduits and ingress ports."""

    def __init__(self, shard_id: int, n_shards: int,
                 builder: Callable[[int, int], ShardBuild]):
        self.shard_id = shard_id
        self.build = builder(shard_id, n_shards)
        self.sim: Simulator = self.build.net.sim
        self._cpu_base = process_time()

    def deliver(self, messages) -> None:
        """Schedule arrivals for this window's cross-shard messages.

        ``messages`` come pre-merged in ``(arrival, src_shard,
        emission_index)`` order; posting them in that order fixes the
        destination heap's tie-break, so delivery is deterministic.
        """
        ports = self.build.ports
        net = self.build.net
        pool = getattr(net, "packet_pool", None)
        sim = self.sim
        now = sim.now
        for arrival, port_name, wire, trace_id in messages:
            if arrival < now:
                raise SimulationError(
                    f"late cross-shard message: arrival {arrival} < now {now} "
                    f"(lookahead window too wide for the conduit delays)")
            iface = ports[port_name]
            sim.post_at(arrival,
                        _Ingress(iface, wire, trace_id, pool),
                        label=f"conduit:{port_name}")

    def run_window(self, until: float) -> list:
        """Advance to the barrier; return (and clear) the egress outbox."""
        self.sim.run(until=until)
        outbox = self.build.outbox
        if outbox:
            out, outbox[:] = list(outbox), []
            return out
        return []

    def collect(self) -> dict:
        summary = self.build.collect() if self.build.collect is not None else {}
        summary.setdefault("shard", self.shard_id)
        summary["events_processed"] = self.sim.events_processed
        summary["cpu_seconds"] = process_time() - self._cpu_base
        return summary


class _Ingress:
    """Deferred ingress parse+deliver (cheaper than a closure per packet)."""

    __slots__ = ("iface", "wire", "trace_id", "pool")

    def __init__(self, iface, wire, trace_id, pool):
        self.iface = iface
        self.wire = wire
        self.trace_id = trace_id
        self.pool = pool

    def __call__(self) -> None:
        if self.pool is not None:
            datagram = self.pool.from_wire(self.wire, trace_id=self.trace_id)
        else:
            from ..ip.packet import Datagram

            datagram = Datagram.from_bytes(self.wire)
            datagram.trace_id = self.trace_id
        self.iface.deliver(datagram)


def _worker_main(conn, shard_id: int, n_shards: int, builder) -> None:
    """Child-process loop: build the shard, then serve barrier commands."""
    harness = ShardHarness(shard_id, n_shards, builder)
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "run":
                _op, until, messages = cmd
                harness.deliver(messages)
                conn.send(harness.run_window(until))
            elif op == "collect":
                conn.send(harness.collect())
            elif op == "stop":
                break
    finally:
        conn.close()


class ShardedSimulation:
    """Orchestrates N shard harnesses through lookahead windows.

    Parameters
    ----------
    builder:
        ``builder(shard_id, n_shards) -> ShardBuild``; must derive all of
        its randomness from its arguments.
    n_shards:
        The topology partition — part of the *scenario*, not of the
        execution: results depend on it, never on ``workers``.
    lookahead:
        The window width ``W``.  Must not exceed any conduit's delay; a
        violation surfaces as a "late cross-shard message" error rather
        than silent nondeterminism.
    workers:
        1 runs every harness in this process (no forks, zero IPC); > 1
        forks ``min(workers, n_shards)`` processes, one per shard, and is
        byte-identical to ``workers=1`` by construction.
    """

    def __init__(self, builder, n_shards: int, *, lookahead: float,
                 workers: int = 1):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if lookahead <= 0:
            raise ValueError("lookahead must be positive")
        self.builder = builder
        self.n_shards = n_shards
        self.lookahead = lookahead
        self.workers = max(1, min(workers, n_shards))
        self._closed = False
        self.wall_seconds = 0.0
        self._now = 0.0
        self._windows = 0
        self._messages_crossed = 0
        #: Undelivered cross-shard messages as
        #: (arrival, src_shard, emission_index, dst_shard, port, wire, tid).
        self._pending: list[tuple] = []
        self._harnesses: list[ShardHarness] = []
        self._procs: list = []
        self._conns: list = []
        if self.workers == 1:
            self._harnesses = [ShardHarness(i, n_shards, builder)
                               for i in range(n_shards)]
        else:
            import multiprocessing as mp

            ctx = mp.get_context("fork")
            for i in range(n_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(target=_worker_main,
                                   args=(child, i, n_shards, builder),
                                   daemon=True)
                proc.start()
                child.close()
                self._procs.append(proc)
                self._conns.append(parent)

    @property
    def now(self) -> float:
        return self._now

    @property
    def windows(self) -> int:
        """Barrier rounds executed so far."""
        return self._windows

    @property
    def messages_crossed(self) -> int:
        """Cross-shard messages merged so far."""
        return self._messages_crossed

    # ------------------------------------------------------------------
    def run(self, until: float) -> float:
        """Advance every shard to ``until`` through lookahead windows."""
        self._check_open()
        t0 = perf_counter()
        W = self.lookahead
        base = self._now
        k = 0
        while self._now < until:
            k += 1
            t_next = min(base + k * W, until)
            batches = self._split_deliverable(t_next)
            outboxes = self._round(t_next, batches)
            merged = []
            for src_shard, outbox in enumerate(outboxes):
                for index, record in enumerate(outbox):
                    arrival, dst_shard, port, wire, tid = record
                    if arrival <= t_next:
                        raise SimulationError(
                            f"conduit violated lookahead: message for shard "
                            f"{dst_shard} arrives at {arrival} <= barrier "
                            f"{t_next}")
                    merged.append((arrival, src_shard, index, dst_shard,
                                   port, wire, tid))
            self._messages_crossed += len(merged)
            self._pending.extend(merged)
            self._windows += 1
            self._now = t_next
        self.wall_seconds += perf_counter() - t0
        return self._now

    def _split_deliverable(self, t_next: float) -> list[list]:
        """Messages due by ``t_next``, per destination shard, merge-sorted."""
        if self._pending:
            due = [m for m in self._pending if m[0] <= t_next]
            if due:
                self._pending = [m for m in self._pending if m[0] > t_next]
                due.sort(key=lambda m: (m[0], m[1], m[2]))
        else:
            due = []
        batches: list[list] = [[] for _ in range(self.n_shards)]
        for arrival, _src, _idx, dst_shard, port, wire, tid in due:
            batches[dst_shard].append((arrival, port, wire, tid))
        return batches

    def _round(self, t_next: float, batches: list[list]) -> list[list]:
        if self.workers == 1:
            out = []
            for harness, batch in zip(self._harnesses, batches):
                harness.deliver(batch)
                out.append(harness.run_window(t_next))
            return out
        for i, (conn, batch) in enumerate(zip(self._conns, batches)):
            self._send(i, conn, ("run", t_next, batch))
        return [self._recv(i, conn) for i, conn in enumerate(self._conns)]

    # ------------------------------------------------------------------
    def collect(self) -> list[dict]:
        """Per-shard stats summaries (see :attr:`ShardBuild.collect`)."""
        self._check_open()
        if self.workers == 1:
            return [h.collect() for h in self._harnesses]
        for i, conn in enumerate(self._conns):
            self._send(i, conn, ("collect",))
        return [self._recv(i, conn) for i, conn in enumerate(self._conns)]

    def _check_open(self) -> None:
        if self._closed:
            raise SimulationError(
                "ShardedSimulation is closed: run/collect before close() "
                "or before leaving the `with` block")

    def _send(self, shard_id: int, conn, payload) -> None:
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError) as exc:
            raise SimulationError(
                f"shard worker {shard_id} is gone — it likely crashed "
                f"(its traceback was printed to stderr)") from exc

    def _recv(self, shard_id: int, conn):
        try:
            return conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise SimulationError(
                f"shard worker {shard_id} died mid-command — see its "
                f"traceback on stderr") from exc

    def close(self) -> None:
        """Shut worker processes down (no-op for in-process mode)."""
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        self._conns = []
        self._procs = []

    def __enter__(self) -> "ShardedSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
