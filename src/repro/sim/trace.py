"""Structured tracing for simulation runs.

The 1988 testbed was debugged with packet traces; this module provides the
equivalent: a ring-buffered, filterable trace of protocol events that tests
and the examples use to assert on *sequences* of behaviour (e.g. "the SYN was
retransmitted exactly twice before the connection established").

The buffer is a true ring: when it fills, the *oldest* records are evicted
so the trace always holds the most recent ``capacity`` events.  That is the
property failure analysis needs — after a fault, the interesting records are
the post-failure tail, not the steady-state preamble.  ``dropped`` counts
evictions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    component: str  # e.g. "tcp", "ip", "link", "routing"
    node: str       # node name, or "" for global events
    event: str      # short event tag, e.g. "retransmit", "frag", "drop"
    detail: str = ""


class Tracer:
    """Collects the most recent :class:`TraceRecord` entries in a ring.

    Components call :meth:`log`; tests query with :meth:`records` and
    :meth:`count`.  When the ring is full, logging a new record evicts the
    oldest one (counted in :attr:`dropped`).  A disabled tracer
    (``enabled=False``) is near-free.
    """

    def __init__(self, capacity: int = 200_000, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0
        self._sink_errors = 0
        self._sinks: list[Callable[[TraceRecord], None]] = []

    def log(self, time: float, component: str, node: str, event: str,
            detail: str = "") -> None:
        """Record one event, evicting the oldest when the ring is full
        (no-op when disabled).

        The record is admitted to the ring *before* sinks run, and a
        raising sink is isolated (counted in :attr:`sink_errors`) rather
        than aborting the log call — otherwise a bad live listener could
        both lose the record from the ring *and* starve later sinks,
        leaving the trace inconsistent with what the sinks saw.
        """
        if not self.enabled:
            return
        record = TraceRecord(time, component, node, event, detail)
        if len(self._records) >= self.capacity:
            self._dropped += 1  # the deque evicts the oldest on append
        self._records.append(record)
        for sink in self._sinks:
            try:
                sink(record)
            except Exception:
                self._sink_errors += 1

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Attach a live listener (e.g. a console printer in examples)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(
        self,
        component: Optional[str] = None,
        node: Optional[str] = None,
        event: Optional[str] = None,
    ) -> list[TraceRecord]:
        """Return records matching all given filters (None = wildcard)."""
        out = []
        for r in self._records:
            if component is not None and r.component != component:
                continue
            if node is not None and r.node != node:
                continue
            if event is not None and r.event != event:
                continue
            out.append(r)
        return out

    def count(self, **filters) -> int:
        """Count records matching the filters of :meth:`records`."""
        return len(self.records(**filters))

    def tail(self, n: int = 10) -> list[TraceRecord]:
        """The most recent ``n`` records (the post-failure excerpt the
        chaos monitors attach to invariant violations)."""
        if n <= 0:
            return []
        return list(self._records)[-n:]

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0
        self._sink_errors = 0

    @property
    def dropped(self) -> int:
        """Records discarded because the buffer filled."""
        return self._dropped

    @property
    def sink_errors(self) -> int:
        """Exceptions raised (and isolated) by attached sinks."""
        return self._sink_errors

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[TraceRecord]:
        return iter(self._records)


class NullTracer(Tracer):
    """A tracer that records nothing; default for benchmark runs."""

    def __init__(self):
        super().__init__(capacity=0, enabled=False)

    def log(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        return
