"""Discrete-event simulation engine.

This is the substrate on which the whole internetwork runs.  The paper's
system was a live testbed (ARPANET, SATNET, packet radio); here every
component — links, gateways, host protocol stacks, applications — is driven
by a single deterministic event scheduler so that experiments are exactly
repeatable.

The engine is deliberately small and explicit:

* :class:`Simulator` owns the clock and a binary-heap event queue.
* Heap entries are plain tuples ``(time, priority, seqno, payload, label)``
  so that heap comparisons run at C speed and never reach the payload
  (``seqno`` is unique).  ``payload`` is either a bare callable — a
  *fire-and-forget* event posted with :meth:`Simulator.post` /
  :meth:`Simulator.post_at`, which allocates nothing but the tuple — or an
  :class:`Event` record when the caller needs a cancellation handle
  (:meth:`Simulator.schedule` / :meth:`Simulator.call_at`).
* The :meth:`Simulator.run` loop pops and fires inline (no per-event
  method call), batching same-timestamp runs through one tight cycle.

The split matters at internet scale: the overwhelming majority of events
(every packet hop on every medium) are never cancelled, so they need no
handle, no mutable record and no lazy-deletion bookkeeping — just a heap
tuple.  Cancellable timers (TCP RTO, routing periodics, reassembly) still
get the full :class:`Event`/:class:`EventHandle` treatment, with
``__slots__`` keeping the record small.

Determinism rules
-----------------
Two events at the same timestamp fire in (priority, insertion-order).  All
randomness must come from :class:`repro.sim.rand.RandomStreams`, never from
the global :mod:`random` module, so that a seed fully determines a run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from time import perf_counter
from typing import Callable, Optional

__all__ = ["Event", "EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


class Event:
    """The mutable record behind a *cancellable* scheduled action.

    Only events that hand out an :class:`EventHandle` allocate one of
    these; fire-and-forget events live entirely in their heap tuple.
    Ordering lives in the heap tuple (time, priority, seqno), not here.
    """

    __slots__ = ("time", "priority", "seqno", "action", "cancelled",
                 "fired", "label")

    def __init__(self, time: float, priority: int, seqno: int,
                 action: Callable[[], None], cancelled: bool = False,
                 fired: bool = False, label: str = ""):
        self.time = time
        self.priority = priority
        self.seqno = seqno
        self.action = action
        self.cancelled = cancelled
        self.fired = fired
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired
                                                    else "pending")
        return f"<Event t={self.time} prio={self.priority} {state} {self.label!r}>"


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Allows cancellation and rescheduling of a pending event; this is how
    protocol timers (TCP retransmission, routing periodic updates, soft-state
    timeouts) are implemented.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is pending (not fired and not cancelled).

        Fired state is tracked explicitly: an event that fired at
        ``time == sim.now`` is *not* active, even though its timestamp
        equals the clock.
        """
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        event = self._event
        if event.fired or event.cancelled:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator:
    """The discrete-event scheduler and simulation clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run(until=10.0)

    Parameters
    ----------
    trace:
        Optional callable ``(time, label) -> None`` invoked before every
        event fires; used by :mod:`repro.sim.trace` for debugging.
    """

    #: Don't bother compacting tiny queues; rebuild cost would dominate.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None):
        self._now = 0.0
        # Heap of (time, priority, seqno, payload, label); payload is a
        # bare callable (fire-and-forget) or an Event (cancellable).
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self._trace = trace
        self._events_processed = 0
        self._running = False
        self._stop_requested = False
        self._cancelled_in_queue = 0
        self._compactions = 0
        #: Optional :class:`~repro.obs.profile.SimProfiler` (anything with
        #: ``record(label, wall_seconds)``).  When set, every fired event
        #: is timed and attributed to its label; when None (the default)
        #: the only cost is one ``is None`` check per event.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Count of events fired so far (diagnostic)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events still queued.

        Cancelled husks awaiting lazy deletion are excluded.  O(1): the
        simulator counts cancellations instead of scanning the heap.
        """
        return len(self._queue) - self._cancelled_in_queue

    @property
    def queue_size(self) -> int:
        """Physical heap size, cancelled husks included (diagnostic)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap has been rebuilt to shed husks."""
        return self._compactions

    # ------------------------------------------------------------------
    # Lazy-deletion compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for a not-yet-fired event.

        When cancelled husks outnumber live events (more than half the
        queue), rebuild the heap without them so memory and pop cost track
        the *live* event count — timer-heavy workloads (TCP retransmission
        timers that almost always get cancelled) would otherwise accumulate
        husks without bound.
        """
        self._cancelled_in_queue += 1
        queue_len = len(self._queue)
        if (
            queue_len >= self.COMPACT_MIN_QUEUE
            and self._cancelled_in_queue * 2 > queue_len
        ):
            self._compact()

    def _compact(self) -> None:
        # In-place (slice assignment): run() holds a local alias to the
        # heap list, and compaction can trigger mid-run from a cancel
        # inside a fired action — rebinding would strand that alias.
        self._queue[:] = [
            entry for entry in self._queue
            if type(entry[3]) is not Event or not entry[3].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns a handle that can
        cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.call_at(self._now + delay, action, priority=priority, label=label)

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seqno = next(self._seq)
        event = Event(time, priority, seqno, action, label=label)
        heapq.heappush(self._queue, (time, priority, seqno, event, label))
        return EventHandle(event, self)

    def post(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle, no Event record.

        The hot-path variant for the overwhelming majority of events that
        are never cancelled (packet arrivals, transmissions, traffic
        ticks).  Costs one heap tuple; returns nothing.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        heapq.heappush(self._queue,
                       (time, priority, next(self._seq), action, label))

    def post_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Fire-and-forget :meth:`call_at` (see :meth:`post`)."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        heapq.heappush(self._queue,
                       (time, priority, next(self._seq), action, label))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False when the queue is dry."""
        queue = self._queue
        while queue:
            time, _priority, _seqno, payload, label = heapq.heappop(queue)
            if type(payload) is Event:
                if payload.cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                payload.fired = True
                action = payload.action
            else:
                action = payload
            self._now = time
            if self._trace is not None:
                self._trace(time, label)
            self._events_processed += 1
            profiler = self.profiler
            if profiler is None:
                action()
            else:
                t0 = perf_counter()
                action()
                profiler.record(label, perf_counter() - t0)
            return True
        return False

    def run(self, until: float = math.inf, max_events: int = 50_000_000) -> float:
        """Run until the queue empties, ``until`` is reached, or stop().

        Returns the simulation time at which the run ended.  Events scheduled
        exactly at ``until`` do fire; later ones remain queued.  At most
        ``max_events`` events fire: the limit is exact — if a further event
        is still due within ``until`` once it is reached,
        :class:`SimulationError` is raised.
        """
        self._running = True
        self._stop_requested = False
        fired = 0
        # Hot loop: everything bound locally, events fired inline (no
        # step() call per event).  Same-timestamp runs go through the same
        # tight cycle back to back — one pop, one fire, no re-entry.
        queue = self._queue
        heappop = heapq.heappop
        event_t = Event
        try:
            while queue and not self._stop_requested:
                head = queue[0]
                payload = head[3]
                if type(payload) is event_t and payload.cancelled:
                    # Skip cancelled husks before peeking: a husk at the
                    # head with time <= until must not let a live event
                    # *beyond* ``until`` fire.
                    heappop(queue)
                    self._cancelled_in_queue -= 1
                    continue
                time = head[0]
                if time > until:
                    self._now = until if until != math.inf else self._now
                    break
                if fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                heappop(queue)
                label = head[4]
                if type(payload) is event_t:
                    payload.fired = True
                    action = payload.action
                else:
                    action = payload
                self._now = time
                if self._trace is not None:
                    self._trace(time, label)
                self._events_processed += 1
                fired += 1
                profiler = self.profiler
                if profiler is None:
                    action()
                else:
                    t0 = perf_counter()
                    action()
                    profiler.record(label, perf_counter() - t0)
            else:
                if until != math.inf and not self._stop_requested:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True
