"""Discrete-event simulation engine.

This is the substrate on which the whole internetwork runs.  The paper's
system was a live testbed (ARPANET, SATNET, packet radio); here every
component — links, gateways, host protocol stacks, applications — is driven
by a single deterministic event scheduler so that experiments are exactly
repeatable.

The engine is deliberately small and explicit:

* :class:`Simulator` owns the clock and a binary-heap event queue.
* :class:`Event` is an immutable record of (time, priority, seqno, action).
* Components schedule work with :meth:`Simulator.schedule` /
  :meth:`Simulator.call_at` and may cancel it via the returned handle.

Determinism rules
-----------------
Two events at the same timestamp fire in (priority, insertion-order).  All
randomness must come from :class:`repro.sim.rand.RandomStreams`, never from
the global :mod:`random` module, so that a seed fully determines a run.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

__all__ = ["Event", "EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulator (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled action.

    Ordering is (time, priority, seqno): earlier time first, then lower
    priority number, then FIFO among equals.  ``action`` and ``cancelled``
    are excluded from ordering.
    """

    time: float
    priority: int
    seqno: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Allows cancellation and rescheduling of a pending event; this is how
    protocol timers (TCP retransmission, routing periodic updates, soft-state
    timeouts) are implemented.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Absolute simulation time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is pending (not fired and not cancelled).

        Fired state is tracked explicitly: an event that fired at
        ``time == sim.now`` is *not* active, even though its timestamp
        equals the clock.
        """
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        event = self._event
        if event.fired or event.cancelled:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator:
    """The discrete-event scheduler and simulation clock.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run(until=10.0)

    Parameters
    ----------
    trace:
        Optional callable ``(time, label) -> None`` invoked before every
        event fires; used by :mod:`repro.sim.trace` for debugging.
    """

    #: Don't bother compacting tiny queues; rebuild cost would dominate.
    COMPACT_MIN_QUEUE = 64

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None):
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._trace = trace
        self._events_processed = 0
        self._running = False
        self._stop_requested = False
        self._cancelled_in_queue = 0
        self._compactions = 0
        #: Optional :class:`~repro.obs.profile.SimProfiler` (anything with
        #: ``record(label, wall_seconds)``).  When set, every fired event
        #: is timed and attributed to its label; when None (the default)
        #: the only cost is one ``is None`` check per event.
        self.profiler = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Count of events fired so far (diagnostic)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events still queued.

        Cancelled husks awaiting lazy deletion are excluded.  O(1): the
        simulator counts cancellations instead of scanning the heap.
        """
        return len(self._queue) - self._cancelled_in_queue

    @property
    def queue_size(self) -> int:
        """Physical heap size, cancelled husks included (diagnostic)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap has been rebuilt to shed husks."""
        return self._compactions

    # ------------------------------------------------------------------
    # Lazy-deletion compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel` for a not-yet-fired event.

        When cancelled husks outnumber live events (more than half the
        queue), rebuild the heap without them so memory and pop cost track
        the *live* event count — timer-heavy workloads (TCP retransmission
        timers that almost always get cancelled) would otherwise accumulate
        husks without bound.
        """
        self._cancelled_in_queue += 1
        queue_len = len(self._queue)
        if (
            queue_len >= self.COMPACT_MIN_QUEUE
            and self._cancelled_in_queue * 2 > queue_len
        ):
            self._compact()

    def _compact(self) -> None:
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns a handle that can
        cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.call_at(self._now + delay, action, priority=priority, label=label)

    def call_at(
        self,
        time: float,
        action: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` at an absolute simulation time."""
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, priority, next(self._seq), action, label=label)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False when the queue is dry."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._now = event.time
            if self._trace is not None:
                self._trace(self._now, event.label)
            self._events_processed += 1
            event.fired = True
            profiler = self.profiler
            if profiler is None:
                event.action()
            else:
                t0 = perf_counter()
                event.action()
                profiler.record(event.label, perf_counter() - t0)
            return True
        return False

    def run(self, until: float = math.inf, max_events: int = 50_000_000) -> float:
        """Run until the queue empties, ``until`` is reached, or stop().

        Returns the simulation time at which the run ended.  Events scheduled
        exactly at ``until`` do fire; later ones remain queued.
        """
        self._running = True
        self._stop_requested = False
        fired = 0
        try:
            while self._queue and not self._stop_requested:
                # Skip cancelled husks before peeking: a husk at the head
                # with time <= until must not let a live event *beyond*
                # ``until`` fire.
                while self._queue and self._queue[0].cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_queue -= 1
                if not self._queue:
                    continue  # re-check loop condition; hits the else clause
                if self._queue[0].time > until:
                    self._now = until if until != math.inf else self._now
                    break
                if not self.step():
                    break
                fired += 1
                if fired > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            else:
                if until != math.inf and not self._stop_requested:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True
