"""Deterministic random-number streams for the simulator.

Every stochastic element of the internetwork (link loss, jitter, failure
injection, workload arrival processes) draws from its own named stream so
that changing one component's consumption of randomness does not perturb the
others.  This is the standard "common random numbers" discipline for
simulation experiments: the E1 survivability sweep, for instance, uses the
same failure schedule for the datagram internet and for the virtual-circuit
baseline, so the comparison is paired.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

__all__ = ["RandomStreams"]


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a master seed and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> loss = streams.stream("link.loss")
    >>> jitter = streams.stream("link.jitter")

    Requesting the same name twice returns the same stream object, so a
    component may re-fetch its stream rather than hold a reference.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (lazily created) stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        return RandomStreams(_derive_seed(self.seed, f"fork:{name}"))

    # Convenience draws on an anonymous default stream -------------------
    def uniform(self, a: float, b: float) -> float:
        return self.stream("_default").uniform(a, b)

    def expovariate(self, rate: float) -> float:
        return self.stream("_default").expovariate(rate)

    def choice(self, seq):
        return self.stream("_default").choice(seq)

    def exponential_interarrivals(self, rate: float, name: str) -> Iterator[float]:
        """Yield an endless Poisson-process interarrival sequence."""
        stream = self.stream(name)
        while True:
            yield stream.expovariate(rate)
