"""Timer and periodic-process helpers built on the event engine.

Protocol machinery is full of restartable timers (TCP RTO, zero-window
probes, routing periodic updates, soft-state refresh).  These helpers give
each of those one obvious implementation instead of ad-hoc handle juggling.
"""

from __future__ import annotations

from typing import Callable, Optional

from .engine import EventHandle, Simulator

__all__ = ["Timer", "PeriodicProcess"]


class Timer:
    """A single restartable one-shot timer.

    The callback fires once per :meth:`start`; calling :meth:`start` while
    running reschedules (restarts) it.  This matches the semantics protocol
    specs assume for retransmission timers.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None],
                 label: str = "timer"):
        self._sim = sim
        self._callback = callback
        self._label = label
        self._handle: Optional[EventHandle] = None

    @property
    def running(self) -> bool:
        return self._handle is not None and self._handle.active

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or None when not running."""
        return self._handle.time if self.running else None

    def start(self, delay: float) -> None:
        """(Re)start the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._handle = self._sim.schedule(delay, self._fire, label=self._label)

    def stop(self) -> None:
        """Cancel the timer if pending."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicProcess:
    """Invokes a callback every ``interval`` seconds, with optional jitter.

    Routing protocols jitter their periodic updates to avoid
    synchronization; pass ``jitter_fn`` returning a per-cycle offset
    (typically drawn from a :class:`~repro.sim.rand.RandomStreams` stream).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter_fn: Optional[Callable[[], float]] = None,
        label: str = "periodic",
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter_fn = jitter_fn
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        return not self._stopped

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin firing; first fire after ``initial_delay`` (default: one
        interval, plus jitter)."""
        self._stopped = False
        delay = initial_delay if initial_delay is not None else self._next_delay()
        self._handle = self._sim.schedule(delay, self._fire, label=self._label)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        delay = self.interval
        if self._jitter_fn is not None:
            delay = max(1e-9, delay + self._jitter_fn())
        return delay

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._sim.schedule(
                self._next_delay(), self._fire, label=self._label
            )
