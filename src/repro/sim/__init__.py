"""Discrete-event simulation substrate (engine, timers, RNG, tracing)."""

from .engine import Event, EventHandle, SimulationError, Simulator
from .process import PeriodicProcess, Timer
from .rand import RandomStreams
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Timer",
    "PeriodicProcess",
    "RandomStreams",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
