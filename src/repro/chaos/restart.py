"""The fate-sharing closed loop, as a seeded campaign preset.

One scenario, end to end: a client host streams a deterministic payload to
a server over a resumable session while a :class:`~repro.chaos.faults.HostRestart`
fault power-cycles it — by default three times, mid-transfer.  Every layer
this PR built gets exercised in one run:

* the crash kills the client's TCP silently (fate-sharing);
* the server's keepalive probes and the reborn host's RSTs shed the
  half-open zombie (watched by the half-open-zombie monitor);
* the reborn stack honors RFC 793 quiet time before issuing ISNs
  (watched by the quiet-time monitor);
* the session layer redials with seeded backoff, defers to the quiet
  window, and replays exactly the unacknowledged suffix — the payload
  must arrive complete, in order, with zero duplicated bytes.

Everything is drawn from the internet's named random streams, so the same
seed produces a byte-identical campaign report — a red run in CI replays
locally from its seed alone.
"""

from __future__ import annotations

from typing import Optional

from ..harness.topology import Internet
from ..metrics.export import stats_dict
from ..session import ReconnectingStream, SessionListener
from ..tcp.connection import TcpConfig
from .campaign import FaultCampaign
from .faults import HostRestart
from .report import CampaignReport

__all__ = ["RestartScenario", "build_restart_scenario",
           "run_restart_campaign", "restart_payload"]


def restart_payload(length: int) -> bytes:
    """The deterministic application byte stream (seed-independent, so a
    corrupted delivery is attributable to the stack, not the generator)."""
    return bytes((i * 31 + 7) % 256 for i in range(length))


class RestartScenario:
    """A built-but-not-yet-run restart campaign with its live objects."""

    def __init__(self, net: Internet, campaign: FaultCampaign,
                 client: ReconnectingStream, listener: SessionListener,
                 payload: bytes, received: bytearray,
                 client_host: str, server_host: str,
                 run_until: float):
        self.net = net
        self.campaign = campaign
        self.client = client
        self.listener = listener
        self.payload = payload
        self.received = received
        self.client_host = client_host
        self.server_host = server_host
        self.run_until = run_until

    # ------------------------------------------------------------------
    def duplicated_bytes(self) -> int:
        """Bytes delivered beyond the longest prefix-match — double
        delivery shows up as extra length or a mismatched tail."""
        got = bytes(self.received)
        return max(0, len(got) - len(self.payload))

    def lost_bytes(self) -> int:
        got = bytes(self.received)
        return max(0, len(self.payload) - len(got))

    def payload_intact(self) -> bool:
        return bytes(self.received) == self.payload

    # ------------------------------------------------------------------
    def run(self) -> CampaignReport:
        """Run the campaign and fold transport/session counters into the
        report (still canonical: same seed ⇒ same bytes)."""
        report = self.campaign.run(until=self.run_until)
        net = self.net
        server_sessions = list(self.listener.sessions.values())
        session_server = (stats_dict(server_sessions[0].stats)
                          if server_sessions else {})
        client_stack = net.hosts[self.client_host].tcp
        server_stack = net.hosts[self.server_host].tcp
        report.counters.update({
            "payload_bytes": len(self.payload),
            "payload_delivered": len(self.received),
            "payload_lost_bytes": self.lost_bytes(),
            "payload_duplicated_bytes": self.duplicated_bytes(),
            "payload_intact": self.payload_intact(),
            "session_client": stats_dict(self.client.stats),
            "session_server": session_server,
            "tcp_client": _stack_counters(client_stack),
            "tcp_server": _stack_counters(server_stack),
        })
        return report


def _stack_counters(stack) -> dict:
    """The per-stack observation surface the restart loop touches, plus
    keepalive/RST counters aggregated over still-open connections."""
    out = {
        "isns_issued": stack.isns_issued,
        "isn_quiet_violations": stack.isn_quiet_violations,
        "quiet_time_drops": stack.quiet_time_drops,
        "refused_syns": stack.refused_syns,
        "resets_sent": stack.resets_sent,
        "bad_segments": stack.bad_segments,
    }
    keep_sent = keep_answered = rst_oow = 0
    for conn in stack.connections:
        keep_sent += conn.stats.keepalives_sent
        keep_answered += conn.stats.keepalives_answered
        rst_oow += conn.stats.rst_out_of_window
    out["keepalives_sent_open"] = keep_sent
    out["keepalives_answered_open"] = keep_answered
    out["rst_out_of_window_open"] = rst_oow
    return out


def build_restart_scenario(
    seed: int = 7,
    *,
    restarts: int = 3,
    dwell: float = 1.0,
    first_at: float = 3.0,
    spacing: float = 6.0,
    payload_len: int = 20_000,
    chunk: int = 400,
    chunk_interval: float = 0.4,
    quiet_time: float = 1.5,
    keepalive_idle: float = 3.0,
    keepalive_interval: float = 1.0,
    keepalive_probes: int = 3,
    port: int = 9000,
    monitors=None,
    trace: bool = False,
    settle: float = 10.0,
    tail: float = 25.0,
) -> RestartScenario:
    """Build the canonical restart topology, transfer, and fault schedule.

    H1 —— G1 —— G2 —— H2, distance-vector routing, keepalive-enabled TCP
    with a short (simulation-friendly) quiet time.  H1 streams the payload
    to H2 in paced chunks; ``restarts`` HostRestart faults hit H1 starting
    at ``first_at`` (relative to convergence), ``spacing`` apart.
    """
    if restarts < 1:
        raise ValueError("need at least one restart")
    cfg = TcpConfig(quiet_time=quiet_time,
                    keepalive_idle=keepalive_idle,
                    keepalive_interval=keepalive_interval,
                    keepalive_probes=keepalive_probes)
    net = Internet(seed=seed, trace=trace)
    h1 = net.host("H1", tcp_config=cfg)
    h2 = net.host("H2", tcp_config=cfg)
    g1, g2 = net.gateway("G1"), net.gateway("G2")
    net.connect(h1, g1)
    net.connect(g1, g2)
    net.connect(g2, h2)
    net.start_routing()
    net.converge(settle=settle)

    payload = restart_payload(payload_len)
    received = bytearray()
    listener = SessionListener(h2, port,
                               on_data=lambda _s, d: received.extend(d))
    client = ReconnectingStream(h1, h2.address, port,
                                rng=net.streams.stream("session.client"))
    client.start()
    for k in range(0, payload_len, chunk):
        net.sim.schedule(chunk_interval * (k // chunk),
                         lambda c=payload[k:k + chunk]: client.send(c),
                         label="session:app-send")

    now = net.sim.now
    faults = [HostRestart("H1", now + first_at + i * spacing, dwell)
              for i in range(restarts)]
    campaign = FaultCampaign(net, faults, monitors,
                             name=f"restart[seed={seed}]")
    send_end = now + chunk_interval * (payload_len // chunk)
    run_until = max(faults[-1].clear_time, send_end) + tail
    return RestartScenario(net, campaign, client, listener, payload,
                           received, "H1", "H2", run_until)


def run_restart_campaign(seed: int = 7, **kwargs) -> CampaignReport:
    """Build and run the seeded restart campaign; returns the report with
    payload-integrity and transport/session counters folded in."""
    return build_restart_scenario(seed, **kwargs).run()
