"""The three-way architecture race: datagram-FIFO vs hard-state VC vs
soft-state DRR flows, under one fault schedule.

Clark's closing outlook (§10) bets on a next-generation building block —
the *flow*, with its gateway state held **soft** ("the state ... can be
lost in a crash without permanent disruption of the service features
being used").  This campaign is that bet, scored:

* **fifo** — the 1988 datagram gateway: one queue, no flow state.  It
  survives every fault (nothing to lose) but at saturation voice drowns
  behind bulk.
* **vc** — the architecture the Internet rejected (:mod:`repro.vc`):
  per-conversation state in every switch.  Voice rides a placed call;
  when the gateway crashes, **the conversation dies** and must be
  re-placed from scratch.
* **drr** — the outlook: per-flow DRR scheduling with the voice flow's
  reservation installed/refreshed as soft state.  The crash loses the
  state, the flow *degrades*, and the very next refresh re-installs it —
  the :class:`FlowStateMonitor` turns that sentence into an invariant.

All three run the identical fault schedule (bottleneck flap, gateway
crash, far-side partition, bulk-host restart) on mirrored topologies; the
two datagram variants run the full invariant-monitor suite and the DRR
variant additionally carries the PR-5 management plane, whose
``flow-state-lost`` alarm gives an MTTD for lost reservations.  Same seed
⇒ byte-identical combined report.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..apps.voice import VoiceCodec
from ..harness.flowtopo import (BOTTLENECK_BPS, FlowTopology, RecordingMeter,
                                build_flow_topology)
from ..harness.tables import Table
from ..metrics.export import canonical_json, write_json
from ..netmgmt.alarms import RateRule
from ..netmgmt.campaign import ManagementPlane
from ..sim.engine import Simulator
from ..vc.network import VirtualCircuitNetwork
from .campaign import FaultCampaign
from .faults import GatewayCrash, HostRestart, LinkFlap, Partition
from .monitors import InvariantMonitor, default_monitors
from .report import CampaignReport

__all__ = ["FlowStateMonitor", "VcVoiceConversation", "FlowsRaceReport",
           "run_flows_campaign"]

# The shared fault schedule, relative to convergence (seconds).
FLAP_AT, FLAP_DWELL = 6.0, 3.0
CRASH_AT, CRASH_DWELL = 15.0, 4.0
PART_AT, PART_DWELL = 26.0, 3.0
RESTART_AT, RESTART_DWELL = 34.0, 4.0
DURATION = 45.0
RUN_UNTIL = 50.0
#: Clean saturation window: after the flap heals, before the crash.
SAT_WINDOW = (10.0, 15.0)


class FlowStateMonitor(InvariantMonitor):
    """Soft state must self-heal within one refresh interval.

    Tracks every :class:`~repro.flows.gateway.FlowGateway` in the net.
    When a ``gateway-crash`` fault clears, each reservation that was
    installed before the crash must be re-installed — same key, same
    weight, so the flow regains its reserved share on the next
    classification — within ``refresh_interval + grace`` seconds of the
    restore.  Anything slower means the endpoints' refresh discipline
    (or the gateway's install path) broke the paper's claim.
    """

    name = "soft-state-reinstalls"

    def __init__(self, refresh_interval: float, *, grace: float = 0.75):
        super().__init__()
        self.refresh_interval = refresh_interval
        self.grace = grace
        #: Successful re-installs: dicts with gateway/restored_at/delay.
        self.reinstalls: list[dict] = []
        self._gateways: list[tuple[str, object]] = []
        self._last_specs: dict[int, dict] = {}
        self._crashed: dict[int, list] = {}
        self._pending: list[dict] = []

    def attach(self, net, campaign) -> None:
        super().attach(net, campaign)
        self._gateways = [
            (name, fg)
            for name, node in sorted(net.nodes().items())
            for fg in node.flow_gateways
        ]
        self.sample()

    @staticmethod
    def _specs_of(fg) -> dict:
        return {spec.key: spec.weight for spec in fg.scheduler.installed_specs}

    def sample(self) -> None:
        for name, fg in self._gateways:
            if fg.node.up:
                self._last_specs[id(fg)] = self._specs_of(fg)
        self._check_pending(final=False)

    def on_fault_applied(self, fault) -> None:
        if getattr(fault, "kind", "") != "gateway-crash":
            return
        crashed = [(name, fg, self._last_specs.get(id(fg), {}))
                   for name, fg in self._gateways
                   if name == getattr(fault, "name", None)]
        if crashed:
            self._crashed[id(fault)] = crashed

    def on_fault_cleared(self, fault) -> None:
        for name, fg, expected in self._crashed.pop(id(fault), []):
            if not expected:
                continue
            now = self.net.sim.now
            self._pending.append({
                "gateway": name,
                "fg": fg,
                "expected": expected,
                "restored_at": now,
                "deadline": now + self.refresh_interval + self.grace,
            })

    def _check_pending(self, *, final: bool) -> None:
        if self.net is None:
            return
        now = self.net.sim.now
        still = []
        for entry in self._pending:
            current = self._specs_of(entry["fg"])
            missing = {key: weight
                       for key, weight in entry["expected"].items()
                       if current.get(key) != weight}
            if not missing:
                self.reinstalls.append({
                    "gateway": entry["gateway"],
                    "restored_at": entry["restored_at"],
                    "delay": round(now - entry["restored_at"], 6),
                })
            elif now > entry["deadline"]:
                self.violate(
                    f"{entry['gateway']}: {len(missing)} reservation(s) "
                    f"not re-installed within {self.refresh_interval:g}s "
                    f"(+{self.grace:g}s grace) of restore")
            elif not final:
                still.append(entry)
            # A still-pending entry at campaign end whose deadline has not
            # passed is undecided, not a violation.
        self._pending = still

    def finish(self) -> None:
        self._check_pending(final=True)


class VcVoiceConversation:
    """The voice conversation as the VC architecture would carry it.

    A placed call; frames sent at the codec rate whether or not the
    circuit is up (open-loop voice does not pause).  When the network
    tears the circuit down — its state died with a switch or trunk — the
    endpoint gets a disconnect and must redial.  Every frame emitted
    while there is no OPEN circuit is simply lost to the listener.
    """

    def __init__(self, sim: Simulator, vc: VirtualCircuitNetwork,
                 src: str, dst: str, *, duration: float,
                 deadline: float = 0.160, codec: VoiceCodec = VoiceCodec(),
                 redial_interval: float = 0.5):
        self.sim = sim
        self.vc = vc
        self.src = src
        self.dst = dst
        self.codec = codec
        self.redial_interval = redial_interval
        self.meter = RecordingMeter(deadline)
        self.conversations_died = 0
        self.redial_attempts = 0
        self.frames_refused = 0
        self.circuit = None
        self._seq = 0
        self._end = sim.now + duration
        self._place()
        self._emit()

    def _place(self) -> None:
        if self.sim.now >= self._end or self.circuit is not None:
            return
        circuit = self.vc.place_call(self.src, self.dst)
        if circuit is None:
            self.redial_attempts += 1
            self.sim.schedule(self.redial_interval, self._place,
                              label="vc:redial")
            return
        self.circuit = circuit
        circuit.on_data = self._arrive
        circuit.on_disconnect = self._died

    def _died(self) -> None:
        self.conversations_died += 1
        self.circuit = None
        self.sim.schedule(self.redial_interval, self._place,
                          label="vc:redial")

    def _arrive(self, data: bytes) -> None:
        (seq,) = struct.unpack("!I", data[:4])
        self.meter.received(seq, self.sim.now)

    def _emit(self) -> None:
        now = self.sim.now
        if now >= self._end:
            return
        self.meter.sent(self._seq, now)
        payload = struct.pack("!I", self._seq)
        payload += b"\x00" * (self.codec.frame_bytes - len(payload))
        if self.circuit is None or not self.circuit.send(payload):
            self.frames_refused += 1
        self._seq += 1
        self.sim.schedule(self.codec.interval, self._emit, label="vc:frame")

    def counters(self) -> dict:
        meter = self.meter
        stats = self.vc.stats
        return {
            "mode": "vc",
            "voice_frames_sent": meter.sent_count,
            "voice_frames_on_time": meter.on_time_count,
            "voice_usable_pct": meter.usable_pct(),
            "usable_saturation_pct": meter.usable_pct(*SAT_WINDOW),
            "frames_refused_no_circuit": self.frames_refused,
            "conversations_died": self.conversations_died,
            "redial_attempts": self.redial_attempts,
            "calls_placed": stats.calls_placed,
            "calls_connected": stats.calls_connected,
            "calls_refused": stats.calls_refused,
            "circuits_torn_down": stats.circuits_torn_down,
            "packets_lost_in_teardown": stats.packets_lost_in_teardown,
            "setup_messages": stats.setup_messages,
        }


class FlowsRaceReport:
    """The combined artifact: two campaign reports plus the VC mirror.

    Duck-types the slice of :class:`CampaignReport` the CLI gate uses
    (``ok`` / ``all_reconverged`` / ``violation_count`` / ``faults`` /
    ``counters`` / ``print`` / ``write``); serialization stays canonical
    so the same-seed byte-identity contract holds for the whole race.
    """

    def __init__(self, name: str, fifo: CampaignReport, drr: CampaignReport,
                 vc_counters: dict, race: dict):
        self.name = name
        self.fifo = fifo
        self.drr = drr
        self.vc = vc_counters
        self.race = race
        self.counters = {"race": race}

    @property
    def ok(self) -> bool:
        return self.fifo.ok and self.drr.ok

    @property
    def violation_count(self) -> int:
        return self.fifo.violation_count + self.drr.violation_count

    @property
    def all_reconverged(self) -> bool:
        return self.fifo.all_reconverged and self.drr.all_reconverged

    @property
    def faults(self) -> list:
        return self.drr.faults

    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "variants": {
                "fifo": self.fifo.to_dict(),
                "drr": self.drr.to_dict(),
                "vc": self.vc,
            },
            "race": self.race,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def write(self, path):
        return write_json(path, self.to_dict())

    def race_table(self) -> Table:
        table = Table(
            f"'{self.name}': voice under one fault schedule",
            ["discipline", "usable %", "at saturation %",
             "post-crash %", "conversation deaths"],
            note="post-crash = within one refresh interval of restore",
        )
        for key, label in (("fifo", "datagram FIFO"),
                           ("vc", "virtual circuit"),
                           ("drr", "soft-state DRR")):
            entry = self.race[key]
            table.add(
                label,
                _fmt(entry.get("voice_usable_pct")),
                _fmt(entry.get("usable_saturation_pct")),
                _fmt(entry.get("usable_post_recovery_pct")),
                entry.get("conversations_died", 0),
            )
        return table

    def print(self) -> None:
        self.drr.print()
        print()
        print(self.race_table().render())


def _fmt(value) -> str:
    return "-" if value is None else f"{value:.1f}"


def _window_counters(topo: FlowTopology, t0: float, crash_clear: float) -> dict:
    meter = topo.meter
    out = topo.counters()
    out["usable_saturation_pct"] = meter.usable_pct(t0 + SAT_WINDOW[0],
                                                    t0 + SAT_WINDOW[1])
    # Voice share after the reborn gateway's next refresh window closes,
    # measured up to the partition fault.
    recovered_from = crash_clear + topo.refresh_interval + 0.5
    out["usable_post_recovery_pct"] = meter.usable_pct(recovered_from,
                                                        t0 + PART_AT)
    out["conversations_died"] = 0   # datagrams have no conversation to kill
    return out


def _reservation_loss_records(plane: ManagementPlane, faults) -> dict:
    """MTTD for lost reservations: first ``flow-state-lost`` raise after
    each gateway crash (detection is scrape-based, so it lands after the
    reborn gateway answers again)."""
    raises = [a for a in plane.bus.raises() if a.rule == "flow-state-lost"]
    records = []
    for fault in faults:
        if fault.kind != "gateway-crash" or fault.applied_at is None:
            continue
        end = (fault.cleared_at if fault.cleared_at is not None
               else float("inf")) + 15.0
        hits = [a.time for a in raises
                if fault.applied_at <= a.time <= end
                and a.target == fault.name]
        first = min(hits) if hits else None
        records.append({
            "gateway": fault.name,
            "applied_at": fault.applied_at,
            "detected_at": first,
            "mttd": (round(first - fault.applied_at, 6)
                     if first is not None else None),
        })
    return {
        "alarms_raised": len(raises),
        "per_crash": records,
        "detected": all(r["detected_at"] is not None for r in records),
    }


def _fault_schedule(topo: FlowTopology) -> list:
    t0 = topo.start_time
    return [
        LinkFlap(topo.bottleneck, t0 + FLAP_AT, FLAP_DWELL),
        GatewayCrash("G1", t0 + CRASH_AT, CRASH_DWELL),
        Partition({"G2", "S"}, t0 + PART_AT, PART_DWELL),
        HostRestart("B", t0 + RESTART_AT, RESTART_DWELL),
    ]


def _run_datagram_variant(seed: int, mode: str, *, reserve: bool,
                          managed: bool, observe: bool,
                          trace: bool) -> tuple[CampaignReport, dict]:
    topo = build_flow_topology(seed, mode=mode, reserve=reserve,
                               duration=DURATION, observe=observe,
                               trace=trace)
    t0 = topo.start_time
    faults = _fault_schedule(topo)
    monitors = default_monitors()
    monitor = None
    if mode == "drr" and reserve:
        monitor = FlowStateMonitor(topo.refresh_interval)
        monitors.append(monitor)
    campaign = FaultCampaign(topo.net, faults, monitors,
                             name=f"flows-{mode}[seed={seed}]")
    plane = None
    if managed:
        # unreachable_after=3: the G1 crash costs G3 a two-scrape routing
        # transient (G2 briefly poisons its G3 route); three misses
        # separates actually-severed nodes from collateral churn.
        plane = ManagementPlane(topo.net, station="S", interval=1.0,
                                unreachable_after=3)
        plane.add_rule(RateRule("flow-state-lost", "flows.state_losses",
                                ">", 0.0, window=12.0, hold_down=3.0))
        plane.start()
    report = campaign.run(until=t0 + RUN_UNTIL)
    if plane is not None:
        plane.stop()
        netmgmt = plane.counters(campaign.faults)
        netmgmt["reservation_loss"] = _reservation_loss_records(
            plane, campaign.faults)
        report.counters["netmgmt"] = netmgmt
    entry = _window_counters(topo, t0, faults[1].clear_time)
    if monitor is not None:
        entry["soft_state"] = {
            "refresh_interval_s": topo.refresh_interval,
            "reinstalls": monitor.reinstalls,
            "reinstalled_within_interval": (len(monitor.violations) == 0
                                            and len(monitor.reinstalls) >= 1),
        }
    report.counters["flows"] = entry
    return report, entry


def _run_vc_variant(duration: float = DURATION) -> dict:
    """The mirrored topology under the mirrored schedule, VC-style."""
    sim = Simulator()
    vc = VirtualCircuitNetwork(sim)
    for name in ("G1", "G2", "G3"):
        vc.add_switch(name)
    vc.add_trunk("G1", "G2", delay=0.005, bandwidth_bps=BOTTLENECK_BPS)
    vc.add_trunk("G1", "G3", delay=0.010, bandwidth_bps=1e6)
    vc.add_trunk("G3", "G2", delay=0.010, bandwidth_bps=1e6)
    vc.attach_host("V", "G1")
    vc.attach_host("S", "G2")
    conversation = VcVoiceConversation(sim, vc, "V", "S", duration=duration)

    sim.schedule(FLAP_AT, lambda: vc.fail_trunk("G1", "G2"),
                 label="vc:fault")
    sim.schedule(FLAP_AT + FLAP_DWELL,
                 lambda: vc.restore_trunk("G1", "G2"), label="vc:fault")
    sim.schedule(CRASH_AT, lambda: vc.fail_switch("G1"), label="vc:fault")
    sim.schedule(CRASH_AT + CRASH_DWELL,
                 lambda: vc.restore_switch("G1"), label="vc:fault")

    def _partition() -> None:
        vc.fail_trunk("G1", "G2")
        vc.fail_trunk("G3", "G2")

    def _heal() -> None:
        vc.restore_trunk("G1", "G2")
        vc.restore_trunk("G3", "G2")

    sim.schedule(PART_AT, _partition, label="vc:fault")
    sim.schedule(PART_AT + PART_DWELL, _heal, label="vc:fault")
    # (The bulk host's restart has no VC mirror: only the voice call holds
    # circuit state in this variant.)
    sim.run(until=RUN_UNTIL)
    out = conversation.counters()
    out["usable_post_recovery_pct"] = conversation.meter.usable_pct(
        CRASH_AT + CRASH_DWELL + 2.5, PART_AT)
    return out


def run_flows_campaign(seed: int = 7, *, trace: bool = False
                       ) -> FlowsRaceReport:
    """Run all three variants under the shared schedule; same seed ⇒
    byte-identical combined report."""
    fifo_report, fifo_entry = _run_datagram_variant(
        seed, "fifo", reserve=False, managed=False, observe=False,
        trace=trace)
    drr_report, drr_entry = _run_datagram_variant(
        seed, "drr", reserve=True, managed=True, observe=True, trace=trace)
    vc_entry = _run_vc_variant()
    race = {
        "fifo": fifo_entry,
        "drr": drr_entry,
        "vc": vc_entry,
        "schedule": {
            "link_flap_at": FLAP_AT, "gateway_crash_at": CRASH_AT,
            "partition_at": PART_AT, "host_restart_at": RESTART_AT,
        },
    }
    return FlowsRaceReport(f"flows[seed={seed}]", fifo_report, drr_report,
                           vc_entry, race)
