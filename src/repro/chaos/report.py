"""Campaign outcome record: what happened, how fast we recovered, and
every invariant violation with its trace excerpt.

The report is the regression artifact: CI uploads it, the determinism test
asserts two identically-seeded campaigns produce *byte-identical* JSON, and
later scale PRs diff reconvergence times against it.  Serialization goes
through :mod:`repro.metrics.export` so the bytes are canonical.
"""

from __future__ import annotations

import pathlib
from typing import TYPE_CHECKING, Union

from ..harness.tables import Table
from ..metrics.export import canonical_json, write_json
from ..metrics.stats import Summary

if TYPE_CHECKING:  # pragma: no cover
    from .faults import Fault
    from .monitors import InvariantMonitor

__all__ = ["CampaignReport"]


class CampaignReport:
    """Everything a chaos campaign measured, ready to export or render."""

    def __init__(
        self,
        name: str,
        faults: list["Fault"],
        monitors: list["InvariantMonitor"],
        counters: dict,
    ):
        self.name = name
        self.faults = faults
        self.monitors = monitors
        self.counters = dict(counters)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def violations(self) -> list:
        out = []
        for monitor in self.monitors:
            out.extend(monitor.violations)
        out.sort(key=lambda v: (v.time, v.monitor, v.detail))
        return out

    @property
    def violation_count(self) -> int:
        return sum(len(m.violations) for m in self.monitors)

    @property
    def ok(self) -> bool:
        """True when the campaign finished with zero invariant violations."""
        return self.violation_count == 0

    @property
    def all_reconverged(self) -> bool:
        """Every fault that cleared also saw reachability restored."""
        return all(f.reconverged_at is not None
                   for f in self.faults if f.cleared_at is not None)

    def reconvergence_summary(self) -> Summary:
        times = [f.reconvergence_time for f in self.faults
                 if f.reconvergence_time is not None]
        return Summary.of(times)

    @property
    def packets_lost_blackout(self) -> int:
        return sum(f.packets_lost_blackout for f in self.faults)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "faults": [f.to_dict() for f in self.faults],
            "violations": [v.to_dict() for v in self.violations],
            "monitors": sorted(m.name for m in self.monitors),
            "counters": self.counters,
            "summary": {
                "fault_count": len(self.faults),
                "violation_count": self.violation_count,
                "all_reconverged": self.all_reconverged,
                "packets_lost_blackout": self.packets_lost_blackout,
                "reconvergence_mean": self.reconvergence_summary().mean,
                "reconvergence_max": self.reconvergence_summary().maximum,
                "reconvergence_stdev": self.reconvergence_summary().stdev,
            },
        }

    def to_json(self) -> str:
        """Canonical (byte-stable) JSON form."""
        return canonical_json(self.to_dict())

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        return write_json(path, self.to_dict())

    # ------------------------------------------------------------------
    # Rendering (harness tables, camera-ready style)
    # ------------------------------------------------------------------
    def fault_table(self) -> Table:
        table = Table(
            f"chaos campaign '{self.name}': faults",
            ["fault", "applied", "cleared", "reconverged",
             "recovery (s)", "lost in blackout"],
            note=f"{self.violation_count} invariant violation(s)",
        )
        for fault in self.faults:
            table.add(
                f"{fault.kind}: {fault.describe()}",
                "-" if fault.applied_at is None else f"{fault.applied_at:.3f}",
                "-" if fault.cleared_at is None else f"{fault.cleared_at:.3f}",
                "-" if fault.reconverged_at is None else f"{fault.reconverged_at:.3f}",
                "-" if fault.reconvergence_time is None
                else f"{fault.reconvergence_time:.3f}",
                fault.packets_lost_blackout,
            )
        return table

    def violation_table(self) -> Table:
        table = Table(
            f"chaos campaign '{self.name}': invariant violations",
            ["time", "monitor", "detail"],
        )
        for v in self.violations:
            table.add(f"{v.time:.3f}", v.monitor, v.detail)
        return table

    def render(self) -> str:
        parts = [self.fault_table().render()]
        if self.violation_count:
            parts.append(self.violation_table().render())
            for v in self.violations:
                if v.journey:
                    lines = [f"journey of offending packet "
                             f"({v.monitor} @ t={v.time:.3f}):"]
                    lines.extend(f"  {hop}" for hop in v.journey)
                    parts.append("\n".join(lines))
        return "\n\n".join(parts)

    def print(self) -> None:
        print()
        print(self.render())

    def __repr__(self) -> str:
        return (f"<CampaignReport '{self.name}' faults={len(self.faults)} "
                f"violations={self.violation_count} "
                f"reconverged={self.all_reconverged}>")
