"""Chaos engineering for the datagram internet (goal 1, weaponized).

The paper's headline claim — survivability through fate-sharing and
stateless gateways — deserves more than ad-hoc ``crash()`` calls in tests.
This package provides the systematic machinery:

* :mod:`~repro.chaos.faults` — declarative, reversible fault events
  (link flaps, gateway crashes, graph-computed partitions);
* :mod:`~repro.chaos.campaign` — the scheduling/measurement engine, with
  recovery-time-under-failure as the first-class metric;
* :mod:`~repro.chaos.monitors` — continuous invariant checking (no loops,
  bounded TTL burn, crashed-means-silent, bounded reconvergence, TCP
  survival under partition);
* :mod:`~repro.chaos.random_chaos` — seeded Poisson fault generation, so a
  run that finds a violation replays exactly from its seed;
* :mod:`~repro.chaos.report` — the canonical-JSON campaign report CI
  archives and later PRs regress against.

Run ``python -m repro.chaos`` for the randomized smoke campaign.
"""

from .campaign import FaultCampaign, control_plane_path, total_drops
from .faults import Fault, GatewayCrash, HostRestart, LinkFlap, Partition
from .monitors import (
    BlackoutDeliveryMonitor,
    ForwardingLoopMonitor,
    HalfOpenZombieMonitor,
    InvariantMonitor,
    QuietTimeMonitor,
    ReconvergenceMonitor,
    TcpSurvivalMonitor,
    TtlExhaustionMonitor,
    Violation,
    default_monitors,
)
from .random_chaos import RandomChaos
from .report import CampaignReport
from .restart import (
    RestartScenario,
    build_restart_scenario,
    restart_payload,
    run_restart_campaign,
)

__all__ = [
    "FaultCampaign",
    "CampaignReport",
    "Fault",
    "LinkFlap",
    "GatewayCrash",
    "HostRestart",
    "Partition",
    "RandomChaos",
    "InvariantMonitor",
    "Violation",
    "ForwardingLoopMonitor",
    "TtlExhaustionMonitor",
    "BlackoutDeliveryMonitor",
    "ReconvergenceMonitor",
    "TcpSurvivalMonitor",
    "HalfOpenZombieMonitor",
    "QuietTimeMonitor",
    "default_monitors",
    "control_plane_path",
    "total_drops",
    "RestartScenario",
    "build_restart_scenario",
    "run_restart_campaign",
    "restart_payload",
]
