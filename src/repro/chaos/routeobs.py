"""The control-plane observability campaign: watching routing itself.

Two legs, one seed, one report:

* ``ring``    — the 512-node 8-AS ring (or the small determinism shape).
  A probe mesh traceroutes spoke-LAN hosts to hub-LAN hosts three ASes
  east while a management station scrapes the hubs' new ``routing.*``
  churn MIB subtree; faults (an inter-AS link flap, a four-AS partition,
  a hub crash) must surface as ``path-blackhole`` / ``route-churn`` /
  ``agent-unreachable`` alarms with finite MTTD and zero false raises.
  The ring's exterior routes are *static* (one origination direction,
  no alternates), so an inter-AS fault here blackholes — the mesh's
  job is to see the blackhole signature, not a reroute.
* ``diamond`` — a five-hop redundant diamond (H1-G1-{G2,G3}-G4-H2)
  under plain unscoped DV, where flapping the baseline path's first
  link *does* produce a genuine reroute: the mesh must raise
  ``path-change`` with the alternate hop list, and the churn alarm must
  fire from the scraped counters alone.

Both legs differential-check every completed traceroute against
:func:`~repro.obs.routing.forwarding_path` — the data plane measured
against the control plane's belief — and both slice the
:class:`~repro.obs.routing.ConvergenceTracer` ribbon per fault, so
"reconvergence" arrives as an attributed timeline (first triggered
update, install waves, settle time) rather than a single number.

Determinism: the mesh draws its schedule jitter from the dedicated
``obs.probemesh`` stream, the campaign's reconvergence prober draws no
randomness at all, and every export is canonicalizable — same seed ⇒
byte-identical report (and adding the mesh to an existing campaign must
not move any other leg's bytes; see ``tests/test_routeobs.py``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..harness.scaletopo import RingNet, ScaleConfig
from ..harness.tables import Table
from ..harness.topology import Internet
from ..metrics.export import canonical_json, write_json
from ..netmgmt.alarms import AgentUnreachableRule, RateRule
from ..netmgmt.campaign import ManagementPlane
from ..obs.routing import (
    ConvergenceTracer,
    PathProbeResponder,
    ProbeMesh,
    attach_route_ledger,
    forwarding_path,
)
from .campaign import FaultCampaign
from .faults import GatewayCrash, LinkFlap, Partition
from .report import CampaignReport

__all__ = ["run_routeobs_campaign", "RouteObsReport",
           "MESH_INTERVAL", "WARMUP", "RUN_UNTIL"]

#: Shared timeline (seconds of simulation).
WARMUP = 8.0            # IGP converged; mesh baselines form 8-13 s
MESH_INTERVAL = 2.5     # per-pair walk cadence (> the 1 s ICMP limiter)
RING_FLAP_AT = 16.0     # inter-AS link flap, 6 s dwell
RING_PARTITION_AT = 30.0  # west half vs east half, 6 s
RING_CRASH_AT = 40.0    # one hub, 5 s dwell
RUN_UNTIL = 62.0
DIAMOND_FLAP_AT = 16.0  # baseline-path link, 10 s dwell
DIAMOND_UNTIL = 45.0

#: Route-churn alarm: ledger events/s over this rate in an 8 s window
#: is a topology-change signature (steady-state DV installs nothing).
CHURN_RATE_BOUND = 0.25

_SIZES = {
    "full": dict(n_as=8, gateways_per_as=8, hosts_per_lan=7),
    "small": dict(n_as=4, gateways_per_as=4, hosts_per_lan=2),
}


def _mttd(value) -> str:
    return f"{value:.2f}s" if value is not None else "-"


# ----------------------------------------------------------------------
# Shared leg plumbing
# ----------------------------------------------------------------------
def _instrument(net, gateway_names) -> tuple[dict, ConvergenceTracer]:
    """Churn ledgers on every gateway + a wired convergence tracer.

    Must run *before* the :class:`ManagementPlane` is constructed — the
    plane builds every MIB at that moment, and the ``routing.*`` subtree
    only exists on nodes that already carry a ledger.
    """
    ledgers = {name: attach_route_ledger(net.gateways[name].node)
               for name in sorted(gateway_names)}
    tracer = ConvergenceTracer().wire(
        ledgers.values(),
        [net.routing[name] for name in sorted(net.routing)])
    return ledgers, tracer


def _ledger_summary(ledgers: dict) -> dict:
    totals: dict = {}
    flappers = []
    for name, ledger in sorted(ledgers.items()):
        counters = ledger.counters()
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
        if counters["churn_flaps"]:
            flappers.append((name, counters["churn_flaps"]))
    flappers.sort(key=lambda item: (-item[1], item[0]))
    return {
        "gateways": len(ledgers),
        "totals": totals,
        "top_flapping": [{"node": n, "flaps": f} for n, f in flappers[:5]],
    }


def _convergence_per_fault(tracer: ConvergenceTracer, faults) -> list[dict]:
    """Slice the causal ribbon by each fault's disruption window."""
    out = []
    for fault in faults:
        if fault.applied_at is None:
            continue
        end = fault.reconverged_at
        if end is None:
            end = (fault.cleared_at if fault.cleared_at is not None
                   else fault.applied_at) + 10.0
        record = {"kind": fault.kind, "detail": fault.describe(),
                  "window": [fault.applied_at, end]}
        record.update(tracer.attribute(fault.applied_at, end))
        record["timeline"] = tracer.window(fault.applied_at, end, limit=30)
        out.append(record)
    return out


def _snapshot_mesh(mesh: ProbeMesh) -> dict:
    """Pre-fault steady-state snapshot: every pair must have baselined
    and every completed walk must have agreed with the graph."""
    return {
        "time": mesh.sim.now,
        "pairs": len(mesh.pairs),
        "pairs_with_baseline": sum(1 for p in mesh.pairs
                                   if p.baseline is not None),
        "completed": sum(p.completed for p in mesh.pairs),
        "agreements": sum(p.agreements for p in mesh.pairs),
        "disagreements": sum(p.disagreements for p in mesh.pairs),
    }


def _leg_summary(report: CampaignReport, mesh: ProbeMesh,
                 steady: dict, goodput: Optional[int]) -> dict:
    counters = mesh.counters()
    netmgmt = report.counters.get("netmgmt", {})
    mesh_bytes = counters["mesh_bytes"]
    return {
        "pairs": counters["pairs"],
        "rounds": counters["rounds"],
        "steady": steady,
        "path_changes": counters["path_changes"],
        "blackholes": counters["blackholes"],
        "disagreements": counters["disagreements"],
        "faults": len(report.faults),
        "detected_faults": netmgmt.get("detected_faults", 0),
        "false_alarms": netmgmt.get("false_alarms", 0),
        "mttd_mean": netmgmt.get("mttd_mean"),
        "mttd_max": netmgmt.get("mttd_max"),
        "mesh_bytes": mesh_bytes,
        "goodput_bytes": goodput,
        "mesh_overhead": (mesh_bytes / goodput if goodput else None),
    }


# ----------------------------------------------------------------------
# Leg 1: the static-exterior ring (blackhole signatures)
# ----------------------------------------------------------------------
def _run_ring_leg(seed: int, size: str) -> tuple[CampaignReport, dict]:
    cfg = replace(ScaleConfig(seed=seed), **_SIZES[size])
    net = RingNet(cfg)
    n = cfg.n_as

    ledgers, tracer = _instrument(net, net.gateways)

    # Probe responders on every hub LAN's first host (the mesh targets
    # live *inside* the /16 aggregates; interior p2p addresses do not).
    for j in range(n):
        PathProbeResponder(net.hosts[f"A{j}G0H0"])

    # Management station on AS0's hub LAN (a host the mesh does not
    # use); scrape set scoped to hubs + first spokes, internet-style.
    # Targets are pinned to their LAN addresses — the only ones the
    # /16 aggregates make routable from another AS.
    station = f"A0G0H{cfg.hosts_per_lan - 1}"
    targets = {}
    for i in range(n):
        hub = net.gateways[f"A{i}G0"].node
        spoke = net.gateways[f"A{i}G1"].node
        targets[f"A{i}G0"] = hub.interface_by_name(f"A{i}G0.lan0").address
        targets[f"A{i}G1"] = spoke.interface_by_name(f"A{i}G1.lan1").address
    plane = ManagementPlane(
        net, station=station, targets=targets,
        rules=[AgentUnreachableRule(threshold=2, hold_down=3.0),
               RateRule("route-churn", "routing.churn_events", ">",
                        CHURN_RATE_BOUND, window=8.0, hold_down=4.0)])

    # The mesh: spoke-LAN observers probing hub-LAN hosts three ASes
    # east — every walk crosses the static exterior seam.
    reach = min(3, n - 1)
    pairs = []
    for i in range(n):
        j = (i + reach) % n
        pairs.append((net.hosts[f"A{i}G1H1"], cfg.lan_host_address(j, 0, 0),
                      f"A{i}G1H1->A{j}G0H0"))
    mesh = ProbeMesh(net, pairs, rng=net.streams.stream("obs.probemesh"),
                     bus=plane.bus, interval=MESH_INTERVAL, start_at=WARMUP)

    faults = [
        LinkFlap(net.inter_links[0], RING_FLAP_AT, 6.0),
        Partition([name for i in range(n // 2)
                   for name in net.as_members(i)],
                  RING_PARTITION_AT, 6.0),
        # Crash the *antipode* hub (offset n/2): with the tie-east ring
        # policy it is the one AS no other scrape target's forward or
        # reply path transits, so the blackhole it causes is exactly its
        # own graph-severed star.  Crashing any transit hub instead
        # blackholes ASes the topology graph still shows as connected —
        # the static-exterior survivability gap DESIGN.md §16 discusses
        # — and the matcher scores graph truth, so those raises would
        # count (correctly, and unfixably here) as false alarms.
        GatewayCrash(f"A{n // 2}G0", RING_CRASH_AT, 5.0),
    ]
    campaign = FaultCampaign(
        net, faults, monitors=[],
        targets=[cfg.lan_host_address(j, 0, 0) for j in range(n)],
        name=f"routeobs-ring[seed={seed}]")

    # Converge the IGP before the station starts scraping — a collector
    # racing initial convergence reports unreachable agents that are
    # merely not-yet-routable, which would be false alarms by our own
    # scoring.  An operator enrolls a network, not a booting one.
    net.sim.run(until=WARMUP)
    steady: dict = {}
    net.sim.call_at(RING_FLAP_AT - 0.5,
                    lambda: steady.update(_snapshot_mesh(mesh)),
                    label="routeobs:steady")
    plane.start()
    mesh.start()
    report = campaign.run(until=RUN_UNTIL)
    plane.stop()

    goodput = sum(sink.bytes for sink in net.sinks.values())
    report.counters["netmgmt"] = plane.counters(campaign.faults)
    report.counters["mesh"] = mesh.to_dict()
    report.counters["convergence"] = _convergence_per_fault(
        tracer, campaign.faults)
    report.counters["ledgers"] = _ledger_summary(ledgers)
    report.counters["goodput_bytes"] = goodput
    return report, _leg_summary(report, mesh, steady, goodput)


# ----------------------------------------------------------------------
# Leg 2: the redundant diamond (genuine reroute)
# ----------------------------------------------------------------------
def build_diamond(seed: int) -> Internet:
    """H1-G1-{G2 top, G3 bottom}-G4-H2 under unscoped DV: the smallest
    topology where a link fault has a live alternate to fail over to."""
    net = Internet(seed=seed)
    h1, h2 = net.host("H1"), net.host("H2")
    g1, g2, g3, g4 = (net.gateway(f"G{k}") for k in range(1, 5))
    net.connect(h1, g1)       # links[0]
    net.connect(g1, g2)       # links[1]  (top arm)
    net.connect(g1, g3)       # links[2]  (bottom arm)
    net.connect(g2, g4)       # links[3]
    net.connect(g3, g4)       # links[4]
    net.connect(g4, h2)       # links[5]
    net.start_routing(period=1.0)
    return net


def _run_diamond_leg(seed: int) -> tuple[CampaignReport, dict]:
    net = build_diamond(seed)
    ledgers, tracer = _instrument(net, net.gateways)

    h1, h2 = net.hosts["H1"], net.hosts["H2"]
    PathProbeResponder(h1)
    PathProbeResponder(h2)
    plane = ManagementPlane(
        net, station="H1", targets=[f"G{k}" for k in range(1, 5)],
        rules=[AgentUnreachableRule(threshold=2, hold_down=3.0),
               RateRule("route-churn", "routing.churn_events", ">",
                        CHURN_RATE_BOUND, window=8.0, hold_down=4.0)])
    mesh = ProbeMesh(net, [(h1, h2.node.address, "H1->H2"),
                           (h2, h1.node.address, "H2->H1")],
                     rng=net.streams.stream("obs.probemesh"),
                     bus=plane.bus, interval=MESH_INTERVAL, start_at=WARMUP)

    # Converge, then flap whichever arm the baseline actually rides —
    # DV breaks the G2/G3 tie by advert arrival order, which is seeded.
    net.sim.run(until=WARMUP - 1.0)
    baseline = forwarding_path(net.address_owners(), h1.node,
                               h2.node.address) or []
    flap_link = net.links[1] if "G2" in baseline else net.links[2]
    campaign = FaultCampaign(
        net, [LinkFlap(flap_link, DIAMOND_FLAP_AT, 10.0)], monitors=[],
        name=f"routeobs-diamond[seed={seed}]")

    steady: dict = {}
    net.sim.call_at(DIAMOND_FLAP_AT - 0.5,
                    lambda: steady.update(_snapshot_mesh(mesh)),
                    label="routeobs:steady")
    plane.start()
    mesh.start()
    report = campaign.run(until=DIAMOND_UNTIL)
    plane.stop()

    report.counters["netmgmt"] = plane.counters(campaign.faults)
    report.counters["mesh"] = mesh.to_dict()
    report.counters["convergence"] = _convergence_per_fault(
        tracer, campaign.faults)
    report.counters["ledgers"] = _ledger_summary(ledgers)
    report.counters["steady_path"] = list(baseline)
    return report, _leg_summary(report, mesh, steady, None)


# ----------------------------------------------------------------------
# The combined report
# ----------------------------------------------------------------------
class RouteObsReport:
    """Duck-types :class:`CampaignReport` across the two legs."""

    LEGS = ("ring", "diamond")

    def __init__(self, name: str, legs: dict, summary: dict):
        self.name = name
        self.legs = legs          # leg name -> CampaignReport
        self.summary = summary    # leg name -> _leg_summary dict

    # -- CampaignReport surface ----------------------------------------
    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.legs.values())

    @property
    def violation_count(self) -> int:
        return sum(r.violation_count for r in self.legs.values())

    @property
    def all_reconverged(self) -> bool:
        return all(r.all_reconverged for r in self.legs.values())

    @property
    def faults(self) -> list:
        out = []
        for name in self.LEGS:
            out.extend(self.legs[name].faults)
        return out

    @property
    def counters(self) -> dict:
        return {name: self.legs[name].counters for name in self.LEGS}

    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "legs": {name: self.legs[name].to_dict() for name in self.LEGS},
            "summary": {name: self.summary[name] for name in self.LEGS},
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def write(self, path):
        return write_json(path, self.to_dict())

    # -- rendering ------------------------------------------------------
    def leg_table(self) -> Table:
        table = Table(
            f"route observability '{self.name}': what the mesh saw",
            ["leg", "pairs", "walks", "blackholes", "path changes",
             "steady agree/disagree", "detected", "false", "MTTD mean/max"],
            note="steady = pre-fault differential check of traceroute "
                 "vs graph-computed forwarding path")
        for name in self.LEGS:
            s = self.summary[name]
            steady = s["steady"]
            table.add(
                name, s["pairs"], s["rounds"],
                s["blackholes"], s["path_changes"],
                f"{steady.get('agreements', 0)}/"
                f"{steady.get('disagreements', 0)}",
                f"{s['detected_faults']}/{s['faults']}",
                s["false_alarms"],
                f"{_mttd(s['mttd_mean'])}/{_mttd(s['mttd_max'])}",
            )
        return table

    def mttd_table(self) -> Table:
        table = Table(
            "path-change detection per fault (E15)",
            ["leg", "fault", "applied", "MTTD", "alerts",
             "reconverged", "triggers", "installs"],
            note="MTTD from the station's alert bus; convergence columns "
                 "from the causal ribbon over the fault window")
        for name in self.LEGS:
            report = self.legs[name]
            per_fault = report.counters.get("netmgmt", {}).get("per_fault", [])
            ribbon = {r["detail"]: r
                      for r in report.counters.get("convergence", [])}
            for record in per_fault:
                conv = ribbon.get(record["detail"], {})
                recon = "-"
                for fault in report.faults:
                    if (fault.describe() == record["detail"]
                            and fault.reconvergence_time is not None):
                        recon = f"{fault.reconvergence_time:.2f}s"
                table.add(name, record["kind"],
                          f"{record['applied_at']:.0f}s",
                          _mttd(record["mttd"]),
                          record["alerts_matched"], recon,
                          conv.get("triggered_updates", 0),
                          conv.get("installs", 0))
        return table

    def render(self) -> str:
        parts = [self.leg_table().render(), self.mttd_table().render()]
        for name in self.LEGS:
            leg = self.legs[name]
            if leg.violation_count:
                parts.append(leg.violation_table().render())
        return "\n\n".join(parts)

    def print(self) -> None:
        print()
        print(self.render())

    def __repr__(self) -> str:
        return (f"<RouteObsReport '{self.name}' legs={len(self.legs)} "
                f"violations={self.violation_count}>")


def run_routeobs_campaign(seed: int, *, size: str = "full") -> RouteObsReport:
    """Both legs under one seed: blackhole signatures on the static
    ring, a genuine reroute on the redundant diamond."""
    legs: dict = {}
    summary: dict = {}
    legs["ring"], summary["ring"] = _run_ring_leg(seed, size)
    legs["diamond"], summary["diamond"] = _run_diamond_leg(seed)
    return RouteObsReport(f"routeobs[seed={seed}]", legs, summary)
