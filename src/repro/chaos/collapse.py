"""The congestion-collapse campaign: 1986 replayed, defenses raced.

One seed, four legs on the identical 512-node 8-AS ecology
(:mod:`repro.ecology`), all measured over the same storm window:

* ``baseline`` — every AS conforming, drop-tail FIFO bottlenecks: what
  the internet delivers when all hosts behave.  The control every other
  leg is normalized against.
* ``fifo``     — the mixed ecology (broken + aggressive ASes turn on at
  the fault) against 1988's defenseless FIFO: the collapse.
* ``red``      — same ecology, RED early-drop/ECN-marking on the
  bottleneck queues.
* ``red_drr``  — same ecology, per-flow DRR fairness with per-flow RED:
  the paper's "flows" outlook applied as a defense.

The misbehaving populations are a chaos *fault* (``misbehaving-hosts``),
so the campaign engine's timeline and the management plane's MTTD
accounting apply unchanged; on the ``fifo`` leg a management station
watches the hubs' ``collapse.duplicate_bytes`` MIB subtree and must
detect the storm from harm-attribution counters alone.

Everything is measured inside a fixed window wholly within the fault:
goodput from sink byte deltas (only new in-order bytes count),
bottleneck utilization from link byte deltas — so "the wire was ≥95%
busy while goodput fell below 40%" is a statement about the same
twenty seconds.  Same seed ⇒ byte-identical report.
"""

from __future__ import annotations

from ..accounting import HarmAccountant  # noqa: F401  (re-export context)
from ..ecology import EcologyConfig, EcologyNet, MisbehavingHosts, build_ecology
from ..harness.tables import Table
from ..metrics.export import canonical_json, write_json
from ..netmgmt.alarms import RateRule
from ..netmgmt.campaign import ManagementPlane
from .campaign import FaultCampaign
from .monitors import ReconvergenceMonitor, TtlExhaustionMonitor

__all__ = ["run_collapse_campaign", "CollapseReport",
           "TRAFFIC_START", "STORM_AT", "STORM_DURATION", "MEASURE_WINDOW"]

#: The shared timeline (seconds of simulation).
TRAFFIC_START = 12.0          # after IGP convergence
STORM_AT = 16.0               # misbehaving populations come online
STORM_DURATION = 30.0         # storm clears at 46 s
MEASURE_WINDOW = (24.0, 44.0)  # wholly inside the storm
RUN_UNTIL = 60.0

#: FIFO-leg alarm: duplicate transit bytes/s on any hub above this rate
#: is a collapse signature (conforming loss recovery stays well under).
DUPLICATE_RATE_BOUND = 8_000.0


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


class _Window:
    """Byte-counter snapshots at the measurement window's edges."""

    def __init__(self, net: EcologyNet, start: float, end: float):
        self.net = net
        self.start = start
        self.end = end
        self.at_start: dict = {}
        self.at_end: dict = {}
        net.sim.call_at(start, self._begin, label="collapse:window")
        net.sim.call_at(end, self._end, label="collapse:window")

    def _snapshot(self) -> dict:
        net = self.net
        return {
            "sink_bytes": {key: sink.bytes_received
                           for key, sink in net.sinks.items()},
            "link_bytes": {i: iface.stats.bytes_sent
                           + iface.stats.link_header_bytes
                           for i, (iface, _link) in net.bottlenecks.items()},
            "voice_sent": {i: r.meter.sent_count
                           for i, r in net.voice_receivers.items()},
            "voice_on_time": {i: r.meter.on_time_count
                              for i, r in net.voice_receivers.items()},
        }

    def _begin(self) -> None:
        self.at_start = self._snapshot()

    def _end(self) -> None:
        self.at_end = self._snapshot()

    def delta(self, table: str, key) -> int:
        return (self.at_end[table][key] - self.at_start[table][key])


def _measure(net: EcologyNet, window: _Window) -> dict:
    """The leg's scorecard: goodput, utilization, harm, voice, quench."""
    cfg = net.config
    dt = window.end - window.start

    def flow_goodput(i: int, g: int) -> float:
        sink_key = ((i + cfg.cross_reach) % cfg.n_as, g)
        return window.delta("sink_bytes", sink_key) * 8.0 / dt

    conforming = net.conforming_flow_keys()
    misbehaving = net.misbehaving_flow_keys()
    conf_bps = [flow_goodput(i, g) for i, g in conforming]
    mis_bps = [flow_goodput(i, g) for i, g in misbehaving]
    per_as: dict[str, float] = {}
    for i in range(cfg.n_as):
        per_as[str(i)] = _round(sum(
            flow_goodput(i, g) for g in range(1, cfg.flows_per_as + 1)))

    busy = {i: window.delta("link_bytes", i) * 8.0
            / (cfg.bottleneck_bandwidth * dt)
            for i in sorted(net.bottlenecks)}

    voice_sent = sum(window.delta("voice_sent", i)
                     for i in net.voice_receivers)
    voice_on_time = sum(window.delta("voice_on_time", i)
                        for i in net.voice_receivers)

    # Harm attribution (cumulative — the storm dominates the run).
    per_entity: dict[str, dict] = {}
    for i in sorted(net.harm):
        for entity, counts in net.harm[i].to_dict().items():
            agg = per_entity.setdefault(entity, {
                "forwarded_packets": 0, "forwarded_bytes": 0,
                "duplicate_bytes": 0, "open_loop_bytes": 0})
            for key, value in counts.items():
                agg[key] += value
    mis_prefixes = {f"10.{i}.0.0/16" for i in cfg.misbehaving_ases}
    dup_total = sum(e["duplicate_bytes"] for e in per_entity.values())
    dup_mis = sum(e["duplicate_bytes"] for entity, e in per_entity.items()
                  if entity in mis_prefixes)

    entry = {
        "defense": cfg.defense,
        "mixed": bool(cfg.misbehaving_ases),
        "window": [window.start, window.end],
        "flows": {"conforming": len(conforming),
                  "misbehaving": len(misbehaving)},
        "goodput_bps": {
            "aggregate": _round(sum(conf_bps) + sum(mis_bps)),
            "conforming": _round(sum(conf_bps)),
            "misbehaving": _round(sum(mis_bps)),
            "conforming_per_flow_mean": _round(
                sum(conf_bps) / len(conf_bps)) if conf_bps else 0.0,
            "per_as": per_as,
        },
        "bottleneck_busy": {
            "mean": _round(sum(busy.values()) / len(busy)),
            "min": _round(min(busy.values())),
            "per_link": {str(i): _round(u) for i, u in busy.items()},
        },
        "voice": {
            "frames_sent": voice_sent,
            "frames_on_time": voice_on_time,
            "on_time_pct": _round(100.0 * voice_on_time / voice_sent)
            if voice_sent else 0.0,
        },
        "harm": {
            "per_entity": {k: dict(sorted(v.items()))
                           for k, v in sorted(per_entity.items())},
            "duplicate_bytes_total": dup_total,
            "duplicate_bytes_misbehaving": dup_mis,
            "misbehaving_duplicate_fraction": _round(
                dup_mis / dup_total) if dup_total else 0.0,
        },
        "quench": {
            "sent": sum(q.quenches_sent for q in net.quenchers.values()),
            "drops_seen": sum(q.drops_seen for q in net.quenchers.values()),
            "suppressed": sum(
                net.internets[i].gateways[f"A{i}G0"].node.quench_suppressed
                for i in sorted(net.internets)),
        },
        "accounting": {
            "flow_records_exported": sum(
                a.records_exported for a in net.flow_accountants.values()),
            "flow_ledger_bytes": sum(
                a.ledger.total_bytes() for a in net.flow_accountants.values()),
            "open_records_after_finalize": sum(
                a.state_entries for a in net.flow_accountants.values()),
        },
    }
    if net.red_states:
        red: dict = {}
        for state in net.red_states.values():
            for key, value in state.counters().items():
                red[key] = red.get(key, 0) + value
        entry["red"] = red
    if net.schedulers:
        red = {}
        sched_drops = 0
        for sched in net.schedulers.values():
            sched_drops += sched.stats.dropped
            for key, value in sched.red_counters().items():
                red[key] = red.get(key, 0) + value
        entry["red"] = red
        entry["scheduler_drops"] = sched_drops
    return entry


def _leg_config(seed: int, defense: str, *, mixed: bool,
                size: str = "full") -> EcologyConfig:
    kwargs: dict = {}
    if size == "small":
        # The determinism-test scale: same shape, minutes cheaper.
        kwargs = dict(n_as=4, gateways_per_as=4, hosts_per_lan=2,
                      flows_per_as=2, voice=True)
    return EcologyConfig(
        seed=seed, defense=defense,
        broken_ases=(1, 5) if mixed and size == "full" else
        ((1,) if mixed else ()),
        aggressive_ases=(3, 7) if mixed and size == "full" else
        ((3,) if mixed else ()),
        **kwargs)


def _run_leg(seed: int, defense: str, *, mixed: bool, managed: bool,
             size: str = "full") -> tuple:
    cfg = _leg_config(seed, defense, mixed=mixed, size=size)
    net = build_ecology(cfg)
    faults = [MisbehavingHosts(STORM_AT, STORM_DURATION)] if mixed else []
    # Probe the hubs' *LAN* addresses: they sit inside the 10.i/16
    # aggregates every AS redistributes, unlike the interior p2p pool
    # (10.100+i...) a hub's primary address lives in.
    hub_targets = [net.internets[i].gateways[f"A{i}G0"].node
                   .interface_by_name(f"A{i}G0.lan0").address
                   for i in sorted(net.internets)]
    campaign = FaultCampaign(
        net, faults,
        monitors=[TtlExhaustionMonitor(), ReconvergenceMonitor()],
        targets=hub_targets,
        name=f"collapse-{'mixed' if mixed else 'baseline'}-{defense}")
    plane = None
    if managed:
        # The station sits on AS 0's hub LAN (its scrape of A0G0 never
        # crosses a bottleneck — detection must survive the collapse).
        station = f"A0G0H{cfg.hosts_per_lan - 1}"
        plane = ManagementPlane(
            net, station=station,
            targets=[f"A{i}G0" for i in sorted(net.internets)],
            rules=[RateRule("congestion-collapse",
                            "collapse.duplicate_bytes", ">",
                            DUPLICATE_RATE_BOUND,
                            window=8.0, hold_down=4.0)])
        plane.start()
    window = _Window(net, *MEASURE_WINDOW)
    report = campaign.run(until=RUN_UNTIL)
    if plane is not None:
        plane.stop()
        report.counters["netmgmt"] = plane.counters(campaign.faults)
    net.finalize_accounting()
    entry = _measure(net, window)
    report.counters["collapse"] = entry
    return report, entry


class CollapseReport:
    """Duck-types :class:`CampaignReport` across the four-leg race."""

    LEGS = ("baseline", "fifo", "red", "red_drr")

    def __init__(self, name: str, legs: dict, race: dict):
        self.name = name
        self.legs = legs            # leg name -> CampaignReport
        self.race = race            # leg name -> scorecard entry

    # -- CampaignReport surface ----------------------------------------
    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.legs.values())

    @property
    def violation_count(self) -> int:
        return sum(r.violation_count for r in self.legs.values())

    @property
    def all_reconverged(self) -> bool:
        return all(r.all_reconverged for r in self.legs.values())

    @property
    def faults(self) -> list:
        out = []
        for name in self.LEGS:
            out.extend(self.legs[name].faults)
        return out

    @property
    def counters(self) -> dict:
        return {name: self.legs[name].counters for name in self.LEGS}

    def to_dict(self) -> dict:
        return {
            "campaign": self.name,
            "legs": {name: self.legs[name].to_dict() for name in self.LEGS},
            "race": {name: self.race[name] for name in self.LEGS},
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def write(self, path):
        return write_json(path, self.to_dict())

    # -- rendering ------------------------------------------------------
    def race_table(self) -> Table:
        baseline = self.race["baseline"]["goodput_bps"]["aggregate"]
        table = Table(
            f"collapse race '{self.name}': defenses under the mixed ecology",
            ["leg", "goodput (kb/s)", "vs baseline", "conforming/flow",
             "busy", "voice on-time", "dup bytes (misbehaving share)"],
            note=f"measurement window {MEASURE_WINDOW[0]:.0f}-"
                 f"{MEASURE_WINDOW[1]:.0f} s; storm "
                 f"{STORM_AT:.0f}-{STORM_AT + STORM_DURATION:.0f} s",
        )
        for name in self.LEGS:
            entry = self.race[name]
            goodput = entry["goodput_bps"]["aggregate"]
            harm = entry["harm"]
            table.add(
                name,
                f"{goodput / 1000:.1f}",
                f"{100.0 * goodput / baseline:.1f}%" if baseline else "-",
                f"{entry['goodput_bps']['conforming_per_flow_mean'] / 1000:.1f} kb/s",
                f"{100.0 * entry['bottleneck_busy']['mean']:.1f}%",
                f"{entry['voice']['on_time_pct']:.1f}%",
                f"{harm['duplicate_bytes_total'] // 1000} kB "
                f"({100.0 * harm['misbehaving_duplicate_fraction']:.0f}%)",
            )
        return table

    def render(self) -> str:
        parts = [self.race_table().render()]
        for name in self.LEGS:
            leg = self.legs[name]
            if leg.violation_count:
                parts.append(leg.violation_table().render())
        return "\n\n".join(parts)

    def print(self) -> None:
        print()
        print(self.render())

    def __repr__(self) -> str:
        return (f"<CollapseReport '{self.name}' legs={len(self.legs)} "
                f"violations={self.violation_count}>")


def run_collapse_campaign(seed: int, *, size: str = "full") -> CollapseReport:
    """Race FIFO vs RED vs RED+DRR under one seeded storm."""
    legs: dict = {}
    race: dict = {}
    legs["baseline"], race["baseline"] = _run_leg(
        seed, "fifo", mixed=False, managed=False, size=size)
    legs["fifo"], race["fifo"] = _run_leg(
        seed, "fifo", mixed=True, managed=True, size=size)
    legs["red"], race["red"] = _run_leg(
        seed, "red", mixed=True, managed=False, size=size)
    legs["red_drr"], race["red_drr"] = _run_leg(
        seed, "red_drr", mixed=True, managed=False, size=size)
    return CollapseReport(f"collapse[seed={seed}]", legs, race)
