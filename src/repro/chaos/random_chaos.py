"""Seeded random fault generation: reproducible chaos.

:class:`RandomChaos` turns a fault *budget* into a concrete schedule —
Poisson fault arrivals over the topology's links and gateways, every draw
taken from the internet's own named random streams
(:class:`~repro.sim.rand.RandomStreams`), so the same topology seed
produces the same campaign, byte for byte.  That reproducibility is the
point: a chaos run that finds a violation must be replayable as a
regression test by just repeating the seed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .faults import Fault, GatewayCrash, HostRestart, LinkFlap, Partition

__all__ = ["RandomChaos"]


class RandomChaos:
    """Generate a deterministic random fault schedule for an internet.

    Parameters
    ----------
    net:
        The built :class:`~repro.harness.topology.Internet`; faults target
        its registered links and gateways.
    budget:
        Number of faults to generate.
    rate:
        Poisson arrival rate (faults per simulated second).
    start:
        Earliest fault time (leave room for initial route convergence).
    dwell:
        (min, max) uniform range for each fault's active window.
    kinds:
        Fault kinds to draw from; infeasible kinds (no links, fewer than
        two gateways, no hosts) are dropped automatically.  The default
        tuple deliberately excludes ``"host-restart"`` so historical
        seeded campaigns replay unchanged — opt in with
        ``kinds=(..., "host-restart")`` or use
        :mod:`repro.chaos.restart`'s dedicated preset.
    stream:
        Name of the random stream within ``net.streams``; two generators
        with different stream names are independent.
    """

    def __init__(
        self,
        net,
        *,
        budget: int = 8,
        rate: float = 0.5,
        start: float = 1.0,
        dwell: tuple[float, float] = (0.5, 3.0),
        kinds: Sequence[str] = ("link-flap", "gateway-crash", "partition"),
        stream: str = "chaos",
    ):
        if budget < 0:
            raise ValueError("fault budget must be non-negative")
        if rate <= 0:
            raise ValueError("fault arrival rate must be positive")
        if dwell[0] <= 0 or dwell[1] < dwell[0]:
            raise ValueError(f"bad dwell range {dwell}")
        self.net = net
        self.budget = budget
        self.rate = rate
        self.start = start
        self.dwell = dwell
        self.kinds = tuple(kinds)
        self.stream = stream

    # ------------------------------------------------------------------
    def _feasible_kinds(self) -> list[str]:
        gateways = sorted(self.net.gateways)
        kinds = []
        for kind in self.kinds:
            if kind == "link-flap" and self.net.links:
                kinds.append(kind)
            elif kind == "gateway-crash" and gateways:
                kinds.append(kind)
            elif kind == "host-restart" and self.net.hosts:
                kinds.append(kind)
            elif kind == "partition" and len(gateways) >= 2:
                kinds.append(kind)
        return kinds

    def generate(self) -> list[Fault]:
        """Produce the fault schedule (same seed ⇒ same schedule)."""
        rng = self.net.streams.stream(f"chaos.{self.stream}")
        kinds = self._feasible_kinds()
        if not kinds:
            return []
        gateways = sorted(self.net.gateways)
        hosts = sorted(self.net.hosts)
        faults: list[Fault] = []
        t = self.start
        for _ in range(self.budget):
            t += rng.expovariate(self.rate)
            dwell = rng.uniform(*self.dwell)
            kind = rng.choice(kinds)
            if kind == "link-flap":
                index = rng.randrange(len(self.net.links))
                faults.append(LinkFlap(index, t, dwell))
            elif kind == "gateway-crash":
                name = rng.choice(gateways)
                faults.append(GatewayCrash(name, t, dwell))
            elif kind == "host-restart":
                name = rng.choice(hosts)
                faults.append(HostRestart(name, t, dwell))
            else:  # partition
                # A random proper, non-empty gateway subset defines the cut;
                # hosts follow their gateways implicitly (their access links
                # cross the cut if their gateway is on the other side).
                size = rng.randint(1, len(gateways) - 1)
                group = rng.sample(gateways, size)
                faults.append(Partition(group, t, dwell))
        return faults

    def campaign(self, monitors=None, *, name: Optional[str] = None, **kwargs):
        """Convenience: generate faults and wrap them in a campaign."""
        from .campaign import FaultCampaign
        return FaultCampaign(
            self.net, self.generate(), monitors,
            name=name or f"random-chaos[{self.stream}]", **kwargs)
