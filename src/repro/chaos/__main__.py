"""Chaos smoke campaigns: the CI gates for survivability.

Two presets, selected with ``--campaign``:

* ``random`` (default) — builds the two-tier AS-chain preset, converges
  it, and runs a seeded random fault campaign under the full
  invariant-monitor suite::

      PYTHONPATH=src python -m repro.chaos --seed 7 --budget 6 --out chaos-report.json

* ``restart`` — the fate-sharing closed loop: a client host streaming a
  resumable session transfer is power-cycled three times; the gate also
  requires the application payload to arrive with zero lost and zero
  duplicated bytes::

      PYTHONPATH=src python -m repro.chaos --campaign restart --seed 7 --out restart-report.json

* ``flows`` — the three-way architecture race from the paper's closing
  outlook (§10): datagram-FIFO vs hard-state VC vs soft-state DRR flows,
  one fault schedule.  The gate requires the VC conversation to die on
  the gateway crash while the soft-state reservation re-installs within
  one refresh interval, DRR voice to beat FIFO voice at saturation, and
  the management plane to detect both the crash and the lost
  reservation::

      PYTHONPATH=src python -m repro.chaos --campaign flows --seed 7 --out flows-report.json

Either way the canonical report is written and the exit code is non-zero
on any invariant violation (or unreconverged fault, or corrupted
payload).  The seed fully determines the campaign, so a red CI run is
replayable locally with the same flags.
"""

from __future__ import annotations

import argparse
import sys

from .random_chaos import RandomChaos
from .restart import build_restart_scenario


def build_default_net(seed: int):
    """The two-tier AS-chain preset (3 ASes), converged and traced."""
    from ..harness.presets import build_as_chain
    from ..sim.trace import Tracer

    topo = build_as_chain(3, seed=seed)
    # Swap in a real tracer so violations carry post-failure excerpts.
    if len(topo.net.tracer) == 0 and not topo.net.tracer.enabled:
        topo.net.tracer = Tracer(capacity=50_000)
    return topo.net


def run_random(args) -> "CampaignReport":
    net = build_default_net(args.seed)
    chaos = RandomChaos(net, budget=args.budget, rate=args.rate,
                        start=net.sim.now + 2.0)
    campaign = chaos.campaign(name=f"smoke[seed={args.seed}]")
    return campaign.run()


def run_restart(args) -> "CampaignReport":
    scenario = build_restart_scenario(args.seed, restarts=args.restarts,
                                      trace=True)
    return scenario.run()


def run_flows(args):
    from .flows import run_flows_campaign

    return run_flows_campaign(args.seed)


def gate_flows(report) -> int:
    """The flows-specific CI gates beyond ok/reconverged."""
    race = report.race
    failures = []
    if race["vc"].get("conversations_died", 0) < 1:
        failures.append("VC conversation survived the gateway crash "
                        "(hard state should have died with the switch)")
    soft = race["drr"].get("soft_state", {})
    if not soft.get("reinstalled_within_interval", False):
        failures.append("soft-state reservation not re-installed within "
                        "one refresh interval of gateway restore")
    drr_sat = race["drr"].get("usable_saturation_pct")
    fifo_sat = race["fifo"].get("usable_saturation_pct")
    if drr_sat is None or fifo_sat is None or drr_sat <= fifo_sat:
        failures.append(f"DRR voice did not beat FIFO at saturation "
                        f"(drr={drr_sat} fifo={fifo_sat})")
    netmgmt = report.drr.counters.get("netmgmt", {})
    crash_detected = any(f.get("kind") == "gateway-crash" and f.get("detected")
                         for f in netmgmt.get("per_fault", []))
    if not crash_detected:
        failures.append("management plane never detected the gateway crash")
    if not netmgmt.get("reservation_loss", {}).get("detected", False):
        failures.append("flow-state-lost alarm never raised for the crash")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        mttd = netmgmt["reservation_loss"]["per_crash"][0]["mttd"]
        print(f"OK: VC died {race['vc']['conversations_died']}x, soft state "
              f"re-installed in {soft['reinstalls'][0]['delay']:.3f}s "
              f"(interval {soft['refresh_interval_s']:g}s), voice at "
              f"saturation drr={drr_sat:.1f}% vs fifo={fifo_sat:.1f}%, "
              f"reservation-loss MTTD {mttd:.3f}s")
    return 1 if failures else 0


def run_adversary(args):
    from ..adversary.campaign import run_adversary_campaign

    return run_adversary_campaign(args.seed)


def run_collapse(args):
    from .collapse import run_collapse_campaign

    return run_collapse_campaign(args.seed, size=args.size)


def gate_collapse(report) -> int:
    """The collapse-specific CI gates beyond ok/reconverged.

    1. The mixed ecology on FIFO *collapses*: aggregate goodput under
       40% of the all-conforming baseline while the bottlenecks stay
       ≥95% busy (RFC 896's signature — a busy wire doing no work).
    2. RED+DRR restores conforming hosts to ≥90% of their baseline
       per-flow goodput.
    3. The harm ledger attributes the majority of duplicate transit
       bytes to the misbehaving ASes.
    4. The management plane detects the storm from the `collapse` MIB
       subtree (finite MTTD on the FIFO leg).
    """
    race = report.race
    failures = []
    baseline = race["baseline"]["goodput_bps"]["aggregate"]
    fifo = race["fifo"]
    goodput_ratio = (fifo["goodput_bps"]["aggregate"] / baseline
                     if baseline else 1.0)
    busy = fifo["bottleneck_busy"]["mean"]
    if goodput_ratio >= 0.40:
        failures.append(f"no collapse: mixed-FIFO goodput is "
                        f"{100 * goodput_ratio:.1f}% of baseline "
                        f"(need < 40%)")
    if busy < 0.95:
        failures.append(f"bottlenecks only {100 * busy:.1f}% busy on the "
                        f"FIFO leg (need >= 95% for the collapse claim)")
    base_flow = race["baseline"]["goodput_bps"]["conforming_per_flow_mean"]
    drr_flow = race["red_drr"]["goodput_bps"]["conforming_per_flow_mean"]
    fair = drr_flow / base_flow if base_flow else 0.0
    if fair < 0.90:
        failures.append(f"RED+DRR restored conforming flows to only "
                        f"{100 * fair:.1f}% of baseline (need >= 90%)")
    dup_frac = fifo["harm"]["misbehaving_duplicate_fraction"]
    if dup_frac <= 0.5:
        failures.append(f"harm ledger attributes only "
                        f"{100 * dup_frac:.1f}% of duplicate bytes to the "
                        f"misbehaving ASes (need a majority)")
    netmgmt = report.legs["fifo"].counters.get("netmgmt", {})
    detected = [f for f in netmgmt.get("per_fault", [])
                if f.get("kind") == "misbehaving-hosts" and f.get("detected")]
    if not detected:
        failures.append("management plane never detected the collapse "
                        "(no misbehaving-hosts alarm matched)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        mttd = detected[0].get("mttd")
        print(f"OK: collapse reproduced (goodput "
              f"{100 * goodput_ratio:.1f}% of baseline at "
              f"{100 * busy:.1f}% busy), RED+DRR fair share "
              f"{100 * fair:.1f}%, misbehaving ASes own "
              f"{100 * dup_frac:.0f}% of duplicate bytes, "
              f"MTTD {mttd:.1f}s"
              if mttd is not None else
              f"OK: collapse gates passed (detection without MTTD)")
    return 1 if failures else 0


def run_routeobs(args):
    from .routeobs import run_routeobs_campaign

    return run_routeobs_campaign(args.seed, size=args.size)


def gate_routeobs(report) -> int:
    """The route-observability CI gates beyond ok/reconverged.

    1. Steady state: every probe pair baselined before the first fault
       and every completed traceroute agreed with the graph-computed
       forwarding path (zero differential disagreements).
    2. Every fault on both legs detected with finite MTTD, zero false
       alarms at this seed.
    3. The ring leg observed the blackhole signature (static exterior:
       inter-AS faults cannot reroute) and the diamond leg observed a
       genuine ``path-change`` reroute.
    4. Mesh overhead on the ring leg stayed under 5% of goodput.
    """
    failures = []
    for leg in report.LEGS:
        s = report.summary[leg]
        steady = s["steady"]
        if steady.get("pairs_with_baseline") != steady.get("pairs"):
            failures.append(f"{leg}: only {steady.get('pairs_with_baseline')}"
                            f"/{steady.get('pairs')} probe pairs baselined "
                            f"before the first fault")
        if steady.get("disagreements", 1) != 0:
            failures.append(f"{leg}: {steady.get('disagreements')} steady-"
                            f"state traceroute-vs-graph disagreements "
                            f"(need 0)")
        if not steady.get("agreements"):
            failures.append(f"{leg}: no steady-state differential checks "
                            f"completed")
        if s["detected_faults"] != s["faults"]:
            failures.append(f"{leg}: only {s['detected_faults']}/"
                            f"{s['faults']} faults detected")
        if s["mttd_max"] is None:
            failures.append(f"{leg}: no finite MTTD")
        if s["false_alarms"]:
            failures.append(f"{leg}: {s['false_alarms']} false alarm(s)")
    if report.summary["ring"]["blackholes"] < 1:
        failures.append("ring: no path-blackhole observed (the static-"
                        "exterior signature)")
    if report.summary["diamond"]["path_changes"] < 1:
        failures.append("diamond: no path-change observed (the reroute "
                        "never happened)")
    overhead = report.summary["ring"]["mesh_overhead"]
    if overhead is None or overhead > 0.05:
        failures.append(f"ring: probe-mesh overhead {overhead} of goodput "
                        f"(need <= 5%)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        ring, diamond = report.summary["ring"], report.summary["diamond"]
        print(f"OK: {ring['faults'] + diamond['faults']} faults all "
              f"detected (MTTD ring {ring['mttd_mean']:.2f}s / diamond "
              f"{diamond['mttd_mean']:.2f}s, zero false alarms), "
              f"{ring['steady']['agreements']}+"
              f"{diamond['steady']['agreements']} steady path checks "
              f"agreed, {ring['blackholes']} blackhole walks + "
              f"{diamond['path_changes']} reroute walks observed, mesh "
              f"overhead {100 * overhead:.1f}% of goodput")
    return 1 if failures else 0


def gate_adversary(report) -> int:
    """The adversary-specific CI gates beyond ok/reconverged."""
    failures = []
    for name, leg in sorted(report.legs.items()):
        for violation in leg["violations"]:
            failures.append(f"fuzz[{name}]: {violation}")
    for record in report.behavior_detection:
        if not record["detected"]:
            failures.append(
                f"byzantine '{record['behavior']}' never detected by the "
                f"management plane (signatures {record['signatures']})")
    good = report.rollouts["tcp_good"]
    if good["state"] != "settled" or good["rolled_back_at"] is not None:
        failures.append(f"benign canary config did not promote cleanly "
                        f"(state {good['state']})")
    for name in ("tcp_broken", "egp_broken"):
        r = report.rollouts[name]
        if r["promoted_at"] is not None:
            failures.append(f"rollout[{name}]: broken config reached the "
                            f"fleet (promoted before rollback)")
        if r["rolled_back_at"] is None:
            failures.append(f"rollout[{name}]: broken config never rolled "
                            f"back (state {r['state']})")
        elif r["mttr"] is None:
            failures.append(f"rollout[{name}]: rolled back but never "
                            f"verified healthy (state {r['state']})")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        mttds = {r["behavior"]: r["mttd"] for r in report.behavior_detection}
        injected = sum(leg["injected"] for leg in report.legs.values())
        print(f"OK: {injected} adversarial exchanges absorbed, byzantine "
              f"MTTD " + " ".join(f"{b}={mttds[b]:.1f}s" for b in
                                  ("corrupt", "replay", "misroute", "delay"))
              + f", canary MTTR tcp={report.rollouts['tcp_broken']['mttr']:.1f}s "
              f"egp={report.rollouts['egp_broken']['mttr']:.1f}s, "
              f"fleet never saw a broken config")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run a chaos smoke campaign.")
    parser.add_argument("--campaign",
                        choices=("random", "restart", "flows", "adversary",
                                 "collapse", "routeobs"),
                        default="random",
                        help="preset: randomized faults on the AS chain, "
                             "the host-restart fate-sharing loop, the "
                             "FIFO-vs-VC-vs-soft-state flows race, the "
                             "adversarial fuzz/byzantine/rollout campaign, "
                             "the congestion-collapse ecology race, or the "
                             "control-plane observability (probe mesh + "
                             "churn alarm) campaign")
    parser.add_argument("--size", choices=("full", "small"), default="full",
                        help="[collapse/routeobs] full 512-node scale or "
                             "the small determinism-test scale")
    parser.add_argument("--seed", type=int, default=7,
                        help="topology + chaos seed (default 7)")
    parser.add_argument("--budget", type=int, default=6,
                        help="[random] number of random faults (default 6)")
    parser.add_argument("--rate", type=float, default=0.25,
                        help="[random] Poisson arrival rate (default 0.25/s)")
    parser.add_argument("--restarts", type=int, default=3,
                        help="[restart] host power-cycles (default 3)")
    parser.add_argument("--out", default=None,
                        help="campaign report path (default "
                             "chaos-report.json / restart-report.json)")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = {"restart": "restart-report.json",
                    "flows": "flows-report.json",
                    "adversary": "adversary-report.json",
                    "collapse": "collapse-report.json",
                    "routeobs": "routeobs-report.json"}.get(args.campaign,
                                                      "chaos-report.json")
    runner = {"restart": run_restart, "flows": run_flows,
              "adversary": run_adversary,
              "collapse": run_collapse,
              "routeobs": run_routeobs}.get(args.campaign, run_random)
    report = runner(args)
    report.print()
    path = report.write(args.out)
    print(f"\nreport written to {path}")

    if not report.ok:
        print(f"FAIL: {report.violation_count} invariant violation(s)",
              file=sys.stderr)
        return 1
    if not report.all_reconverged:
        print("FAIL: at least one fault never reconverged", file=sys.stderr)
        return 1
    if args.campaign == "flows":
        return gate_flows(report)
    if args.campaign == "adversary":
        return gate_adversary(report)
    if args.campaign == "collapse":
        return gate_collapse(report)
    if args.campaign == "routeobs":
        return gate_routeobs(report)
    if args.campaign == "restart":
        if not report.counters.get("payload_intact", False):
            print(f"FAIL: payload corrupted — "
                  f"{report.counters['payload_lost_bytes']} byte(s) lost, "
                  f"{report.counters['payload_duplicated_bytes']} duplicated",
                  file=sys.stderr)
            return 1
        sess = report.counters["session_client"]
        print(f"OK: {len(report.faults)} restart(s) survived — "
              f"{sess['reconnects']} reconnect(s), "
              f"{sess['bytes_replayed']} byte(s) replayed, payload intact, "
              f"zero invariant violations")
        return 0
    print(f"OK: {len(report.faults)} faults, zero invariant violations, "
          f"worst recovery {report.reconvergence_summary().maximum:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
