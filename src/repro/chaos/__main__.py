"""Randomized chaos smoke campaign: the CI gate for survivability.

Builds the two-tier AS-chain preset, converges it, runs a seeded random
fault campaign under the full invariant-monitor suite, writes the
canonical campaign report, and exits non-zero on any invariant violation
(or if any fault never reconverged)::

    PYTHONPATH=src python -m repro.chaos --seed 7 --budget 6 --out chaos-report.json

The seed fully determines the campaign, so a red CI run is replayable
locally with the same flags.
"""

from __future__ import annotations

import argparse
import sys

from .random_chaos import RandomChaos


def build_default_net(seed: int):
    """The two-tier AS-chain preset (3 ASes), converged and traced."""
    from ..harness.presets import build_as_chain
    from ..sim.trace import Tracer

    topo = build_as_chain(3, seed=seed)
    # Swap in a real tracer so violations carry post-failure excerpts.
    if len(topo.net.tracer) == 0 and not topo.net.tracer.enabled:
        topo.net.tracer = Tracer(capacity=50_000)
    return topo.net


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run the randomized chaos smoke campaign.")
    parser.add_argument("--seed", type=int, default=7,
                        help="topology + chaos seed (default 7)")
    parser.add_argument("--budget", type=int, default=6,
                        help="number of random faults (default 6)")
    parser.add_argument("--rate", type=float, default=0.25,
                        help="Poisson fault arrival rate (default 0.25/s)")
    parser.add_argument("--out", default="chaos-report.json",
                        help="campaign report path (default chaos-report.json)")
    args = parser.parse_args(argv)

    net = build_default_net(args.seed)
    chaos = RandomChaos(net, budget=args.budget, rate=args.rate,
                        start=net.sim.now + 2.0)
    campaign = chaos.campaign(name=f"smoke[seed={args.seed}]")
    report = campaign.run()
    report.print()
    path = report.write(args.out)
    print(f"\nreport written to {path}")

    if not report.ok:
        print(f"FAIL: {report.violation_count} invariant violation(s)",
              file=sys.stderr)
        return 1
    if not report.all_reconverged:
        print("FAIL: at least one fault never reconverged", file=sys.stderr)
        return 1
    print(f"OK: {len(report.faults)} faults, zero invariant violations, "
          f"worst recovery {report.reconvergence_summary().maximum:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
