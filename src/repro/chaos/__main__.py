"""Chaos smoke campaigns: the CI gates for survivability.

Two presets, selected with ``--campaign``:

* ``random`` (default) — builds the two-tier AS-chain preset, converges
  it, and runs a seeded random fault campaign under the full
  invariant-monitor suite::

      PYTHONPATH=src python -m repro.chaos --seed 7 --budget 6 --out chaos-report.json

* ``restart`` — the fate-sharing closed loop: a client host streaming a
  resumable session transfer is power-cycled three times; the gate also
  requires the application payload to arrive with zero lost and zero
  duplicated bytes::

      PYTHONPATH=src python -m repro.chaos --campaign restart --seed 7 --out restart-report.json

Either way the canonical report is written and the exit code is non-zero
on any invariant violation (or unreconverged fault, or corrupted
payload).  The seed fully determines the campaign, so a red CI run is
replayable locally with the same flags.
"""

from __future__ import annotations

import argparse
import sys

from .random_chaos import RandomChaos
from .restart import build_restart_scenario


def build_default_net(seed: int):
    """The two-tier AS-chain preset (3 ASes), converged and traced."""
    from ..harness.presets import build_as_chain
    from ..sim.trace import Tracer

    topo = build_as_chain(3, seed=seed)
    # Swap in a real tracer so violations carry post-failure excerpts.
    if len(topo.net.tracer) == 0 and not topo.net.tracer.enabled:
        topo.net.tracer = Tracer(capacity=50_000)
    return topo.net


def run_random(args) -> "CampaignReport":
    net = build_default_net(args.seed)
    chaos = RandomChaos(net, budget=args.budget, rate=args.rate,
                        start=net.sim.now + 2.0)
    campaign = chaos.campaign(name=f"smoke[seed={args.seed}]")
    return campaign.run()


def run_restart(args) -> "CampaignReport":
    scenario = build_restart_scenario(args.seed, restarts=args.restarts,
                                      trace=True)
    return scenario.run()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run a chaos smoke campaign.")
    parser.add_argument("--campaign", choices=("random", "restart"),
                        default="random",
                        help="preset: randomized faults on the AS chain, or "
                             "the host-restart fate-sharing loop")
    parser.add_argument("--seed", type=int, default=7,
                        help="topology + chaos seed (default 7)")
    parser.add_argument("--budget", type=int, default=6,
                        help="[random] number of random faults (default 6)")
    parser.add_argument("--rate", type=float, default=0.25,
                        help="[random] Poisson arrival rate (default 0.25/s)")
    parser.add_argument("--restarts", type=int, default=3,
                        help="[restart] host power-cycles (default 3)")
    parser.add_argument("--out", default=None,
                        help="campaign report path (default "
                             "chaos-report.json / restart-report.json)")
    args = parser.parse_args(argv)

    if args.out is None:
        args.out = ("restart-report.json" if args.campaign == "restart"
                    else "chaos-report.json")
    report = (run_restart(args) if args.campaign == "restart"
              else run_random(args))
    report.print()
    path = report.write(args.out)
    print(f"\nreport written to {path}")

    if not report.ok:
        print(f"FAIL: {report.violation_count} invariant violation(s)",
              file=sys.stderr)
        return 1
    if not report.all_reconverged:
        print("FAIL: at least one fault never reconverged", file=sys.stderr)
        return 1
    if args.campaign == "restart":
        if not report.counters.get("payload_intact", False):
            print(f"FAIL: payload corrupted — "
                  f"{report.counters['payload_lost_bytes']} byte(s) lost, "
                  f"{report.counters['payload_duplicated_bytes']} duplicated",
                  file=sys.stderr)
            return 1
        sess = report.counters["session_client"]
        print(f"OK: {len(report.faults)} restart(s) survived — "
              f"{sess['reconnects']} reconnect(s), "
              f"{sess['bytes_replayed']} byte(s) replayed, payload intact, "
              f"zero invariant violations")
        return 0
    print(f"OK: {len(report.faults)} faults, zero invariant violations, "
          f"worst recovery {report.reconvergence_summary().maximum:.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
