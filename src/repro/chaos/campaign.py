"""The fault-campaign engine: scheduled chaos with live invariants.

A :class:`FaultCampaign` takes a built :class:`~repro.harness.topology.Internet`,
a list of :mod:`~repro.chaos.faults`, and an invariant-monitor suite, then
drives the whole thing on the simulation clock:

* each fault's ``apply``/``clear`` is scheduled as ordinary events;
* monitors are sampled periodically and notified around every fault;
* after each fault clears, a control-plane probe loop walks the gateways'
  routing tables until full reachability is restored — the moment of
  *reconvergence*, the recovery-time-under-failure metric;
* drop counters are snapshotted around each fault so the packets lost in
  its blackout window are attributed to it.

Everything is deterministic: same topology seed + same fault list (e.g.
from :class:`~repro.chaos.random_chaos.RandomChaos`) ⇒ byte-identical
:class:`~repro.chaos.report.CampaignReport`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..ip.address import Address
from ..ip.forwarding import NoRouteError
from ..ip.node import Node
from .faults import Fault
from .monitors import InvariantMonitor, default_monitors
from .report import CampaignReport

__all__ = ["FaultCampaign", "control_plane_path", "control_plane_hops",
           "total_drops"]


def control_plane_path(owners: dict[int, Node], src: Node, dst: Address,
                       max_hops: int = 64) -> Optional[int]:
    """Walk routing tables from ``src`` toward ``dst`` without sending a
    packet; returns the hop count on success, None if unreachable (no
    route, down node/interface, or a control-plane loop longer than
    ``max_hops``)."""
    node = src
    for hops in range(max_hops + 1):
        if not node.up:
            return None
        if node.owns_address(dst):
            return hops
        try:
            route = node.routes.lookup(dst)
        except NoRouteError:
            return None
        if not route.interface.up:
            return None
        next_hop = route.next_hop if route.next_hop is not None else dst
        nxt = owners.get(int(next_hop))
        if nxt is None or nxt is node:
            return None
        node = nxt
    return None  # exceeded max_hops: a control-plane loop


def control_plane_hops(owners: dict[int, Node], src: Node, dst: Address,
                       max_hops: int = 64) -> Optional[list[str]]:
    """Node-name variant of :func:`control_plane_path`: the hop list the
    control plane *believes* a packet from ``src`` to ``dst`` takes —
    the reference side of the traceroute differential check (see
    :func:`repro.obs.routing.forwarding_path`)."""
    from ..obs.routing import forwarding_path
    if not src.up:
        return None
    return forwarding_path(owners, src, dst, max_hops=max_hops)


def total_drops(net) -> int:
    """Fleet-wide count of packets that died anywhere in the stack —
    the blackout-window loss metric."""
    total = 0
    for node in net.nodes().values():
        s = node.stats
        total += (s.dropped_no_route + s.dropped_ttl + s.dropped_down
                  + s.dropped_df + s.dropped_bad_header)
        for iface in node.interfaces:
            ls = iface.stats
            total += (ls.packets_lost + ls.packets_dropped_queue
                      + ls.packets_dropped_down)
    return total


class FaultCampaign:
    """Schedule declarative faults against a running internet and measure
    recovery, under continuous invariant checking.

    Parameters
    ----------
    net:
        A built (and ideally converged) :class:`~repro.harness.topology.Internet`.
    faults:
        Fault events; more can be added with :meth:`add` before :meth:`run`.
    monitors:
        Invariant suite.  ``None`` selects :func:`~repro.chaos.monitors.default_monitors`;
        pass ``[]`` explicitly to measure monitor overhead (benchmarks).
    probe_interval:
        Cadence of the post-fault reachability probe loop.
    sample_interval:
        Cadence of periodic monitor sampling.
    targets:
        Addresses that define "full reachability" (every host must reach
        each of them).  Defaults to every host's primary address, falling
        back to gateway addresses on host-less topologies.
    """

    def __init__(
        self,
        net,
        faults: Iterable[Fault] = (),
        monitors: Optional[Sequence[InvariantMonitor]] = None,
        *,
        probe_interval: float = 0.25,
        sample_interval: float = 0.5,
        targets: Optional[list[Address]] = None,
        name: str = "campaign",
    ):
        self.net = net
        self.sim = net.sim
        self.name = name
        self.faults: list[Fault] = sorted(faults, key=lambda f: (f.at, f.duration))
        self.monitors: list[InvariantMonitor] = (
            default_monitors() if monitors is None else list(monitors))
        self.probe_interval = probe_interval
        self.sample_interval = sample_interval
        self._targets = targets
        self._active_faults = 0
        self._pending_reconverge: list[Fault] = []
        self._probe_scheduled = False
        self._finished = False
        self.probes = 0
        self.monitor_samples = 0
        self._events_at_start = 0

    # ------------------------------------------------------------------
    def add(self, fault: Fault) -> Fault:
        """Add one fault (before :meth:`run`)."""
        self.faults.append(fault)
        self.faults.sort(key=lambda f: (f.at, f.duration))
        return fault

    def watch_connection(self, conn, label: str = "") -> None:
        """Register a TCP connection with the survival monitor (if any)."""
        for monitor in self.monitors:
            if hasattr(monitor, "watch"):
                monitor.watch(conn, label)

    # ------------------------------------------------------------------
    # Reachability probing (control plane — no packets injected)
    # ------------------------------------------------------------------
    def probe_targets(self) -> list[tuple[Node, Address]]:
        """(source node, destination address) pairs that must all connect
        for the network to count as reconverged."""
        if self._targets is not None:
            sources = [h.node for h in self.net.hosts.values()] or \
                      [g.node for g in self.net.gateways.values()]
            return [(s, t) for s in sources for t in self._targets
                    if not s.owns_address(t)]
        hosts = [h.node for h in self.net.hosts.values()]
        if len(hosts) >= 2:
            return [(a, b.address) for a in hosts for b in hosts if a is not b]
        gws = [g.node for g in self.net.gateways.values()]
        return [(a, b.address) for a in gws for b in gws if a is not b]

    def fully_reachable(self) -> bool:
        """Control-plane check: every probe pair currently connects."""
        owners = self.net.address_owners()
        for src, dst in self.probe_targets():
            if control_plane_path(owners, src, dst) is None:
                return False
        return True

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _apply(self, fault: Fault) -> None:
        fault.applied_at = self.sim.now
        fault._drops_at_apply = total_drops(self.net)
        # A fault landing while others are recovering muddies *their*
        # reconvergence attribution.
        for pending in self._pending_reconverge:
            pending.overlapped = True
        self._active_faults += 1
        fault.apply(self.net)
        self.net.tracer.log(self.sim.now, "chaos", "", "fault-apply",
                            fault.describe())
        for monitor in self.monitors:
            monitor.on_fault_applied(fault)

    def _clear(self, fault: Fault) -> None:
        fault.clear(self.net)
        fault.cleared_at = self.sim.now
        fault.packets_lost_blackout = (
            total_drops(self.net) - fault._drops_at_apply)
        self._active_faults = max(0, self._active_faults - 1)
        if self._active_faults > 0:
            fault.overlapped = True
        self.net.tracer.log(self.sim.now, "chaos", "", "fault-clear",
                            fault.describe())
        for monitor in self.monitors:
            monitor.on_fault_cleared(fault)
        self._pending_reconverge.append(fault)
        self._ensure_probing()

    def _ensure_probing(self) -> None:
        if not self._probe_scheduled:
            self._probe_scheduled = True
            self.sim.schedule(0.0, self._probe_tick, label="chaos:probe")

    def _probe_tick(self) -> None:
        self._probe_scheduled = False
        if self._finished or not self._pending_reconverge:
            return
        self.probes += 1
        if self.fully_reachable():
            now = self.sim.now
            for fault in self._pending_reconverge:
                fault.reconverged_at = now
                self.net.tracer.log(now, "chaos", "", "reconverged",
                                    fault.describe())
                for monitor in self.monitors:
                    monitor.on_reconverged(fault)
            self._pending_reconverge.clear()
            return
        self._probe_scheduled = True
        self.sim.schedule(self.probe_interval, self._probe_tick,
                          label="chaos:probe")

    def _sample_tick(self, until: float) -> None:
        if self._finished:
            return
        self.monitor_samples += 1
        for monitor in self.monitors:
            monitor.sample()
        if self.sim.now + self.sample_interval <= until:
            self.sim.schedule(self.sample_interval,
                              lambda: self._sample_tick(until),
                              label="chaos:sample")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> CampaignReport:
        """Schedule every fault, run the clock, and return the report.

        ``until`` defaults to comfortably after the last fault clears
        (its scheduled end plus 30 s of recovery headroom).
        """
        if self._finished:
            raise RuntimeError("a FaultCampaign can only run once")
        if until is None:
            last = max((f.clear_time for f in self.faults), default=self.sim.now)
            until = last + 30.0
        self._events_at_start = self.sim.events_processed
        for monitor in self.monitors:
            monitor.attach(self.net, self)
        now = self.sim.now
        for fault in self.faults:
            self.sim.call_at(max(now, fault.at), lambda f=fault: self._apply(f),
                             label="chaos:apply")
            self.sim.call_at(max(now, fault.clear_time),
                             lambda f=fault: self._clear(f),
                             label="chaos:clear")
        if self.monitors and self.sample_interval > 0:
            self.sim.schedule(self.sample_interval,
                              lambda: self._sample_tick(until),
                              label="chaos:sample")
        self.sim.run(until=until)
        self._finished = True
        for monitor in self.monitors:
            monitor.finish()
        for monitor in self.monitors:
            monitor.detach()
        counters = {
            "sim_time_end": self.sim.now,
            "events_processed": self.sim.events_processed - self._events_at_start,
            "probes": self.probes,
            "monitor_samples": self.monitor_samples,
            "monitor_count": len(self.monitors),
            "probe_pairs": len(self.probe_targets()),
        }
        obs = getattr(self.net, "obs", None)
        if obs is not None:
            # Sim-deterministic only (no wall times): same seed, same bytes.
            counters["obs"] = obs.snapshot()
        return CampaignReport(self.name, self.faults, self.monitors, counters)
