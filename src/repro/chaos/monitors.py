"""Continuous fate-sharing invariant monitors for chaos campaigns.

The 1988 survivability claim is only meaningful if it can be *checked while
the network is being hurt*.  Each monitor here watches one invariant the
architecture promises, live, through the observation surfaces the stack
already exposes — gateway ``forward_inspectors`` for the data path, node and
link counters for accounting, the protocol tracer for post-mortem excerpts:

* **no forwarding loops** — a datagram never transits the same gateway
  twice (:class:`ForwardingLoopMonitor`, per-packet node-visit sets);
* **bounded TTL exhaustion** — outside fault/grace windows the network does
  not burn packets on TTL expiry (:class:`TtlExhaustionMonitor`);
* **crashed means silent** — a crashed node neither delivers nor
  originates traffic until restored (:class:`BlackoutDeliveryMonitor`);
* **routing reconverges** — every fault's reachability blackout ends
  within a configured bound (:class:`ReconvergenceMonitor`);
* **established TCP survives** — a synchronized connection outlives any
  partition shorter than its RTO-backoff death threshold
  (:class:`TcpSurvivalMonitor`, see
  :meth:`~repro.tcp.connection.TcpConfig.death_threshold`);
* **zombies get shed** — after a host restart, surviving peers holding
  half-open connections to the reborn host must detect the death (probe,
  RST, or retransmission death) within the keepalive death threshold
  (:class:`HalfOpenZombieMonitor`);
* **quiet time is honored** — a restarted host issues no ISN inside its
  RFC 793 quiet-time window (:class:`QuietTimeMonitor`, reading the
  stack's unconditional ``isn_quiet_violations`` observation counter).

Violations carry a tail excerpt of the trace ring (which, after the PR-2
bugfix, actually holds the *post-failure* records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..ip.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from .campaign import FaultCampaign
    from .faults import Fault

__all__ = [
    "Violation",
    "InvariantMonitor",
    "ForwardingLoopMonitor",
    "TtlExhaustionMonitor",
    "BlackoutDeliveryMonitor",
    "ReconvergenceMonitor",
    "TcpSurvivalMonitor",
    "HalfOpenZombieMonitor",
    "QuietTimeMonitor",
    "default_monitors",
]


@dataclass(frozen=True)
class Violation:
    """One observed breach of a survivability invariant.

    When the internet has an observability layer installed, ``journey``
    holds the offending packet's hop-by-hop span lines — node, verdict and
    dwell times end to end — which beats a trace-ring excerpt by actually
    naming *which* packet broke the invariant and everything that happened
    to it on the way.
    """

    time: float
    monitor: str
    detail: str
    trace_excerpt: tuple[str, ...] = ()
    journey: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "monitor": self.monitor,
            "detail": self.detail,
            "trace_excerpt": list(self.trace_excerpt),
            "journey": list(self.journey),
        }


class InvariantMonitor:
    """Base monitor: lifecycle hooks called by the campaign engine."""

    name = "invariant"

    def __init__(self):
        self.violations: list[Violation] = []
        self.net = None
        self.campaign: Optional["FaultCampaign"] = None

    # -- lifecycle ------------------------------------------------------
    def attach(self, net, campaign: "FaultCampaign") -> None:
        """Hook into the running internet; called once before the run."""
        self.net = net
        self.campaign = campaign

    def detach(self) -> None:
        """Unhook everything installed by :meth:`attach`."""

    def sample(self) -> None:
        """Periodic check, called every campaign ``sample_interval``."""

    def finish(self) -> None:
        """End-of-campaign check, after the clock stops."""

    # -- fault notifications -------------------------------------------
    def on_fault_applied(self, fault: "Fault") -> None: ...

    def on_fault_cleared(self, fault: "Fault") -> None: ...

    def on_reconverged(self, fault: "Fault") -> None: ...

    # -- reporting ------------------------------------------------------
    def violate(self, detail: str, *, excerpt_len: int = 8,
                datagram=None, trace_id: Optional[int] = None) -> None:
        """Record one violation.

        Pass the offending ``datagram`` (or its ``trace_id``) when the
        monitor has it in hand: with an observability layer installed the
        violation then carries that packet's full hop-by-hop journey.
        """
        tracer = getattr(self.net, "tracer", None)
        excerpt: tuple[str, ...] = ()
        if tracer is not None:
            excerpt = tuple(
                f"t={r.time:.6f} [{r.component}] {r.node} {r.event} {r.detail}".rstrip()
                for r in tracer.tail(excerpt_len)
            )
        journey: tuple[str, ...] = ()
        if trace_id is None and datagram is not None:
            trace_id = getattr(datagram, "trace_id", 0) or None
        if trace_id:
            obs = getattr(self.net, "obs", None)
            if obs is not None:
                journey = tuple(obs.journey_lines(trace_id))
        self.violations.append(
            Violation(self.net.sim.now, self.name, detail, excerpt, journey))


class ForwardingLoopMonitor(InvariantMonitor):
    """A datagram must never transit the same gateway twice.

    Hooks every gateway's ``forward_inspectors`` and keeps a node-visit set
    per in-flight packet, keyed by the header fields that survive transit
    unchanged: (src, dst, protocol, ident, fragment offset).  Entries are
    pruned after ``horizon`` seconds so 16-bit ident reuse cannot alias two
    different packets.
    """

    name = "no-forwarding-loop"

    #: Prune bookkeeping for packets older than this (comfortably above any
    #: realistic end-to-end transit time in these topologies).
    def __init__(self, horizon: float = 10.0):
        super().__init__()
        self.horizon = horizon
        self.packets_tracked = 0
        self._visits: dict[tuple, tuple[float, set]] = {}
        self._installed: list[tuple[Node, object]] = []
        self._since_prune = 0

    def attach(self, net, campaign) -> None:
        super().attach(net, campaign)
        for gw in net.gateways.values():
            inspector = self._make_inspector(gw.node.name)
            gw.node.forward_inspectors.append(inspector)
            self._installed.append((gw.node, inspector))

    def detach(self) -> None:
        for node, inspector in self._installed:
            try:
                node.forward_inspectors.remove(inspector)
            except ValueError:  # pragma: no cover - already removed
                pass
        self._installed.clear()

    def _make_inspector(self, gateway_name: str):
        def inspect(datagram) -> None:
            key = (int(datagram.src), int(datagram.dst), datagram.protocol,
                   datagram.ident, datagram.fragment_offset)
            now = self.net.sim.now
            entry = self._visits.get(key)
            if entry is None or now - entry[0] > self.horizon:
                self._visits[key] = (now, {gateway_name})
                self.packets_tracked += 1
            elif gateway_name in entry[1]:
                self.violate(
                    f"forwarding loop: {datagram.src}->{datagram.dst} "
                    f"ident={datagram.ident} revisited {gateway_name} "
                    f"(path so far: {sorted(entry[1])})",
                    datagram=datagram)
            else:
                entry[1].add(gateway_name)
            self._since_prune += 1
            if self._since_prune >= 4096:
                self._prune(now)
        return inspect

    def _prune(self, now: float) -> None:
        self._since_prune = 0
        horizon = self.horizon
        stale = [k for k, (t, _) in self._visits.items() if now - t > horizon]
        for k in stale:
            del self._visits[k]


class TtlExhaustionMonitor(InvariantMonitor):
    """TTL expiry must stay bounded outside fault/grace windows.

    Transient micro-loops *during* reconvergence are expected of a
    distance-vector world; a healthy, converged network burning packets on
    TTL is not.  The monitor samples the fleet-wide ``dropped_ttl`` counter
    and flags any rise observed while no fault is active and the grace
    period after the last clearance has passed.
    """

    name = "ttl-exhaustion-bounded"

    def __init__(self, grace: float = 10.0, tolerance: int = 0):
        super().__init__()
        self.grace = grace
        self.tolerance = tolerance
        self._last_total = 0
        self._active_faults = 0
        self._last_clear = -float("inf")

    def attach(self, net, campaign) -> None:
        super().attach(net, campaign)
        self._last_total = self._total_ttl_drops()

    def _total_ttl_drops(self) -> int:
        return sum(node.stats.dropped_ttl for node in self.net.nodes().values())

    def on_fault_applied(self, fault) -> None:
        self._active_faults += 1

    def on_fault_cleared(self, fault) -> None:
        self._active_faults = max(0, self._active_faults - 1)
        self._last_clear = self.net.sim.now

    def _in_grace(self) -> bool:
        return (self._active_faults > 0
                or self.net.sim.now - self._last_clear < self.grace)

    def sample(self) -> None:
        total = self._total_ttl_drops()
        delta = total - self._last_total
        if delta > self.tolerance and not self._in_grace():
            self.violate(f"{delta} TTL-exhausted drops in a quiet window "
                         f"(total now {total})")
        self._last_total = total

    def finish(self) -> None:
        self.sample()


class BlackoutDeliveryMonitor(InvariantMonitor):
    """A crashed node must be silent: no delivery, no origination.

    Fate-sharing means the conversation state died *with* the node — any
    packet delivered to or sourced from a node inside its down window is a
    resurrection bug (exactly the class the link-epoch fix closes).
    """

    name = "crashed-node-silent"

    def __init__(self):
        super().__init__()
        self._snapshots: dict[str, tuple[int, int, int]] = {}

    @staticmethod
    def _counts(node: Node) -> tuple[int, int, int]:
        # Interface transmissions catch holdover senders that bypass the
        # node's own accounting — e.g. a flow scheduler draining queues
        # it should have flushed when the node died.
        transmitted = sum(iface.stats.packets_sent
                          for iface in node.interfaces)
        return node.stats.delivered, node.stats.originated, transmitted

    def _node_for(self, fault) -> Optional[Node]:
        name = getattr(fault, "name", None)
        if name is None:
            return None
        try:
            return self.net.node_by_name(name)
        except KeyError:  # pragma: no cover - misconfigured fault
            return None

    def on_fault_applied(self, fault) -> None:
        node = self._node_for(fault)
        if node is not None and not node.up:
            self._snapshots[node.name] = self._counts(node)

    def _check(self, name: str, node: Node) -> None:
        before = self._snapshots.get(name)
        if before is None:
            return
        delivered, originated, transmitted = self._counts(node)
        if delivered > before[0]:
            self.violate(f"{name} delivered {delivered - before[0]} "
                         f"datagram(s) while crashed")
        if originated > before[1]:
            self.violate(f"{name} originated {originated - before[1]} "
                         f"datagram(s) while crashed")
        if transmitted > before[2]:
            self.violate(f"{name} transmitted {transmitted - before[2]} "
                         f"datagram(s) while crashed")

    def sample(self) -> None:
        for name in list(self._snapshots):
            node = self.net.node_by_name(name)
            if node.up:
                # Restored since our snapshot: final check, then forget.
                self._check(name, node)
                del self._snapshots[name]
            else:
                self._check(name, node)

    def on_fault_cleared(self, fault) -> None:
        node = self._node_for(fault)
        if node is not None and node.name in self._snapshots:
            self._check(node.name, node)
            del self._snapshots[node.name]

    def finish(self) -> None:
        self.sample()


class ReconvergenceMonitor(InvariantMonitor):
    """Routing must reconverge within ``bound`` seconds of a fault clearing.

    The campaign engine measures reconvergence (control-plane reachability
    restored between all probe targets); this monitor turns the measurement
    into an invariant.  Faults whose recovery window overlapped another
    active fault are exempt from the bound (their blackout was not theirs
    alone) but still must reconverge by campaign end.
    """

    name = "reconvergence-bounded"

    def __init__(self, bound: float = 30.0):
        super().__init__()
        self.bound = bound

    def on_reconverged(self, fault) -> None:
        rt = fault.reconvergence_time
        if rt is None:
            return
        if rt > self.bound and not getattr(fault, "overlapped", False):
            self.violate(f"{fault.describe()}: reconvergence took {rt:.3f}s "
                         f"(bound {self.bound:.3f}s)")

    def finish(self) -> None:
        for fault in self.campaign.faults:
            if fault.cleared_at is not None and fault.reconverged_at is None:
                self.violate(f"{fault.describe()}: never reconverged after "
                             f"clearing at t={fault.cleared_at:.3f}")


class TcpSurvivalMonitor(InvariantMonitor):
    """An established connection must survive any blackout shorter than its
    RTO-backoff death threshold.

    Register connections with :meth:`watch`.  At campaign end, if every
    fault's outage window (apply → reconverged) was strictly shorter than a
    watched connection's :meth:`~repro.tcp.connection.TcpConfig.death_threshold`,
    that connection dying of ``timeout`` or ``reset`` is an invariant
    violation — the architecture promised the conversation would ride out
    the disruption.
    """

    name = "tcp-survives-partition"

    def __init__(self):
        super().__init__()
        self._watched: list[tuple[object, str]] = []

    def watch(self, conn, label: str = "") -> None:
        """Track a :class:`~repro.tcp.connection.TcpConnection` (or a
        StreamSocket, whose ``.conn`` is unwrapped)."""
        conn = getattr(conn, "conn", conn)
        self._watched.append((conn, label or f"conn#{len(self._watched)}"))

    def _max_outage(self) -> float:
        worst = 0.0
        for fault in self.campaign.faults:
            if fault.applied_at is None:
                continue
            end = fault.reconverged_at
            if end is None:
                end = self.net.sim.now  # never recovered: outage still open
            worst = max(worst, end - fault.applied_at)
        return worst

    def finish(self) -> None:
        if not self._watched:
            return
        outage = self._max_outage()
        for conn, label in self._watched:
            if conn.stats.established_at is None:
                continue  # never established: nothing promised
            threshold = conn.config.death_threshold()
            if outage >= threshold:
                continue  # blackout long enough that death is legitimate
            if conn.close_reason in ("timeout", "reset"):
                self.violate(
                    f"{label}: established connection died "
                    f"({conn.close_reason}) though the worst outage "
                    f"({outage:.3f}s) was below its death threshold "
                    f"({threshold:.3f}s)")


class HalfOpenZombieMonitor(InvariantMonitor):
    """After a host restart, surviving peers must shed their zombies.

    Fate-sharing kills the crashed host's half of every conversation; the
    *other* half becomes a half-open zombie that only endpoint machinery
    can clear — a keepalive probe answered by the reborn host's RST, a
    data retransmission refused the same way, or the probe count running
    out against a host that stayed dark.  Whichever path fires, the
    zombie must be out of the synchronized states within the connection's
    keepalive death threshold (plus scheduling grace) of the restore.

    Connections without keepalive enabled are tracked only while they
    have unacknowledged data in flight (retransmission death bounds their
    detection); a fully idle, keepalive-less zombie is *undetectable* by
    design — which is exactly the configuration hole keepalives exist to
    close, so the monitor does not pretend to bound it.
    """

    name = "half-open-zombie-shed"

    def __init__(self, grace: float = 2.0):
        super().__init__()
        self.grace = grace
        #: Zombies observed and the wall-clock deadline each must die by:
        #: (connection, label, deadline).
        self._watch: list[tuple[object, str, float]] = []
        self.zombies_tracked = 0
        self.zombies_shed = 0

    def _stacks(self):
        for host in self.net.hosts.values():
            stack = getattr(host, "tcp", None)
            if stack is not None:
                yield host.node, stack

    def on_fault_cleared(self, fault) -> None:
        if getattr(fault, "kind", "") != "host-restart":
            return
        try:
            reborn = self.net.node_by_name(fault.name)
        except KeyError:  # pragma: no cover - misconfigured fault
            return
        now = self.net.sim.now
        for node, stack in self._stacks():
            if node is reborn:
                continue  # its own conversations died with it (fate-sharing)
            for conn in stack.connections:
                if not conn.state.is_synchronized:
                    continue
                if not reborn.owns_address(conn.remote_addr):
                    continue
                threshold = conn.config.keepalive_death_threshold()
                if threshold is None:
                    if conn.flight_size == 0:
                        continue  # idle + keepalive off: unbounded by design
                    threshold = conn.config.death_threshold()
                self._watch.append((
                    conn,
                    f"{node.name}:{conn.local_port}->{fault.name}:{conn.remote_port}",
                    now + threshold + self.grace))
                self.zombies_tracked += 1

    def _check(self, final: bool) -> None:
        now = self.net.sim.now
        remaining = []
        for conn, label, deadline in self._watch:
            if not conn.state.is_synchronized:
                self.zombies_shed += 1
                continue  # detected and torn down (or gracefully closed)
            if now > deadline:
                self.violate(
                    f"{label}: half-open zombie still {conn.state.value} "
                    f"{now - deadline + self.grace:.3f}s after the restart "
                    f"(deadline t={deadline:.3f})")
            elif not final:
                remaining.append((conn, label, deadline))
            else:
                # Campaign ended before the deadline: undecided, not a
                # violation — the fault landed too close to the end.
                pass
        self._watch = remaining

    def sample(self) -> None:
        self._check(final=False)

    def finish(self) -> None:
        self._check(final=True)


class QuietTimeMonitor(InvariantMonitor):
    """A restarted host must stay ISN-silent through RFC 793 quiet time.

    The stack counts every ISN generated inside its quiet-time window in
    ``isn_quiet_violations`` — *unconditionally*, even when enforcement is
    switched off — so the monitor cannot miss a violation that happened
    between two samples.  Any rise in the fleet-wide counter is a breach:
    sequence numbers from the previous incarnation may still be alive in
    the net, and reusing their space can corrupt a resurrected
    conversation (the exact failure quiet time exists to prevent).
    """

    name = "quiet-time-honored"

    def __init__(self):
        super().__init__()
        self._baseline: dict[str, int] = {}

    def _stacks(self):
        for host in self.net.hosts.values():
            stack = getattr(host, "tcp", None)
            if stack is not None:
                yield host.node.name, stack

    def attach(self, net, campaign) -> None:
        super().attach(net, campaign)
        self._baseline = {name: stack.isn_quiet_violations
                          for name, stack in self._stacks()}

    def sample(self) -> None:
        for name, stack in self._stacks():
            seen = self._baseline.get(name, 0)
            current = stack.isn_quiet_violations
            if current > seen:
                self.violate(
                    f"{name} issued {current - seen} ISN(s) inside its "
                    f"RFC 793 quiet-time window (restarted at "
                    f"t={stack.restarted_at:.3f})" if stack.restarted_at
                    is not None else
                    f"{name} issued {current - seen} ISN(s) inside a "
                    f"quiet-time window")
                self._baseline[name] = current

    def finish(self) -> None:
        self.sample()


def default_monitors() -> list[InvariantMonitor]:
    """The standard suite a campaign runs when none is given."""
    return [
        ForwardingLoopMonitor(),
        TtlExhaustionMonitor(),
        BlackoutDeliveryMonitor(),
        ReconvergenceMonitor(),
        TcpSurvivalMonitor(),
        HalfOpenZombieMonitor(),
        QuietTimeMonitor(),
    ]
