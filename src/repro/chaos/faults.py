"""Declarative fault events for chaos campaigns.

Each fault is a *scheduled, reversible* perturbation of a running
:class:`~repro.harness.topology.Internet`: a link flap, a gateway
crash/restore cycle, or a network partition computed from the topology
graph.  Faults carry their own outcome record — when they were applied and
cleared, how long routing took to reconverge afterwards, and how many
packets died in the blackout window — which the campaign aggregates into a
:class:`~repro.chaos.report.CampaignReport`.

The objects are deliberately dumb: :class:`~repro.chaos.campaign.FaultCampaign`
owns scheduling, measurement and invariant checking; a fault only knows how
to ``apply`` and ``clear`` itself.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = ["Fault", "LinkFlap", "GatewayCrash", "HostRestart", "Partition",
           "ByzantineGateway"]


class Fault:
    """Base class: one perturbation active on ``[at, at + duration)``."""

    kind = "fault"

    def __init__(self, at: float, duration: float):
        if at < 0:
            raise ValueError(f"fault time must be non-negative, got {at}")
        if duration <= 0:
            raise ValueError(f"fault duration must be positive, got {duration}")
        self.at = at
        self.duration = duration
        # Outcome record, filled in by the campaign at runtime.
        self.applied_at: Optional[float] = None
        self.cleared_at: Optional[float] = None
        self.reconverged_at: Optional[float] = None
        self.packets_lost_blackout: int = 0
        #: True when another fault was active during this one's recovery
        #: window — its reconvergence time is then not attributable to it
        #: alone, and the bound check exempts it.
        self.overlapped: bool = False
        self._drops_at_apply: int = 0

    @property
    def clear_time(self) -> float:
        """Scheduled end of the fault window."""
        return self.at + self.duration

    @property
    def reconvergence_time(self) -> Optional[float]:
        """Seconds from fault clearance to restored full reachability,
        or None if the network never reconverged within the campaign."""
        if self.cleared_at is None or self.reconverged_at is None:
            return None
        return self.reconverged_at - self.cleared_at

    # ------------------------------------------------------------------
    def apply(self, net) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clear(self, net) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serializable outcome record for the campaign report."""
        return {
            "kind": self.kind,
            "detail": self.describe(),
            "scheduled_at": self.at,
            "duration": self.duration,
            "applied_at": self.applied_at,
            "cleared_at": self.cleared_at,
            "reconverged_at": self.reconverged_at,
            "reconvergence_time": self.reconvergence_time,
            "packets_lost_blackout": self.packets_lost_blackout,
            "overlapped": self.overlapped,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()} @{self.at:.3f}+{self.duration:.3f}>"


def _resolve_link(net, link: Union[int, object]):
    """Accept a link object or an index into ``net.links`` (the stable,
    serializable form the random generator emits)."""
    if isinstance(link, int):
        if not 0 <= link < len(net.links):
            raise IndexError(f"link index {link} out of range "
                             f"(topology has {len(net.links)} links)")
        return net.links[link]
    return link


class LinkFlap(Fault):
    """Administratively lower a link, dwell, then raise it again."""

    kind = "link-flap"

    def __init__(self, link: Union[int, object], at: float, dwell: float):
        super().__init__(at, dwell)
        self.link = link
        self._resolved = None

    def apply(self, net) -> None:
        self._resolved = _resolve_link(net, self.link)
        net.fail_link(self._resolved)

    def clear(self, net) -> None:
        if self._resolved is not None:
            net.restore_link(self._resolved)

    def describe(self) -> str:
        if self._resolved is not None:
            return f"link {getattr(self._resolved, 'name', self.link)}"
        if isinstance(self.link, int):
            return f"link #{self.link}"
        return f"link {getattr(self.link, 'name', self.link)}"


class GatewayCrash(Fault):
    """Crash a gateway (losing all volatile state), restore after dwell."""

    kind = "gateway-crash"

    def __init__(self, name: str, at: float, dwell: float):
        super().__init__(at, dwell)
        self.name = name

    def apply(self, net) -> None:
        net.crash_gateway(self.name)

    def clear(self, net) -> None:
        net.restore_gateway(self.name)

    def describe(self) -> str:
        return f"gateway {self.name}"


class HostRestart(Fault):
    """Power-cycle an end host holding live conversation state.

    This is the fault the fate-sharing argument (goal 1) is *about*: the
    gateways keep no conversation state, so the only state that can be
    lost with a box is the endpoints' — and losing it must kill exactly
    those conversations, silently, while the surviving peers detect the
    death (keepalive), shed their half-open zombies (RST on the old
    segments) and, if a session layer is running, rebuild on top.

    ``apply`` crashes the named host (volatile TCP/session state vanishes,
    no FIN or RST is emitted); ``clear`` restores it, which starts the
    RFC 793 quiet time before the reborn stack may issue sequence numbers.
    """

    kind = "host-restart"

    def __init__(self, name: str, at: float, dwell: float):
        super().__init__(at, dwell)
        self.name = name

    def apply(self, net) -> None:
        net.crash_host(self.name)

    def clear(self, net) -> None:
        net.restore_host(self.name)

    def describe(self) -> str:
        return f"host {self.name}"


class ByzantineGateway(Fault):
    """Turn a transit gateway *malicious* for the fault window.

    Survivability (Clark's goal 2) defends against gateways that *fail*;
    this fault models one that keeps forwarding but lies.  For the window
    the gateway perturbs a fraction of the datagrams it forwards — its own
    originated traffic (routing updates, management replies) is untouched,
    so the control plane stays honest and detection must come from the
    data path's end-to-end checks:

    ``corrupt``
        Flip one payload byte.  The internet checksum over the transport
        pseudo-header catches every single-byte change, so the receiver's
        ``bad_segments`` / ``checksum_failures`` counters tick and the
        segment is dropped — no corrupted byte is ever delivered upward.
    ``replay``
        Forward the datagram normally, then re-inject several copies a
        beat later.  Copies carry fresh idents (a real attacker's dupes
        would too — ident only scopes fragment reassembly) so they read
        as new packets, and the receiver's duplicate-segment handling
        answers each with a duplicate ACK — enough of them trips the
        sender's fast-retransmit counter.
    ``misroute``
        Rewrite the destination address on a fraction of traffic toward a
        decoy node.  The transport checksum binds the payload to the
        *original* pseudo-header, so the decoy sees checksum failures —
        misrouting is indistinguishable from corruption to the victim it
        robs, but the decoy's counters name the traffic sink.
    ``delay``
        Hold datagrams for longer than the sender's RTO before releasing
        them, driving retransmission timeouts without dropping anything.

    All randomness comes from a named stream
    (``byzantine.<gateway>.<behavior>``) so campaigns replay exactly.
    """

    kind = "byzantine-gateway"

    BEHAVIORS = ("corrupt", "replay", "misroute", "delay")

    def __init__(self, name: str, at: float, dwell: float, *,
                 behavior: str, rate: float = 0.35,
                 decoy: Optional[str] = None, delay_by: float = 1.2,
                 replay_copies: int = 4, victims=()):
        super().__init__(at, dwell)
        if behavior not in self.BEHAVIORS:
            raise ValueError(f"unknown byzantine behavior {behavior!r}; "
                             f"expected one of {self.BEHAVIORS}")
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if behavior == "misroute" and decoy is None:
            raise ValueError("misroute behavior needs a decoy node name")
        self.name = name
        self.behavior = behavior
        self.rate = rate
        self.decoy = decoy
        self.delay_by = delay_by
        self.replay_copies = replay_copies
        #: Node names whose golden signals should betray this behavior —
        #: the netmgmt scorer treats alarms naming these as detections.
        self.victims = frozenset(victims)
        # Data-path perturbation counters (filled in while active).
        self.perturbed = 0
        self.passed_through = 0
        self._replay_ident = 0
        self._active = False
        self._node = None
        self._sim = None
        self._rng = None
        self._saved = None
        self._decoy_addr = None

    # ------------------------------------------------------------------
    def apply(self, net) -> None:
        node = net.node_by_name(self.name)
        self._node = node
        self._sim = net.sim
        self._rng = net.streams.stream(
            f"byzantine.{self.name}.{self.behavior}")
        if self.decoy is not None:
            decoy_node = net.node_by_name(self.decoy)
            if not decoy_node.addresses:
                raise ValueError(f"decoy {self.decoy} has no addresses")
            self._decoy_addr = decoy_node.addresses[0]
        original = node._output  # bound method resolved via the class
        self._saved = original
        fault = self

        def malicious_output(datagram, *, originating: bool) -> bool:
            if originating or not fault._active:
                return original(datagram, originating=originating)
            return fault._perturb(datagram, original)

        node._output = malicious_output
        self._active = True

    def clear(self, net) -> None:
        self._active = False
        node, self._node = self._node, None
        if node is not None and node.__dict__.get("_output") is not None:
            del node.__dict__["_output"]
        self._saved = None

    # ------------------------------------------------------------------
    def _perturb(self, datagram, original) -> bool:
        """Apply this fault's behavior to one forwarded datagram."""
        if self._rng.random() >= self.rate or not datagram.payload:
            self.passed_through += 1
            return original(datagram, originating=False)
        self.perturbed += 1
        behavior = self.behavior
        if behavior == "corrupt":
            mutated = bytearray(datagram.payload)
            index = self._rng.randrange(len(mutated))
            mutated[index] ^= self._rng.randrange(1, 256)
            datagram.payload = bytes(mutated)
            return original(datagram, originating=False)
        if behavior == "replay":
            # Replayed copies carry idents from the top of the 16-bit
            # space: the loop monitor keys packets by (src, dst, proto,
            # ident), so a copy must never alias an ident the victim
            # will itself issue during the campaign.
            copies = []
            for _ in range(self.replay_copies):
                ident = 0xC000 + (self._replay_ident & 0x3FFF)
                self._replay_ident += 1
                copies.append(datagram.copy(ident=ident))
            sent = original(datagram, originating=False)
            for i, dupe in enumerate(copies):
                self._sim.schedule(
                    0.01 * (i + 1),
                    lambda d=dupe: self._reinject(d),
                    label=f"byzantine.replay.{self.name}")
            return sent
        if behavior == "misroute":
            datagram.dst = self._decoy_addr
            return original(datagram, originating=False)
        # behavior == "delay": hold past the sender's RTO, then release.
        self._sim.schedule(
            self.delay_by,
            lambda d=datagram: self._reinject(d),
            label=f"byzantine.delay.{self.name}")
        return True

    def _reinject(self, datagram) -> None:
        """Emit a held or duplicated datagram through the honest path."""
        node = self._node
        if self._active and node is not None and node.up:
            self._saved(datagram, originating=False)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return f"byzantine gateway {self.name} ({self.behavior})"

    def to_dict(self) -> dict:
        record = super().to_dict()
        record.update({
            "behavior": self.behavior,
            "rate": self.rate,
            "perturbed": self.perturbed,
            "passed_through": self.passed_through,
        })
        if self.decoy is not None:
            record["decoy"] = self.decoy
        return record


class Partition(Fault):
    """Split the internet into two halves for the fault window.

    The cut is *computed from the topology graph* at apply time: every
    point-to-point link with exactly one endpoint inside ``group`` goes
    administratively down, and comes back when the partition heals.  A LAN
    spanning the cut is a configuration error
    (:meth:`~repro.harness.topology.Internet.cut_links` raises).
    """

    kind = "partition"

    def __init__(self, group, at: float, duration: float):
        super().__init__(at, duration)
        self.group = frozenset(group)
        self._cut: list = []

    def apply(self, net) -> None:
        self._cut = net.cut_links(set(self.group))
        for link in self._cut:
            net.fail_link(link)

    def clear(self, net) -> None:
        for link in self._cut:
            net.restore_link(link)

    def describe(self) -> str:
        members = ",".join(sorted(self.group))
        return f"partition {{{members}}} ({len(self._cut)} links cut)" \
            if self._cut else f"partition {{{members}}}"
