"""Declarative fault events for chaos campaigns.

Each fault is a *scheduled, reversible* perturbation of a running
:class:`~repro.harness.topology.Internet`: a link flap, a gateway
crash/restore cycle, or a network partition computed from the topology
graph.  Faults carry their own outcome record — when they were applied and
cleared, how long routing took to reconverge afterwards, and how many
packets died in the blackout window — which the campaign aggregates into a
:class:`~repro.chaos.report.CampaignReport`.

The objects are deliberately dumb: :class:`~repro.chaos.campaign.FaultCampaign`
owns scheduling, measurement and invariant checking; a fault only knows how
to ``apply`` and ``clear`` itself.
"""

from __future__ import annotations

from typing import Optional, Union

__all__ = ["Fault", "LinkFlap", "GatewayCrash", "HostRestart", "Partition"]


class Fault:
    """Base class: one perturbation active on ``[at, at + duration)``."""

    kind = "fault"

    def __init__(self, at: float, duration: float):
        if at < 0:
            raise ValueError(f"fault time must be non-negative, got {at}")
        if duration <= 0:
            raise ValueError(f"fault duration must be positive, got {duration}")
        self.at = at
        self.duration = duration
        # Outcome record, filled in by the campaign at runtime.
        self.applied_at: Optional[float] = None
        self.cleared_at: Optional[float] = None
        self.reconverged_at: Optional[float] = None
        self.packets_lost_blackout: int = 0
        #: True when another fault was active during this one's recovery
        #: window — its reconvergence time is then not attributable to it
        #: alone, and the bound check exempts it.
        self.overlapped: bool = False
        self._drops_at_apply: int = 0

    @property
    def clear_time(self) -> float:
        """Scheduled end of the fault window."""
        return self.at + self.duration

    @property
    def reconvergence_time(self) -> Optional[float]:
        """Seconds from fault clearance to restored full reachability,
        or None if the network never reconverged within the campaign."""
        if self.cleared_at is None or self.reconverged_at is None:
            return None
        return self.reconverged_at - self.cleared_at

    # ------------------------------------------------------------------
    def apply(self, net) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def clear(self, net) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Serializable outcome record for the campaign report."""
        return {
            "kind": self.kind,
            "detail": self.describe(),
            "scheduled_at": self.at,
            "duration": self.duration,
            "applied_at": self.applied_at,
            "cleared_at": self.cleared_at,
            "reconverged_at": self.reconverged_at,
            "reconvergence_time": self.reconvergence_time,
            "packets_lost_blackout": self.packets_lost_blackout,
            "overlapped": self.overlapped,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()} @{self.at:.3f}+{self.duration:.3f}>"


def _resolve_link(net, link: Union[int, object]):
    """Accept a link object or an index into ``net.links`` (the stable,
    serializable form the random generator emits)."""
    if isinstance(link, int):
        if not 0 <= link < len(net.links):
            raise IndexError(f"link index {link} out of range "
                             f"(topology has {len(net.links)} links)")
        return net.links[link]
    return link


class LinkFlap(Fault):
    """Administratively lower a link, dwell, then raise it again."""

    kind = "link-flap"

    def __init__(self, link: Union[int, object], at: float, dwell: float):
        super().__init__(at, dwell)
        self.link = link
        self._resolved = None

    def apply(self, net) -> None:
        self._resolved = _resolve_link(net, self.link)
        net.fail_link(self._resolved)

    def clear(self, net) -> None:
        if self._resolved is not None:
            net.restore_link(self._resolved)

    def describe(self) -> str:
        if self._resolved is not None:
            return f"link {getattr(self._resolved, 'name', self.link)}"
        if isinstance(self.link, int):
            return f"link #{self.link}"
        return f"link {getattr(self.link, 'name', self.link)}"


class GatewayCrash(Fault):
    """Crash a gateway (losing all volatile state), restore after dwell."""

    kind = "gateway-crash"

    def __init__(self, name: str, at: float, dwell: float):
        super().__init__(at, dwell)
        self.name = name

    def apply(self, net) -> None:
        net.crash_gateway(self.name)

    def clear(self, net) -> None:
        net.restore_gateway(self.name)

    def describe(self) -> str:
        return f"gateway {self.name}"


class HostRestart(Fault):
    """Power-cycle an end host holding live conversation state.

    This is the fault the fate-sharing argument (goal 1) is *about*: the
    gateways keep no conversation state, so the only state that can be
    lost with a box is the endpoints' — and losing it must kill exactly
    those conversations, silently, while the surviving peers detect the
    death (keepalive), shed their half-open zombies (RST on the old
    segments) and, if a session layer is running, rebuild on top.

    ``apply`` crashes the named host (volatile TCP/session state vanishes,
    no FIN or RST is emitted); ``clear`` restores it, which starts the
    RFC 793 quiet time before the reborn stack may issue sequence numbers.
    """

    kind = "host-restart"

    def __init__(self, name: str, at: float, dwell: float):
        super().__init__(at, dwell)
        self.name = name

    def apply(self, net) -> None:
        net.crash_host(self.name)

    def clear(self, net) -> None:
        net.restore_host(self.name)

    def describe(self) -> str:
        return f"host {self.name}"


class Partition(Fault):
    """Split the internet into two halves for the fault window.

    The cut is *computed from the topology graph* at apply time: every
    point-to-point link with exactly one endpoint inside ``group`` goes
    administratively down, and comes back when the partition heals.  A LAN
    spanning the cut is a configuration error
    (:meth:`~repro.harness.topology.Internet.cut_links` raises).
    """

    kind = "partition"

    def __init__(self, group, at: float, duration: float):
        super().__init__(at, duration)
        self.group = frozenset(group)
        self._cut: list = []

    def apply(self, net) -> None:
        self._cut = net.cut_links(set(self.group))
        for link in self._cut:
            net.fail_link(link)

    def clear(self, net) -> None:
        for link in self._cut:
            net.restore_link(link)

    def describe(self) -> str:
        members = ",".join(sorted(self.group))
        return f"partition {{{members}}} ({len(self._cut)} links cut)" \
            if self._cut else f"partition {{{members}}}"
