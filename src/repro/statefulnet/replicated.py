"""Replicated in-network connection state — the alternative to fate-sharing.

Section 4 of the paper frames the survivability design space as exactly two
options: "protect the state" by storing it in the network with replication
("the state must be replicated" and the network must engineer that storage),
or "take the state and gather it at the endpoint ... the entity which cares"
— fate-sharing.  The Internet chose the second.  This module builds the
first, so experiment E8 can measure what was given up and gained:

* each conversation's network-resident state lives in ``k`` replica
  gateways chosen along its path;
* every state change (one per data window) must be synchronized to all
  replicas — that traffic is counted;
* a gateway crash destroys the replicas it held; surviving replicas
  re-replicate after a repair delay; if ALL replicas die inside that
  window, the conversation is broken and must restart from scratch;
* under fate-sharing (``k = 0`` in this model) gateway crashes are simply
  irrelevant — the conversation dies only with its endpoints.

The model is deliberately abstract (no packets): the quantity of interest
is conversation survival probability and synchronization cost versus k and
gateway crash rate, which needs only the state-machine, not the data plane.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..sim.engine import Simulator
from ..sim.rand import RandomStreams

__all__ = ["ReplicatedStateNetwork", "Conversation", "ReplicationStats"]


@dataclass
class ReplicationStats:
    """Network-wide accounting for E8."""

    conversations_started: int = 0
    conversations_survived: int = 0
    conversations_broken: int = 0
    gateway_crashes: int = 0
    sync_messages: int = 0
    re_replications: int = 0
    state_entry_seconds: float = 0.0   # integral of (entries x time)


@dataclass
class Conversation:
    """One conversation whose network state is replicated in k gateways."""

    id: int
    replicas: set[str]
    k: int
    started_at: float
    ends_at: float
    broken: bool = False
    broken_at: Optional[float] = None
    state_updates: int = 0


class ReplicatedStateNetwork:
    """A pool of gateways holding replicated conversation state.

    Parameters
    ----------
    k:
        Replication factor.  ``k = 0`` models fate-sharing: no in-network
        state at all, so gateway crashes cannot break conversations.
    crash_rate:
        Poisson crash rate per gateway, per second.
    repair_time:
        How long a crashed gateway stays down.
    rereplication_time:
        How long surviving replicas take to restore full replication after
        losing a peer (the vulnerability window).
    update_rate:
        State synchronization events per conversation-second (e.g. one per
        flow-control window); each costs ``k`` sync messages.
    """

    def __init__(
        self,
        sim: Simulator,
        gateway_names: list[str],
        *,
        k: int = 2,
        crash_rate: float = 0.001,
        repair_time: float = 30.0,
        rereplication_time: float = 5.0,
        update_rate: float = 1.0,
        streams: Optional[RandomStreams] = None,
    ):
        if k > len(gateway_names):
            raise ValueError(f"k={k} exceeds gateway count {len(gateway_names)}")
        self.sim = sim
        self.gateways = {name: True for name in gateway_names}  # name -> up
        self.k = k
        self.crash_rate = crash_rate
        self.repair_time = repair_time
        self.rereplication_time = rereplication_time
        self.update_rate = update_rate
        self.streams = streams or RandomStreams(0)
        self.stats = ReplicationStats()
        self.conversations: dict[int, Conversation] = {}
        self._ids = itertools.count(1)
        self._crash_rng = self.streams.stream("statefulnet.crash")
        self._placement_rng = self.streams.stream("statefulnet.place")
        if crash_rate > 0:
            for name in gateway_names:
                self._schedule_crash(name)

    # ------------------------------------------------------------------
    # Conversations
    # ------------------------------------------------------------------
    def start_conversation(self, duration: float,
                           path: Optional[list[str]] = None) -> Conversation:
        """Begin a conversation of the given duration.

        ``path`` restricts replica placement (gateways actually on the
        route); default is anywhere.
        """
        candidates = [g for g in (path or list(self.gateways))
                      if self.gateways.get(g, False)]
        if self.k > 0 and len(candidates) < self.k:
            candidates = [g for g in (path or list(self.gateways))]
        replicas = set()
        if self.k > 0:
            replicas = set(self._placement_rng.sample(candidates, self.k))
        conv = Conversation(
            id=next(self._ids), replicas=replicas, k=self.k,
            started_at=self.sim.now, ends_at=self.sim.now + duration)
        self.conversations[conv.id] = conv
        self.stats.conversations_started += 1
        self.stats.state_entry_seconds += self.k * duration
        if self.update_rate > 0 and self.k > 0:
            self._schedule_update(conv)
        self.sim.schedule(duration, lambda: self._finish(conv),
                          label="statefulnet:finish")
        return conv

    def _finish(self, conv: Conversation) -> None:
        if conv.id not in self.conversations:
            return
        del self.conversations[conv.id]
        if conv.broken:
            self.stats.conversations_broken += 1
        else:
            self.stats.conversations_survived += 1

    def _schedule_update(self, conv: Conversation) -> None:
        delay = self._placement_rng.expovariate(self.update_rate)
        self.sim.schedule(delay, lambda: self._do_update(conv),
                          label="statefulnet:update")

    def _do_update(self, conv: Conversation) -> None:
        if conv.id not in self.conversations or conv.broken:
            return
        if self.sim.now >= conv.ends_at:
            return
        conv.state_updates += 1
        # One synchronization message per replica per update.
        self.stats.sync_messages += len(conv.replicas)
        self._schedule_update(conv)

    # ------------------------------------------------------------------
    # Failure machinery
    # ------------------------------------------------------------------
    def _schedule_crash(self, name: str) -> None:
        delay = self._crash_rng.expovariate(self.crash_rate)
        self.sim.schedule(delay, lambda: self._crash(name),
                          label="statefulnet:crash")

    def _crash(self, name: str) -> None:
        if not self.gateways.get(name, False):
            self._schedule_crash(name)
            return
        self.gateways[name] = False
        self.stats.gateway_crashes += 1
        for conv in self.conversations.values():
            if conv.broken or name not in conv.replicas:
                continue
            conv.replicas.discard(name)
            if not conv.replicas and conv.k > 0:
                # Every replica gone: the conversation's state is lost.
                conv.broken = True
                conv.broken_at = self.sim.now
            else:
                # Survivors re-replicate after a window of vulnerability.
                self.sim.schedule(self.rereplication_time,
                                  lambda c=conv: self._rereplicate(c),
                                  label="statefulnet:rerepl")
        self.sim.schedule(self.repair_time, lambda: self._repair(name),
                          label="statefulnet:repair")
        self._schedule_crash(name)

    def _repair(self, name: str) -> None:
        self.gateways[name] = True

    def _rereplicate(self, conv: Conversation) -> None:
        if conv.broken or conv.id not in self.conversations:
            return
        live = [g for g, up in self.gateways.items()
                if up and g not in conv.replicas]
        while len(conv.replicas) < conv.k and live:
            choice = self._placement_rng.choice(live)
            live.remove(choice)
            conv.replicas.add(choice)
            self.stats.re_replications += 1
            # Copying the state to the new replica costs sync messages.
            self.stats.sync_messages += 1

    # ------------------------------------------------------------------
    @property
    def survival_rate(self) -> float:
        done = self.stats.conversations_survived + self.stats.conversations_broken
        if done == 0:
            return 1.0
        return self.stats.conversations_survived / done

    @property
    def sync_overhead_per_conversation(self) -> float:
        if self.stats.conversations_started == 0:
            return 0.0
        return self.stats.sync_messages / self.stats.conversations_started
