"""Replicated in-network state: the survivability alternative the paper rejects."""

from .replicated import Conversation, ReplicatedStateNetwork, ReplicationStats

__all__ = ["ReplicatedStateNetwork", "Conversation", "ReplicationStats"]
