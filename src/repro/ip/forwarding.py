"""Forwarding table with longest-prefix match.

Gateways in the architecture keep *routing* state — which is derivable and
rebuildable — but no per-conversation state.  The forwarding table is that
routing state: a mapping from destination prefixes to (next hop, interface),
resolved by longest-prefix match.  Routing protocols
(:mod:`repro.routing`) install and withdraw entries; the node's forwarding
engine only reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .address import Address, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from ..netlayer.link import Interface

__all__ = ["Route", "RouteTable", "NoRouteError"]


class NoRouteError(Exception):
    """Raised on lookup when no prefix covers the destination."""

    def __init__(self, destination: Address):
        super().__init__(f"no route to {destination}")
        self.destination = destination


@dataclass(frozen=True)
class Route:
    """One forwarding entry.

    ``next_hop`` of None means the destination is directly on the attached
    network (deliver on-link).  ``metric`` and ``source`` are bookkeeping for
    the routing protocols; the forwarding engine ignores them.

    The last three fields are *provenance*: who taught us this route
    (``learned_from`` — the advertising neighbor, None for local
    configuration), and when it entered this table (``installed_at`` in
    simulation seconds, ``install_generation`` as the table's mutation
    counter).  ``installed_at``/``install_generation`` are stamped by
    :meth:`RouteTable.install`, not by the caller — a Route is born
    unprovenanced and acquires its history on installation.
    """

    prefix: Prefix
    interface: "Interface"
    next_hop: Optional[Address] = None
    metric: int = 0
    source: str = "static"
    learned_from: Optional[Address] = None
    installed_at: float = 0.0
    install_generation: int = 0

    def __str__(self) -> str:
        via = f"via {self.next_hop}" if self.next_hop is not None else "direct"
        return f"{self.prefix} {via} dev {self.interface.name} metric {self.metric} [{self.source}]"

    def provenance(self) -> str:
        """One-line origin story for operator tooling."""
        taught = (f"from {self.learned_from}" if self.learned_from is not None
                  else "local")
        return (f"{self.prefix} [{self.source}] {taught} "
                f"at {self.installed_at:.3f}s gen {self.install_generation}")


class RouteTable:
    """Longest-prefix-match forwarding table with a destination cache.

    Routes are bucketed by prefix length; a full lookup scans from /32 down
    and returns on the first hit (:meth:`lookup_uncached` — simple and
    obviously correct).  Because the fast path pays this scan per *packet*
    while routing protocols mutate the table per *event*, :meth:`lookup`
    front-ends the scan with a generation-stamped destination cache:

    * a hit is a single dict probe on ``int(destination)``;
    * every mutation (:meth:`install` / :meth:`withdraw` /
      :meth:`withdraw_by_source`) bumps the table generation, so entries
      stamped with an older generation are treated as misses and re-resolved
      — the cache can never return a withdrawn or shadowed route.

    The sorted prefix-length list is likewise precomputed on mutation
    instead of being rebuilt with ``sorted()`` per packet.
    """

    #: Cache entries dropped wholesale when the cache grows past this bound;
    #: prevents unbounded memory under address-scanning traffic.
    CACHE_MAX = 8192

    def __init__(self, clock=None):
        self._by_length: dict[int, dict[Prefix, Route]] = {}
        self._lengths: tuple[int, ...] = ()  # descending, rebuilt on mutation
        self._generation = 0
        self._cache: dict[int, tuple[int, Route]] = {}  # int(dst) -> (gen, Route)
        self.cache_hits = 0
        self.cache_misses = 0
        #: Zero-arg callable returning the current sim time; provenance
        #: stamps read it on install.  None keeps stamps at 0.0 (tables
        #: built outside a simulation).
        self._clock = clock
        #: Optional churn ledger (duck-typed: needs route_installed /
        #: route_replaced / route_withdrawn).  The ledger class lives in
        #: :mod:`repro.obs.routing`; keeping this a plain attribute avoids
        #: an ip -> obs import cycle.
        self.ledger = None

    @property
    def generation(self) -> int:
        """Mutation counter; bumps on install/withdraw (cache stamp)."""
        return self._generation

    def _mutated(self) -> None:
        self._generation += 1
        self._lengths = tuple(sorted(self._by_length, reverse=True))
        if self._cache:
            self._cache.clear()

    def now(self) -> float:
        """Current provenance clock reading (0.0 with no clock attached)."""
        return self._clock() if self._clock is not None else 0.0

    def install(self, route: Route) -> None:
        """Insert or replace the route for ``route.prefix``.

        Stamps the entry's provenance (install time + generation) and, when
        a churn ledger is attached, records whether this was a fresh
        install, a replacement (next hop changed) or a metric change.
        """
        bucket = self._by_length.setdefault(route.prefix.length, {})
        prior = bucket.get(route.prefix)
        # Route is frozen so callers can't retroactively edit provenance;
        # the table itself stamps through the freeze at the install moment.
        object.__setattr__(route, "installed_at", self.now())
        object.__setattr__(route, "install_generation", self._generation + 1)
        bucket[route.prefix] = route
        self._mutated()
        if self.ledger is not None:
            if prior is None:
                self.ledger.route_installed(route)
            else:
                self.ledger.route_replaced(route, prior)

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the route for ``prefix``; returns True if one existed."""
        bucket = self._by_length.get(prefix.length)
        if bucket and prefix in bucket:
            route = bucket.pop(prefix)
            if not bucket:
                del self._by_length[prefix.length]
            self._mutated()
            if self.ledger is not None:
                self.ledger.route_withdrawn(route, self.now())
            return True
        return False

    def withdraw_by_source(self, source: str) -> int:
        """Remove every route installed by ``source``; returns the count."""
        removed: list[Route] = []
        for length in list(self._by_length):
            bucket = self._by_length[length]
            for prefix in [p for p, r in bucket.items() if r.source == source]:
                removed.append(bucket.pop(prefix))
            if not bucket:
                del self._by_length[length]
        if removed:
            self._mutated()
            if self.ledger is not None:
                when = self.now()
                for route in removed:
                    self.ledger.route_withdrawn(route, when)
        return len(removed)

    def lookup(self, destination: Union[str, Address]) -> Route:
        """Longest-prefix match; raises :class:`NoRouteError` on miss.

        Cached: repeat lookups for the same destination are O(1) dict hits
        until the table next mutates.
        """
        dst = Address(destination)
        key = int(dst)
        entry = self._cache.get(key)
        if entry is not None and entry[0] == self._generation:
            self.cache_hits += 1
            return entry[1]
        self.cache_misses += 1
        route = self.lookup_uncached(dst)
        if len(self._cache) >= self.CACHE_MAX:
            self._cache.clear()
        self._cache[key] = (self._generation, route)
        return route

    def lookup_uncached(self, destination: Union[str, Address]) -> Route:
        """The reference longest-prefix scan (no destination cache)."""
        dst = Address(destination)
        for length in self._lengths:
            probe = Prefix.of(dst, length)
            route = self._by_length[length].get(probe)
            if route is not None:
                return route
        raise NoRouteError(dst)

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match fetch of the route for ``prefix``."""
        return self._by_length.get(prefix.length, {}).get(prefix)

    def routes(self) -> Iterable[Route]:
        """All installed routes, most-specific first."""
        for length in self._lengths:
            yield from self._by_length[length].values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_length.values())

    def counters(self) -> dict:
        """Scalar health counters for the observability registry.

        Churn counters appear only when a ledger is attached, so existing
        registry/MIB export shapes are untouched on unledgered nodes.
        """
        out = {
            "routes": len(self),
            "generation": self._generation,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.ledger is not None:
            out.update(self.ledger.counters())
        return out

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._by_length.get(prefix.length, {})
