"""Forwarding table with longest-prefix match.

Gateways in the architecture keep *routing* state — which is derivable and
rebuildable — but no per-conversation state.  The forwarding table is that
routing state: a mapping from destination prefixes to (next hop, interface),
resolved by longest-prefix match.  Routing protocols
(:mod:`repro.routing`) install and withdraw entries; the node's forwarding
engine only reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .address import Address, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from ..netlayer.link import Interface

__all__ = ["Route", "RouteTable", "NoRouteError"]


class NoRouteError(Exception):
    """Raised on lookup when no prefix covers the destination."""

    def __init__(self, destination: Address):
        super().__init__(f"no route to {destination}")
        self.destination = destination


@dataclass(frozen=True)
class Route:
    """One forwarding entry.

    ``next_hop`` of None means the destination is directly on the attached
    network (deliver on-link).  ``metric`` and ``source`` are bookkeeping for
    the routing protocols; the forwarding engine ignores them.
    """

    prefix: Prefix
    interface: "Interface"
    next_hop: Optional[Address] = None
    metric: int = 0
    source: str = "static"

    def __str__(self) -> str:
        via = f"via {self.next_hop}" if self.next_hop is not None else "direct"
        return f"{self.prefix} {via} dev {self.interface.name} metric {self.metric} [{self.source}]"


class RouteTable:
    """Longest-prefix-match forwarding table.

    Routes are bucketed by prefix length so lookup scans from /32 down and
    returns on the first hit — simple and obviously correct, which matters
    more here than raw speed.
    """

    def __init__(self):
        self._by_length: dict[int, dict[Prefix, Route]] = {}

    def install(self, route: Route) -> None:
        """Insert or replace the route for ``route.prefix``."""
        self._by_length.setdefault(route.prefix.length, {})[route.prefix] = route

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the route for ``prefix``; returns True if one existed."""
        bucket = self._by_length.get(prefix.length)
        if bucket and prefix in bucket:
            del bucket[prefix]
            if not bucket:
                del self._by_length[prefix.length]
            return True
        return False

    def withdraw_by_source(self, source: str) -> int:
        """Remove every route installed by ``source``; returns the count."""
        removed = 0
        for length in list(self._by_length):
            bucket = self._by_length[length]
            for prefix in [p for p, r in bucket.items() if r.source == source]:
                del bucket[prefix]
                removed += 1
            if not bucket:
                del self._by_length[length]
        return removed

    def lookup(self, destination: Union[str, Address]) -> Route:
        """Longest-prefix match; raises :class:`NoRouteError` on miss."""
        dst = Address(destination)
        for length in sorted(self._by_length, reverse=True):
            probe = Prefix.of(dst, length)
            route = self._by_length[length].get(probe)
            if route is not None:
                return route
        raise NoRouteError(dst)

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match fetch of the route for ``prefix``."""
        return self._by_length.get(prefix.length, {}).get(prefix)

    def routes(self) -> Iterable[Route]:
        """All installed routes, most-specific first."""
        for length in sorted(self._by_length, reverse=True):
            yield from self._by_length[length].values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_length.values())

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._by_length.get(prefix.length, {})
