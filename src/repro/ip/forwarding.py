"""Forwarding table with longest-prefix match.

Gateways in the architecture keep *routing* state — which is derivable and
rebuildable — but no per-conversation state.  The forwarding table is that
routing state: a mapping from destination prefixes to (next hop, interface),
resolved by longest-prefix match.  Routing protocols
(:mod:`repro.routing`) install and withdraw entries; the node's forwarding
engine only reads them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .address import Address, Prefix

if TYPE_CHECKING:  # pragma: no cover
    from ..netlayer.link import Interface

__all__ = ["Route", "RouteTable", "NoRouteError"]


class NoRouteError(Exception):
    """Raised on lookup when no prefix covers the destination."""

    def __init__(self, destination: Address):
        super().__init__(f"no route to {destination}")
        self.destination = destination


@dataclass(frozen=True)
class Route:
    """One forwarding entry.

    ``next_hop`` of None means the destination is directly on the attached
    network (deliver on-link).  ``metric`` and ``source`` are bookkeeping for
    the routing protocols; the forwarding engine ignores them.
    """

    prefix: Prefix
    interface: "Interface"
    next_hop: Optional[Address] = None
    metric: int = 0
    source: str = "static"

    def __str__(self) -> str:
        via = f"via {self.next_hop}" if self.next_hop is not None else "direct"
        return f"{self.prefix} {via} dev {self.interface.name} metric {self.metric} [{self.source}]"


class RouteTable:
    """Longest-prefix-match forwarding table with a destination cache.

    Routes are bucketed by prefix length; a full lookup scans from /32 down
    and returns on the first hit (:meth:`lookup_uncached` — simple and
    obviously correct).  Because the fast path pays this scan per *packet*
    while routing protocols mutate the table per *event*, :meth:`lookup`
    front-ends the scan with a generation-stamped destination cache:

    * a hit is a single dict probe on ``int(destination)``;
    * every mutation (:meth:`install` / :meth:`withdraw` /
      :meth:`withdraw_by_source`) bumps the table generation, so entries
      stamped with an older generation are treated as misses and re-resolved
      — the cache can never return a withdrawn or shadowed route.

    The sorted prefix-length list is likewise precomputed on mutation
    instead of being rebuilt with ``sorted()`` per packet.
    """

    #: Cache entries dropped wholesale when the cache grows past this bound;
    #: prevents unbounded memory under address-scanning traffic.
    CACHE_MAX = 8192

    def __init__(self):
        self._by_length: dict[int, dict[Prefix, Route]] = {}
        self._lengths: tuple[int, ...] = ()  # descending, rebuilt on mutation
        self._generation = 0
        self._cache: dict[int, tuple[int, Route]] = {}  # int(dst) -> (gen, Route)
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def generation(self) -> int:
        """Mutation counter; bumps on install/withdraw (cache stamp)."""
        return self._generation

    def _mutated(self) -> None:
        self._generation += 1
        self._lengths = tuple(sorted(self._by_length, reverse=True))
        if self._cache:
            self._cache.clear()

    def install(self, route: Route) -> None:
        """Insert or replace the route for ``route.prefix``."""
        self._by_length.setdefault(route.prefix.length, {})[route.prefix] = route
        self._mutated()

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove the route for ``prefix``; returns True if one existed."""
        bucket = self._by_length.get(prefix.length)
        if bucket and prefix in bucket:
            del bucket[prefix]
            if not bucket:
                del self._by_length[prefix.length]
            self._mutated()
            return True
        return False

    def withdraw_by_source(self, source: str) -> int:
        """Remove every route installed by ``source``; returns the count."""
        removed = 0
        for length in list(self._by_length):
            bucket = self._by_length[length]
            for prefix in [p for p, r in bucket.items() if r.source == source]:
                del bucket[prefix]
                removed += 1
            if not bucket:
                del self._by_length[length]
        if removed:
            self._mutated()
        return removed

    def lookup(self, destination: Union[str, Address]) -> Route:
        """Longest-prefix match; raises :class:`NoRouteError` on miss.

        Cached: repeat lookups for the same destination are O(1) dict hits
        until the table next mutates.
        """
        dst = Address(destination)
        key = int(dst)
        entry = self._cache.get(key)
        if entry is not None and entry[0] == self._generation:
            self.cache_hits += 1
            return entry[1]
        self.cache_misses += 1
        route = self.lookup_uncached(dst)
        if len(self._cache) >= self.CACHE_MAX:
            self._cache.clear()
        self._cache[key] = (self._generation, route)
        return route

    def lookup_uncached(self, destination: Union[str, Address]) -> Route:
        """The reference longest-prefix scan (no destination cache)."""
        dst = Address(destination)
        for length in self._lengths:
            probe = Prefix.of(dst, length)
            route = self._by_length[length].get(probe)
            if route is not None:
                return route
        raise NoRouteError(dst)

    def get(self, prefix: Prefix) -> Optional[Route]:
        """Exact-match fetch of the route for ``prefix``."""
        return self._by_length.get(prefix.length, {}).get(prefix)

    def routes(self) -> Iterable[Route]:
        """All installed routes, most-specific first."""
        for length in self._lengths:
            yield from self._by_length[length].values()

    def __len__(self) -> int:
        return sum(len(b) for b in self._by_length.values())

    def counters(self) -> dict:
        """Scalar health counters for the observability registry."""
        return {
            "routes": len(self),
            "generation": self._generation,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._by_length.get(prefix.length, {})
