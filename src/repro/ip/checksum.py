"""The Internet checksum (one's-complement 16-bit sum).

Shared by the IP header, TCP and UDP.  The paper's goal 5 (cost
effectiveness) notes the processing cost of headers; the checksum is the main
per-byte cost of the datagram fast path, so this module provides two
implementations:

* A **vectorized** one (:func:`internet_checksum` / :func:`verify_checksum`)
  that folds the whole buffer as one big integer via :func:`int.from_bytes`.
  Because ``2**16 == 1 (mod 0xFFFF)``, splitting a big integer at any
  16-bit-aligned boundary and adding the halves preserves the one's-complement
  sum, so O(log n) wide-integer operations (each linear in C) replace the
  per-byte Python loop.
* The original per-word **reference** loop
  (:func:`internet_checksum_reference` / :func:`verify_checksum_reference`),
  kept for differential testing and as the baseline in
  ``benchmarks/bench_fastpath.py``.

Both return bit-identical results on every input (see
``tests/test_fastpath.py`` for the property test, including the odd-length
padding and all-zero cases).
"""

from __future__ import annotations

__all__ = [
    "internet_checksum",
    "verify_checksum",
    "internet_checksum_reference",
    "verify_checksum_reference",
    "ones_complement_sum",
]


def ones_complement_sum(data: bytes) -> int:
    """One's-complement 16-bit sum of ``data`` folded into [0, 0xFFFF].

    Odd-length input is treated as padded with a trailing zero byte, per
    RFC 1071.  This is the shared kernel of :func:`internet_checksum` and
    :func:`verify_checksum`.

    Implementation: interpret the buffer as one big-endian integer and fold
    it in (16-bit-aligned) halves.  Since ``2**(16k) ≡ 1 (mod 0xFFFF)``,
    each fold preserves the value mod 0xFFFF, and a value that starts
    non-zero stays non-zero — exactly the 0-vs-0xFFFF distinction the
    end-around-carry loop makes.
    """
    if len(data) & 1:
        data = data + b"\x00"
    total = int.from_bytes(data, "big")
    nbits = len(data) * 8
    # Halve the integer until it is narrow, keeping splits 16-bit aligned.
    while nbits > 64:
        half = ((nbits >> 1) + 15) & ~15  # round up to a multiple of 16
        total = (total >> half) + (total & ((1 << half) - 1))
        nbits = half + 16  # sum of a half-word and a (smaller) half fits
    # End-around carry down to 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    Returns a value in [0, 0xFFFF]; per convention an all-zero computed
    checksum is transmitted as 0xFFFF in UDP (handled by the caller).
    """
    return ~ones_complement_sum(data) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return ones_complement_sum(data) == 0xFFFF


# ----------------------------------------------------------------------
# Reference implementations (the seed's per-word loops).
#
# Kept verbatim so the vectorized versions above can be differentially
# tested against them and so the fast-path benchmark has a baseline.
# ----------------------------------------------------------------------
def internet_checksum_reference(data: bytes) -> int:
    """Per-word reference implementation of :func:`internet_checksum`."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Sum 16-bit big-endian words.
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries (end-around carry).
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum_reference(data: bytes) -> bool:
    """Per-word reference implementation of :func:`verify_checksum`."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
