"""The Internet checksum (one's-complement 16-bit sum).

Shared by the IP header, TCP and UDP.  The paper's goal 5 (cost
effectiveness) notes the processing cost of headers; the checksum is the main
per-byte cost, so we implement it the classic way — 16-bit one's-complement
sum with end-around carry — and expose it for all three protocols.
"""

from __future__ import annotations

__all__ = ["internet_checksum", "verify_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    Returns a value in [0, 0xFFFF]; per convention an all-zero computed
    checksum is transmitted as 0xFFFF in UDP (handled by the caller).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    # Sum 16-bit big-endian words.
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries (end-around carry).
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
