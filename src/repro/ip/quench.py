"""Source Quench: the 1988 architecture's congestion signal.

The original toolkit for "resource management" inside the network was thin:
a gateway whose queue overflowed could send ICMP Source Quench back to the
datagram's source, advising it to slow down.  (History's verdict — that
this was too little, and Jacobson's end-host congestion control did the
real work — is itself measurable here: E6/E12 run with quenching on or
off.)

:class:`SourceQuencher` attaches to a gateway and converts queue-drop
events on its interfaces into rate-limited Source Quench messages.  The
TCP stack already reacts to them (collapsing its congestion window); UDP
sources are, exactly as in 1988, free to ignore them.
"""

from __future__ import annotations

from typing import Optional

from ..netlayer.link import Interface
from . import icmp
from .node import Node
from .packet import Datagram, PROTO_ICMP

__all__ = ["SourceQuencher"]


class SourceQuencher:
    """Emit ICMP Source Quench for packets a gateway's queues drop.

    ``min_interval`` rate-limits quenches per source address so an
    overloaded gateway does not amplify its own congestion (the classic
    deployment concern).
    """

    def __init__(self, node: Node, *, min_interval: float = 0.5,
                 interfaces: Optional[list[Interface]] = None):
        self.node = node
        self.sim = node.sim
        self.min_interval = min_interval
        self.quenches_sent = 0
        self.drops_seen = 0
        self._last_quench: dict[int, float] = {}   # src address -> time
        for iface in (interfaces if interfaces is not None
                      else node.interfaces):
            iface.on_queue_drop = self._dropped

    def _dropped(self, datagram: Datagram) -> None:
        self.drops_seen += 1
        # Never quench ICMP itself (no error about an error), and never
        # quench ourselves (locally originated routing chatter).
        if datagram.protocol == PROTO_ICMP:
            return
        if self.node.owns_address(datagram.src):
            return
        now = self.sim.now
        key = int(datagram.src)
        if now - self._last_quench.get(key, -1e9) < self.min_interval:
            return
        self._last_quench[key] = now
        self.quenches_sent += 1
        self.node._send_icmp(icmp.source_quench(self.node.address, datagram))
