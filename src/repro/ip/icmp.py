"""ICMP: the internet's error-reporting and diagnostic protocol.

The architecture keeps gateways stateless, but they still must tell hosts
when forwarding fails (no route, TTL expired, fragmentation needed with DF
set) and provide reachability probes.  Messages carry the leading bytes of
the offending datagram so the host can attribute the error to a connection —
this is how the transport learns of "failures of transparency".

Source Quench is included because it was the 1988 architecture's (weak)
congestion signal; experiment E12's gateways can emit it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from .address import Address
from .checksum import internet_checksum, verify_checksum
from .packet import Datagram, IP_HEADER_LEN, PROTO_ICMP

__all__ = [
    "IcmpMessage",
    "IcmpError",
    "ECHO_REPLY",
    "DEST_UNREACHABLE",
    "SOURCE_QUENCH",
    "REDIRECT",
    "REDIRECT_NET",
    "REDIRECT_HOST",
    "ECHO_REQUEST",
    "TIME_EXCEEDED",
    "UNREACH_NET",
    "UNREACH_HOST",
    "UNREACH_PROTOCOL",
    "UNREACH_PORT",
    "UNREACH_NEEDFRAG",
    "echo_request",
    "echo_reply",
    "destination_unreachable",
    "time_exceeded",
    "source_quench",
    "redirect",
]

# Message types (RFC 792 values).
ECHO_REPLY = 0
DEST_UNREACHABLE = 3
SOURCE_QUENCH = 4
REDIRECT = 5
ECHO_REQUEST = 8
TIME_EXCEEDED = 11

# Redirect codes.
REDIRECT_NET = 0
REDIRECT_HOST = 1

# Destination-unreachable codes.
UNREACH_NET = 0
UNREACH_HOST = 1
UNREACH_PROTOCOL = 2
UNREACH_PORT = 3
UNREACH_NEEDFRAG = 4

#: How much of the offending datagram an error message quotes.
QUOTED_BYTES = IP_HEADER_LEN + 8


class IcmpError(ValueError):
    """Raised when parsing a malformed ICMP message."""


@dataclass(frozen=True)
class IcmpMessage:
    """A parsed ICMP message.

    ``ident``/``sequence`` are meaningful for echo; ``body`` carries the
    quoted bytes of the offending datagram for error types.
    """

    type: int
    code: int = 0
    ident: int = 0
    sequence: int = 0
    body: bytes = b""

    def to_bytes(self) -> bytes:
        """Serialize with a valid ICMP checksum."""
        header = struct.pack("!BBHHH", self.type, self.code, 0,
                             self.ident, self.sequence)
        raw = header + self.body
        csum = internet_checksum(raw)
        return raw[:2] + struct.pack("!H", csum) + raw[4:]

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpMessage":
        if len(data) < 8:
            raise IcmpError(f"short ICMP message: {len(data)} bytes")
        if not verify_checksum(data):
            raise IcmpError("ICMP checksum failed")
        mtype, code, _csum, ident, sequence = struct.unpack("!BBHHH", data[:8])
        return cls(mtype, code, ident, sequence, data[8:])

    @property
    def is_error(self) -> bool:
        return self.type in (DEST_UNREACHABLE, SOURCE_QUENCH, TIME_EXCEEDED,
                             REDIRECT)

    @property
    def gateway_address(self) -> Optional[Address]:
        """For REDIRECT: the better first-hop gateway.  RFC 792 places it
        in the second header word — where echo carries ident/sequence."""
        if self.type != REDIRECT:
            return None
        return Address((self.ident << 16) | self.sequence)

    def quoted_datagram_header(self) -> Optional[Datagram]:
        """For error messages: parse the quoted offending IP header."""
        if not self.is_error or len(self.body) < IP_HEADER_LEN:
            return None
        try:
            # The quote is truncated, so parse leniently: pad the payload.
            quoted = bytearray(self.body)
            total = struct.unpack("!H", bytes(quoted[2:4]))[0]
            if total > len(quoted):
                quoted.extend(b"\x00" * (total - len(quoted)))
            return Datagram.from_bytes(bytes(quoted))
        except Exception:
            return None


# ----------------------------------------------------------------------
# Constructors for the datagrams that carry each message type
# ----------------------------------------------------------------------
def _wrap(src: Address, dst: Address, message: IcmpMessage, ttl: int = 64) -> Datagram:
    return Datagram(src=src, dst=dst, protocol=PROTO_ICMP,
                    payload=message.to_bytes(), ttl=ttl)


def echo_request(src: Address, dst: Address, ident: int, sequence: int,
                 data: bytes = b"") -> Datagram:
    """Build a ping request datagram."""
    return _wrap(src, dst, IcmpMessage(ECHO_REQUEST, 0, ident, sequence, data))


def echo_reply(src: Address, dst: Address, request: IcmpMessage) -> Datagram:
    """Build the reply mirroring a received echo request."""
    return _wrap(src, dst, IcmpMessage(ECHO_REPLY, 0, request.ident,
                                       request.sequence, request.body))


def _quote(offending: Datagram) -> bytes:
    return offending.to_bytes()[:QUOTED_BYTES]


def destination_unreachable(reporter: Address, offending: Datagram,
                            code: int = UNREACH_HOST) -> Datagram:
    """Error sent by a gateway/host that cannot deliver ``offending``."""
    msg = IcmpMessage(DEST_UNREACHABLE, code, body=_quote(offending))
    return _wrap(reporter, offending.src, msg)


def time_exceeded(reporter: Address, offending: Datagram) -> Datagram:
    """Error sent when TTL reaches zero in transit."""
    msg = IcmpMessage(TIME_EXCEEDED, 0, body=_quote(offending))
    return _wrap(reporter, offending.src, msg)


def source_quench(reporter: Address, offending: Datagram) -> Datagram:
    """The 1988-era congestion signal: 'slow down'."""
    msg = IcmpMessage(SOURCE_QUENCH, 0, body=_quote(offending))
    return _wrap(reporter, offending.src, msg)


def redirect(reporter: Address, offending: Datagram,
             better_gateway: Address, *, code: int = REDIRECT_HOST) -> Datagram:
    """Advice sent by a gateway that forwarded a datagram back out the
    interface it arrived on: 'next time, send it to this neighbour'."""
    gw = int(better_gateway)
    msg = IcmpMessage(REDIRECT, code, ident=(gw >> 16) & 0xFFFF,
                      sequence=gw & 0xFFFF, body=_quote(offending))
    return _wrap(reporter, offending.src, msg)
