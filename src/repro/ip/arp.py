"""Explicit address resolution on multi-access networks.

The LAN bus (:class:`~repro.netlayer.lan.LanBus`) resolves next-hop
addresses implicitly, which keeps the forwarding fast path simple.  This
module provides the *protocol* form — request/reply over link broadcast with
a caching table — for completeness (goal 6: what a host must implement to
attach) and so tests can exercise cache expiry, request retries and
unanswered resolution.

The agent is self-contained: it piggybacks ARP frames as IP datagrams of a
private protocol number broadcast on the local prefix, which is behaviourally
equivalent to Ethernet ARP for simulation purposes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Optional

from ..netlayer.link import Interface
from ..sim.engine import Simulator
from .address import Address
from .packet import Datagram
from .node import Node

__all__ = ["ArpAgent", "ArpEntry", "PROTO_ARP"]

PROTO_ARP = 254  # private protocol number for the simulated ARP

_OP_REQUEST = 1
_OP_REPLY = 2


@dataclass
class ArpEntry:
    """One cache binding: protocol address -> resolved (and its freshness)."""

    address: Address
    resolved_at: float
    #: In a real stack this is a MAC; on our bus, resolution is existence
    #: proof — the reply itself tells us the address is alive on-link.
    reachable: bool = True


class ArpAgent:
    """Per-interface resolution cache with request/reply machinery.

    Usage: construct over a node+interface, then call :meth:`resolve`; the
    callback fires with True (resolved) or False (timed out after retries).
    """

    def __init__(
        self,
        node: Node,
        iface: Interface,
        *,
        cache_ttl: float = 600.0,
        request_timeout: float = 1.0,
        max_retries: int = 3,
    ):
        self.node = node
        self.iface = iface
        self.sim: Simulator = node.sim
        self.cache_ttl = cache_ttl
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        self.cache: dict[int, ArpEntry] = {}
        self._pending: dict[int, list[Callable[[bool], None]]] = {}
        self.requests_sent = 0
        self.replies_sent = 0
        node.register_protocol(PROTO_ARP, self._arp_input)
        # Fate-sharing: the resolution cache is volatile state that cannot
        # survive a reboot — a restored node must re-resolve its neighbours.
        node.on_crash.append(self._on_node_crash)

    # ------------------------------------------------------------------
    def resolve(self, target: Address, callback: Callable[[bool], None]) -> None:
        """Resolve ``target`` on the attached network."""
        entry = self.cache.get(int(target))
        if entry is not None and self.sim.now - entry.resolved_at < self.cache_ttl:
            callback(entry.reachable)
            return
        waiters = self._pending.setdefault(int(target), [])
        waiters.append(callback)
        if len(waiters) == 1:
            self._send_request(target, attempt=1)

    def _send_request(self, target: Address, attempt: int) -> None:
        if int(target) not in self._pending:
            return  # answered meanwhile
        if attempt > self.max_retries:
            waiters = self._pending.pop(int(target), [])
            self.cache[int(target)] = ArpEntry(target, self.sim.now, reachable=False)
            for cb in waiters:
                cb(False)
            return
        self.requests_sent += 1
        payload = struct.pack("!BB4s4s", _OP_REQUEST, 0,
                              self.iface.address.to_bytes(), target.to_bytes())
        frame = Datagram(src=self.iface.address, dst=self.iface.prefix.broadcast,
                         protocol=PROTO_ARP, payload=payload, ttl=1)
        self.iface.output(frame, self.iface.prefix.broadcast)
        self.sim.schedule(self.request_timeout,
                          lambda: self._send_request(target, attempt + 1),
                          label="arp:retry")

    # ------------------------------------------------------------------
    def _arp_input(self, node: Node, datagram: Datagram,
                   iface: Optional[Interface]) -> None:
        if len(datagram.payload) < 10:
            return
        op, _, sender_b, target_b = struct.unpack("!BB4s4s", datagram.payload[:10])
        sender = Address.from_bytes(sender_b)
        target = Address.from_bytes(target_b)
        # Every ARP frame teaches us the sender's liveness (gratuitous learn).
        self.cache[int(sender)] = ArpEntry(sender, self.sim.now, reachable=True)
        if op == _OP_REQUEST and target == self.iface.address:
            self.replies_sent += 1
            reply = struct.pack("!BB4s4s", _OP_REPLY, 0,
                                self.iface.address.to_bytes(), sender.to_bytes())
            frame = Datagram(src=self.iface.address, dst=sender,
                             protocol=PROTO_ARP, payload=reply, ttl=1)
            self.iface.output(frame, sender)
        elif op == _OP_REPLY:
            waiters = self._pending.pop(int(sender), [])
            for cb in waiters:
                cb(True)

    def flush(self) -> None:
        """Drop the whole cache (e.g. after an interface flap)."""
        self.cache.clear()

    def _on_node_crash(self) -> None:
        """Node crash hook: all resolution state is volatile and gone.

        Pending resolutions are abandoned without firing their callbacks —
        the processes that registered them died with the node.  The retry
        timers that are still scheduled find their target absent from
        ``_pending`` and fall through harmlessly.
        """
        self.flush()
        self._pending.clear()
