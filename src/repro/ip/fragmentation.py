"""IP fragmentation and reassembly.

Goal 3 requires carrying datagrams across networks with wildly different
maximum packet sizes (1500-byte Ethernets down to ~128-byte lines); the
architecture's answer is gateway fragmentation with *host* reassembly — the
network never reassembles, because that would require per-conversation state
in gateways, violating fate-sharing.

Experiment E11 measures the well-known cost: a datagram split into *n*
fragments is lost if *any* fragment is lost, so effective loss compounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.engine import EventHandle, Simulator
from .packet import Datagram, IP_HEADER_LEN

__all__ = ["fragment", "FragmentationError", "Reassembler", "ReassemblyStats"]

_FRAG_UNIT = 8  # fragment offsets are in 8-byte units (RFC 791)


class FragmentationError(Exception):
    """Raised when a datagram cannot be fragmented (DF set, or absurd MTU)."""


def fragment(datagram: Datagram, mtu: int) -> list[Datagram]:
    """Split ``datagram`` into fragments that each fit in ``mtu`` bytes.

    Returns ``[datagram]`` unchanged when it already fits.  Offsets are kept
    in 8-byte units; every fragment carries the full IP header (the per-
    fragment header cost measured by E11).  Fragmenting a fragment is legal
    and preserves offsets, as the architecture requires for cascaded small-
    MTU networks.
    """
    if datagram.total_length <= mtu:
        return [datagram]
    if datagram.dont_fragment:
        raise FragmentationError(
            f"datagram of {datagram.total_length} B needs fragmentation "
            f"for mtu {mtu} but DF is set"
        )
    max_payload = mtu - IP_HEADER_LEN
    if max_payload < _FRAG_UNIT:
        raise FragmentationError(f"mtu {mtu} cannot carry any payload")
    # All fragments except the last must carry a multiple of 8 bytes.
    chunk = (max_payload // _FRAG_UNIT) * _FRAG_UNIT
    payload = datagram.payload
    fragments: list[Datagram] = []
    offset_units = datagram.fragment_offset
    pos = 0
    while pos < len(payload):
        piece = payload[pos : pos + chunk]
        last_piece = pos + len(piece) >= len(payload)
        fragments.append(
            datagram.copy(
                payload=piece,
                fragment_offset=offset_units + pos // _FRAG_UNIT,
                more_fragments=datagram.more_fragments or not last_piece,
            )
        )
        pos += len(piece)
    return fragments


@dataclass
class ReassemblyStats:
    """Counters kept by a :class:`Reassembler`."""

    fragments_received: int = 0
    datagrams_reassembled: int = 0
    reassembly_timeouts: int = 0
    duplicate_fragments: int = 0


@dataclass
class _Buffer:
    """State for one in-progress reassembly (keyed by src,dst,proto,ident)."""

    pieces: dict[int, bytes] = field(default_factory=dict)  # offset_units -> data
    total_units: Optional[int] = None  # set once the last fragment arrives
    first_arrival: float = 0.0
    template: Optional[Datagram] = None
    timer: Optional[EventHandle] = None  # reassembly-timeout event


class Reassembler:
    """Host-side fragment reassembly with a timeout.

    The timeout is the architecture's only defence against a lost fragment
    permanently pinning buffer memory; on expiry the partial datagram is
    discarded (and the transport's end-to-end retransmission recovers).
    """

    def __init__(self, sim: Simulator, timeout: float = 15.0,
                 on_timeout: Optional[Callable[[Datagram], None]] = None,
                 owner=None):
        self.sim = sim
        self.timeout = timeout
        self.on_timeout = on_timeout
        #: Owning :class:`~repro.ip.node.Node`, if any — used only to reach
        #: the observability layer so expired reassemblies leave a drop span
        #: on the partial datagram's journey.
        self.owner = owner
        self.stats = ReassemblyStats()
        self._buffers: dict[tuple, _Buffer] = {}

    def _key(self, d: Datagram) -> tuple:
        return (int(d.src), int(d.dst), d.protocol, d.ident)

    def accept(self, datagram: Datagram) -> Optional[Datagram]:
        """Feed one arriving datagram; returns the completed datagram when
        the last missing fragment arrives, else None.

        Unfragmented datagrams pass straight through.
        """
        if not datagram.is_fragment:
            return datagram
        self.stats.fragments_received += 1
        key = self._key(datagram)
        buf = self._buffers.get(key)
        if buf is None:
            buf = _Buffer(first_arrival=self.sim.now)
            self._buffers[key] = buf
            # Keep the handle so completion can cancel the timer; otherwise a
            # stale timer from a completed reassembly would prematurely
            # expire a *new* buffer that reuses the same (src,dst,proto,id).
            buf.timer = self.sim.schedule(
                self.timeout, lambda: self._expire(key), label="ip:reassembly-timeout"
            )
        if datagram.fragment_offset in buf.pieces:
            self.stats.duplicate_fragments += 1
            return None
        buf.pieces[datagram.fragment_offset] = datagram.payload
        if datagram.fragment_offset == 0:
            buf.template = datagram
        if not datagram.more_fragments:
            buf.total_units = (
                datagram.fragment_offset + (len(datagram.payload) + _FRAG_UNIT - 1) // _FRAG_UNIT
            )
        return self._try_complete(key, buf)

    def _try_complete(self, key: tuple, buf: _Buffer) -> Optional[Datagram]:
        if buf.total_units is None or buf.template is None:
            return None
        # Walk contiguously from offset 0 to the end.
        assembled = bytearray()
        units = 0
        while units < buf.total_units:
            piece = buf.pieces.get(units)
            if piece is None:
                return None
            assembled.extend(piece)
            units += (len(piece) + _FRAG_UNIT - 1) // _FRAG_UNIT
        del self._buffers[key]
        if buf.timer is not None:
            buf.timer.cancel()
        self.stats.datagrams_reassembled += 1
        return buf.template.copy(
            payload=bytes(assembled), more_fragments=False, fragment_offset=0
        )

    def _expire(self, key: tuple) -> None:
        buf = self._buffers.pop(key, None)
        if buf is None:
            return
        if buf.timer is not None:
            buf.timer.cancel()  # no-op for the firing timer; tidy either way
        self.stats.reassembly_timeouts += 1
        owner = self.owner
        if owner is not None and buf.template is not None:
            obs = getattr(owner, "obs", None)
            if obs is not None and obs.enabled:
                held = len(buf.pieces)
                obs.drop(self.sim.now, owner.name, "drop-reassembly-timeout",
                         buf.template,
                         f"{held} fragment(s) held {self.timeout:.1f}s")
        if self.on_timeout is not None and buf.template is not None:
            self.on_timeout(buf.template)

    @property
    def in_progress(self) -> int:
        """Number of partially reassembled datagrams held."""
        return len(self._buffers)
