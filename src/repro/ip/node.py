"""Hosts and gateways: the nodes of the internetwork.

The architectural split the paper centres on lives here:

* **Gateways** forward datagrams statelessly.  Their only state is the
  routing table — derivable, rebuildable information.  A gateway can crash,
  reboot with empty tables, relearn routes, and no conversation is harmed:
  that is *fate-sharing* (goal 1, experiment E1/E8).
* **Hosts** hold all conversation state (TCP connections, reassembly
  buffers) and implement the transport machinery themselves (goal 6).

A :class:`Node` serves both roles; ``is_gateway`` enables forwarding.  Both
use the same datagram path: route lookup by longest-prefix match, TTL
decrement in transit, fragmentation to the outgoing MTU, ICMP error
generation on failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..netlayer.link import Interface
from ..sim.engine import Simulator
from ..sim.trace import NullTracer, Tracer
from .address import Address, Prefix
from .forwarding import NoRouteError, Route, RouteTable
from .fragmentation import FragmentationError, Reassembler, fragment
from . import icmp
from .packet import Datagram, PROTO_ICMP

__all__ = ["Node", "NodeStats", "ProtocolHandler"]

#: Signature for transport-layer input: (node, datagram, incoming interface).
ProtocolHandler = Callable[["Node", Datagram, Optional[Interface]], None]


@dataclass
class NodeStats:
    """Datagram-path counters; the raw material for goals 5 and 7."""

    originated: int = 0
    delivered: int = 0
    forwarded: int = 0
    dropped_no_route: int = 0
    dropped_ttl: int = 0
    dropped_down: int = 0
    dropped_df: int = 0
    dropped_bad_header: int = 0
    dropped_not_mine: int = 0
    fragments_created: int = 0
    icmp_sent: int = 0
    icmp_received: int = 0
    bytes_originated: int = 0
    bytes_delivered: int = 0
    bytes_forwarded: int = 0
    #: Abstract per-packet processing cost (header handling work units),
    #: the proxy for 1988 gateway CPU cost in E5/E7.
    work_units: int = 0


class Node:
    """One host or gateway in the internetwork.

    Parameters
    ----------
    name:
        Unique human-readable identifier.
    sim:
        The discrete-event scheduler everything runs on.
    is_gateway:
        Enables datagram forwarding between interfaces.
    tracer:
        Optional :class:`~repro.sim.trace.Tracer` for protocol-event logs.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        *,
        is_gateway: bool = False,
        tracer: Optional[Tracer] = None,
        reassembly_timeout: float = 15.0,
    ):
        self.name = name
        self.sim = sim
        self.is_gateway = is_gateway
        self.tracer = tracer if tracer is not None else NullTracer()
        #: Optional :class:`~repro.obs.core.Observability` layer.  None by
        #: default; :meth:`Observability.attach_node` sets it.  Every use
        #: below is guarded by ``obs is not None and obs.enabled`` so the
        #: un-observed fast path pays one attribute load per packet.
        self.obs = None
        #: Optional :class:`~repro.ip.flyweight.PacketPool`.  None by
        #: default (the object path: every hop allocates a Datagram).
        #: When set — :meth:`Internet.enable_packet_pool` installs one
        #: net-wide — forwarding clones draw recycled shells from the pool
        #: and terminal points (local delivery, drops) return them.  The
        #: two paths are packet-for-packet identical; see
        #: :mod:`repro.ip.flyweight` for the lifetime rules.
        self.packet_pool = None
        self.interfaces: list[Interface] = []
        #: Integer values of every owned interface address — the
        #: per-arrival ``owns_address`` check as one set probe instead of
        #: a generator sweep over the interface list.
        self._owned_values: set[int] = set()
        # The table's clock feeds route provenance: install stamps carry
        # the sim time the entry appeared, not wall time.
        self.routes = RouteTable(clock=lambda: self.sim.now)
        self.stats = NodeStats()
        self.up = True
        #: Simulation time of the last (re)boot — the management agent's
        #: ``sys.uptime`` anchor.  A restore() resets it: a rebooted box
        #: reports a young uptime, which is exactly how an operator
        #: notices the reboot from the outside.
        self.boot_time = sim.now
        #: Gateways advise hosts of better first hops (ICMP Redirect) when
        #: a datagram leaves by the interface it arrived on.
        self.send_redirects = True
        #: Hosts install host routes from received redirects.
        self.accept_redirects = not is_gateway
        self._redirects_sent_to: dict[tuple, float] = {}
        #: ICMP error rate limit: at most one error per (icmp type, peer)
        #: per ``icmp_error_interval`` seconds.  A garbage flood from one
        #: source then costs us at most a trickle of replies — without the
        #: limit every unroutable/expired datagram buys a full-size ICMP
        #: error, and the error stream amplifies the attack (cf. the
        #: redirect limiter above, which this generalizes).
        self.icmp_error_interval = 1.0
        self._icmp_errors_sent_to: dict[tuple, float] = {}
        self.icmp_suppressed = 0
        #: Source Quench is budgeted separately from other ICMP errors:
        #: it is the congestion signal itself, and folding it into the
        #: one-per-interval limiter above would silence it precisely
        #: during a collapse, when many drops per source need advising.
        #: Each source gets up to ``quench_budget`` quenches per
        #: ``icmp_error_interval`` window instead.
        self.quench_budget = 8
        self._quench_windows: dict[int, tuple[float, int]] = {}
        self.quench_suppressed = 0
        self.reassembler = Reassembler(sim, timeout=reassembly_timeout,
                                       owner=self)
        self._protocols: dict[int, ProtocolHandler] = {}
        self._icmp_error_listeners: list[Callable[["Node", icmp.IcmpMessage, Datagram], None]] = []
        self._echo_waiters: dict[tuple[int, int], Callable[[float], None]] = {}
        self._ident = itertools.count(1)
        #: Hooks run by crash()/restore(); routing protocols register here.
        self.on_crash: list[Callable[[], None]] = []
        self.on_restore: list[Callable[[], None]] = []
        #: Called with every datagram in transit (gateway only) — used by
        #: the flow/soft-state extension and the accounting module to
        #: observe traffic without joining the forwarding decision.
        self.forward_inspectors: list[Callable[[Datagram], None]] = []
        #: FlowGateways attached to this node; the observability registry,
        #: the management MIB and the chaos FlowStateMonitor discover the
        #: soft-state plane through this list.
        self.flow_gateways: list = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_interface(self, iface: Interface, *, install_direct_route: bool = True) -> Interface:
        """Attach an interface; by default installs the connected route."""
        iface.node = self
        self.interfaces.append(iface)
        self._owned_values.add(int(iface.address))
        if install_direct_route:
            self.routes.install(
                Route(prefix=iface.prefix, interface=iface, next_hop=None,
                      metric=0, source="connected")
            )
        return iface

    def register_protocol(self, number: int, handler: ProtocolHandler) -> None:
        """Register the upcall for a transport protocol number."""
        self._protocols[number] = handler

    def add_icmp_error_listener(
        self, listener: Callable[["Node", icmp.IcmpMessage, Datagram], None]
    ) -> None:
        """Subscribe to ICMP errors delivered to this node (transports use
        this to learn of unreachable destinations / quench signals)."""
        self._icmp_error_listeners.append(listener)

    @property
    def addresses(self) -> list[Address]:
        return [iface.address for iface in self.interfaces]

    @property
    def address(self) -> Address:
        """Primary (first-interface) address; convenient for hosts."""
        if not self.interfaces:
            raise RuntimeError(f"node {self.name} has no interfaces")
        return self.interfaces[0].address

    def owns_address(self, address: Address) -> bool:
        return int(address) in self._owned_values

    def interface_by_name(self, name: str) -> Interface:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise KeyError(f"{self.name} has no interface {name!r}")

    # ------------------------------------------------------------------
    # Failure injection (the subject of goal 1)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node down, losing all volatile state.

        Routing entries learned from protocols vanish (they are derivable);
        reassembly buffers vanish.  Host transport state above us is the
        *host's own* — exactly the point of fate-sharing: if the host
        itself dies, its conversations were doomed anyway.
        """
        self.up = False
        self.routes.withdraw_by_source("dv")
        self.routes.withdraw_by_source("egp")
        self.routes.withdraw_by_source("ls")
        self.reassembler = Reassembler(self.sim, timeout=self.reassembler.timeout,
                                       owner=self)
        # Volatile per-conversation scraps die with the node too: redirect
        # rate-limit memory and outstanding echo waiters would otherwise
        # survive the reboot — state the crashed machine could not have kept.
        self._redirects_sent_to.clear()
        self._icmp_errors_sent_to.clear()
        self._quench_windows.clear()
        self._echo_waiters.clear()
        for hook in self.on_crash:
            hook()
        self.tracer.log(self.sim.now, "node", self.name, "crash")

    def restore(self) -> None:
        """Bring the node back up with only configured (connected/static)
        routes; dynamic routes must be re-learned."""
        self.up = True
        self.boot_time = self.sim.now
        for hook in self.on_restore:
            hook()
        self.tracer.log(self.sim.now, "node", self.name, "restore")

    # ------------------------------------------------------------------
    # Origination
    # ------------------------------------------------------------------
    def next_ident(self) -> int:
        return next(self._ident) & 0xFFFF

    def send(
        self,
        dst: Union[str, Address],
        protocol: int,
        payload: bytes,
        *,
        ttl: int = 32,
        tos: int = 0,
        dont_fragment: bool = False,
        src: Optional[Address] = None,
        trace_label: Optional[str] = None,
    ) -> bool:
        """Originate a datagram.  Returns False if it could not be sent
        (no route / node down) — the datagram service makes no promises.

        ``trace_label`` names control-plane traffic (routing updates, path
        probes) so its hop-span journeys are attributed in the obs layer
        rather than showing up as anonymous UDP.
        """
        if not self.up:
            self.stats.dropped_down += 1
            return False
        dst_addr = dst if isinstance(dst, Address) else Address(dst)
        src_addr = src if src is not None else self.source_for(dst_addr)
        pool = self.packet_pool
        if pool is not None and not dst_addr.is_broadcast:
            datagram = pool.acquire(
                src_addr, dst_addr, protocol, payload, ttl=ttl,
                ident=self.next_ident(), dont_fragment=dont_fragment, tos=tos)
        else:
            datagram = Datagram(
                src=src_addr,
                dst=dst_addr,
                protocol=protocol,
                payload=payload,
                ttl=ttl,
                tos=tos,
                ident=self.next_ident(),
                dont_fragment=dont_fragment,
            )
        self.stats.originated += 1
        self.stats.bytes_originated += datagram.total_length
        obs = self.obs
        if obs is not None and obs.enabled:
            datagram.trace_id = obs.next_trace_id()
            detail = (f"{datagram.src}->{datagram.dst} proto={datagram.protocol} "
                      f"len={datagram.total_length}")
            if trace_label is not None:
                detail = f"[{trace_label}] {detail}"
                obs.registry.counter(
                    "control_plane_origins", kind=trace_label).inc()
            obs.hop(self.sim.now, self.name, "origin", "originated", datagram,
                    detail)
        return self._output(datagram, originating=True)

    def send_datagram(self, datagram: Datagram) -> bool:
        """Originate a pre-built datagram (used by transports that manage
        their own header fields)."""
        if not self.up:
            self.stats.dropped_down += 1
            return False
        if datagram.ident == 0:
            # Builders that don't manage idents (ICMP echo, traceroute
            # probes) would otherwise all share ident 0 between the same
            # endpoint pair — aliasing their fragments on reassembly.
            datagram.ident = self.next_ident()
        self.stats.originated += 1
        self.stats.bytes_originated += datagram.total_length
        obs = self.obs
        if obs is not None and obs.enabled and datagram.trace_id == 0:
            datagram.trace_id = obs.next_trace_id()
            obs.hop(self.sim.now, self.name, "origin", "originated", datagram,
                    f"{datagram.src}->{datagram.dst} proto={datagram.protocol} "
                    f"len={datagram.total_length}")
        return self._output(datagram, originating=True)

    def source_for(self, dst: Address) -> Address:
        """Pick the source address for a destination: the address of the
        outgoing interface (addresses reflect connectivity).  Transports
        use this so every conversation is named by its attachment."""
        try:
            route = self.routes.lookup(dst)
            return route.interface.address
        except NoRouteError:
            return self.address

    # ------------------------------------------------------------------
    # The forwarding path
    # ------------------------------------------------------------------
    def _release_terminal(self, datagram: Datagram,
                          iface: Optional[Interface] = None) -> None:
        """Return a pooled shell whose packet's life just ended here.

        A no-op without a pool, for datagrams the pool does not own, and
        for broadcasts delivered off a shared medium (a LAN hands the
        *same* object to every member, so no single receiver may recycle
        it).  See :mod:`repro.ip.flyweight` for the lifetime rules.
        """
        pool = self.packet_pool
        if pool is None:
            return
        if iface is not None and getattr(iface.medium, "is_shared", False):
            dst = datagram.dst
            if dst.is_broadcast or dst == iface.broadcast_address:
                return
        pool.release(datagram)

    def _output(self, datagram: Datagram, *, originating: bool) -> bool:
        """Route, fragment and transmit one datagram."""
        self.stats.work_units += 1
        obs = self.obs
        if obs is not None and not obs.enabled:
            obs = None
        try:
            route = self.routes.lookup(datagram.dst)
        except NoRouteError:
            self.stats.dropped_no_route += 1
            self.tracer.log(self.sim.now, "ip", self.name, "no-route",
                            str(datagram.dst))
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-no-route", datagram,
                         str(datagram.dst))
            if not originating:
                self._send_icmp(icmp.destination_unreachable(
                    self.address, datagram, icmp.UNREACH_NET))
            self._release_terminal(datagram)
            return False
        iface = route.interface
        if not iface.up:
            self.stats.dropped_down += 1
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-link-down", datagram,
                         iface.name)
            self._release_terminal(datagram)
            return False
        next_hop = route.next_hop
        try:
            pieces = fragment(datagram, iface.mtu)
        except FragmentationError:
            self.stats.dropped_df += 1
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-df", datagram,
                         f"mtu={iface.mtu}")
            if not originating:
                self._send_icmp(icmp.destination_unreachable(
                    self.address, datagram, icmp.UNREACH_NEEDFRAG))
            self._release_terminal(datagram)
            return False
        if len(pieces) > 1:
            self.stats.fragments_created += len(pieces)
            self.tracer.log(self.sim.now, "ip", self.name, "frag",
                            f"{datagram.ident}->{len(pieces)}")
            if obs is not None:
                # Fragments inherit the parent's trace id via copy(), so
                # the journey records the split and stays whole across it.
                obs.hop(self.sim.now, self.name, "forward", "fragmented",
                        datagram, f"{len(pieces)} pieces, mtu={iface.mtu}")
            for piece in pieces:
                iface.output(piece, next_hop)
            # The parent was replaced by its (independently copied)
            # pieces; its own life ends at the fragmentation point.
            self._release_terminal(datagram)
            return True
        iface.output(datagram, next_hop)
        return True

    def datagram_arrived(self, datagram: Datagram, iface: Optional[Interface]) -> None:
        """Entry point from the link layer."""
        obs = self.obs
        if obs is not None and not obs.enabled:
            obs = None
        if not self.up:
            self.stats.dropped_down += 1
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-node-down", datagram)
            self._release_terminal(datagram, iface)
            return
        self.stats.work_units += 1
        if self.owns_address(datagram.dst) or datagram.dst.is_broadcast or (
            iface is not None and datagram.dst == iface.broadcast_address
        ):
            self._deliver_local(datagram, iface)
            return
        if not self.is_gateway:
            self.stats.dropped_not_mine += 1
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-not-mine", datagram,
                         str(datagram.dst))
            self._release_terminal(datagram, iface)
            return
        self._forward(datagram, iface)

    def _forward(self, datagram: Datagram,
                 iface_in: Optional[Interface] = None) -> None:
        """Gateway transit path: TTL, redirect advice, then output."""
        obs = self.obs
        if obs is not None and not obs.enabled:
            obs = None
        if datagram.ttl <= 1:
            self.stats.dropped_ttl += 1
            self.tracer.log(self.sim.now, "ip", self.name, "ttl-expired",
                            f"{datagram.src}->{datagram.dst}")
            if obs is not None:
                obs.drop(self.sim.now, self.name, "drop-ttl", datagram,
                         f"{datagram.src}->{datagram.dst}")
            self._send_icmp(icmp.time_exceeded(self.address, datagram))
            self._release_terminal(datagram, iface_in)
            return
        if iface_in is not None and self.send_redirects:
            self._maybe_redirect(datagram, iface_in)
        pool = self.packet_pool
        if pool is not None:
            forwarded = pool.clone_forward(datagram)
        else:
            forwarded = datagram.copy(ttl=datagram.ttl - 1)
        for inspector in self.forward_inspectors:
            inspector(forwarded)
        # Captured before _output: the fragmentation path may release the
        # clone (its pieces carry on), and release clears the payload.
        forwarded_length = forwarded.total_length
        if self._output(forwarded, originating=False):
            self.stats.forwarded += 1
            self.stats.bytes_forwarded += forwarded_length
            if obs is not None:
                obs.hop(self.sim.now, self.name, "forward", "forwarded",
                        forwarded, f"ttl={forwarded.ttl}")
        # The incoming original's life ends here either way: its onward
        # identity is the clone (ICMP time-exceeded/redirect consumers
        # above copy header bytes synchronously, retaining nothing).
        self._release_terminal(datagram, iface_in)

    def _maybe_redirect(self, datagram: Datagram, iface_in: Interface) -> None:
        """ICMP Redirect: the datagram will leave by the interface it came
        in on, and its source lives on that network — tell it the better
        first hop directly (rate-limited per source/destination pair)."""
        try:
            route = self.routes.lookup(datagram.dst)
        except NoRouteError:
            return
        if route.interface is not iface_in:
            return
        if not iface_in.prefix.contains(datagram.src):
            return
        better = route.next_hop if route.next_hop is not None else datagram.dst
        if better == iface_in.address:
            return
        key = (int(datagram.src), int(datagram.dst))
        if self.sim.now - self._redirects_sent_to.get(key, -1e9) < 5.0:
            return
        self._redirects_sent_to[key] = self.sim.now
        self.tracer.log(self.sim.now, "icmp", self.name, "redirect",
                        f"{datagram.src}: {datagram.dst} via {better}")
        obs = self.obs
        if obs is not None and obs.enabled:
            obs.hop(self.sim.now, self.name, "forward", "redirect-advised",
                    datagram, f"{datagram.src}: better hop {better}")
        self._send_icmp(icmp.redirect(iface_in.address, datagram, better))

    # ------------------------------------------------------------------
    # Local delivery
    # ------------------------------------------------------------------
    def _deliver_local(self, datagram: Datagram, iface: Optional[Interface]) -> None:
        completed = self.reassembler.accept(datagram)
        if completed is None:
            # A fragment, buffered by the reassembler (which retains it) —
            # lifetime rule 3: never release fragments at delivery.
            return
        self.stats.delivered += 1
        self.stats.bytes_delivered += completed.total_length
        obs = self.obs
        if obs is not None and obs.enabled:
            detail = (f"reassembled from fragments ({completed.total_length} B)"
                      if completed is not datagram else "")
            obs.hop(self.sim.now, self.name, "deliver", "delivered",
                    completed, detail)
        # ``completed`` is either the arriving datagram itself (whole
        # packets — pool-owned when pooling is on) or a fresh reassembly
        # copy (never pool-owned); handlers consume the payload bytes
        # synchronously, so its life ends at each exit below and
        # _release_terminal no-ops on whatever the pool does not own.
        if completed.protocol == PROTO_ICMP:
            self._handle_icmp(completed)
            self._release_terminal(completed, iface)
            return
        handler = self._protocols.get(completed.protocol)
        if handler is None:
            self.stats.dropped_bad_header += 1
            self._send_icmp(icmp.destination_unreachable(
                self.address, completed, icmp.UNREACH_PROTOCOL))
            self._release_terminal(completed, iface)
            return
        handler(self, completed, iface)
        self._release_terminal(completed, iface)

    def _handle_icmp(self, datagram: Datagram) -> None:
        try:
            message = icmp.IcmpMessage.from_bytes(datagram.payload)
        except icmp.IcmpError:
            self.stats.dropped_bad_header += 1
            return
        self.stats.icmp_received += 1
        if message.type == icmp.ECHO_REQUEST:
            self.send_datagram(icmp.echo_reply(datagram.dst if self.owns_address(datagram.dst) else self.address,
                                               datagram.src, message))
            return
        if message.type == icmp.ECHO_REPLY:
            waiter = self._echo_waiters.pop((message.ident, message.sequence), None)
            if waiter is not None:
                waiter(self.sim.now)
            return
        if message.type == icmp.REDIRECT and self.accept_redirects:
            self._apply_redirect(message)
        if message.is_error:
            for listener in self._icmp_error_listeners:
                listener(self, message, datagram)

    def _apply_redirect(self, message: icmp.IcmpMessage) -> None:
        """Install a host route toward the advised gateway."""
        quoted = message.quoted_datagram_header()
        gateway = message.gateway_address
        if quoted is None or gateway is None:
            return
        for iface in self.interfaces:
            if iface.prefix.contains(gateway):
                self.routes.install(Route(
                    prefix=Prefix.of(quoted.dst, 32), interface=iface,
                    next_hop=gateway, metric=1, source="redirect",
                    learned_from=gateway))
                self.tracer.log(self.sim.now, "icmp", self.name,
                                "redirect-accepted",
                                f"{quoted.dst} via {gateway}")
                return

    def _send_icmp(self, datagram: Datagram) -> None:
        if self.icmp_error_interval > 0 and datagram.payload:
            # One error per (type, offended source) per interval.  The
            # error's destination *is* the offending datagram's source, and
            # byte 0 of the ICMP payload is the message type.  Redirects
            # and Source Quench keep their own per-flow limiters
            # (_maybe_redirect, SourceQuencher) — their correct key is the
            # (host, destination) *pair*, and folding them under the
            # coarser (type, host) key starves a host of advice about all
            # but one destination per interval.
            icmp_type = datagram.payload[0]
            if icmp_type == icmp.SOURCE_QUENCH:
                # Dedicated quench budget (see __init__): N per source
                # per interval window, never starved by other error
                # types sharing the limiter — but still bounded, so an
                # overloaded gateway cannot amplify its own congestion.
                qkey = int(datagram.dst)
                start, used = self._quench_windows.get(qkey, (-1e9, 0))
                if self.sim.now - start >= self.icmp_error_interval:
                    start, used = self.sim.now, 0
                if used >= self.quench_budget:
                    self.quench_suppressed += 1
                    return
                self._quench_windows[qkey] = (start, used + 1)
            elif icmp_type != icmp.REDIRECT:
                key = (icmp_type, int(datagram.dst))
                if (self.sim.now - self._icmp_errors_sent_to.get(key, -1e9)
                        < self.icmp_error_interval):
                    self.icmp_suppressed += 1
                    return
                self._icmp_errors_sent_to[key] = self.sim.now
        if datagram.ident == 0:
            datagram.ident = self.next_ident()  # see send_datagram
        self.stats.icmp_sent += 1
        self._output(datagram, originating=True)

    # ------------------------------------------------------------------
    # Diagnostics: ping
    # ------------------------------------------------------------------
    def ping(self, dst: Union[str, Address],
             callback: Callable[[float], None],
             *, ident: int = 0, sequence: int = 0, data: bytes = b"") -> None:
        """Send an echo request; ``callback(rtt_end_time)`` fires on reply."""
        self._echo_waiters[(ident, sequence)] = callback
        self.send_datagram(icmp.echo_request(self.address, Address(dst),
                                             ident, sequence, data))

    def __repr__(self) -> str:
        kind = "gateway" if self.is_gateway else "host"
        return f"<Node {self.name} ({kind}) ifaces={len(self.interfaces)} up={self.up}>"
