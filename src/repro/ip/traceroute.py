"""Traceroute: path discovery from TTL expiry.

A purely end-host diagnostic (in keeping with fate-sharing, the *network*
offers nothing but its normal error behaviour): probes are sent with
TTL = 1, 2, 3, ...; each gateway that decrements TTL to zero answers with
ICMP Time Exceeded, naming itself; the destination answers the final probe
with an Echo Reply.  The sequence of reporters is the forward path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

from . import icmp
from .address import Address
from .node import Node

__all__ = ["Traceroute", "Hop"]


@dataclass
class Hop:
    """One discovered hop: who answered the TTL-limited probe, and when."""

    ttl: int
    reporter: Optional[Address]     # None = probe vanished (timeout)
    rtt: Optional[float]
    reached_destination: bool = False


class Traceroute:
    """Run a traceroute from ``node`` to ``destination``.

    >>> trace = Traceroute(host.node, "10.3.1.10", on_complete=show)
    >>> trace.start()

    ``on_complete`` receives the list of :class:`Hop` records.  Probes are
    ICMP echo requests (so the destination's reply is distinguishable from
    a transit gateway's Time Exceeded).
    """

    def __init__(self, node: Node, destination: Union[str, Address], *,
                 max_ttl: int = 16, probe_timeout: float = 3.0,
                 on_complete: Optional[Callable[[list[Hop]], None]] = None):
        self.node = node
        self.sim = node.sim
        self.destination = Address(destination)
        self.max_ttl = max_ttl
        self.probe_timeout = probe_timeout
        self.on_complete = on_complete
        self.hops: list[Hop] = []
        self.finished = False
        self._current_ttl = 0
        self._probe_sent_at = 0.0
        self._timeout_handle = None
        self._ident = 0x7AC3
        node.add_icmp_error_listener(self._icmp_error)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._next_probe()

    def _next_probe(self) -> None:
        if self.finished:
            return
        self._current_ttl += 1
        if self._current_ttl > self.max_ttl:
            self._finish()
            return
        self._probe_sent_at = self.sim.now
        probe = icmp.echo_request(self.node.address, self.destination,
                                  self._ident, self._current_ttl)
        probe = probe.copy(ttl=self._current_ttl)
        # Register for the destination's echo reply.
        self.node._echo_waiters[(self._ident, self._current_ttl)] = \
            self._echo_reply
        self.node.send_datagram(probe)
        self._timeout_handle = self.sim.schedule(
            self.probe_timeout, self._probe_timed_out, label="traceroute")

    def _cancel_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    # ------------------------------------------------------------------
    # Outcomes for the current probe
    # ------------------------------------------------------------------
    def _icmp_error(self, node: Node, message: icmp.IcmpMessage,
                    carrier) -> None:
        if self.finished or message.type != icmp.TIME_EXCEEDED:
            return
        quoted = message.quoted_datagram_header()
        if quoted is None or quoted.dst != self.destination:
            return
        # Attribute to the probe in flight (TTL is not in the quote's
        # payload we control, so rely on one-probe-at-a-time).
        self._cancel_timeout()
        self.node._echo_waiters.pop((self._ident, self._current_ttl), None)
        self.hops.append(Hop(
            ttl=self._current_ttl, reporter=carrier.src,
            rtt=self.sim.now - self._probe_sent_at))
        self._next_probe()

    def _echo_reply(self, _now: float) -> None:
        if self.finished:
            return
        self._cancel_timeout()
        self.hops.append(Hop(
            ttl=self._current_ttl, reporter=self.destination,
            rtt=self.sim.now - self._probe_sent_at,
            reached_destination=True))
        self._finish()

    def _probe_timed_out(self) -> None:
        if self.finished:
            return
        self.node._echo_waiters.pop((self._ident, self._current_ttl), None)
        self.hops.append(Hop(ttl=self._current_ttl, reporter=None, rtt=None))
        self._next_probe()

    def _finish(self) -> None:
        self.finished = True
        self._cancel_timeout()
        if self.on_complete is not None:
            self.on_complete(self.hops)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable path listing."""
        lines = [f"traceroute to {self.destination}"]
        for hop in self.hops:
            if hop.reporter is None:
                lines.append(f"{hop.ttl:3d}  *")
            else:
                mark = "  <- destination" if hop.reached_destination else ""
                lines.append(
                    f"{hop.ttl:3d}  {hop.reporter}  "
                    f"{hop.rtt * 1000:.1f} ms{mark}")
        return "\n".join(lines)
