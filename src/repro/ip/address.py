"""Internet addressing: 32-bit addresses and prefixes.

The 1988 architecture used classful 32-bit addresses whose network part
identified the attached network — the paper notes that "addresses should
reflect connectivity".  We implement a small, self-contained address type
(deliberately not :mod:`ipaddress` — the whole substrate is built from
scratch) with prefix/netmask arithmetic sufficient for forwarding,
aggregation in the EGP, and subnetted LANs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Iterator, Union

__all__ = ["Address", "Prefix", "AddressError", "BROADCAST", "UNSPECIFIED"]


class AddressError(ValueError):
    """Raised for malformed address or prefix literals."""


@total_ordering
class Address:
    """A 32-bit internet address.

    Accepts dotted-quad strings or raw integers::

        >>> Address("10.0.1.2")
        Address('10.0.1.2')
        >>> int(Address("0.0.0.10"))
        10
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, "Address"]):
        if isinstance(value, Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFF:
                raise AddressError(f"address out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            self._value = self._parse(value)
        else:
            raise AddressError(f"cannot make Address from {type(value).__name__}")

    @staticmethod
    def _parse(text: str) -> int:
        parts = text.strip().split(".")
        if len(parts) != 4:
            raise AddressError(f"malformed address {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise AddressError(f"malformed address {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return value

    # ------------------------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Address, int)):
            return self._value == int(other)
        if isinstance(other, str):
            try:
                return self._value == Address(other)._value
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "Address") -> bool:
        return self._value < int(other)

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "Address":
        return Address(self._value + offset)

    def to_bytes(self) -> bytes:
        """Serialize to 4 big-endian bytes (wire format)."""
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Address":
        if len(data) != 4:
            raise AddressError(f"address needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    @property
    def is_unspecified(self) -> bool:
        return self._value == 0


BROADCAST = Address(0xFFFFFFFF)
UNSPECIFIED = Address(0)


@dataclass(frozen=True)
class Prefix:
    """An address prefix ``network/len`` — the unit of routing.

    >>> p = Prefix.parse("10.1.0.0/16")
    >>> p.contains(Address("10.1.2.3"))
    True
    """

    network: Address
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if int(self.network) & ~self._mask_int():
            raise AddressError(
                f"network {self.network} has host bits set for /{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len``; a bare address parses as a /32."""
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            if not len_text.isdigit():
                raise AddressError(f"malformed prefix {text!r}")
            return cls(Address(addr_text), int(len_text))
        return cls(Address(text), 32)

    @classmethod
    def of(cls, address: Union[str, Address], length: int) -> "Prefix":
        """Build the prefix of ``length`` covering ``address`` (masks host bits)."""
        addr = Address(address)
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return cls(Address(int(addr) & mask), length)

    def _mask_int(self) -> int:
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    @property
    def netmask(self) -> Address:
        return Address(self._mask_int())

    def contains(self, address: Union[str, Address]) -> bool:
        return (int(Address(address)) & self._mask_int()) == int(self.network)

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.network)

    @property
    def broadcast(self) -> Address:
        """Directed-broadcast address of the prefix."""
        return Address(int(self.network) | (~self._mask_int() & 0xFFFFFFFF))

    def hosts(self) -> Iterator[Address]:
        """Iterate usable host addresses (skips network & broadcast for <31)."""
        lo = int(self.network)
        hi = int(self.broadcast)
        if self.length >= 31:
            for v in range(lo, hi + 1):
                yield Address(v)
            return
        for v in range(lo + 1, hi):
            yield Address(v)

    def host(self, index: int) -> Address:
        """Return the ``index``-th usable host address (1-based host part)."""
        addr = Address(int(self.network) + index)
        if not self.contains(addr):
            raise AddressError(f"host index {index} outside {self}")
        return addr

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix.parse('{self}')"
