"""Flyweight packet machinery: pooled datagrams and interned headers.

At internet scale the object path's per-hop cost is dominated by allocation:
every forwarded hop builds a fresh :class:`~repro.ip.packet.Datagram`, every
cross-shard ingress parses one from wire bytes, and every one of them also
allocates two :class:`~repro.ip.address.Address` objects.  The flyweight
layer removes that churn without changing semantics:

* :class:`PacketPool` keeps a free list of recycled ``Datagram`` shells.
  :meth:`PacketPool.clone_forward` — the per-hop hot call — reuses a shell
  and reassigns its slots instead of allocating; :meth:`PacketPool.release`
  returns a shell once its packet's life ends (delivered, or dropped).
  Pool-produced datagrams are *real* ``Datagram`` objects, so ``copy()``
  derivatives, obs trace ids, fragmentation and chaos epoch stamps all keep
  working unchanged — the pool is a lifetime optimisation, not a new type.
* Ownership lives on the datagram itself: the ``pool_state`` slot
  (0 = ordinary object, 1 = live pool product, 2 = released shell) makes
  :meth:`release` two attribute operations with no ownership table.  The
  marker is sound because shells never migrate between pools — a shard
  owns exactly one pool, and datagrams cross shard boundaries by value
  (wire bytes), never by reference.
* Address and header-tuple interning: a simulation carries millions of
  packets between a few hundred endpoints, so the distinct header space is
  tiny.  :meth:`PacketPool.intern_address` canonicalises addresses parsed
  from wire bytes (cross-shard ingress), and :meth:`PacketPool.header_key`
  interns the ``(src, dst, protocol, tos)`` tuple flows are classified by.

Lifetime rules (also documented in DESIGN.md §12):

1. Only the pool's own products are recycled.  ``release()`` ignores any
   datagram the pool did not hand out, so call sites may release
   unconditionally; double releases are ignored the same way.
2. A datagram may be released only at a terminal point of its life:
   consumed by local delivery, or dropped by a medium/forwarding decision.
   In-flight packets (queued on a medium, held by a packet scheduler) are
   live and must not be released.
3. Fragments are never released at delivery: the reassembler retains the
   offset-zero fragment as its header template.
4. Broadcast datagrams are never released: a LAN delivers the *same*
   object to every member.

Pooling is opt-in (``Internet.enable_packet_pool()``); with no pool
installed every path allocates exactly as before, and differential tests
prove the two paths packet-for-packet identical.
"""

from __future__ import annotations

from .address import Address
from .packet import Datagram

__all__ = ["PacketPool"]


class PacketPool:
    """A free-list of recycled :class:`Datagram` shells plus header interning.

    One pool serves a whole internet (or one shard of one): sharing
    maximises reuse.  A pool must never be shared across shard processes —
    each shard owns its own (see :mod:`repro.sim.shard`).
    """

    __slots__ = ("max_free", "_free", "_addrs", "_headers",
                 "allocated", "reused", "released", "foreign_releases")

    def __init__(self, max_free: int = 8192):
        self.max_free = max_free
        self._free: list[Datagram] = []
        self._addrs: dict[int, Address] = {}
        self._headers: dict[tuple, tuple] = {}
        self.allocated = 0
        self.reused = 0
        self.released = 0
        self.foreign_releases = 0

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(
        self,
        src: Address,
        dst: Address,
        protocol: int,
        payload: bytes = b"",
        ttl: int = 32,
        ident: int = 0,
        dont_fragment: bool = False,
        more_fragments: bool = False,
        fragment_offset: int = 0,
        tos: int = 0,
        trace_id: int = 0,
    ) -> Datagram:
        """A datagram with every field assigned, recycled when possible."""
        free = self._free
        if free:
            d = free.pop()
            self.reused += 1
        else:
            d = object.__new__(Datagram)
            self.allocated += 1
        d.src = src
        d.dst = dst
        d.protocol = protocol
        d.payload = payload
        d.ttl = ttl
        d.ident = ident
        d.dont_fragment = dont_fragment
        d.more_fragments = more_fragments
        d.fragment_offset = fragment_offset
        d.tos = tos
        d.trace_id = trace_id
        d.pool_state = 1
        return d

    def clone_forward(self, d: Datagram) -> Datagram:
        """The per-hop hot call: a clone of ``d`` with TTL decremented.

        Equivalent to ``d.copy(ttl=d.ttl - 1)`` on the object path.
        """
        free = self._free
        if free:
            new = free.pop()
            self.reused += 1
        else:
            new = object.__new__(Datagram)
            self.allocated += 1
        new.src = d.src
        new.dst = d.dst
        new.protocol = d.protocol
        new.payload = d.payload
        new.ttl = d.ttl - 1
        new.ident = d.ident
        new.dont_fragment = d.dont_fragment
        new.more_fragments = d.more_fragments
        new.fragment_offset = d.fragment_offset
        new.tos = d.tos
        new.trace_id = d.trace_id
        new.pool_state = 1
        return new

    def clone(self, d: Datagram, **changes) -> Datagram:
        """A pooled equivalent of ``d.copy(**changes)``."""
        new = self.clone_forward(d)
        new.ttl = d.ttl  # clone_forward decremented; restore before changes
        for name, value in changes.items():
            setattr(new, name, value)
        return new

    def from_wire(self, data: bytes, *, trace_id: int = 0) -> Datagram:
        """Parse RFC-791 wire bytes into a pooled datagram with interned
        addresses — the cross-shard ingress path.

        Semantics match :meth:`Datagram.from_bytes` (including every
        :class:`HeaderError` case) except that the product is pooled and
        its addresses are interned.
        """
        parsed = Datagram.from_bytes(data)
        return self.acquire(
            src=self.intern_address(int(parsed.src)),
            dst=self.intern_address(int(parsed.dst)),
            protocol=parsed.protocol,
            payload=parsed.payload,
            ttl=parsed.ttl,
            ident=parsed.ident,
            dont_fragment=parsed.dont_fragment,
            more_fragments=parsed.more_fragments,
            fragment_offset=parsed.fragment_offset,
            tos=parsed.tos,
            trace_id=trace_id,
        )

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------
    def release(self, d: Datagram) -> None:
        """Return a pool-owned shell to the free list.

        Safe to call on *any* datagram: objects the pool did not produce
        (``pool_state == 0``) and double releases (``pool_state == 2``)
        are counted and ignored, so call sites may release unconditionally
        at terminal points with no ownership bookkeeping of their own.
        """
        if d.pool_state != 1:
            self.foreign_releases += 1
            return
        d.pool_state = 2
        self.released += 1
        if len(self._free) < self.max_free:
            # Drop the payload reference so the shell doesn't pin big
            # buffers while idle on the free list.
            d.payload = b""
            self._free.append(d)

    def owns(self, d: Datagram) -> bool:
        """True while ``d`` is a live (not yet released) pool product."""
        return d.pool_state == 1

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern_address(self, value: int) -> Address:
        """The canonical :class:`Address` for an integer address value."""
        addr = self._addrs.get(value)
        if addr is None:
            addr = Address(value)
            self._addrs[value] = addr
        return addr

    def header_key(self, d: Datagram) -> tuple:
        """The interned ``(src, dst, protocol, tos)`` flow tuple for ``d``.

        Interning means repeated classification of the same flow returns
        the *same* tuple object — usable as a dict key with identity-level
        cheapness across millions of packets.
        """
        probe = (int(d.src), int(d.dst), d.protocol, d.tos)
        key = self._headers.get(probe)
        if key is None:
            self._headers[probe] = probe
            return probe
        return key

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def free(self) -> int:
        return len(self._free)

    @property
    def live(self) -> int:
        """Pool products currently out in the wild (arithmetic, O(1))."""
        return self.allocated + self.reused - self.released

    def counters(self) -> dict:
        """Scalar health counters for the observability registry."""
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "foreign_releases": self.foreign_releases,
            "free": len(self._free),
            "live": self.live,
            "interned_addresses": len(self._addrs),
            "interned_headers": len(self._headers),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PacketPool free={len(self._free)} live={self.live} "
                f"reused={self.reused} allocated={self.allocated}>")
