"""The IP datagram — the architecture's basic building block.

The paper is explicit that the datagram is "not ... a service" but the
*building block*: a self-contained, stateless unit carrying everything the
network needs to forward it.  This module defines the datagram with a real,
byte-accurate 20-byte header (RFC-791 layout, no options) so that header
overhead (goal 5 / experiment E5) is measured, not estimated, and
fragmentation (E11) manipulates genuine offset/flag fields.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from .address import Address
from .checksum import internet_checksum, verify_checksum

__all__ = [
    "Datagram",
    "HeaderError",
    "IP_HEADER_LEN",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "DEFAULT_TTL",
    "TOS_ECT",
    "TOS_CE",
]

IP_HEADER_LEN = 20
DEFAULT_TTL = 32

# ECN codepoints in the two low bits of the TOS byte (RFC 3168 layout).
# A transport that understands marking sets ECT at origination; a gateway
# whose early-drop queue would have dropped the packet sets CE instead.
# Transports that never set ECT keep the classic contract: congestion is
# signalled only by loss.
TOS_ECT = 0x02
TOS_CE = 0x01

# Protocol numbers (the real IANA ones, for familiarity).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_FLAG_DF = 0x2  # don't fragment
_FLAG_MF = 0x1  # more fragments

_HEADER_FMT = "!BBHHHBBH4s4s"


class HeaderError(ValueError):
    """Raised when parsing a malformed or corrupted IP header."""


@dataclass(slots=True)
class Datagram:
    """One IP datagram: header fields plus an opaque byte payload.

    ``ident`` disambiguates fragments of different datagrams; gateways that
    fragment copy it into every piece.  ``payload`` is the already-serialized
    transport segment (TCP/UDP/ICMP bytes).

    ``slots=True`` matters: datagrams are the hottest allocation in the
    simulator (one per hop on the object path), and dropping the per-
    instance ``__dict__`` roughly halves both the memory and the creation
    cost.  It also makes the class recyclable by the flyweight
    :class:`~repro.ip.flyweight.PacketPool`, which reassigns every slot on
    reuse — any stray attribute poked onto a datagram would be a latent
    bug, and slots turn it into an immediate ``AttributeError``.
    """

    src: Address
    dst: Address
    protocol: int
    payload: bytes = b""
    ttl: int = DEFAULT_TTL
    ident: int = 0
    dont_fragment: bool = False
    more_fragments: bool = False
    fragment_offset: int = 0  # in 8-byte units, per RFC 791
    tos: int = 0
    #: Observability trace context (0 = untraced).  Stamped once at
    #: origination by the sending node when an
    #: :class:`~repro.obs.core.Observability` layer is installed; every
    #: ``copy()`` derivative — forwarded hops, fragments, the reassembled
    #: whole — inherits it, which is what lets a journey survive
    #: fragmentation and reassembly.  Simulation metadata only: it is not
    #: part of the RFC-791 wire format and ``to_bytes``/``from_bytes``
    #: deliberately ignore it (a parsed datagram starts a fresh, untraced
    #: life, exactly like a packet entering from outside the observed net).
    trace_id: int = 0
    #: Flyweight-pool ownership marker (see :mod:`repro.ip.flyweight`):
    #: 0 = ordinary object, 1 = live pool product, 2 = released shell.
    #: Carried on the datagram itself so pool release/ownership checks
    #: are two attribute operations instead of a live-object table.
    #: Excluded from equality and repr — it is lifetime state, not header
    #: content — and never copied (a ``copy()`` derivative starts an
    #: ordinary, un-pooled life).
    pool_state: int = field(default=0, compare=False, repr=False)

    @property
    def header_length(self) -> int:
        return IP_HEADER_LEN

    @property
    def total_length(self) -> int:
        """Bytes on the wire: header plus payload."""
        return IP_HEADER_LEN + len(self.payload)

    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.fragment_offset > 0

    def copy(self, **changes) -> "Datagram":
        """Return a modified copy (used by forwarding and fragmentation).

        Hand-rolled instead of :func:`dataclasses.replace`: ``replace``
        re-enters ``__init__`` through keyword dispatch, and this runs on
        every forwarded hop and every fragment.  Direct slot assignment is
        ~3x cheaper and behaves identically (an unknown field name raises,
        via ``setattr`` on the slotted class).
        """
        new = object.__new__(Datagram)
        new.src = self.src
        new.dst = self.dst
        new.protocol = self.protocol
        new.payload = self.payload
        new.ttl = self.ttl
        new.ident = self.ident
        new.dont_fragment = self.dont_fragment
        new.more_fragments = self.more_fragments
        new.fragment_offset = self.fragment_offset
        new.tos = self.tos
        new.trace_id = self.trace_id
        new.pool_state = 0
        for name, value in changes.items():
            setattr(new, name, value)
        return new

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to RFC-791 wire format with a valid header checksum."""
        if not 0 <= self.ttl <= 255:
            raise HeaderError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.ident <= 0xFFFF:
            raise HeaderError(f"ident out of range: {self.ident}")
        if not 0 <= self.fragment_offset < 8192:
            # The low bound matters as much as the high one: a negative
            # offset would silently pack corrupt flag bits (two's
            # complement bleeding into the flags field).
            raise HeaderError(f"fragment offset out of range: {self.fragment_offset}")
        version_ihl = (4 << 4) | (IP_HEADER_LEN // 4)
        flags = (_FLAG_DF if self.dont_fragment else 0) | (
            _FLAG_MF if self.more_fragments else 0
        )
        flags_frag = (flags << 13) | self.fragment_offset
        header = struct.pack(
            _HEADER_FMT,
            version_ihl,
            self.tos,
            self.total_length,
            self.ident,
            flags_frag,
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        csum = internet_checksum(header)
        header = header[:10] + struct.pack("!H", csum) + header[12:]
        return header + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "Datagram":
        """Parse wire bytes; raises :class:`HeaderError` on corruption."""
        if len(data) < IP_HEADER_LEN:
            raise HeaderError(f"short datagram: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            ident,
            flags_frag,
            ttl,
            protocol,
            _csum,
            src_bytes,
            dst_bytes,
        ) = struct.unpack(_HEADER_FMT, data[:IP_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise HeaderError(f"bad version {version_ihl >> 4}")
        ihl = (version_ihl & 0xF) * 4
        if ihl != IP_HEADER_LEN:
            raise HeaderError(f"unsupported header length {ihl}")
        if not verify_checksum(data[:IP_HEADER_LEN]):
            raise HeaderError("header checksum failed")
        if total_length > len(data):
            raise HeaderError(
                f"truncated datagram: header says {total_length}, have {len(data)}"
            )
        flags = flags_frag >> 13
        return cls(
            src=Address.from_bytes(src_bytes),
            dst=Address.from_bytes(dst_bytes),
            protocol=protocol,
            payload=data[IP_HEADER_LEN:total_length],
            ttl=ttl,
            ident=ident,
            dont_fragment=bool(flags & _FLAG_DF),
            more_fragments=bool(flags & _FLAG_MF),
            fragment_offset=flags_frag & 0x1FFF,
            tos=tos,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        frag = ""
        if self.is_fragment:
            frag = f" frag(off={self.fragment_offset * 8},mf={int(self.more_fragments)})"
        return (
            f"<Datagram {self.src}->{self.dst} proto={self.protocol} "
            f"len={self.total_length} ttl={self.ttl} id={self.ident}{frag}>"
        )
