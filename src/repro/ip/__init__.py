"""The internet layer: datagrams, addressing, forwarding, fragmentation, ICMP."""

from .address import Address, AddressError, Prefix, BROADCAST, UNSPECIFIED
from .checksum import (
    internet_checksum,
    internet_checksum_reference,
    ones_complement_sum,
    verify_checksum,
    verify_checksum_reference,
)
from .forwarding import NoRouteError, Route, RouteTable
from .fragmentation import FragmentationError, Reassembler, fragment
from .node import Node, NodeStats
from .quench import SourceQuencher
from .traceroute import Hop, Traceroute
from .packet import (
    DEFAULT_TTL,
    Datagram,
    HeaderError,
    IP_HEADER_LEN,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)

__all__ = [
    "Address",
    "AddressError",
    "Prefix",
    "BROADCAST",
    "UNSPECIFIED",
    "internet_checksum",
    "internet_checksum_reference",
    "ones_complement_sum",
    "verify_checksum",
    "verify_checksum_reference",
    "Route",
    "RouteTable",
    "NoRouteError",
    "fragment",
    "Reassembler",
    "FragmentationError",
    "Node",
    "NodeStats",
    "SourceQuencher",
    "Traceroute",
    "Hop",
    "Datagram",
    "HeaderError",
    "IP_HEADER_LEN",
    "DEFAULT_TTL",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
]
