"""Autonomous systems: the unit of distributed management (goal 4).

"The Internet architecture must permit distributed management of its
resources": gateways are grouped into regions, each "managed by some agency"
running its own interior routing, with a deliberately narrow protocol
between regions.  An :class:`AutonomousSystem` bundles one administration's
nodes, IGP processes and address block; the border speaks
:class:`~repro.routing.egp.ExteriorGateway` to its neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ip.address import Prefix
from ..ip.node import Node
from ..routing.distance_vector import DistanceVectorRouting
from ..routing.egp import ExteriorGateway
from ..udp.udp import UdpStack

__all__ = ["AutonomousSystem"]


@dataclass
class AutonomousSystem:
    """One administration: a number, an address block, and its equipment."""

    number: int
    name: str
    block: Prefix                           # the AS's aggregated address space
    gateways: list[Node] = field(default_factory=list)
    hosts: list[Node] = field(default_factory=list)
    igps: list[DistanceVectorRouting] = field(default_factory=list)
    borders: list[ExteriorGateway] = field(default_factory=list)

    def add_gateway(self, node: Node, udp: Optional[UdpStack] = None,
                    *, igp_period: float = 2.0) -> DistanceVectorRouting:
        """Enroll a gateway and start its interior routing process."""
        self.gateways.append(node)
        igp = DistanceVectorRouting(node, udp or UdpStack(node),
                                    period=igp_period)
        self.igps.append(igp)
        igp.start()
        return igp

    def add_border(self, node: Node, udp: UdpStack, *,
                   period: float = 3.0, export_policy=None,
                   import_policy=None) -> ExteriorGateway:
        """Make a gateway a border speaker, originating the AS block."""
        kwargs = {}
        if export_policy is not None:
            kwargs["export_policy"] = export_policy
        if import_policy is not None:
            kwargs["import_policy"] = import_policy
        egp = ExteriorGateway(node, udp, local_as=self.number,
                              period=period, **kwargs)
        egp.originate(self.block)
        self.borders.append(egp)
        egp.start()
        return egp

    @property
    def igp_message_bytes(self) -> int:
        """Total interior routing chatter (E4's intra-AS cost column)."""
        return sum(igp.stats.bytes_sent for igp in self.igps)

    @property
    def egp_message_bytes(self) -> int:
        """Total exterior routing chatter (E4's inter-AS cost column)."""
        return sum(egp.stats.bytes_sent for egp in self.borders)

    def __repr__(self) -> str:
        return (f"<AS{self.number} {self.name} block={self.block} "
                f"gw={len(self.gateways)}>")
